//! Property tests of the session-runtime redesign's equivalence contract:
//!
//! 1. a [`SessionBatch`] with N = 1 is **bit-identical** to the legacy
//!    `Experiment::run` across every controller kind, service model, seed
//!    and queue bound;
//! 2. batch results are invariant to session order;
//! 3. batch results are invariant to the fan-out chunk size.
//!
//! Together these enforce the redesign's acceptance criterion: the thin
//! compatibility layers (`Experiment::run`, `run_fleet`, the sweeps) cannot
//! drift from the batch runtime, because both are the same kernel.

use proptest::prelude::*;

use arvis::core::experiment::{Experiment, ExperimentConfig, ExperimentResult, ServiceSpec};
use arvis::core::scenario::{ControllerSpec, Scenario, SessionSpec};
use arvis::core::session::SessionBatch;
use arvis::quality::DepthProfile;

fn profile() -> DepthProfile {
    DepthProfile::from_parts(
        5,
        vec![100.0, 400.0, 1600.0, 6400.0, 25600.0, 102400.0],
        vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
    )
}

fn arb_controller() -> impl Strategy<Value = ControllerSpec> {
    (0u8..7, 0u64..1_000, 1.0f64..1e8).prop_map(|(kind, seed, v)| match kind {
        0 => ControllerSpec::Proposed { v },
        1 => ControllerSpec::OnlyMax,
        2 => ControllerSpec::OnlyMin,
        3 => ControllerSpec::Fixed {
            depth: 5 + (seed % 6) as u8,
        },
        4 => ControllerSpec::Random { seed },
        5 => ControllerSpec::Threshold {
            thresholds: vec![1_000.0, 5_000.0, 20_000.0, 80_000.0],
        },
        _ => ControllerSpec::AdaptiveV {
            initial_v: v,
            target_backlog: 10_000.0,
        },
    })
}

fn arb_service() -> impl Strategy<Value = ServiceSpec> {
    (0u8..3, 500.0f64..30_000.0, 0.0f64..0.4).prop_map(|(kind, rate, sigma)| match kind {
        0 => ServiceSpec::Constant(rate),
        1 => ServiceSpec::Jittered { rate, sigma },
        _ => ServiceSpec::DutyCycled {
            high: rate,
            low: rate * 0.25,
            high_slots: 30,
            low_slots: 10,
        },
    })
}

/// Bitwise equality of two results: every series value and every derived
/// metric (floats compared through `to_bits`, so `-0.0 != 0.0` and NaNs
/// must match payload-for-payload where produced deterministically).
fn assert_bit_identical(a: &ExperimentResult, b: &ExperimentResult) -> Result<(), TestCaseError> {
    prop_assert_eq!(&a.controller, &b.controller);
    for (sa, sb) in [
        (&a.backlog, &b.backlog),
        (&a.depth, &b.depth),
        (&a.quality, &b.quality),
        (&a.arrivals, &b.arrivals),
        (&a.service, &b.service),
    ] {
        prop_assert_eq!(sa.len(), sb.len());
        for (va, vb) in sa.values().iter().zip(sb.values()) {
            prop_assert_eq!(va.to_bits(), vb.to_bits());
        }
    }
    let bits = |x: f64| x.to_bits();
    prop_assert_eq!(bits(a.mean_quality), bits(b.mean_quality));
    prop_assert_eq!(bits(a.mean_backlog), bits(b.mean_backlog));
    prop_assert_eq!(bits(a.dropped_total), bits(b.dropped_total));
    prop_assert_eq!(a.littles_delay.map(bits), b.littles_delay.map(bits));
    prop_assert_eq!(bits(a.frame_latency.mean), bits(b.frame_latency.mean));
    prop_assert_eq!(bits(a.frame_latency.p95), bits(b.frame_latency.p95));
    prop_assert_eq!(bits(a.frame_latency.p99), bits(b.frame_latency.p99));
    prop_assert_eq!(bits(a.backlog_tail.p95), bits(b.backlog_tail.p95));
    prop_assert_eq!(bits(a.backlog_tail.p99), bits(b.backlog_tail.p99));
    prop_assert_eq!(bits(a.depth_switch_rate), bits(b.depth_switch_rate));
    prop_assert_eq!(a.stable, b.stable);
    prop_assert_eq!(a.frame_latency.count, b.frame_latency.count);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batch_of_one_is_bit_identical_to_legacy_run(
        controller in arb_controller(),
        service in arb_service(),
        seed in 0u64..10_000,
        slots in 20u64..200,
        capacity in (0u8..2, 10_000.0f64..500_000.0),
    ) {
        let capacity = (capacity.0 == 1).then_some(capacity.1);
        let mut cfg = ExperimentConfig::new(profile(), 2_000.0, slots)
            .with_service(service)
            .with_seed(seed);
        cfg.queue_capacity = capacity;

        // Legacy path: the run-to-completion closed loop with an
        // externally owned controller behind the open trait.
        let mut legacy_controller = controller.build();
        let legacy = Experiment::new(cfg.clone()).run(&mut legacy_controller);

        // New path: a one-session batch with a full-trace sink.
        let mut batch = SessionBatch::full_trace(&Scenario::single(&cfg, controller));
        batch.run();
        let mut results = batch.into_results();
        prop_assert_eq!(results.len(), 1);
        assert_bit_identical(&legacy, &results.remove(0))?;
    }

    #[test]
    fn batch_results_are_invariant_to_session_order(
        seeds in prop::collection::vec(0u64..1_000, 2..6),
        slots in 20u64..120,
    ) {
        let base = ExperimentConfig::new(profile(), 2_000.0, slots).with_controller_v(1e7);
        // Heterogeneous sessions: rate and seed differ per session.
        let specs: Vec<SessionSpec> = seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| {
                let mut spec = SessionSpec::from_config(
                    &base,
                    ControllerSpec::Proposed { v: 1e6 * (i + 1) as f64 },
                );
                spec.seed = seed;
                spec.service = ServiceSpec::Jittered {
                    rate: 1_500.0 + 700.0 * i as f64,
                    sigma: 0.2,
                };
                spec
            })
            .collect();

        let mut forward = Scenario::new(slots);
        forward.sessions = specs.clone();
        let mut reversed = Scenario::new(slots);
        reversed.sessions = specs.into_iter().rev().collect();

        let mut fwd = SessionBatch::full_trace(&forward);
        let mut rev = SessionBatch::full_trace(&reversed);
        fwd.run();
        rev.run();
        let fwd_results = fwd.into_results();
        let mut rev_results = rev.into_results();
        rev_results.reverse();
        prop_assert_eq!(fwd_results.len(), rev_results.len());
        for (a, b) in fwd_results.iter().zip(&rev_results) {
            assert_bit_identical(a, b)?;
        }
    }

    #[test]
    fn batch_results_are_invariant_to_chunk_size(
        n in 1usize..9,
        chunk_a in 1usize..4,
        slots in 20u64..100,
    ) {
        let base = ExperimentConfig::new(profile(), 2_000.0, slots)
            .with_controller_v(1e7)
            .with_service(ServiceSpec::Jittered { rate: 2_000.0, sigma: 0.15 });
        let scenario = Scenario::replicated(
            &base,
            ControllerSpec::Proposed { v: 1e7 },
            n,
        );
        let mut small = SessionBatch::full_trace(&scenario).with_chunk_size(chunk_a);
        let mut large = SessionBatch::full_trace(&scenario).with_chunk_size(1_024);
        small.run();
        large.run();
        let small_results = small.into_results();
        let large_results = large.into_results();
        for (a, b) in small_results.iter().zip(&large_results) {
            assert_bit_identical(a, b)?;
        }
    }
}

#[test]
fn run_fleet_and_sweeps_match_sequential_experiments() {
    // The compatibility layers over the batch runtime must agree with
    // running each grid point through the legacy API by hand.
    let base = ExperimentConfig::new(profile(), 2_000.0, 400).with_controller_v(1e7);

    // Fleet.
    let fleet = arvis::core::distributed::FleetSpec::heterogeneous(4, 0.8);
    let outcomes = arvis::core::distributed::run_fleet(&base, fleet);
    for o in &outcomes {
        let cfg = base
            .clone()
            .with_service(ServiceSpec::Constant(o.service_rate))
            .with_seed(arvis::sim::rng::child_seed(0xF1EE7, o.device as u64));
        let solo = Experiment::new(cfg).run(&mut arvis::core::controller::ProposedDpp::new(1e7));
        assert_eq!(o.result.backlog, solo.backlog, "device {}", o.device);
        assert_eq!(
            o.result.mean_quality.to_bits(),
            solo.mean_quality.to_bits(),
            "device {}",
            o.device
        );
    }

    // V-sweep.
    let vs = [1e5, 1e6, 1e7];
    let points = arvis::core::sweep::v_sweep(&base, &vs);
    for (p, &v) in points.iter().zip(&vs) {
        let solo = Experiment::new(base.clone().with_controller_v(v))
            .run(&mut arvis::core::controller::ProposedDpp::new(v));
        assert_eq!(p.mean_quality.to_bits(), solo.mean_quality.to_bits());
        assert_eq!(p.mean_backlog.to_bits(), solo.mean_backlog.to_bits());
        assert_eq!(p.stable, solo.stable);
    }

    // Rate sweep.
    let rates = [800.0, 3_200.0];
    let points = arvis::core::sweep::rate_sweep(&base, &rates);
    for (p, &rate) in points.iter().zip(&rates) {
        let solo = Experiment::new(base.clone().with_service(ServiceSpec::Constant(rate))).run(
            &mut arvis::core::controller::ProposedDpp::new(base.controller_v),
        );
        assert_eq!(p.mean_quality.to_bits(), solo.mean_quality.to_bits());
        assert_eq!(p.mean_backlog.to_bits(), solo.mean_backlog.to_bits());
    }
}

#[test]
fn summary_sink_percentiles_track_full_trace_tails() {
    // The streaming p95/p99 estimates must land close to the exact
    // nearest-rank percentiles of the retained trace.
    let base = ExperimentConfig::new(profile(), 2_000.0, 2_000)
        .with_controller_v(1e7)
        .with_service(ServiceSpec::Jittered {
            rate: 2_000.0,
            sigma: 0.25,
        })
        .with_seed(7);
    let spec = ControllerSpec::Proposed { v: 1e7 };

    let mut full = SessionBatch::full_trace(&Scenario::single(&base, spec.clone()));
    full.run();
    let exact = full.into_results().remove(0);

    let mut streaming = SessionBatch::summary_only(&Scenario::single(&base, spec));
    streaming.run();
    let summary = streaming.into_summaries().remove(0);

    assert_eq!(summary.slots, 2_000);
    assert!((summary.mean_backlog - exact.mean_backlog).abs() < 1e-9);
    let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1.0);
    assert!(
        rel(summary.backlog_p95, exact.backlog_tail.p95) < 0.05,
        "streaming p95 {} vs exact {}",
        summary.backlog_p95,
        exact.backlog_tail.p95
    );
    assert!(
        rel(summary.backlog_p99, exact.backlog_tail.p99) < 0.05,
        "streaming p99 {} vs exact {}",
        summary.backlog_p99,
        exact.backlog_tail.p99
    );
    assert!(
        rel(summary.frame_latency_p95, exact.frame_latency.p95) < 0.15,
        "streaming latency p95 {} vs exact {}",
        summary.frame_latency_p95,
        exact.frame_latency.p95
    );
    assert_eq!(summary.stable, exact.stable);
}
