//! Property-based tests (proptest) on the workspace's core invariants.

use proptest::prelude::*;

use arvis::lyapunov::dpp::{Candidate, DppController};
use arvis::octree::occupancy::{decode_occupancy, encode_occupancy};
use arvis::octree::{LodMode, Octree, OctreeConfig};
use arvis::pointcloud::cloud::PointCloud;
use arvis::pointcloud::kdtree::KdTree;
use arvis::pointcloud::math::Vec3;
use arvis::pointcloud::ply::{read_ply, write_ply, Encoding};
use arvis::pointcloud::point::Point;
use arvis::pointcloud::voxel::{VoxelGrid, VoxelKey};
use arvis::sim::queue::WorkQueue;

fn arb_point() -> impl Strategy<Value = Point> {
    (
        -100.0f64..100.0,
        -100.0f64..100.0,
        -100.0f64..100.0,
        any::<(u8, u8, u8)>(),
    )
        .prop_map(|(x, y, z, (r, g, b))| Point::xyz_rgb(x, y, z, r, g, b))
}

fn arb_cloud(max_points: usize) -> impl Strategy<Value = PointCloud> {
    prop::collection::vec(arb_point(), 1..max_points).prop_map(PointCloud::from_points)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- octree invariants -------------------------------------------

    #[test]
    fn octree_occupancy_monotone_and_bounded(cloud in arb_cloud(300), depth in 1u8..7) {
        let tree = Octree::build(&cloud, &OctreeConfig::with_max_depth(depth)).unwrap();
        let profile = tree.occupancy_profile();
        prop_assert_eq!(profile[0], 1);
        for w in profile.windows(2) {
            prop_assert!(w[0] <= w[1], "occupancy must be non-decreasing");
            prop_assert!(w[1] <= w[0] * 8, "branching cannot exceed 8");
        }
        prop_assert!(*profile.last().unwrap() as u64 <= tree.point_count());
    }

    #[test]
    fn octree_counts_conserve_points(cloud in arb_cloud(200), depth in 1u8..6) {
        let tree = Octree::build(&cloud, &OctreeConfig::with_max_depth(depth)).unwrap();
        // At every level, node counts sum to the total point count.
        for d in 0..=depth {
            let total: u64 = tree
                .nodes_at_depth(d)
                .map(|id| tree.node(id).count())
                .sum();
            prop_assert_eq!(total, cloud.len() as u64, "level {} mismatch", d);
        }
    }

    #[test]
    fn octree_lod_points_inside_cube(cloud in arb_cloud(200), depth in 1u8..6) {
        let tree = Octree::build(&cloud, &OctreeConfig::with_max_depth(depth)).unwrap();
        let cube = tree.cube().inflated(1e-9);
        for mode in [LodMode::VoxelCenters, LodMode::MeanPositions] {
            let lod = tree.extract_lod(depth, mode);
            prop_assert_eq!(lod.cloud.len(), tree.occupied_at_depth(depth));
            for p in lod.cloud.iter() {
                prop_assert!(cube.contains(p.position));
            }
        }
    }

    #[test]
    fn occupancy_roundtrip_at_every_depth(cloud in arb_cloud(150), max_depth in 1u8..7) {
        // Encode→decode round-trip of the occupancy stream at every depth:
        // the decoded voxel-center cloud must be exactly the LoD extraction
        // at that depth (same voxel set, same centers).
        let tree = Octree::build(&cloud, &OctreeConfig::with_max_depth(max_depth)).unwrap();
        for depth in 1..=max_depth {
            let stream = encode_occupancy(&tree, depth);
            let decoded = decode_occupancy(stream, tree.cube()).unwrap();
            let lod = tree.extract_lod(depth, LodMode::VoxelCenters);
            prop_assert_eq!(decoded.len(), lod.cloud.len(), "size mismatch at depth {}", depth);
            let mut got: Vec<_> = decoded
                .positions()
                .map(|p| (p.x.to_bits(), p.y.to_bits(), p.z.to_bits()))
                .collect();
            let mut want: Vec<_> = lod
                .cloud
                .positions()
                .map(|p| (p.x.to_bits(), p.y.to_bits(), p.z.to_bits()))
                .collect();
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want, "voxel centers differ at depth {}", depth);
        }
    }

    #[test]
    fn octree_matches_brute_force_voxelizer(cloud in arb_cloud(250), depth in 1u8..7) {
        // The SoA Morton build must agree with the brute-force hash-map
        // voxelizer over the same cube and resolution: same occupied-voxel
        // count at max depth, and per-voxel counts, centroids and mean
        // colors.
        let tree = Octree::build(&cloud, &OctreeConfig::with_max_depth(depth)).unwrap();
        // The brute-force grid rejects degenerate (single-point) cubes.
        prop_assume!(tree.cube().max_extent() > 0.0);
        let grid = VoxelGrid::from_cloud_in_cube(&cloud, tree.cube(), 1u32 << depth).unwrap();
        prop_assert_eq!(tree.occupied_at_depth(depth), grid.occupied());
        for id in tree.nodes_at_depth(depth).collect::<Vec<_>>() {
            let node = tree.node(id);
            let center = node.mean_position();
            let key = grid.key_of(center);
            let cell = grid.cell(key);
            prop_assert!(cell.is_some(), "voxel missing from grid for node {:?}", id);
            let cell = cell.unwrap();
            prop_assert_eq!(cell.count, node.count(), "count mismatch at {:?}", id);
            prop_assert!(
                cell.mean_position().distance(center) < 1e-9,
                "centroid mismatch at {:?}",
                id
            );
            prop_assert_eq!(cell.mean_color(), node.mean_color(), "color mismatch at {:?}", id);
        }
    }

    #[test]
    fn octree_serial_parallel_equivalence(cloud in arb_cloud(200), depth in 1u8..7) {
        // The parallel build must be bit-identical to the forced-serial
        // build: same arena, same level table, same cube.
        let cfg = OctreeConfig::with_max_depth(depth);
        let parallel = Octree::build(&cloud, &cfg).unwrap();
        let serial = arvis_par::serial_scope(|| Octree::build(&cloud, &cfg).unwrap());
        prop_assert_eq!(&parallel, &serial);
        // And the quality metrics over its LoD agree bit-for-bit too.
        let lod = parallel.extract_lod(depth, LodMode::VoxelCenters);
        let par_mse = arvis::quality::psnr::geometry_distortion(&cloud, &lod.cloud)
            .unwrap();
        let ser_mse = arvis_par::serial_scope(|| {
            arvis::quality::psnr::geometry_distortion(&cloud, &lod.cloud).unwrap()
        });
        prop_assert_eq!(par_mse.mse_symmetric.to_bits(), ser_mse.mse_symmetric.to_bits());
        prop_assert_eq!(par_mse.mse_forward.to_bits(), ser_mse.mse_forward.to_bits());
    }

    #[test]
    fn octree_locate_finds_members(cloud in arb_cloud(100), depth in 1u8..5) {
        let tree = Octree::build(&cloud, &OctreeConfig::with_max_depth(depth)).unwrap();
        for p in cloud.positions() {
            prop_assert!(tree.locate(p, depth).is_some(), "lost point {}", p);
        }
    }

    // ---- queue invariants --------------------------------------------

    #[test]
    fn queue_conservation(
        steps in prop::collection::vec((0.0f64..1e4, 0.0f64..1e4), 1..300)
    ) {
        let mut q = WorkQueue::new();
        for (a, b) in &steps {
            q.step(*a, *b);
        }
        prop_assert!(q.conservation_residual().abs() < 1e-6);
        prop_assert!(q.backlog() >= 0.0);
        prop_assert!(q.peak_backlog() >= q.backlog());
        prop_assert!(q.total_dropped() == 0.0);
    }

    #[test]
    fn finite_queue_never_exceeds_capacity(
        steps in prop::collection::vec((0.0f64..1e4, 0.0f64..1e4), 1..300),
        cap in 1.0f64..1e5,
    ) {
        let mut q = WorkQueue::with_capacity(cap);
        for (a, b) in &steps {
            let s = q.step(*a, *b);
            prop_assert!(s.backlog <= cap + 1e-9);
            prop_assert!(s.dropped >= 0.0);
        }
        prop_assert!(q.conservation_residual().abs() < 1e-6);
    }

    #[test]
    fn queue_backlog_matches_lindley_recursion(
        steps in prop::collection::vec((0.0f64..1e3, 0.0f64..1e3), 1..200)
    ) {
        let mut q = WorkQueue::new();
        let mut reference = 0.0f64;
        for (a, b) in &steps {
            q.step(*a, *b);
            reference = (reference - b).max(0.0) + a;
            prop_assert!((q.backlog() - reference).abs() < 1e-9);
        }
    }

    // ---- DPP decision invariants ---------------------------------------

    #[test]
    fn dpp_choice_maximizes_score(
        utilities in prop::collection::vec(0.0f64..1.0, 2..12),
        arrivals in prop::collection::vec(1.0f64..1e6, 2..12),
        q in 0.0f64..1e7,
        v in 0.0f64..1e9,
    ) {
        let n = utilities.len().min(arrivals.len());
        let candidates: Vec<Candidate<usize>> = (0..n)
            .map(|i| Candidate { action: i, utility: utilities[i], arrival: arrivals[i] })
            .collect();
        let ctl = DppController::new(v);
        let decision = ctl.decide(q, candidates.iter().copied()).unwrap();
        for c in &candidates {
            prop_assert!(
                decision.score >= ctl.score(q, c) - 1e-9,
                "chosen score {} beaten by {:?}",
                decision.score,
                c
            );
        }
    }

    #[test]
    fn dpp_depth_monotone_in_backlog(
        v in 1.0f64..1e9,
        q1 in 0.0f64..1e6,
        dq in 0.0f64..1e6,
    ) {
        // Canonical increasing-utility / increasing-arrival candidate set.
        let candidates: Vec<Candidate<u8>> = (0..6u8)
            .map(|i| Candidate {
                action: i,
                utility: f64::from(i) / 5.0,
                arrival: 100.0 * 4f64.powi(i32::from(i)),
            })
            .collect();
        let ctl = DppController::new(v);
        let lo = ctl.decide(q1, candidates.iter().copied()).unwrap().action;
        let hi = ctl.decide(q1 + dq, candidates.iter().copied()).unwrap().action;
        prop_assert!(hi <= lo, "depth increased with backlog: {} -> {}", lo, hi);
    }

    // ---- geometry / format invariants ----------------------------------

    #[test]
    fn kdtree_nearest_matches_brute_force(cloud in arb_cloud(120), probe in arb_point()) {
        let tree = KdTree::build(cloud.positions());
        let (_, d2) = tree.nearest(probe.position).unwrap();
        let brute = cloud
            .positions()
            .map(|p| p.distance_squared(probe.position))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((d2 - brute).abs() < 1e-9);
    }

    #[test]
    fn ply_binary_roundtrip_preserves_cloud(cloud in arb_cloud(150)) {
        let mut bytes = Vec::new();
        write_ply(&mut bytes, &cloud, Encoding::BinaryLittleEndian).unwrap();
        let back = read_ply(&bytes[..]).unwrap();
        prop_assert_eq!(back.len(), cloud.len());
        for (a, b) in cloud.iter().zip(back.iter()) {
            // Positions pass through f32.
            prop_assert!(a.position.distance(b.position) < 1e-3);
            prop_assert_eq!(a.color, b.color);
        }
    }

    #[test]
    fn morton_roundtrip(x in 0u32..1024, y in 0u32..1024, z in 0u32..1024) {
        let key = VoxelKey::new(x, y, z);
        prop_assert_eq!(VoxelKey::from_morton(key.morton(10), 10), key);
    }

    #[test]
    fn aabb_octants_partition(center in -10.0f64..10.0, edge in 0.1f64..20.0) {
        let cube = arvis::pointcloud::Aabb::cube(Vec3::splat(center), edge);
        let octants = cube.octants();
        let vol: f64 = octants.iter().map(|o| o.volume()).sum();
        prop_assert!((vol - cube.volume()).abs() < 1e-6 * cube.volume().max(1e-12));
        // Every octant center maps back to its index.
        for (i, o) in octants.iter().enumerate() {
            prop_assert_eq!(cube.octant_index(o.center()), i);
        }
    }
}

// ---- closed-loop scheduler properties ----------------------------------

use arvis::core::controller::ProposedDpp;
use arvis::core::experiment::{Experiment, ExperimentConfig};
use arvis::lyapunov::bounds::DppBounds;
use arvis::quality::DepthProfile;

/// Strategy: a random feasible system — monotone profile, service rate
/// strictly between the extreme arrivals, V spanning five decades.
fn arb_system() -> impl Strategy<Value = (DepthProfile, f64, f64)> {
    (
        3usize..7,     // number of depths
        1.5f64..5.0,   // arrival growth per depth
        10.0f64..1e4,  // base arrival
        0.05f64..0.95, // service position in (a_min, a_max)
        1e3f64..1e8,   // V
    )
        .prop_map(|(n, growth, base, pos, v)| {
            let arrivals: Vec<f64> = (0..n).map(|i| base * growth.powi(i as i32)).collect();
            let quality: Vec<f64> = (0..n).map(|i| i as f64 / (n - 1) as f64).collect();
            let profile = DepthProfile::from_parts(3, arrivals.clone(), quality);
            // Service strictly above a_min (so draining is possible) and
            // strictly below a_max (so the trade-off is non-trivial).
            let a_min = arrivals[0];
            let a_max = arrivals[n - 1];
            let rate = a_min * 1.05 + pos * (a_max * 0.95 - a_min * 1.05);
            (profile, rate, v)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn proposed_scheduler_never_exceeds_switching_bound(
        (profile, rate, v) in arb_system()
    ) {
        // Once Q exceeds the largest quality-per-work exchange rate, every
        // deeper depth loses to the minimum depth, which drains the queue:
        // the backlog can never exceed that threshold plus overshoot slack.
        let depths: Vec<u8> = profile.depths().collect();
        let mut max_ratio: f64 = 0.0;
        for &i in &depths {
            for &j in &depths {
                if profile.arrival(i) > profile.arrival(j) {
                    let r = v * (profile.quality(i) - profile.quality(j))
                        / (profile.arrival(i) - profile.arrival(j));
                    max_ratio = max_ratio.max(r);
                }
            }
        }
        let a_max = profile.arrival(*depths.last().unwrap());
        let bound = max_ratio + 2.0 * a_max;

        let cfg = ExperimentConfig::new(profile, rate, 3_000).with_controller_v(v);
        let r = Experiment::new(cfg).run(&mut ProposedDpp::new(v));
        let peak = r.backlog.summary().max;
        prop_assert!(
            peak <= bound + 1e-6,
            "peak backlog {} exceeded switching bound {}",
            peak,
            bound
        );
    }

    #[test]
    fn proposed_scheduler_is_rate_stable((profile, rate, v) in arb_system()) {
        // Rate stability: over the long run, admitted work per slot cannot
        // exceed the service rate (the queue would otherwise grow without
        // bound, contradicting the switching-threshold argument above).
        let cfg = ExperimentConfig::new(profile, rate, 4_000).with_controller_v(v);
        let r = Experiment::new(cfg).run(&mut ProposedDpp::new(v));
        let tail_arrivals = r.arrivals.mean_from(2_000).unwrap();
        prop_assert!(
            tail_arrivals <= rate * 1.05,
            "long-run arrivals {} exceed service {}",
            tail_arrivals,
            rate
        );
    }

    #[test]
    fn measured_backlog_respects_neely_bound((profile, rate, v) in arb_system()) {
        // The standard DPP bound: time-average backlog ≤ (B + V·span)/ε with
        // B = (a_max² + b²)/2 and ε the min-depth slack. Finite horizons and
        // deterministic dynamics sit well inside it.
        let depths: Vec<u8> = profile.depths().collect();
        let a_min = profile.arrival(depths[0]);
        let a_max = profile.arrival(*depths.last().unwrap());
        let epsilon = rate - a_min;
        prop_assume!(epsilon > 0.0);
        let b_const = DppBounds::b_from_peaks(a_max, rate);
        let bounds = DppBounds::new(b_const, v, epsilon, 1.0);

        let cfg = ExperimentConfig::new(profile, rate, 3_000)
            .with_controller_v(v)
            .with_warmup(0);
        let r = Experiment::new(cfg).run(&mut ProposedDpp::new(v));
        prop_assert!(
            r.mean_backlog <= bounds.backlog_bound() * 1.01,
            "mean backlog {} exceeds theoretical bound {}",
            r.mean_backlog,
            bounds.backlog_bound()
        );
    }
}
