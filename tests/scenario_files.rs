//! Scenario files end-to-end: golden conformance, exact round-trips, and
//! malformed-input hardening.
//!
//! 1. **Golden replay** — every checked-in `scenarios/*.json` (the E1–E8
//!    presets dumped by `experiments emit`) must (a) be byte-identical to
//!    the preset built in Rust, (b) survive `parse → emit` byte-identically
//!    (canonical form), and (c) *run* to bit-identical headline metrics
//!    whether the scenario came from the file or from Rust — the
//!    reproducibility pin that lets refactors prove they changed nothing.
//! 2. **Round-trip property** — randomly generated scenarios (all
//!    controller/service/stream kinds, budgets, policies, weights, seeds)
//!    survive `to_json → parse → to_json` byte-identically; the shortest
//!    round-trip float repr makes string equality equivalent to bitwise
//!    structural equality.
//! 3. **Malformed input** — truncations, unknown keys, wrong types,
//!    non-finite literals, extern controllers, negative weights/alpha,
//!    empty traces: each a specific `Err` with line/column, never a panic
//!    (including a mini fuzz loop over byte-level mutations of a valid
//!    file).
//!
//! This suite runs under both default and `--no-default-features` builds
//! (see CI's serial pass): the codec path is allocation-only and must not
//! depend on the parallel fan-out.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use arvis::core::churn::{ChurnArrivalSpec, ChurnSpec, LifetimeSpec};
use arvis::core::experiment::ServiceSpec;
use arvis::core::scenario::{ControllerSpec, Scenario, SessionSpec};
use arvis::core::session::SessionBatch;
use arvis::core::stream::ArStream;
use arvis::core::telemetry::SessionSummary;
use arvis::core::uplink::{
    run_contended, BudgetProfile, BudgetStep, UplinkPolicy, UplinkSpec, UplinkVAdaptSpec,
};
use arvis::quality::DepthProfile;
use arvis_bench::presets::{scenario_preset, SCENARIO_PRESETS};

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join(format!("{name}.json"))
}

/// Bitwise equality of two per-session summaries (floats via `to_bits`).
fn assert_summaries_bit_identical(a: &SessionSummary, b: &SessionSummary, what: &str) {
    assert_eq!(a.slots, b.slots, "{what}: slots");
    let bits = [
        ("mean_quality", a.mean_quality, b.mean_quality),
        ("mean_backlog", a.mean_backlog, b.mean_backlog),
        ("backlog_p95", a.backlog_p95, b.backlog_p95),
        ("backlog_p99", a.backlog_p99, b.backlog_p99),
        (
            "frame_latency_mean",
            a.frame_latency_mean,
            b.frame_latency_mean,
        ),
        (
            "frame_latency_p95",
            a.frame_latency_p95,
            b.frame_latency_p95,
        ),
        (
            "frame_latency_p99",
            a.frame_latency_p99,
            b.frame_latency_p99,
        ),
        ("dropped_total", a.dropped_total, b.dropped_total),
        (
            "depth_switch_rate",
            a.depth_switch_rate,
            b.depth_switch_rate,
        ),
    ];
    for (field, x, y) in bits {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: {field} {x} vs {y}");
    }
    assert_eq!(a.frames_completed, b.frames_completed, "{what}: frames");
    assert_eq!(
        a.littles_delay.map(f64::to_bits),
        b.littles_delay.map(f64::to_bits),
        "{what}: littles_delay"
    );
    assert_eq!(a.stable, b.stable, "{what}: stable");
}

#[test]
fn golden_scenarios_match_their_presets_byte_for_byte() {
    for &name in SCENARIO_PRESETS {
        let path = golden_path(name);
        let file = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: {e} (regenerate with `experiments emit all --dir scenarios`)",
                path.display()
            )
        });
        let built = scenario_preset(name).expect(name);
        assert_eq!(
            built.to_json_string().unwrap(),
            file,
            "{name}: checked-in golden differs from the in-Rust preset; \
             regenerate with `experiments emit all --dir scenarios`"
        );
    }
}

#[test]
fn golden_scenarios_reparse_to_their_canonical_form() {
    for &name in SCENARIO_PRESETS {
        let file = std::fs::read_to_string(golden_path(name)).expect(name);
        let parsed = Scenario::from_json_str(&file).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            parsed.to_json_string().unwrap(),
            file,
            "{name}: emit(parse(file)) must reproduce the file byte for byte"
        );
    }
}

#[test]
fn golden_scenarios_replay_bit_identically() {
    for &name in SCENARIO_PRESETS {
        let file = std::fs::read_to_string(golden_path(name)).expect(name);
        let from_file = Scenario::from_json_str(&file).expect(name);
        let from_rust = scenario_preset(name).expect(name);
        // The same auto-selection the `experiments run` subcommand makes:
        // contended when the scenario declares an uplink, uncoupled
        // summaries otherwise.
        if from_file.uplink.is_some() || from_file.fault.is_some() || from_file.churn.is_some() {
            let run_a = run_contended(&from_file);
            let run_b = run_contended(&from_rust);
            assert_eq!(run_a.summaries.len(), run_b.summaries.len(), "{name}");
            for (i, (a, b)) in run_a.summaries.iter().zip(&run_b.summaries).enumerate() {
                assert_summaries_bit_identical(a, b, &format!("{name} session {i}"));
            }
            let (ua, ub) = (run_a.uplink, run_b.uplink);
            assert_eq!(ua.slots, ub.slots, "{name}");
            assert_eq!(ua.contended_slots, ub.contended_slots, "{name}");
            assert_eq!(ua.shed_slots, ub.shed_slots, "{name}");
            assert_eq!(
                ua.deferred_session_slots, ub.deferred_session_slots,
                "{name}"
            );
            assert_eq!(ua.outage_slots, ub.outage_slots, "{name}");
            assert_eq!(ua.down_session_slots, ub.down_session_slots, "{name}");
            assert_eq!(run_a.downtime, run_b.downtime, "{name}: downtime");
            for (field, x, y) in [
                ("mean_budget", ua.mean_budget, ub.mean_budget),
                ("mean_demand", ua.mean_demand, ub.mean_demand),
                ("mean_granted", ua.mean_granted, ub.mean_granted),
                ("mean_backlog", ua.mean_backlog, ub.mean_backlog),
                ("peak_backlog", ua.peak_backlog, ub.peak_backlog),
                ("lost_total", ua.lost_total, ub.lost_total),
            ] {
                assert_eq!(x.to_bits(), y.to_bits(), "{name}: uplink {field}");
            }
        } else {
            let mut batch_a = SessionBatch::summary_only(&from_file);
            let mut batch_b = SessionBatch::summary_only(&from_rust);
            batch_a.run();
            batch_b.run();
            let (sa, sb) = (batch_a.into_summaries(), batch_b.into_summaries());
            assert_eq!(sa.len(), sb.len(), "{name}");
            for (i, (a, b)) in sa.iter().zip(&sb).enumerate() {
                assert_summaries_bit_identical(a, b, &format!("{name} session {i}"));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Round-trip property
// ---------------------------------------------------------------------------

fn random_profile(rng: &mut StdRng) -> DepthProfile {
    let min_depth = rng.gen_range(2u8..9);
    let levels = rng.gen_range(2usize..6);
    let arrivals: Vec<f64> = (0..levels)
        .map(|i| 10f64.powf(rng.gen_range(0.0..4.0)) * (i + 1) as f64)
        .collect();
    let quality: Vec<f64> = (0..levels).map(|_| rng.gen_range(0.0..1.0)).collect();
    DepthProfile::from_parts(min_depth, arrivals, quality)
}

fn random_stream(rng: &mut StdRng) -> ArStream {
    match rng.gen_range(0u8..3) {
        0 => ArStream::constant(random_profile(rng)),
        1 => {
            // Cycle frames must share a depth range: scale one profile.
            let base = random_profile(rng);
            let frames = rng.gen_range(1usize..4);
            let profiles = (0..frames)
                .map(|_| {
                    let scale = rng.gen_range(0.5..2.0);
                    DepthProfile::from_parts(
                        base.min_depth(),
                        base.depths().map(|d| base.arrival(d) * scale).collect(),
                        base.depths().map(|d| base.quality(d)).collect(),
                    )
                })
                .collect();
            ArStream::cycle(profiles)
        }
        _ => ArStream::modulated(
            random_profile(rng),
            rng.gen_range(0.0..0.99),
            rng.gen_range(1.0..5_000.0),
        ),
    }
}

fn random_controller(rng: &mut StdRng) -> ControllerSpec {
    match rng.gen_range(0u8..7) {
        0 => ControllerSpec::Proposed {
            v: 10f64.powf(rng.gen_range(0.0..9.0)),
        },
        1 => ControllerSpec::OnlyMax,
        2 => ControllerSpec::OnlyMin,
        3 => ControllerSpec::Fixed {
            depth: rng.gen_range(0u8..=255),
        },
        4 => ControllerSpec::Random { seed: rng.gen() },
        5 => {
            let n = rng.gen_range(1usize..5);
            let mut t = 0.0;
            let thresholds = (0..n)
                .map(|_| {
                    t += 10f64.powf(rng.gen_range(0.0..5.0));
                    t
                })
                .collect();
            ControllerSpec::Threshold { thresholds }
        }
        _ => ControllerSpec::AdaptiveV {
            initial_v: 10f64.powf(rng.gen_range(1.0..8.0)),
            target_backlog: 10f64.powf(rng.gen_range(1.0..6.0)),
        },
    }
}

fn random_service(rng: &mut StdRng) -> ServiceSpec {
    match rng.gen_range(0u8..3) {
        0 => ServiceSpec::Constant(rng.gen_range(0.0..1e5)),
        1 => ServiceSpec::Jittered {
            rate: rng.gen_range(0.0..1e5),
            sigma: rng.gen_range(0.0..0.5),
        },
        _ => ServiceSpec::DutyCycled {
            high: rng.gen_range(0.0..1e5),
            low: rng.gen_range(0.0..1e3),
            high_slots: rng.gen_range(1u64..100),
            low_slots: rng.gen_range(0u64..100),
        },
    }
}

fn random_budget(rng: &mut StdRng) -> BudgetProfile {
    match rng.gen_range(0u8..4) {
        0 => BudgetProfile::Constant(if rng.gen_bool(0.2) {
            f64::INFINITY
        } else {
            rng.gen_range(0.0..1e6)
        }),
        1 => {
            let mean = rng.gen_range(0.0..1e6);
            BudgetProfile::Diurnal {
                mean,
                amplitude: mean * rng.gen_range(0.0..1.0),
                period: rng.gen_range(1u64..10_000),
                phase: rng.gen_range(-2.0..2.0),
            }
        }
        2 => {
            let n = rng.gen_range(1usize..5);
            let mut start = 0u64;
            BudgetProfile::PiecewiseSteps(
                (0..n)
                    .map(|i| {
                        if i > 0 {
                            start += rng.gen_range(1u64..500);
                        }
                        BudgetStep {
                            start,
                            budget: rng.gen_range(0.0..1e6),
                        }
                    })
                    .collect(),
            )
        }
        _ => BudgetProfile::Trace(
            (0..rng.gen_range(1usize..20))
                .map(|_| {
                    if rng.gen_bool(0.05) {
                        f64::INFINITY
                    } else {
                        rng.gen_range(0.0..1e6)
                    }
                })
                .collect(),
        ),
    }
}

fn random_policy(rng: &mut StdRng, sessions: usize) -> UplinkPolicy {
    match rng.gen_range(0u8..5) {
        0 => UplinkPolicy::Unconstrained,
        1 => UplinkPolicy::ProportionalShare,
        2 => UplinkPolicy::MaxWeightBacklog,
        3 => UplinkPolicy::WeightedMaxWeight {
            weights: (0..sessions).map(|_| rng.gen_range(0.1..16.0)).collect(),
        },
        _ => UplinkPolicy::AlphaFair {
            alpha: if rng.gen_bool(0.2) {
                f64::INFINITY
            } else {
                rng.gen_range(1.0..8.0)
            },
        },
    }
}

fn random_session(rng: &mut StdRng) -> SessionSpec {
    let controller = random_controller(rng);
    let can_adapt = matches!(&controller, ControllerSpec::Proposed { v } if *v > 0.0);
    SessionSpec {
        stream: random_stream(rng),
        service: random_service(rng),
        controller,
        seed: rng.gen(),
        queue_capacity: rng.gen_bool(0.3).then(|| rng.gen_range(0.0..1e9)),
        warmup: rng.gen_range(0u64..1_000),
        frame_cap: rng.gen_bool(0.3).then(|| rng.gen_range(1usize..1 << 20)),
        uplink_v_adapt: (can_adapt && rng.gen_bool(0.4)).then(|| {
            let low = rng.gen_range(0.1..0.8);
            UplinkVAdaptSpec {
                low,
                high: rng.gen_range(low..1.0),
                step: rng.gen_range(0.01..0.5),
                min_v_scale: rng.gen_range(0.001..1.0),
            }
        }),
    }
}

/// A random-but-valid churn spec: joins need a template and a cap, a
/// weight is tied to a weighted uplink policy, and a join-less spec may
/// still declare lifetimes (departure-only churn).
fn random_churn(rng: &mut StdRng, weighted: bool) -> ChurnSpec {
    let mut churn = ChurnSpec::new();
    let joins = rng.gen_bool(0.7);
    if joins {
        let arrivals = match rng.gen_range(0u8..3) {
            0 => ChurnArrivalSpec::Poisson {
                lambda: rng.gen_range(0.0..2.0),
                seed: rng.gen(),
            },
            1 => ChurnArrivalSpec::Mmpp2 {
                lambda_low: rng.gen_range(0.0..0.5),
                lambda_high: rng.gen_range(0.0..4.0),
                switch_up: rng.gen_range(0.0..1.0),
                switch_down: rng.gen_range(0.0..1.0),
                seed: rng.gen(),
            },
            _ => ChurnArrivalSpec::Trace {
                counts: (0..rng.gen_range(1usize..30))
                    .map(|_| rng.gen_range(0u64..3))
                    .collect(),
            },
        };
        churn = churn.with_arrivals(arrivals, random_session(rng), rng.gen_range(1u64..64));
        if weighted {
            churn = churn.with_weight(rng.gen_range(0.1..16.0));
        }
    }
    if !joins || rng.gen_bool(0.7) {
        let lifetime = match rng.gen_range(0u8..3) {
            0 => LifetimeSpec::Fixed {
                slots: rng.gen_range(1u64..10_000),
            },
            1 => LifetimeSpec::Geometric {
                mean: rng.gen_range(1.0..5_000.0),
                seed: rng.gen(),
            },
            _ => {
                let min = rng.gen_range(1u64..500);
                LifetimeSpec::Uniform {
                    min,
                    max: min + rng.gen_range(0u64..5_000),
                    seed: rng.gen(),
                }
            }
        };
        churn = churn.with_lifetime(lifetime);
    }
    churn.with_compaction(rng.gen_bool(0.5))
}

fn random_scenario(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scenario = Scenario::new(rng.gen_range(1u64..5_000));
    let sessions = rng.gen_range(1usize..6);
    for _ in 0..sessions {
        let spec = random_session(&mut rng);
        scenario.sessions.push(spec);
    }
    let mut weighted = false;
    if rng.gen_bool(0.6) {
        let policy = random_policy(&mut rng, sessions);
        weighted = matches!(policy, UplinkPolicy::WeightedMaxWeight { .. });
        scenario = scenario.with_uplink(UplinkSpec::with_profile(random_budget(&mut rng), policy));
    }
    if rng.gen_bool(0.4) {
        scenario = scenario.with_churn(random_churn(&mut rng, weighted));
    }
    scenario
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `to_json → parse → to_json` is byte-identical for arbitrary
    /// scenarios. The float formatter is injective on finite `f64`s (and
    /// integers are kept exact), so byte equality of the canonical form
    /// *is* bitwise structural equality — every weight, rate, seed and
    /// quality value survived unchanged.
    #[test]
    fn scenario_roundtrip_is_byte_identical(seed in any::<u64>()) {
        let scenario = random_scenario(seed);
        let text = scenario.to_json_string().expect("encode");
        let back = Scenario::from_json_str(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
        prop_assert_eq!(back.to_json_string().unwrap(), text, "seed {}", seed);
        // Spot-check structure on the PartialEq-able surface too.
        prop_assert_eq!(back.slots, scenario.slots);
        prop_assert_eq!(back.len(), scenario.len());
        prop_assert_eq!(&back.uplink, &scenario.uplink);
        for (a, b) in back.sessions.iter().zip(&scenario.sessions) {
            prop_assert_eq!(a.seed, b.seed);
            prop_assert_eq!(&a.service, &b.service);
            prop_assert_eq!(a.queue_capacity.map(f64::to_bits), b.queue_capacity.map(f64::to_bits));
            prop_assert_eq!(a.frame_cap, b.frame_cap);
            prop_assert_eq!(&a.uplink_v_adapt, &b.uplink_v_adapt);
        }
        prop_assert_eq!(back.churn.is_some(), scenario.churn.is_some());
        if let (Some(a), Some(b)) = (&back.churn, &scenario.churn) {
            prop_assert_eq!(&a.arrivals, &b.arrivals);
            prop_assert_eq!(a.max_joins, b.max_joins);
            prop_assert_eq!(a.weight.map(f64::to_bits), b.weight.map(f64::to_bits));
            prop_assert_eq!(&a.lifetime, &b.lifetime);
            prop_assert_eq!(a.compact, b.compact);
            prop_assert_eq!(
                a.template.as_ref().map(|t| t.seed),
                b.template.as_ref().map(|t| t.seed)
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Malformed inputs: specific errors with positions, never panics
// ---------------------------------------------------------------------------

/// A minimal valid scenario file, hand-formatted on known lines.
fn mini_text() -> String {
    scenario_preset("e1_fig2")
        .unwrap()
        .to_json_string()
        .unwrap()
}

fn expect_err(text: &str, want: &str) -> arvis::core::json::JsonError {
    match Scenario::from_json_str(text) {
        Ok(_) => panic!("input unexpectedly parsed (wanted error \"{want}\"):\n{text}"),
        Err(e) => {
            assert!(
                e.msg.contains(want),
                "error {:?} does not mention \"{want}\"",
                e.to_string()
            );
            e
        }
    }
}

#[test]
fn truncated_files_error_cleanly() {
    let text = mini_text();
    for cut in [0, 1, text.len() / 4, text.len() / 2, text.len() - 2] {
        let err = Scenario::from_json_str(&text[..cut]).expect_err("truncated");
        assert!(
            err.pos.is_some(),
            "cut at {cut}: error must carry a position"
        );
    }
}

#[test]
fn unknown_keys_are_rejected_with_position() {
    let err = expect_err(
        "{\n  \"schema\": 1,\n  \"slots\": 10,\n  \"sessions\": [],\n  \"wat\": 1\n}",
        "unknown key \"wat\"",
    );
    let pos = err.pos.unwrap();
    assert_eq!((pos.line, pos.col), (5, 3));
}

#[test]
fn wrong_types_are_rejected() {
    expect_err(
        "{\"schema\": 1, \"slots\": \"lots\", \"sessions\": []}",
        "expected an integer, found a string",
    );
    expect_err(
        "{\"schema\": 1, \"slots\": 9.5, \"sessions\": []}",
        "expected an integer, found a non-integer number",
    );
    expect_err(
        "{\"schema\": 1, \"slots\": 10, \"sessions\": {}}",
        "expected an array, found an object",
    );
}

#[test]
fn schema_version_is_mandatory_and_checked() {
    expect_err(
        "{\"slots\": 10, \"sessions\": []}",
        "missing required key \"schema\"",
    );
    expect_err(
        "{\"schema\": 4, \"slots\": 10, \"sessions\": []}",
        "unsupported schema version 4",
    );
    expect_err(
        "{\"schema\": 0, \"slots\": 10, \"sessions\": []}",
        "unsupported schema version 0",
    );
    // Schemas 2 (fault plane) and 3 (churn, this build's newest) parse; a
    // lower-versioned file smuggling the newer member does not.
    assert!(
        Scenario::from_json_str("{\"schema\": 2, \"slots\": 10, \"sessions\": []}").is_ok(),
        "schema 2 is supported"
    );
    assert!(
        Scenario::from_json_str("{\"schema\": 3, \"slots\": 10, \"sessions\": []}").is_ok(),
        "schema 3 is supported"
    );
    expect_err(
        "{\"schema\": 1, \"slots\": 10, \"sessions\": [], \"fault\": {\"events\": []}}",
        "\"fault\" requires schema version 2",
    );
    expect_err(
        "{\"schema\": 2, \"slots\": 10, \"sessions\": [], \"churn\": {\"compact\": true}}",
        "\"churn\" requires schema version 3",
    );
}

#[test]
fn non_finite_literals_are_rejected() {
    for bad in ["NaN", "Infinity", "-Infinity", "1e999"] {
        let text = format!("{{\"schema\": 1, \"slots\": {bad}, \"sessions\": []}}");
        let err = Scenario::from_json_str(&text).expect_err(bad);
        assert!(err.pos.is_some(), "{bad} must have a position");
    }
}

#[test]
fn extern_controllers_are_rejected_in_files() {
    let text = mini_text().replace("\"type\": \"proposed\"", "\"type\": \"extern\"");
    expect_err(
        &text,
        "extern controllers cannot be described in a scenario file",
    );
}

#[test]
fn bad_uplink_parameters_are_rejected() {
    let session = "{\"stream\": {\"type\": \"constant\", \"profile\": {\"min_depth\": 5, \
                   \"arrivals\": [100, 400], \"quality\": [0, 1]}}, \
                   \"service\": {\"type\": \"constant\", \"rate\": 500}, \
                   \"controller\": {\"type\": \"only_min\"}, \"seed\": 0, \"warmup\": 0}";
    let with_uplink = |uplink: &str| {
        format!("{{\"schema\": 1, \"slots\": 10, \"sessions\": [{session}], \"uplink\": {uplink}}}")
    };

    expect_err(
        &with_uplink(
            "{\"budget\": {\"type\": \"constant\", \"budget\": 100}, \
             \"policy\": {\"type\": \"weighted_max_weight\", \"weights\": [1, -2]}}",
        ),
        "bad max-weight weight -2",
    );
    expect_err(
        &with_uplink(
            "{\"budget\": {\"type\": \"constant\", \"budget\": 100}, \
             \"policy\": {\"type\": \"weighted_max_weight\", \"weights\": [1, 2]}}",
        ),
        "declares 2 weights for 1 sessions",
    );
    expect_err(
        &with_uplink(
            "{\"budget\": {\"type\": \"constant\", \"budget\": 100}, \
             \"policy\": {\"type\": \"alpha_fair\", \"alpha\": 0.5}}",
        ),
        "alpha must be >= 1",
    );
    expect_err(
        &with_uplink(
            "{\"budget\": {\"type\": \"trace\", \"budgets\": []}, \
             \"policy\": {\"type\": \"proportional_share\"}}",
        ),
        "need at least one traced budget",
    );
    expect_err(
        &with_uplink(
            "{\"budget\": {\"type\": \"constant\", \"budget\": -5}, \
             \"policy\": {\"type\": \"proportional_share\"}}",
        ),
        "bad budget -5",
    );
    expect_err(
        &with_uplink(
            "{\"budget\": {\"type\": \"diurnal\", \"mean\": 10, \"amplitude\": 11, \
             \"period\": 5, \"phase\": 0}, \"policy\": {\"type\": \"proportional_share\"}}",
        ),
        "diurnal amplitude must be in [0, mean]",
    );
}

#[test]
fn duty_cycle_slot_count_overflow_is_rejected() {
    // u64::MAX + 1 slots per cycle must error, not overflow the add the
    // decoder (and the service constructor) performs.
    let text = format!(
        "{{\"schema\": 1, \"slots\": 10, \"sessions\": [{{\
         \"stream\": {{\"type\": \"constant\", \"profile\": {{\"min_depth\": 5, \
         \"arrivals\": [100, 400], \"quality\": [0, 1]}}}}, \
         \"service\": {{\"type\": \"duty_cycled\", \"high\": 10, \"low\": 1, \
         \"high_slots\": {}, \"low_slots\": 1}}, \
         \"controller\": {{\"type\": \"only_min\"}}, \"seed\": 0, \"warmup\": 0}}]}}",
        u64::MAX
    );
    expect_err(&text, "overflows u64");
}

#[test]
fn non_finite_rust_built_specs_fail_to_encode() {
    // Encoding (not just decoding) must never panic: a Rust-built spec
    // holding a non-finite value gets a JsonError naming the field.
    let profile = DepthProfile::from_parts(5, vec![100.0, 400.0], vec![0.0, 1.0]);
    let base = arvis::core::experiment::ExperimentConfig::new(profile, 500.0, 10);
    let mut scenario = Scenario::single(&base, ControllerSpec::OnlyMin);
    scenario.sessions[0].queue_capacity = Some(f64::INFINITY);
    let err = scenario.to_json_string().unwrap_err();
    assert!(err.msg.contains("queue_capacity"), "{}", err.msg);

    let scenario = Scenario::single(&base, ControllerSpec::Proposed { v: f64::NAN });
    let err = scenario.to_json_string().unwrap_err();
    assert!(err.msg.contains("must be finite"), "{}", err.msg);

    let mut scenario = Scenario::single(&base, ControllerSpec::OnlyMin);
    scenario.uplink = Some(UplinkSpec {
        budget: BudgetProfile::Constant(100.0),
        policy: UplinkPolicy::AlphaFair { alpha: f64::NAN },
    });
    let err = scenario.to_json_string().unwrap_err();
    assert!(err.msg.contains("alpha"), "{}", err.msg);
}

#[test]
fn v_adapt_without_proposed_controller_is_rejected() {
    let text = "{\"schema\": 1, \"slots\": 10, \"sessions\": [{\
                \"stream\": {\"type\": \"constant\", \"profile\": {\"min_depth\": 5, \
                \"arrivals\": [100, 400], \"quality\": [0, 1]}}, \
                \"service\": {\"type\": \"constant\", \"rate\": 500}, \
                \"controller\": {\"type\": \"only_max\"}, \"seed\": 0, \"warmup\": 0, \
                \"uplink_v_adapt\": {\"low\": 0.85, \"high\": 0.95, \"step\": 0.05, \
                \"min_v_scale\": 0.01}}]}";
    expect_err(text, "requires a proposed controller");
}

#[test]
fn duplicate_keys_are_rejected() {
    expect_err(
        "{\"schema\": 1, \"schema\": 1, \"slots\": 10, \"sessions\": []}",
        "duplicate key \"schema\"",
    );
}

/// The mini fuzz loop shared by the schema-1 and schema-2 batteries:
/// byte-level mutations of a valid scenario file must always yield `Ok`
/// or a positioned `Err` — never a panic, hang, or abort. (Runs the
/// parser + full decoder on every mutant.) Returns the error count.
fn fuzz_byte_mutations(valid: &[u8], seed: u64) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut errors = 0usize;
    for case in 0..600u32 {
        let mut bytes = valid.to_vec();
        match case % 3 {
            0 => {
                // Flip one byte to an arbitrary value.
                let i = rng.gen_range(0..bytes.len());
                bytes[i] = rng.gen();
            }
            1 => {
                // Truncate at an arbitrary point.
                let cut = rng.gen_range(0..bytes.len());
                bytes.truncate(cut);
            }
            _ => {
                // Insert an arbitrary byte.
                let i = rng.gen_range(0..=bytes.len());
                bytes.insert(i, rng.gen());
            }
        }
        let text = String::from_utf8_lossy(&bytes);
        if let Err(e) = Scenario::from_json_str(&text) {
            errors += 1;
            // Every error must render (exercises Display) and most carry
            // a position.
            let _ = e.to_string();
        }
    }
    errors
}

#[test]
fn byte_mutation_fuzz_never_panics() {
    let errors = fuzz_byte_mutations(mini_text().as_bytes(), 0x5EED_F00D);
    assert!(errors > 300, "mutations should mostly fail ({errors}/600)");
}

/// The same battery over the schema-2 fault surface: mutants of the
/// faulted E7 golden exercise the `"fault"` decoder (events, guard,
/// cross-references to session indices) byte-by-byte, and must never
/// panic either.
#[test]
fn byte_mutation_fuzz_covers_schema_2_fault_bytes() {
    let valid = std::fs::read(golden_path("e7_fault_outage")).expect("read e7 golden");
    assert!(
        String::from_utf8_lossy(&valid).contains("\"fault\""),
        "e7 golden must carry the schema-2 fault surface"
    );
    let errors = fuzz_byte_mutations(&valid, 0x5EED_FA17);
    assert!(errors > 300, "mutations should mostly fail ({errors}/600)");
}

/// And over the schema-3 churn surface: mutants of the churned E8 golden
/// exercise the `"churn"` decoder (arrival processes, lifetimes, the
/// joiner template, the weighted-uplink cross-checks) byte-by-byte, and
/// must never panic either.
#[test]
fn byte_mutation_fuzz_covers_schema_3_churn_bytes() {
    let valid = std::fs::read(golden_path("e8_churn")).expect("read e8 golden");
    assert!(
        String::from_utf8_lossy(&valid).contains("\"churn\""),
        "e8 golden must carry the schema-3 churn surface"
    );
    let errors = fuzz_byte_mutations(&valid, 0x5EED_C402);
    assert!(errors > 300, "mutations should mostly fail ({errors}/600)");
}
