//! The regression-ledger conformance suite: the committed
//! `results/ledger.json` is bit-exact, canonical, and re-derivable.
//!
//! 1. **Golden replay** — every checked-in `scenarios/*.json` replays to a
//!    [`RunRecord`] that matches the committed ledger entry **bit for
//!    bit** (field-level diff empty), keyed by the scenario's content
//!    hash and the recording code version. This is the library-level twin
//!    of CI's `experiments verify scenarios/` gate: any behavior drift on
//!    a golden run fails here with the exact field path.
//! 2. **Hash stability** — a golden's content hash is the SHA-256 of its
//!    canonical file bytes, invariant under `parse → emit` re-emission,
//!    and sensitive to any one-field edit.
//! 3. **Canonical form** — the committed ledger survives
//!    `parse → emit` byte-identically, so regenerating it is always a
//!    clean diff.
//! 4. **SHA-256** — incremental and one-shot hashing agree on random
//!    inputs under random chunkings (the NIST FIPS 180-4 vectors are
//!    pinned in `arvis_core::hash`'s unit tests).
//!
//! This suite runs under both default and `--no-default-features` builds
//! (see CI's serial pass): replay is bit-identical either way, so one
//! committed ledger serves both.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use arvis::core::hash::{sha256_hex, Sha256};
use arvis::core::ledger::{Ledger, RunRecord, CODE_VERSION, LEDGER_SCHEMA_VERSION};
use arvis::core::scenario::Scenario;
use arvis_bench::presets::SCENARIO_PRESETS;

fn repo_path(rel: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn golden_text(preset: &str) -> String {
    std::fs::read_to_string(repo_path(&format!("scenarios/{preset}.json")))
        .unwrap_or_else(|e| panic!("read golden {preset}: {e}"))
}

fn committed_ledger_text() -> String {
    std::fs::read_to_string(repo_path("results/ledger.json")).expect("read committed ledger")
}

#[test]
fn committed_ledger_round_trips_byte_identically() {
    let text = committed_ledger_text();
    let ledger = Ledger::from_json_str(&text).expect("parse committed ledger");
    assert_eq!(
        ledger.to_json_string().expect("re-emit ledger"),
        text,
        "emit → parse → emit must be byte-identical"
    );
}

#[test]
fn committed_ledger_covers_every_golden_exactly_once() {
    let ledger = Ledger::from_json_str(&committed_ledger_text()).expect("parse ledger");
    assert_eq!(
        ledger.records.len(),
        SCENARIO_PRESETS.len(),
        "one record per golden scenario"
    );
    for preset in SCENARIO_PRESETS {
        let record = ledger
            .records
            .iter()
            .find(|r| r.scenario == *preset)
            .unwrap_or_else(|| panic!("{preset}: no ledger record"));
        assert_eq!(record.code_version, CODE_VERSION, "{preset}");
        assert_eq!(record.scenario_hash.len(), 64, "{preset}: hex SHA-256");
    }
}

#[test]
fn goldens_replay_bit_identically_to_the_committed_ledger() {
    let ledger = Ledger::from_json_str(&committed_ledger_text()).expect("parse ledger");
    for preset in SCENARIO_PRESETS {
        let scenario = Scenario::from_json_str(&golden_text(preset))
            .unwrap_or_else(|e| panic!("{preset}: {e}"));
        let replay =
            RunRecord::replay(*preset, &scenario).unwrap_or_else(|e| panic!("{preset}: {e}"));
        let stored = ledger
            .find(&replay.scenario_hash, &replay.code_version)
            .unwrap_or_else(|| {
                panic!(
                    "{preset}: no ledger entry for hash {} at code version {} — \
                     regenerate with `experiments run scenarios/{preset}.json --record --from-raw`",
                    replay.scenario_hash, replay.code_version
                )
            });
        let diff = stored
            .diff(&replay)
            .unwrap_or_else(|e| panic!("{preset}: {e}"));
        assert!(
            diff.is_empty(),
            "{preset}: replay diverges from the committed ledger:\n{}",
            diff.join("\n")
        );
        assert_eq!(stored.scenario, *preset);
        assert_eq!(
            stored.scenario_schema,
            scenario.schema_version(),
            "{preset}"
        );
    }
}

#[test]
fn content_hash_is_the_digest_of_the_canonical_bytes_and_reemission_stable() {
    for preset in SCENARIO_PRESETS {
        let text = golden_text(preset);
        let scenario = Scenario::from_json_str(&text).unwrap_or_else(|e| panic!("{preset}: {e}"));
        let hash = scenario.content_hash().expect("hash");
        // The committed golden is already canonical, so the file bytes are
        // the hash preimage…
        assert_eq!(hash, sha256_hex(text.as_bytes()), "{preset}");
        // …and a parse → emit → parse round trip cannot move the hash.
        let reemitted =
            Scenario::from_json_str(&scenario.to_json_string().expect("emit")).expect("reparse");
        assert_eq!(reemitted.content_hash().expect("hash"), hash, "{preset}");
    }
}

#[test]
fn one_field_edit_changes_the_content_hash() {
    let text = golden_text("e1_fig2");
    let mut scenario = Scenario::from_json_str(&text).expect("parse e1");
    let original = scenario.content_hash().expect("hash");

    scenario.slots += 1;
    let edited = scenario.content_hash().expect("hash");
    assert_ne!(original, edited, "a one-field edit must move the hash");

    scenario.slots -= 1;
    assert_eq!(
        scenario.content_hash().expect("hash"),
        original,
        "undoing the edit restores the hash"
    );

    // A single-bit float edit moves it too (the canonical float repr is
    // injective on bit patterns).
    let mut scenario = Scenario::from_json_str(&text).expect("parse e1");
    let v = scenario.sessions[0].warmup as f64;
    scenario.sessions[0].service =
        arvis::core::experiment::ServiceSpec::Constant(f64::from_bits(v.to_bits() + 1));
    assert_ne!(scenario.content_hash().expect("hash"), original);
}

#[test]
fn ledger_schema_version_is_pinned() {
    // The committed file must declare the version this build writes —
    // bumping LEDGER_SCHEMA_VERSION without regenerating the ledger is a
    // loud failure, not a silent reinterpretation.
    assert_eq!(LEDGER_SCHEMA_VERSION, 1);
    let text = committed_ledger_text();
    assert!(
        text.starts_with("{\n  \"schema\": 1,"),
        "committed ledger declares schema 1"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Incremental hashing agrees with one-shot hashing whatever the
    /// chunking — the update/finalize buffering never depends on how the
    /// byte stream is sliced.
    #[test]
    fn sha256_incremental_agrees_with_one_shot(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = rng.gen_range(0usize..600);
        let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        let one_shot = sha256_hex(&data);

        let mut hasher = Sha256::new();
        let mut rest: &[u8] = &data;
        while !rest.is_empty() {
            let take = rng.gen_range(1..=rest.len());
            hasher.update(&rest[..take]);
            rest = &rest[take..];
        }
        prop_assert_eq!(hasher.finalize_hex(), one_shot);
    }
}
