//! Property tests of the shared-uplink contention plane
//! (`arvis_core::uplink`): the invariants that make coupling M sessions
//! through one backhaul safe for the batch runtime's determinism contract.
//!
//! 1. **Conservation**: each slot, the granted aggregate never exceeds the
//!    slot's budget, and *equals* it (to f64 rounding) whenever aggregate
//!    demand exceeds it; per-session grants stay within `[0, demand]`.
//! 2. **Order invariance**: permuting the scenario's sessions (together
//!    with any per-session policy weights) permutes results bit-for-bit,
//!    for every policy — including the max-weight family, whose
//!    equal-priority tie groups share pro rata precisely so that no
//!    tie-break depends on session order, and `AlphaFair`, whose water
//!    level comes from permutation-invariant sums.
//! 3. **Chunk-size and serial/parallel invariance**: the fan-out
//!    decomposition never changes results (the same contract
//!    `tests/session_batch.rs` pins for the uncoupled batch).
//! 4. **Unconstrained ≡ uncoupled**: driving a batch through the
//!    contention plane with `UplinkPolicy::Unconstrained` reproduces
//!    `SessionBatch::run` bit-for-bit.
//! 5. **Policy quality**: on a heterogeneous contended fleet the
//!    Lyapunov-natural `MaxWeightBacklog` keeps every tenant stable where
//!    backlog-blind `ProportionalShare` diverges, with an order-of-
//!    magnitude margin in p99 backlog.
//! 6. **Policy equivalences**: `WeightedMaxWeight` with uniform weights ≡
//!    `MaxWeightBacklog` bit-for-bit end to end, and `AlphaFair(α=1)`
//!    matches `ProportionalShare` behaviorally on the fixed-rate
//!    8-tenant fleet.
//! 7. **Edge cases**: zero-budget slots grant exactly `+0.0` everywhere,
//!    keep conservation/contention accounting honest, and leave the
//!    latency tracker consistent.

use proptest::prelude::*;

use arvis::core::experiment::{ExperimentConfig, ExperimentResult, ServiceSpec};
use arvis::core::scenario::{ControllerSpec, Scenario, SessionSpec};
use arvis::core::session::SessionBatch;
use arvis::core::uplink::{BudgetProfile, SharedUplink, UplinkPolicy, UplinkSpec};
use arvis::quality::DepthProfile;
use arvis::sim::rng::seeded;
use rand::Rng as _;

/// Every policy, parameterized for an `n`-session scenario (the weighted
/// policy needs one weight per session; weights deliberately include
/// duplicates so tie groups mix weight classes).
fn policies(n: usize) -> Vec<UplinkPolicy> {
    vec![
        UplinkPolicy::Unconstrained,
        UplinkPolicy::ProportionalShare,
        UplinkPolicy::MaxWeightBacklog,
        UplinkPolicy::WeightedMaxWeight {
            weights: (0..n).map(|i| 1.0 + (i % 3) as f64).collect(),
        },
        UplinkPolicy::AlphaFair { alpha: 1.0 },
        UplinkPolicy::AlphaFair { alpha: 2.0 },
        UplinkPolicy::AlphaFair {
            alpha: f64::INFINITY,
        },
    ]
}

/// The constrained subset of [`policies`] (everything that can actually
/// bind a budget).
fn constrained_policies(n: usize) -> Vec<UplinkPolicy> {
    policies(n)
        .into_iter()
        .filter(|p| !matches!(p, UplinkPolicy::Unconstrained))
        .collect()
}

/// A policy whose per-session parameters follow a session permutation:
/// `perm[k]` is the original index of the session now at position `k`.
fn permuted_policy(policy: &UplinkPolicy, perm: &[usize]) -> UplinkPolicy {
    match policy {
        UplinkPolicy::WeightedMaxWeight { weights } => UplinkPolicy::WeightedMaxWeight {
            weights: perm.iter().map(|&i| weights[i]).collect(),
        },
        other => other.clone(),
    }
}

fn profile() -> DepthProfile {
    DepthProfile::from_parts(
        5,
        vec![100.0, 400.0, 1600.0, 6400.0, 25600.0, 102400.0],
        vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
    )
}

/// A heterogeneous scenario: per-session controller kind, service model
/// and seed all vary with the session index and the drawn seeds.
fn heterogeneous_scenario(seeds: &[u64], slots: u64) -> Scenario {
    let base = ExperimentConfig::new(profile(), 2_000.0, slots).with_controller_v(1e7);
    let mut scenario = Scenario::new(slots);
    for (i, &seed) in seeds.iter().enumerate() {
        let controller = match i % 4 {
            0 => ControllerSpec::Proposed {
                v: 1e6 * (i + 1) as f64,
            },
            1 => ControllerSpec::OnlyMax,
            2 => ControllerSpec::Random { seed },
            _ => ControllerSpec::AdaptiveV {
                initial_v: 1e6,
                target_backlog: 20_000.0,
            },
        };
        let mut spec = SessionSpec::from_config(&base, controller);
        spec.seed = seed;
        spec.service = match i % 3 {
            0 => ServiceSpec::Constant(1_200.0 + 600.0 * i as f64),
            1 => ServiceSpec::Jittered {
                rate: 1_800.0 + 300.0 * i as f64,
                sigma: 0.2,
            },
            _ => ServiceSpec::DutyCycled {
                high: 3_500.0,
                low: 600.0,
                high_slots: 12,
                low_slots: 6,
            },
        };
        scenario.sessions.push(spec);
    }
    scenario
}

/// The PR-3 fixed-rate 8-tenant fleet: 4 heavy tenants (2500 points/slot)
/// and 4 light (400), each device able to serve 3000/slot on its own —
/// the fleet whose tail the admission policy alone decides.
fn fixed_rate_fleet(slots: u64) -> Scenario {
    let profile = DepthProfile::from_parts(5, vec![400.0, 2_500.0], vec![0.4, 1.0]);
    let base = ExperimentConfig::new(profile, 3_000.0, slots);
    let mut scenario = Scenario::new(slots);
    for i in 0..8usize {
        let depth = if i < 4 { 6 } else { 5 };
        let mut spec = SessionSpec::from_config(&base, ControllerSpec::Fixed { depth });
        spec.seed = 77 + i as u64;
        scenario.sessions.push(spec);
    }
    scenario
}

/// Bitwise equality of the per-slot series and headline metrics of two
/// full-trace results.
fn assert_bit_identical(a: &ExperimentResult, b: &ExperimentResult) -> Result<(), TestCaseError> {
    prop_assert_eq!(&a.controller, &b.controller);
    for (sa, sb) in [
        (&a.backlog, &b.backlog),
        (&a.depth, &b.depth),
        (&a.quality, &b.quality),
        (&a.arrivals, &b.arrivals),
        (&a.service, &b.service),
    ] {
        prop_assert_eq!(sa.len(), sb.len());
        for (va, vb) in sa.values().iter().zip(sb.values()) {
            prop_assert_eq!(va.to_bits(), vb.to_bits());
        }
    }
    prop_assert_eq!(a.mean_quality.to_bits(), b.mean_quality.to_bits());
    prop_assert_eq!(a.mean_backlog.to_bits(), b.mean_backlog.to_bits());
    prop_assert_eq!(
        a.frame_latency.mean.to_bits(),
        b.frame_latency.mean.to_bits()
    );
    prop_assert_eq!(a.frame_latency.count, b.frame_latency.count);
    prop_assert_eq!(a.dropped_total.to_bits(), b.dropped_total.to_bits());
    Ok(())
}

/// Runs a scenario through the contention plane with full traces.
fn run_contended_traces(
    scenario: &Scenario,
    spec: UplinkSpec,
    chunk: usize,
) -> Vec<ExperimentResult> {
    let mut batch = SessionBatch::full_trace(scenario).with_chunk_size(chunk);
    let mut uplink = SharedUplink::new(spec);
    uplink.run(&mut batch);
    batch.into_results()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Invariant 4: `Unconstrained` through the contention plane ≡ the
    /// plain uncoupled batch, bit for bit.
    #[test]
    fn unconstrained_uplink_equals_uncoupled_batch(
        seeds in prop::collection::vec(0u64..10_000, 1..7),
        slots in 20u64..120,
    ) {
        let scenario = heterogeneous_scenario(&seeds, slots);

        let mut plain = SessionBatch::full_trace(&scenario);
        plain.run();
        let plain = plain.into_results();

        let coupled = run_contended_traces(&scenario, UplinkSpec::unconstrained(), 64);

        prop_assert_eq!(plain.len(), coupled.len());
        for (a, b) in plain.iter().zip(&coupled) {
            assert_bit_identical(a, b)?;
        }
    }

    /// Invariant 1: per-slot conservation under a binding budget, for
    /// every constrained policy, checked at every slot of a run.
    #[test]
    fn granted_service_conserves_the_budget(
        seeds in prop::collection::vec(0u64..10_000, 2..8),
        slots in 20u64..80,
        budget_frac in 0.1f64..0.9,
    ) {
        let scenario = heterogeneous_scenario(&seeds, slots);
        // Budget strictly below the mean aggregate demand, so some slot
        // of every run must contend (constant-rate sessions contend every
        // slot; stochastic ones whenever they swing above the mean).
        let mean_demand: f64 = scenario.sessions.iter().map(|s| s.service.mean_rate()).sum();
        let budget = budget_frac * mean_demand;

        for policy in constrained_policies(seeds.len()) {
            let mut batch = SessionBatch::summary_only(&scenario);
            let mut uplink = SharedUplink::new(UplinkSpec::new(budget, policy.clone()));
            let mut contended_slots = 0u64;
            while !batch.is_done() {
                let stats = uplink.step_slot(&mut batch);
                prop_assert!(
                    stats.granted <= budget * (1.0 + 1e-9),
                    "{}: slot {} granted {} > budget {}",
                    policy.name(), stats.slot, stats.granted, budget
                );
                prop_assert!(stats.granted <= stats.demand * (1.0 + 1e-9));
                if stats.contended {
                    contended_slots += 1;
                    prop_assert!(
                        (stats.granted - budget).abs() <= budget.abs().max(1.0) * 1e-9,
                        "{}: contended slot {} must exhaust the budget: granted {} vs {}",
                        policy.name(), stats.slot, stats.granted, budget
                    );
                }
                for &g in uplink.last_grants() {
                    prop_assert!(g >= 0.0);
                }
            }
            prop_assert!(contended_slots > 0, "budget never bound — scenario too weak");
        }
    }

    /// Invariant 1 under a *time-varying* budget: the per-slot budget the
    /// driver reports tracks the profile, conservation holds against that
    /// slot's budget, and contended slots exhaust it — for every
    /// constrained policy.
    #[test]
    fn diurnal_budget_conserves_per_slot(
        seeds in prop::collection::vec(0u64..10_000, 2..6),
        slots in 40u64..100,
    ) {
        let scenario = heterogeneous_scenario(&seeds, slots);
        let mean_demand: f64 = scenario.sessions.iter().map(|s| s.service.mean_rate()).sum();
        let budget = BudgetProfile::Diurnal {
            mean: 0.6 * mean_demand,
            amplitude: 0.4 * mean_demand,
            period: 25,
            phase: 0.0,
        };

        for policy in constrained_policies(seeds.len()) {
            let mut batch = SessionBatch::summary_only(&scenario);
            let mut uplink =
                SharedUplink::new(UplinkSpec::with_profile(budget.clone(), policy.clone()));
            let mut budgets_seen: Vec<f64> = Vec::new();
            while !batch.is_done() {
                let stats = uplink.step_slot(&mut batch);
                prop_assert_eq!(
                    stats.budget.to_bits(),
                    budget.budget_at(stats.slot).to_bits(),
                    "driver must evaluate the profile at the stepped slot"
                );
                prop_assert!(stats.granted <= stats.budget * (1.0 + 1e-9));
                if stats.contended {
                    prop_assert!(
                        (stats.granted - stats.budget).abs()
                            <= stats.budget.abs().max(1.0) * 1e-9,
                        "{}: contended slot {} must exhaust its budget",
                        policy.name(), stats.slot
                    );
                }
                budgets_seen.push(stats.budget);
            }
            budgets_seen.dedup();
            prop_assert!(budgets_seen.len() > 2, "budget never varied");
            let summary = uplink.summary();
            prop_assert!(summary.mean_budget.is_finite());
            prop_assert!(summary.utilization() <= 1.0 + 1e-9);
        }
    }

    /// Invariant 1 at the allocator level: grants bounded by demands, and
    /// permutation of the sessions (and weights) permutes the grants
    /// bit-for-bit (including duplicate backlogs/demands, the tie-group
    /// case).
    #[test]
    fn allocate_is_order_invariant_bitwise(
        seed in 0u64..100_000,
        n in 1usize..24,
        budget in 0.0f64..20_000.0,
    ) {
        let mut rng = seeded(seed);
        // Draw from a coarse grid so duplicate backlogs and demands (tie
        // groups) occur often.
        let backlogs: Vec<f64> = (0..n).map(|_| 500.0 * f64::from(rng.gen_range(0u32..8))).collect();
        let demands: Vec<f64> = (0..n).map(|_| 250.0 * f64::from(rng.gen_range(0u32..9))).collect();
        // A deterministic permutation.
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0usize..i + 1);
            perm.swap(i, j);
        }
        let p_backlogs: Vec<f64> = perm.iter().map(|&i| backlogs[i]).collect();
        let p_demands: Vec<f64> = perm.iter().map(|&i| demands[i]).collect();

        for policy in policies(n) {
            let p_policy = permuted_policy(&policy, &perm);
            let mut grants = Vec::new();
            let mut p_grants = Vec::new();
            policy.allocate(budget, &backlogs, &demands, &mut grants);
            p_policy.allocate(budget, &p_backlogs, &p_demands, &mut p_grants);
            for (k, &i) in perm.iter().enumerate() {
                prop_assert_eq!(
                    grants[i].to_bits(),
                    p_grants[k].to_bits(),
                    "{} not order-invariant at session {}", policy.name(), i
                );
            }
            for (g, d) in grants.iter().zip(&demands) {
                prop_assert!(*g >= 0.0 && *g <= d * (1.0 + 1e-12));
            }
        }
    }

    /// Invariants 2 + 3: contended end-to-end results are bit-identical
    /// under session reversal (weights reversed in step) and chunk-size
    /// changes, for every policy.
    #[test]
    fn contended_runs_are_order_and_chunk_invariant(
        seeds in prop::collection::vec(0u64..10_000, 2..6),
        slots in 20u64..70,
    ) {
        let forward = heterogeneous_scenario(&seeds, slots);
        let mut reversed = forward.clone();
        reversed.sessions.reverse();
        let reversal: Vec<usize> = (0..seeds.len()).rev().collect();
        // A budget around half the constant-rate sum: binding on many slots.
        let budget: f64 = 0.5
            * forward
                .sessions
                .iter()
                .map(|s| match s.service {
                    ServiceSpec::Constant(r) => r,
                    ServiceSpec::Jittered { rate, .. } => rate,
                    ServiceSpec::DutyCycled { high, low, .. } => 0.5 * (high + low),
                })
                .sum::<f64>();

        for policy in policies(seeds.len()) {
            let fwd_spec = UplinkSpec::new(budget, policy.clone());
            let rev_spec = UplinkSpec::new(budget, permuted_policy(&policy, &reversal));
            let fwd = run_contended_traces(&forward, fwd_spec, 3);
            let mut rev = run_contended_traces(&reversed, rev_spec, 64);
            rev.reverse();
            prop_assert_eq!(fwd.len(), rev.len());
            for (a, b) in fwd.iter().zip(&rev) {
                assert_bit_identical(a, b)?;
            }
        }
    }

    /// Invariant 3: forced-serial execution matches the parallel fan-out
    /// bit for bit (the `--no-default-features` CI pass re-runs this whole
    /// file with threading compiled out).
    #[test]
    fn contended_runs_match_under_forced_serial(
        seeds in prop::collection::vec(0u64..10_000, 2..5),
        slots in 20u64..50,
    ) {
        let scenario = heterogeneous_scenario(&seeds, slots);
        let budget = 4_000.0;
        for policy in policies(seeds.len()) {
            let spec = UplinkSpec::new(budget, policy);
            let par = run_contended_traces(&scenario, spec.clone(), 2);
            let ser = arvis_par::serial_scope(|| run_contended_traces(&scenario, spec, 2));
            for (a, b) in par.iter().zip(&ser) {
                assert_bit_identical(a, b)?;
            }
        }
    }

    /// Invariant 6: uniform weights make `WeightedMaxWeight` reproduce
    /// `MaxWeightBacklog` bit-for-bit, end to end, on contended
    /// heterogeneous fleets.
    #[test]
    fn uniform_weighted_max_weight_equals_unweighted_end_to_end(
        seeds in prop::collection::vec(0u64..10_000, 2..6),
        slots in 20u64..60,
    ) {
        let scenario = heterogeneous_scenario(&seeds, slots);
        let budget = 0.4
            * scenario.sessions.iter().map(|s| s.service.mean_rate()).sum::<f64>();
        let plain = run_contended_traces(
            &scenario,
            UplinkSpec::new(budget, UplinkPolicy::MaxWeightBacklog),
            64,
        );
        let weighted = run_contended_traces(
            &scenario,
            UplinkSpec::new(
                budget,
                UplinkPolicy::WeightedMaxWeight {
                    weights: vec![1.0; seeds.len()],
                },
            ),
            64,
        );
        for (a, b) in plain.iter().zip(&weighted) {
            assert_bit_identical(a, b)?;
        }
    }
}

/// Invariant 5 (acceptance criterion): on a heterogeneous contended fleet,
/// `MaxWeightBacklog` keeps every tenant stable while `ProportionalShare`
/// — which reserves bandwidth for idle tenants pro rata to demand — lets
/// the loaded tenants diverge. Asserted with an order-of-magnitude margin
/// on the worst per-session p99 backlog (exact, from full traces).
#[test]
fn max_weight_cuts_p99_backlog_versus_proportional_share() {
    // The paper's 800-slot horizon: long enough for a ~550k-point backlog
    // ramp under proportional share, short enough that the normalized
    // tail-slope stability detector (slope/mean ≈ 1/t for linear growth)
    // stays clearly above its 1e-3 threshold.
    let scenario = fixed_rate_fleet(800);
    // Aggregate demand 8 × 3000 = 24000; aggregate *load* only 11600, so a
    // budget of 14400 (60 %) is ample — if, and only if, it goes where the
    // queues are. Proportional share grants every tenant 1800/slot
    // regardless of need: the heavy tenants (2500/slot) diverge.
    let budget = 14_400.0;

    let p99_worst = |policy: UplinkPolicy| -> (f64, usize) {
        let results = run_contended_traces_plain(&scenario, UplinkSpec::new(budget, policy));
        let worst = results
            .iter()
            .map(|r| r.backlog_tail.p99)
            .fold(0.0f64, f64::max);
        let stable = results.iter().filter(|r| r.stable).count();
        (worst, stable)
    };

    let (mw_p99, mw_stable) = p99_worst(UplinkPolicy::MaxWeightBacklog);
    let (ps_p99, ps_stable) = p99_worst(UplinkPolicy::ProportionalShare);

    assert_eq!(mw_stable, 8, "max-weight keeps every tenant stable");
    assert!(
        ps_stable < 8,
        "proportional share must lose tenants on this load"
    );
    // Margin: an order of magnitude, with ~20x headroom — under
    // proportional share the heavy tenants grow ≈ 700 points/slot over
    // the 800-slot horizon (measured worst p99 ≈ 557,600) while
    // max-weight holds the worst p99 at one slot's arrival burst (2,500).
    assert!(
        ps_p99 > 10.0 * mw_p99,
        "expected ≥10x margin: proportional p99 {ps_p99} vs max-weight p99 {mw_p99}"
    );
    println!(
        "worst per-session p99 backlog: proportional_share {ps_p99:.0}, \
         max_weight_backlog {mw_p99:.0} ({:.1}x), stable {ps_stable}/8 vs {mw_stable}/8",
        ps_p99 / mw_p99
    );
}

/// Invariant 6: on the fixed-rate 8-tenant fleet, `AlphaFair(α=1)` is
/// proportional fairness — behaviorally the same backlog-blind pro-rata
/// split as `ProportionalShare` (same stability verdicts, same tails to
/// rounding), while `α = ∞` (max-min) serves the light tenants' small
/// demands in full and leaves strictly more budget to the heavy ones.
#[test]
fn alpha_fair_family_brackets_proportional_share_on_the_fleet() {
    let scenario = fixed_rate_fleet(800);
    let budget = 14_400.0;

    let run = |policy: UplinkPolicy| -> Vec<ExperimentResult> {
        run_contended_traces_plain(&scenario, UplinkSpec::new(budget, policy))
    };
    let ps = run(UplinkPolicy::ProportionalShare);
    let af1 = run(UplinkPolicy::AlphaFair { alpha: 1.0 });
    let mm = run(UplinkPolicy::AlphaFair {
        alpha: f64::INFINITY,
    });

    for (a, b) in ps.iter().zip(&af1) {
        assert_eq!(a.stable, b.stable, "α=1 must match PS stability verdicts");
        let rel =
            (a.backlog_tail.p99 - b.backlog_tail.p99).abs() / a.backlog_tail.p99.abs().max(1.0);
        assert!(
            rel < 1e-9,
            "α=1 p99 {} vs PS p99 {}",
            b.backlog_tail.p99,
            a.backlog_tail.p99
        );
    }

    // Max-min: every tenant's demand is 3000 (the device rate), so equal
    // levels give 14400/8 = 1800 each — on *this* fleet the water level
    // never caps, and max-min degenerates to the same 1800/tenant split.
    // The heavy tenants (load 2500) still diverge: α-fairness of any
    // order is backlog-blind.
    let mm_stable = mm.iter().filter(|r| r.stable).count();
    assert_eq!(
        mm_stable,
        ps.iter().filter(|r| r.stable).count(),
        "backlog-blind fairness cannot rescue the heavy tenants"
    );
}

/// Invariant 7: a zero-budget slot (total outage) grants exactly zero,
/// counts as contended, conserves work, and the latency trackers pick
/// back up when the budget returns.
#[test]
fn zero_budget_slots_are_exact_and_recoverable() {
    let scenario = fixed_rate_fleet(60);
    // 20-slot outage in the middle of the run.
    let budget = BudgetProfile::PiecewiseSteps(vec![
        arvis::core::uplink::BudgetStep {
            start: 0,
            budget: 14_400.0,
        },
        arvis::core::uplink::BudgetStep {
            start: 20,
            budget: 0.0,
        },
        arvis::core::uplink::BudgetStep {
            start: 40,
            budget: 14_400.0,
        },
    ]);
    for policy in constrained_policies(8) {
        let mut batch = SessionBatch::full_trace(&scenario);
        let mut uplink =
            SharedUplink::new(UplinkSpec::with_profile(budget.clone(), policy.clone()));
        while !batch.is_done() {
            let stats = uplink.step_slot(&mut batch);
            if (20..40).contains(&stats.slot) {
                assert_eq!(stats.budget, 0.0);
                assert!(stats.contended, "positive demand vs zero budget");
                assert_eq!(
                    stats.granted.to_bits(),
                    0.0f64.to_bits(),
                    "{}: outage slot {} granted {}",
                    policy.name(),
                    stats.slot,
                    stats.granted
                );
                for &g in uplink.last_grants() {
                    assert_eq!(g.to_bits(), 0.0f64.to_bits(), "{}", policy.name());
                }
            }
        }
        let summary = uplink.summary();
        assert_eq!(summary.slots, 60);
        assert!(summary.contended_slots >= 20, "{}", policy.name());
        let results = batch.into_results();
        for r in &results {
            // Work conservation across the outage: arrivals either
            // served, dropped, or still queued; latency accounting sane.
            assert!(r.frame_latency.count > 0, "{}", policy.name());
            assert!(r.frame_latency.mean.is_finite());
            assert!(r
                .backlog
                .values()
                .iter()
                .all(|q| q.is_finite() && *q >= 0.0));
            let served: f64 = r.service.values().iter().sum::<f64>();
            assert!(served.is_finite() && served >= 0.0);
        }
    }
}

/// Non-proptest variant of the trace runner (outside the macro).
fn run_contended_traces_plain(scenario: &Scenario, spec: UplinkSpec) -> Vec<ExperimentResult> {
    let mut batch = SessionBatch::full_trace(scenario);
    let mut uplink = SharedUplink::new(spec);
    uplink.run(&mut batch);
    batch.into_results()
}

/// The driver refuses to mix phase-one polling with one-phase stepping —
/// the guard that keeps the two-phase protocol honest.
#[test]
#[should_panic(expected = "complete it with step_slot_granted")]
fn polled_slot_cannot_be_stepped_unscaled() {
    let base = ExperimentConfig::new(profile(), 2_000.0, 10);
    let scenario = Scenario::replicated(&base, ControllerSpec::OnlyMin, 2);
    let mut batch = SessionBatch::summary_only(&scenario);
    let mut demands = Vec::new();
    batch.fill_demands(&mut demands);
    batch.step_slot(); // must panic: the slot's demands are already drawn
}
