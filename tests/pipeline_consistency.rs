//! Cross-crate consistency: the same frame measured through different paths
//! (voxel grid, octree, occupancy codec, PLY round-trip) must agree.

use arvis::octree::occupancy::{decode_occupancy, encode_occupancy};
use arvis::octree::{LodMode, Octree, OctreeConfig};
use arvis::pointcloud::ply::{read_ply, write_ply, Encoding};
use arvis::pointcloud::synth::{voxelize_to_grid, SubjectProfile, SynthBodyConfig};
use arvis::pointcloud::voxel::VoxelGrid;
use arvis::quality::profile::DepthProfile;

fn frame() -> arvis::pointcloud::PointCloud {
    SynthBodyConfig::new(SubjectProfile::Soldier)
        .with_target_points(20_000)
        .with_seed(5)
        .generate()
}

#[test]
fn octree_occupancy_equals_voxel_grid_occupancy() {
    // Counting occupied cells with the octree and with the flat voxel grid
    // must agree level by level (they quantize over the same bounding cube).
    let cloud = frame();
    let cube = cloud.aabb().unwrap().bounding_cube();
    let tree = Octree::build(&cloud, &OctreeConfig::with_max_depth(6).in_cube(cube)).unwrap();
    for depth in 1..=6u8 {
        let grid = VoxelGrid::from_cloud_in_cube(&cloud, &cube, 1 << depth).unwrap();
        assert_eq!(
            tree.occupied_at_depth(depth),
            grid.occupied(),
            "depth {depth}: octree and voxel grid disagree"
        );
    }
}

#[test]
fn occupancy_codec_reconstructs_lod_geometry() {
    let cloud = frame();
    let tree = Octree::build(&cloud, &OctreeConfig::with_max_depth(5)).unwrap();
    let stream = encode_occupancy(&tree, 5);
    let decoded = decode_occupancy(stream, tree.cube()).unwrap();
    let lod = tree.extract_lod(5, LodMode::VoxelCenters);
    assert_eq!(decoded.len(), lod.cloud.len());
    // Every decoded center must be (numerically) one of the LoD centers.
    let kd = arvis::pointcloud::kdtree::KdTree::build(lod.cloud.positions());
    for p in decoded.positions() {
        let (_, d2) = kd.nearest(p).unwrap();
        assert!(d2 < 1e-18, "decoded voxel center off by {}", d2.sqrt());
    }
}

#[test]
fn profile_matches_octree_direct_measurement() {
    let cloud = frame();
    let profile = DepthProfile::measure(&cloud, 3..=6).unwrap();
    let tree = Octree::build(&cloud, &OctreeConfig::with_max_depth(6)).unwrap();
    for d in 3..=6u8 {
        assert_eq!(profile.arrival(d), tree.occupied_at_depth(d) as f64);
    }
}

#[test]
fn ply_roundtrip_preserves_profile() {
    // Writing a frame to the 8i PLY format and reading it back must not
    // change the scheduler-visible statistics.
    let voxelized = voxelize_to_grid(&frame(), 8);
    let mut bytes = Vec::new();
    write_ply(&mut bytes, &voxelized, Encoding::BinaryLittleEndian).unwrap();
    let reread = read_ply(&bytes[..]).unwrap();

    let before = DepthProfile::measure(&voxelized, 3..=6).unwrap();
    let after = DepthProfile::measure(&reread, 3..=6).unwrap();
    for d in 3..=6u8 {
        assert_eq!(
            before.arrival(d),
            after.arrival(d),
            "arrival changed at {d}"
        );
        assert!((before.quality(d) - after.quality(d)).abs() < 1e-12);
    }
}

#[test]
fn voxelized_export_bounds_and_dedup() {
    let v = voxelize_to_grid(&frame(), 10);
    // All coordinates integral in [0, 1024).
    for p in v.iter() {
        for c in [p.position.x, p.position.y, p.position.z] {
            assert_eq!(c.fract(), 0.0);
            assert!((0.0..1024.0).contains(&c));
        }
    }
    // No duplicate voxels.
    let mut keys: Vec<(i64, i64, i64)> = v
        .positions()
        .map(|p| (p.x as i64, p.y as i64, p.z as i64))
        .collect();
    let n = keys.len();
    keys.sort_unstable();
    keys.dedup();
    assert_eq!(keys.len(), n);
}
