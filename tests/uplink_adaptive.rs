//! End-to-end tests of uplink-aware `V` adaptation
//! (`SessionSpec::uplink_v_adapt` → `arvis_lyapunov::adaptive::GrantRatioV`)
//! on the diurnal-backhaul scenario family:
//!
//! 1. **Acceptance criterion**: on the fixed-rate 8-tenant fleet under a
//!    `Diurnal` budget averaging 60% of aggregate demand, adaptation keeps
//!    every tenant's post-warmup p99 backlog bounded (no divergence) under
//!    both `WeightedMaxWeight` and `AlphaFair`, and cuts the worst p99
//!    well below the fixed-`V` plateau (headline numbers in ROADMAP).
//! 2. **Determinism**: the adaptation is per-session state driven by
//!    per-session signals, so contended runs with adapters stay
//!    bit-identical under session reversal, chunk-size changes and forced
//!    serial execution (the `--no-default-features` CI pass re-runs this
//!    file with threading compiled out).
//! 3. **Scoping**: adaptation never engages outside the contention plane —
//!    an uncoupled `SessionBatch::run` with the knob set matches one
//!    without it bit-for-bit.

use arvis::core::experiment::{ExperimentConfig, ExperimentResult};
use arvis::core::scenario::{ControllerSpec, Scenario, SessionSpec};
use arvis::core::session::SessionBatch;
use arvis::core::uplink::{
    run_contended, BudgetProfile, SharedUplink, UplinkPolicy, UplinkSpec, UplinkVAdaptSpec,
};
use arvis::quality::DepthProfile;

fn profile() -> DepthProfile {
    DepthProfile::from_parts(
        5,
        vec![100.0, 400.0, 1600.0, 6400.0, 25600.0, 102400.0],
        vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
    )
}

/// The fixed-rate 8-tenant fleet of the acceptance criterion: constant
/// 2000 points/slot devices running the proposed scheduler at `V = 1e7`,
/// optionally with uplink-aware `V` adaptation.
fn proposed_fleet(slots: u64, adapt: Option<UplinkVAdaptSpec>) -> Scenario {
    let mut cfg = ExperimentConfig::new(profile(), 2_000.0, slots).with_controller_v(1e7);
    cfg.warmup = slots / 4;
    let mut scenario = Scenario::new(slots);
    for i in 0..8usize {
        let mut spec = SessionSpec::from_config(
            &cfg,
            ControllerSpec::Proposed {
                v: cfg.controller_v,
            },
        );
        spec.seed = 1_000 + i as u64;
        spec.uplink_v_adapt = adapt;
        scenario.sessions.push(spec);
    }
    scenario
}

/// The acceptance scenario's budget: a diurnal backhaul averaging 60% of
/// the fleet's 8 × 2000 aggregate demand, peaking just above it (so `V`
/// can recover) and dipping to 15% in the trough.
fn diurnal_budget() -> BudgetProfile {
    BudgetProfile::Diurnal {
        mean: 9_600.0,
        amplitude: 7_200.0,
        period: 200,
        phase: 0.0,
    }
}

fn acceptance_policies() -> Vec<UplinkPolicy> {
    vec![
        UplinkPolicy::WeightedMaxWeight {
            weights: (0..8).map(|i| 1.0 + (i % 4) as f64).collect(),
        },
        UplinkPolicy::AlphaFair { alpha: 2.0 },
    ]
}

fn worst_p99(scenario: &Scenario, spec: UplinkSpec) -> (f64, usize) {
    let run = run_contended(&scenario.clone().with_uplink(spec));
    let worst = run
        .summaries
        .iter()
        .map(|s| s.backlog_p99)
        .fold(0.0f64, f64::max);
    let stable = run.summaries.iter().filter(|s| s.stable).count();
    (worst, stable)
}

/// Acceptance criterion: under the 60%-mean diurnal budget, uplink-aware
/// `V` adaptation keeps all 8 tenants bounded under both new policies and
/// cuts the worst post-warmup p99 backlog versus the fixed-`V` fleet.
#[test]
fn adaptive_v_bounds_the_fleet_under_diurnal_scarcity() {
    let slots = 1_600;
    let fixed = proposed_fleet(slots, None);
    let adaptive = proposed_fleet(slots, Some(UplinkVAdaptSpec::default()));

    for policy in acceptance_policies() {
        let spec = UplinkSpec::with_profile(diurnal_budget(), policy.clone());
        let (fixed_p99, fixed_stable) = worst_p99(&fixed, spec.clone());
        let (adapt_p99, adapt_stable) = worst_p99(&adaptive, spec);

        assert_eq!(
            adapt_stable,
            8,
            "{}: every adaptive tenant must be stable",
            policy.name()
        );
        assert!(
            adapt_p99.is_finite() && adapt_p99 < 60_000.0,
            "{}: adaptive worst p99 {adapt_p99} must stay bounded",
            policy.name()
        );
        assert!(
            adapt_p99 < 0.5 * fixed_p99,
            "{}: adaptation must cut the fixed-V plateau: {adapt_p99} vs {fixed_p99}",
            policy.name()
        );
        println!(
            "{}: worst p99 backlog fixed-V {fixed_p99:.0} ({fixed_stable}/8 stable) \
             -> adaptive {adapt_p99:.0} ({adapt_stable}/8 stable), {:.1}x lower",
            policy.name(),
            fixed_p99 / adapt_p99
        );
    }
}

/// Bitwise equality of two full-trace results.
fn assert_bits(a: &ExperimentResult, b: &ExperimentResult, what: &str) {
    assert_eq!(a.controller, b.controller, "{what}");
    for (sa, sb) in [
        (&a.backlog, &b.backlog),
        (&a.depth, &b.depth),
        (&a.quality, &b.quality),
        (&a.arrivals, &b.arrivals),
        (&a.service, &b.service),
    ] {
        assert_eq!(sa.len(), sb.len(), "{what}");
        for (va, vb) in sa.values().iter().zip(sb.values()) {
            assert_eq!(va.to_bits(), vb.to_bits(), "{what}");
        }
    }
    assert_eq!(a.mean_quality.to_bits(), b.mean_quality.to_bits(), "{what}");
    assert_eq!(
        a.dropped_total.to_bits(),
        b.dropped_total.to_bits(),
        "{what}"
    );
}

fn run_traces(scenario: &Scenario, spec: UplinkSpec, chunk: usize) -> Vec<ExperimentResult> {
    let mut batch = SessionBatch::full_trace(scenario).with_chunk_size(chunk);
    let mut uplink = SharedUplink::new(spec);
    uplink.run(&mut batch);
    batch.into_results()
}

/// Determinism: adaptation state is per-session, so the adaptive contended
/// run is bit-identical under session reversal (weights reversed in step),
/// chunk-size changes, and forced-serial execution.
#[test]
fn adaptive_runs_are_order_chunk_and_serial_invariant() {
    let slots = 300;
    let forward = proposed_fleet(slots, Some(UplinkVAdaptSpec::default()));
    let mut reversed = forward.clone();
    reversed.sessions.reverse();

    for policy in acceptance_policies() {
        let rev_policy = match &policy {
            UplinkPolicy::WeightedMaxWeight { weights } => UplinkPolicy::WeightedMaxWeight {
                weights: weights.iter().rev().copied().collect(),
            },
            other => other.clone(),
        };
        let fwd_spec = UplinkSpec::with_profile(diurnal_budget(), policy.clone());
        let rev_spec = UplinkSpec::with_profile(diurnal_budget(), rev_policy);

        let fwd = run_traces(&forward, fwd_spec.clone(), 3);
        let mut rev = run_traces(&reversed, rev_spec, 64);
        rev.reverse();
        assert_eq!(fwd.len(), rev.len());
        for (a, b) in fwd.iter().zip(&rev) {
            assert_bits(a, b, policy.name());
        }

        let ser = arvis_par::serial_scope(|| run_traces(&forward, fwd_spec, 3));
        for (a, b) in fwd.iter().zip(&ser) {
            assert_bits(a, b, policy.name());
        }
    }
}

/// Scoping: the knob is inert outside the contention plane — an uncoupled
/// batch run with adapters configured matches one without, bit-for-bit
/// (`SessionBatch::run` never observes grant ratios).
#[test]
fn adaptation_is_inert_without_contention() {
    let slots = 400;
    let plain = proposed_fleet(slots, None);
    let with_knob = proposed_fleet(slots, Some(UplinkVAdaptSpec::default()));

    let mut a = SessionBatch::full_trace(&plain);
    a.run();
    let a = a.into_results();
    let mut b = SessionBatch::full_trace(&with_knob);
    b.run();
    let b = b.into_results();
    for (x, y) in a.iter().zip(&b) {
        assert_bits(x, y, "uncoupled run");
    }
}

/// The batch rejects the knob on controllers it cannot act on.
#[test]
#[should_panic(expected = "uplink_v_adapt requires a Proposed controller")]
fn adaptation_requires_a_proposed_controller() {
    let cfg = ExperimentConfig::new(profile(), 2_000.0, 10);
    let spec = SessionSpec::from_config(&cfg, ControllerSpec::OnlyMax)
        .with_uplink_v_adapt(UplinkVAdaptSpec::default());
    let scenario = Scenario::new(10).with_session(spec);
    let _ = SessionBatch::summary_only(&scenario);
}
