//! Chaos conformance: the deterministic fault plane end to end.
//!
//! 1. **Faulted replay** — a schema-2 scenario exercising brownouts, warm
//!    restarts, lossy grants and a clamping degradation guard replays
//!    bit-identically from its own JSON file, including every fault
//!    aggregate in the uplink summary and the per-session downtime.
//! 2. **Empty plan ≡ fault-free** — a scenario declaring an *empty*
//!    `FaultPlan` runs bitwise identically to the same scenario with no
//!    plan at all: `fault: None` is the fault-free code path, and an empty
//!    plan never builds a plane.
//! 3. **ColdRestart ≡ fresh session** — the post-restart trajectory of a
//!    cold-restarted session is bitwise the trajectory of a brand-new
//!    session run over the residual horizon (the local-clock contract).
//! 4. **Conservation** — `granted ≤ budget` on every slot under a mixed
//!    fault plan (outage + brownout + crashes + loss + guard), with outage
//!    slots granting exactly zero.
//! 5. **Chaos soak** — hundreds of seeded random fault plans over random
//!    small fleets: never a panic, every summary field finite, and the
//!    scenario file round-trip stays byte-exact.
//! 6. **Degenerate fleets** — zero sessions and zero slots survive faults
//!    with sane all-zero summaries (satellite of the robustness PR).
//!
//! This suite runs under both default and `--no-default-features` builds
//! (see CI's serial pass): fault determinism must not depend on the
//! parallel fan-out.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use arvis::core::experiment::{ExperimentConfig, ServiceSpec};
use arvis::core::fault::{CrashPolicy, DegradationGuardSpec, FaultEvent, FaultPlan, ShedMode};
use arvis::core::scenario::{ControllerSpec, Scenario, SessionSpec};
use arvis::core::session::{Liveness, SessionBatch};
use arvis::core::telemetry::SessionSummary;
use arvis::core::uplink::{run_contended, ContendedRun, UplinkPolicy, UplinkSpec};
use arvis::quality::DepthProfile;
use arvis::sim::rng::child_seed;
use arvis_bench::presets::scenario_preset;

fn profile() -> DepthProfile {
    DepthProfile::from_parts(
        5,
        vec![100.0, 400.0, 1600.0, 6400.0, 25600.0, 102400.0],
        vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
    )
}

/// A small heterogeneous fleet of proposed controllers with jittered
/// service (so crash/restart must replay seeded processes, not constants).
fn fleet(sessions: usize, slots: u64, seed: u64) -> Scenario {
    let cfg = ExperimentConfig::new(profile(), 2_000.0, slots).with_controller_v(1e7);
    let mut scenario = Scenario::new(slots);
    for i in 0..sessions {
        let mut spec = SessionSpec::from_config(&cfg, ControllerSpec::Proposed { v: 1e7 });
        spec.service = ServiceSpec::Jittered {
            rate: 1_400.0 + 350.0 * i as f64,
            sigma: 0.12,
        };
        spec.seed = child_seed(seed, i as u64);
        spec.frame_cap = Some(4_096);
        scenario.sessions.push(spec);
    }
    scenario
}

/// Bitwise equality of two per-session summaries (floats via `to_bits`).
fn assert_summaries_bit_identical(a: &SessionSummary, b: &SessionSummary, what: &str) {
    assert_eq!(a.slots, b.slots, "{what}: slots");
    let bits = [
        ("mean_quality", a.mean_quality, b.mean_quality),
        ("mean_backlog", a.mean_backlog, b.mean_backlog),
        ("backlog_p95", a.backlog_p95, b.backlog_p95),
        ("backlog_p99", a.backlog_p99, b.backlog_p99),
        (
            "frame_latency_mean",
            a.frame_latency_mean,
            b.frame_latency_mean,
        ),
        (
            "frame_latency_p95",
            a.frame_latency_p95,
            b.frame_latency_p95,
        ),
        (
            "frame_latency_p99",
            a.frame_latency_p99,
            b.frame_latency_p99,
        ),
        ("dropped_total", a.dropped_total, b.dropped_total),
        (
            "depth_switch_rate",
            a.depth_switch_rate,
            b.depth_switch_rate,
        ),
    ];
    for (field, x, y) in bits {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: {field} {x} vs {y}");
    }
    assert_eq!(a.frames_completed, b.frames_completed, "{what}: frames");
    assert_eq!(
        a.littles_delay.map(f64::to_bits),
        b.littles_delay.map(f64::to_bits),
        "{what}: littles_delay"
    );
    assert_eq!(a.stable, b.stable, "{what}: stable");
}

/// Bitwise equality of two whole contended runs, fault aggregates included.
fn assert_runs_bit_identical(a: &ContendedRun, b: &ContendedRun, what: &str) {
    assert_eq!(a.summaries.len(), b.summaries.len(), "{what}: sessions");
    for (i, (x, y)) in a.summaries.iter().zip(&b.summaries).enumerate() {
        assert_summaries_bit_identical(x, y, &format!("{what}: session {i}"));
    }
    assert_eq!(a.downtime, b.downtime, "{what}: downtime");
    let (ua, ub) = (&a.uplink, &b.uplink);
    assert_eq!(ua.slots, ub.slots, "{what}: uplink slots");
    assert_eq!(ua.contended_slots, ub.contended_slots, "{what}: contended");
    assert_eq!(ua.shed_slots, ub.shed_slots, "{what}: shed_slots");
    assert_eq!(
        ua.deferred_session_slots, ub.deferred_session_slots,
        "{what}: deferred_session_slots"
    );
    assert_eq!(ua.outage_slots, ub.outage_slots, "{what}: outage_slots");
    assert_eq!(
        ua.down_session_slots, ub.down_session_slots,
        "{what}: down_session_slots"
    );
    let floats = [
        ("mean_budget", ua.mean_budget, ub.mean_budget),
        ("mean_demand", ua.mean_demand, ub.mean_demand),
        ("mean_granted", ua.mean_granted, ub.mean_granted),
        ("mean_backlog", ua.mean_backlog, ub.mean_backlog),
        ("peak_backlog", ua.peak_backlog, ub.peak_backlog),
        ("lost_total", ua.lost_total, ub.lost_total),
    ];
    for (field, x, y) in floats {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: uplink {field} {x} vs {y}"
        );
    }
}

/// A faulted scenario deliberately complementary to the E7 golden:
/// brownout (not outage), warm restart (not cold), a clamping guard with a
/// finite backlog trigger (not a deferring EMA-only one).
fn brownout_scenario() -> Scenario {
    let mut scenario = fleet(5, 600, 0xB40);
    let demand: f64 = scenario
        .sessions
        .iter()
        .map(|s| s.service.mean_rate())
        .sum();
    scenario = scenario.with_uplink(UplinkSpec::new(
        0.8 * demand,
        UplinkPolicy::MaxWeightBacklog,
    ));
    scenario.with_fault(
        FaultPlan::new()
            .with_event(FaultEvent::Brownout {
                start: 150,
                slots: 120,
                factor: 0.35,
            })
            .with_event(FaultEvent::GrantLoss {
                session: 1,
                p: 0.2,
                seed: 11,
            })
            .with_event(FaultEvent::SessionCrash {
                session: 3,
                slot: 200,
                restart_after: Some(40),
                policy: CrashPolicy::WarmRestart,
            })
            .with_guard(DegradationGuardSpec {
                ema_alpha: 0.1,
                engage_above: 0.8,
                release_below: 0.5,
                backlog_limit: 40.0 * demand,
                shed_fraction: 0.4,
                mode: ShedMode::Clamp { factor: 0.25 },
            }),
    )
}

#[test]
fn faulted_run_replays_bit_identically_from_its_file() {
    let scenario = brownout_scenario();
    let text = scenario.to_json_string().unwrap();
    assert!(
        text.starts_with("{\n  \"schema\": 2,"),
        "faulted ⇒ schema 2"
    );
    let from_file = Scenario::from_json_str(&text).unwrap();
    assert_eq!(from_file.to_json_string().unwrap(), text, "canonical");

    let run_a = run_contended(&scenario);
    let run_b = run_contended(&from_file);
    assert_runs_bit_identical(&run_a, &run_b, "brownout scenario");

    // The faults actually fired: a warm restart's 40 missed slots, brownout
    // pressure shed by the guard, and lossy grants on session 1.
    assert_eq!(run_a.downtime[3], 40, "warm restart downtime");
    assert!(
        run_a.uplink.lost_total > 0.0,
        "p=0.2 loss destroyed capacity"
    );
    assert!(run_a.uplink.shed_slots > 0, "guard engaged under brownout");
    assert_eq!(run_a.uplink.outage_slots, 0, "brownout is not an outage");
}

#[test]
fn empty_fault_plan_is_bitwise_the_fault_free_path() {
    let mut faulted = fleet(4, 500, 0xE3);
    let demand: f64 = faulted.sessions.iter().map(|s| s.service.mean_rate()).sum();
    faulted = faulted
        .with_uplink(UplinkSpec::new(
            0.7 * demand,
            UplinkPolicy::MaxWeightBacklog,
        ))
        .with_fault(FaultPlan::new());
    let mut fault_free = faulted.clone();
    fault_free.fault = None;

    let run_a = run_contended(&faulted);
    let run_b = run_contended(&fault_free);
    assert_runs_bit_identical(&run_a, &run_b, "empty plan vs no plan");
    assert_eq!(run_a.uplink.shed_slots, 0);
    assert_eq!(run_a.uplink.down_session_slots, 0);
    assert_eq!(run_a.uplink.lost_total.to_bits(), 0.0f64.to_bits());
    assert!(run_a.downtime.iter().all(|&d| d == 0));
}

#[test]
fn grant_loss_with_p_zero_is_bitwise_event_free() {
    let base = {
        let mut s = fleet(3, 400, 0x10);
        let demand: f64 = s.sessions.iter().map(|spec| spec.service.mean_rate()).sum();
        s = s.with_uplink(UplinkSpec::new(
            0.75 * demand,
            UplinkPolicy::ProportionalShare,
        ));
        s
    };
    let p0 = base
        .clone()
        .with_fault(FaultPlan::new().with_event(FaultEvent::GrantLoss {
            session: 1,
            p: 0.0,
            seed: 99,
        }));
    let p1 = base
        .clone()
        .with_fault(FaultPlan::new().with_event(FaultEvent::GrantLoss {
            session: 1,
            p: 1.0,
            seed: 99,
        }));

    let run_free = run_contended(&base);
    let run_p0 = run_contended(&p0);
    assert_runs_bit_identical(&run_p0, &run_free, "p=0 loss vs event-free");

    // p=1 destroys every grant the session wins: capacity is lost, and the
    // starved session's queue dominates its fault-free self.
    let run_p1 = run_contended(&p1);
    assert!(run_p1.uplink.lost_total > 0.0, "p=1 loses capacity");
    assert!(
        run_p1.summaries[1].mean_backlog > run_free.summaries[1].mean_backlog,
        "starved session backs up"
    );
}

#[test]
fn cold_restart_equals_fresh_session_with_residual_horizon() {
    let (slots, crash_at, down) = (400u64, 100u64, 50u64);
    let faulted = fleet(1, slots, 0xC01D);
    let plan = FaultPlan::new().with_event(FaultEvent::SessionCrash {
        session: 0,
        slot: crash_at,
        restart_after: Some(down),
        policy: CrashPolicy::ColdRestart,
    });

    let mut batch = SessionBatch::full_trace(&faulted);
    let mut uplink = arvis::core::uplink::SharedUplink::with_fault(
        UplinkSpec::unconstrained(),
        &plan,
        faulted.sessions.len(),
    );
    while !batch.is_done() {
        uplink.step_slot(&mut batch);
    }
    assert_eq!(batch.downtime(), &[down]);
    assert!(batch.liveness(0).is_live(), "restarted by the horizon");

    // The same single session, brand new, over the residual horizon.
    let residual = slots - crash_at - down;
    let fresh = fleet(1, residual, 0xC01D);
    let mut fresh_batch = SessionBatch::full_trace(&fresh);
    fresh_batch.run();

    let faulted_trace = &batch.sinks()[0];
    let fresh_trace = &fresh_batch.sinks()[0];
    // The sink saw `crash_at` live slots, then the restarted trajectory.
    assert_eq!(faulted_trace.backlog.len() as u64, crash_at + residual);
    let series = [
        ("backlog", &faulted_trace.backlog, &fresh_trace.backlog),
        ("depth", &faulted_trace.depth, &fresh_trace.depth),
        ("quality", &faulted_trace.quality, &fresh_trace.quality),
        ("arrivals", &faulted_trace.arrivals, &fresh_trace.arrivals),
        ("service", &faulted_trace.service, &fresh_trace.service),
    ];
    for (name, faulted_series, fresh_series) in series {
        let tail = &faulted_series.values()[crash_at as usize..];
        assert_eq!(tail.len(), fresh_series.values().len(), "{name}: length");
        for (slot, (x, y)) in tail.iter().zip(fresh_series.values()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{name}: post-restart slot {slot}: {x} vs {y}"
            );
        }
    }
    // Frames completed after the restart are bitwise the fresh session's
    // (the latency tracker is rebuilt and runs on the restarted clock).
    let fresh_frames = &fresh_trace.frame_latencies;
    let faulted_frames = &faulted_trace.frame_latencies;
    assert!(faulted_frames.len() >= fresh_frames.len());
    let tail = &faulted_frames[faulted_frames.len() - fresh_frames.len()..];
    for (i, (x, y)) in tail.iter().zip(fresh_frames).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "frame {i}: {x} vs {y}");
    }
}

#[test]
fn warm_restart_preserves_the_queue_cold_restart_resets_it() {
    let (slots, crash_at, down) = (200u64, 100u64, 10u64);
    // An overloaded session: only-max-depth against a service rate far
    // below the max-depth arrival, so the queue grows without bound and
    // the pre-crash backlog is unambiguous.
    let cfg = ExperimentConfig::new(profile(), 2_000.0, slots);
    let mut scenario = Scenario::new(slots);
    scenario
        .sessions
        .push(SessionSpec::from_config(&cfg, ControllerSpec::OnlyMax));

    let run = |policy: CrashPolicy| {
        let plan = FaultPlan::new().with_event(FaultEvent::SessionCrash {
            session: 0,
            slot: crash_at,
            restart_after: Some(down),
            policy,
        });
        let mut batch = SessionBatch::full_trace(&scenario);
        let mut uplink =
            arvis::core::uplink::SharedUplink::with_fault(UplinkSpec::unconstrained(), &plan, 1);
        while !batch.is_done() {
            uplink.step_slot(&mut batch);
        }
        assert_eq!(batch.downtime(), &[down], "{policy:?} downtime");
        batch.into_sinks().remove(0)
    };

    let warm = run(CrashPolicy::WarmRestart);
    let cold = run(CrashPolicy::ColdRestart);
    let pre_crash = warm.backlog.values()[crash_at as usize - 1];
    let warm_resumed = warm.backlog.values()[crash_at as usize];
    let cold_resumed = cold.backlog.values()[crash_at as usize];
    assert!(
        warm_resumed >= pre_crash,
        "warm restart keeps the queue: {warm_resumed} vs {pre_crash}"
    );
    assert!(
        cold_resumed < pre_crash * 0.5,
        "cold restart drains the queue: {cold_resumed} vs {pre_crash}"
    );
}

#[test]
fn permanent_crash_stays_dead_and_counts_downtime() {
    let slots = 300u64;
    let mut scenario = fleet(3, slots, 0xDEAD);
    let demand: f64 = scenario
        .sessions
        .iter()
        .map(|s| s.service.mean_rate())
        .sum();
    scenario = scenario
        .with_uplink(UplinkSpec::new(
            0.8 * demand,
            UplinkPolicy::MaxWeightBacklog,
        ))
        .with_fault(FaultPlan::new().with_event(FaultEvent::SessionCrash {
            session: 2,
            slot: 120,
            restart_after: None,
            policy: CrashPolicy::Permanent,
        }));

    let mut batch = SessionBatch::summary_only(&scenario);
    let mut uplink = arvis::core::uplink::SharedUplink::with_fault(
        scenario.uplink.clone().unwrap(),
        scenario.fault.as_ref().unwrap(),
        3,
    );
    while !batch.is_done() {
        uplink.step_slot(&mut batch);
    }
    assert!(matches!(batch.liveness(2), Liveness::Dead));
    assert_eq!(batch.downtime(), &[0, 0, slots - 120]);
    assert_eq!(uplink.summary().down_session_slots, slots - 120);
    // The dead session stops observing slots; the survivors run the full
    // horizon.
    let summaries = batch.into_summaries();
    assert_eq!(summaries[2].slots, 120);
    assert_eq!(summaries[0].slots, slots);
}

#[test]
fn conservation_holds_under_a_mixed_fault_plan() {
    let mut scenario = fleet(4, 500, 0xC0);
    let demand: f64 = scenario
        .sessions
        .iter()
        .map(|s| s.service.mean_rate())
        .sum();
    let budget = 0.6 * demand;
    scenario = scenario.with_uplink(UplinkSpec::new(budget, UplinkPolicy::MaxWeightBacklog));
    let plan = FaultPlan::new()
        .with_event(FaultEvent::Outage {
            start: 100,
            slots: 30,
        })
        .with_event(FaultEvent::Brownout {
            start: 200,
            slots: 80,
            factor: 0.5,
        })
        .with_event(FaultEvent::GrantLoss {
            session: 0,
            p: 0.3,
            seed: 5,
        })
        .with_event(FaultEvent::SessionCrash {
            session: 1,
            slot: 150,
            restart_after: Some(60),
            policy: CrashPolicy::ColdRestart,
        })
        .with_guard(DegradationGuardSpec {
            ema_alpha: 0.2,
            engage_above: 0.7,
            release_below: 0.4,
            backlog_limit: f64::INFINITY,
            shed_fraction: 0.5,
            mode: ShedMode::Defer,
        });
    let scenario = scenario.with_fault(plan);

    let mut batch = SessionBatch::summary_only(&scenario);
    let mut uplink = arvis::core::uplink::SharedUplink::with_fault(
        scenario.uplink.clone().unwrap(),
        scenario.fault.as_ref().unwrap(),
        4,
    );
    while !batch.is_done() {
        let stats = uplink.step_slot(&mut batch);
        assert!(
            stats.granted <= stats.budget * (1.0 + 1e-9) + 1e-9,
            "slot {}: granted {} exceeds budget {}",
            stats.slot,
            stats.granted,
            stats.budget
        );
        if (100..130).contains(&stats.slot) {
            assert_eq!(stats.budget, 0.0, "outage slot {} budget", stats.slot);
            assert_eq!(stats.granted, 0.0, "outage slot {} grant", stats.slot);
        }
        if (200..280).contains(&stats.slot) {
            assert!(
                stats.budget <= 0.5 * budget * (1.0 + 1e-12),
                "brownout slot {} budget {}",
                stats.slot,
                stats.budget
            );
        }
        for x in [stats.demand, stats.granted, stats.backlog, stats.lost] {
            assert!(
                x.is_finite() && x >= 0.0,
                "slot {} stats finite",
                stats.slot
            );
        }
    }
    let summary = uplink.summary();
    assert_eq!(summary.outage_slots, 30);
    assert!(summary.lost_total > 0.0);
}

#[test]
fn degenerate_fleets_survive_faults() {
    // Zero sessions, faulted uplink: the run completes with empty
    // summaries and the outage still counts.
    let empty = Scenario::new(100)
        .with_uplink(UplinkSpec::new(5_000.0, UplinkPolicy::MaxWeightBacklog))
        .with_fault(FaultPlan::new().with_event(FaultEvent::Outage {
            start: 10,
            slots: 20,
        }));
    let run = run_contended(&empty);
    assert!(run.summaries.is_empty());
    assert!(run.downtime.is_empty());
    assert_eq!(run.uplink.slots, 100);
    assert_eq!(run.uplink.outage_slots, 20);
    assert_eq!(run.uplink.contended_slots, 0);
    assert_eq!(run.uplink.mean_granted, 0.0);

    // Zero slots: nothing runs, every mean is zero, nothing is NaN.
    let mut zero_slot = fleet(2, 0, 0x25);
    zero_slot = zero_slot
        .with_uplink(UplinkSpec::new(5_000.0, UplinkPolicy::ProportionalShare))
        .with_fault(FaultPlan::new().with_event(FaultEvent::SessionCrash {
            session: 0,
            slot: 0,
            restart_after: Some(1),
            policy: CrashPolicy::ColdRestart,
        }));
    let run = run_contended(&zero_slot);
    assert_eq!(run.uplink.slots, 0);
    assert_eq!(run.downtime, vec![0, 0]);
    for s in &run.summaries {
        assert_eq!(s.slots, 0);
        for x in [
            s.mean_quality,
            s.mean_backlog,
            s.backlog_p95,
            s.frame_latency_mean,
            s.dropped_total,
            s.depth_switch_rate,
        ] {
            assert!(x == 0.0, "zero-slot summary field is {x}");
        }
    }
    // Both degenerate scenarios still round-trip through their files.
    for scenario in [&empty, &zero_slot] {
        let text = scenario.to_json_string().unwrap();
        let back = Scenario::from_json_str(&text).unwrap();
        assert_eq!(back.to_json_string().unwrap(), text);
    }
}

/// A random *valid* fault plan: windows anywhere, at most one loss stream
/// per session, per-session crash schedules ascending past each restart.
fn random_fault(rng: &mut StdRng, sessions: usize, slots: u64) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for _ in 0..rng.gen_range(0..4) {
        let start = rng.gen_range(0..slots.max(1));
        let len = rng.gen_range(1..=slots.max(2) / 2);
        plan = if rng.gen_bool(0.5) {
            plan.with_event(FaultEvent::Outage { start, slots: len })
        } else {
            plan.with_event(FaultEvent::Brownout {
                start,
                slots: len,
                factor: rng.gen_range(0.0..=1.0),
            })
        };
    }
    for session in 0..sessions {
        if rng.gen_bool(0.3) {
            plan = plan.with_event(FaultEvent::GrantLoss {
                session,
                p: rng.gen_range(0.0..=1.0),
                seed: rng.gen(),
            });
        }
        if rng.gen_bool(0.4) && slots > 4 {
            let mut slot = rng.gen_range(0..slots);
            for _ in 0..2 {
                if rng.gen_bool(0.25) {
                    plan = plan.with_event(FaultEvent::SessionCrash {
                        session,
                        slot,
                        restart_after: None,
                        policy: CrashPolicy::Permanent,
                    });
                    break;
                }
                let restart_after = rng.gen_range(1..=slots / 2);
                plan = plan.with_event(FaultEvent::SessionCrash {
                    session,
                    slot,
                    restart_after: Some(restart_after),
                    policy: if rng.gen_bool(0.5) {
                        CrashPolicy::ColdRestart
                    } else {
                        CrashPolicy::WarmRestart
                    },
                });
                slot = slot + restart_after + rng.gen_range(1..=slots);
            }
        }
    }
    if rng.gen_bool(0.5) {
        let release_below = rng.gen_range(0.0..0.8);
        plan = plan.with_guard(DegradationGuardSpec {
            ema_alpha: rng.gen_range(0.01..1.0),
            engage_above: rng.gen_range(release_below..1.0),
            release_below,
            backlog_limit: if rng.gen_bool(0.5) {
                f64::INFINITY
            } else {
                rng.gen_range(1.0..1e9)
            },
            shed_fraction: rng.gen_range(0.05..1.0),
            mode: if rng.gen_bool(0.5) {
                ShedMode::Defer
            } else {
                ShedMode::Clamp {
                    factor: rng.gen_range(0.0..1.0),
                }
            },
        });
    }
    plan
}

#[test]
fn chaos_soak_random_fault_plans_never_panic_and_replay_exactly() {
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(0xC4A0_5000 + seed);
        let sessions = rng.gen_range(2..=5);
        let slots = rng.gen_range(50..=300u64);
        let mut scenario = fleet(sessions, slots, seed);
        let demand: f64 = scenario
            .sessions
            .iter()
            .map(|s| s.service.mean_rate())
            .sum();
        scenario = scenario.with_uplink(UplinkSpec::new(
            rng.gen_range(0.3..1.2) * demand,
            if rng.gen_bool(0.5) {
                UplinkPolicy::MaxWeightBacklog
            } else {
                UplinkPolicy::WeightedMaxWeight {
                    weights: (0..sessions).map(|i| 1.0 + (i % 3) as f64).collect(),
                }
            },
        ));
        let plan = random_fault(&mut rng, sessions, slots);
        let scenario = scenario.with_fault(plan);

        // The file round-trip stays canonical with faults aboard.
        let text = scenario.to_json_string().unwrap();
        let back = Scenario::from_json_str(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e}"));
        assert_eq!(
            back.to_json_string().unwrap(),
            text,
            "seed {seed} canonical"
        );

        // Both sides run without panicking, to bit-identical finite
        // summaries.
        let run_a = run_contended(&scenario);
        let run_b = run_contended(&back);
        assert_runs_bit_identical(&run_a, &run_b, &format!("seed {seed}"));
        for (i, s) in run_a.summaries.iter().enumerate() {
            for x in [
                s.mean_quality,
                s.mean_backlog,
                s.backlog_p95,
                s.backlog_p99,
                s.frame_latency_mean,
                s.frame_latency_p95,
                s.frame_latency_p99,
                s.dropped_total,
                s.depth_switch_rate,
            ] {
                assert!(x.is_finite(), "seed {seed} session {i}: non-finite {x}");
            }
        }
        let u = &run_a.uplink;
        for x in [
            u.mean_budget,
            u.mean_demand,
            u.mean_granted,
            u.mean_backlog,
            u.peak_backlog,
            u.lost_total,
        ] {
            assert!(x.is_finite(), "seed {seed}: non-finite uplink {x}");
        }
        assert!(
            u.down_session_slots <= sessions as u64 * slots,
            "seed {seed}"
        );
    }
}

#[test]
fn outage_recovery_headline_guard_protects_heavy_tenants() {
    // The E7 golden (weighted max-weight + deferring guard) against the
    // same faulted fleet admitted proportional-share with no guard. The
    // guard's contract is *differentiated* recovery, not a lower aggregate:
    // it feeds the heavy tenants by deferring the light ones, so the
    // top-weight survivor keeps premium quality through the diurnal troughs
    // and the 60-slot outage, while proportional share spreads the same
    // pain uniformly. Both fleets must still drain the outage backlog
    // promptly once the uplink returns.
    let guarded = scenario_preset("e7_fault_outage").unwrap();
    let mut ungoverned = guarded.clone();
    ungoverned.uplink.as_mut().unwrap().policy = UplinkPolicy::ProportionalShare;
    ungoverned.fault.as_mut().unwrap().guard = None;

    // Drive both by hand to watch the aggregate backlog trajectory around
    // the outage window (slots 800..860).
    let drive = |scenario: &Scenario| {
        let mut batch = SessionBatch::summary_only(scenario);
        let mut uplink = arvis::core::uplink::SharedUplink::with_fault(
            scenario.uplink.clone().unwrap(),
            scenario.fault.as_ref().unwrap(),
            scenario.sessions.len(),
        );
        let mut backlog = Vec::new();
        while !batch.is_done() {
            backlog.push(uplink.step_slot(&mut batch).backlog);
        }
        (batch.into_summaries(), uplink.summary(), backlog)
    };
    let (sum_guarded, up_guarded, traj_guarded) = drive(&guarded);
    let (sum_plain, up_plain, traj_plain) = drive(&ungoverned);
    assert!(up_guarded.shed_slots > 0, "the guard engaged");
    assert_eq!(up_plain.shed_slots, 0, "no guard, no shedding");

    // Session 3 is the top-weight (weight 4) tenant still alive at the
    // outage (session 7, the other weight-4 tenant, crashed permanently).
    let quality_ratio = sum_guarded[3].mean_quality / sum_plain[3].mean_quality;
    let recovery = |traj: &[f64]| {
        let pre_outage = traj[799];
        (860..traj.len())
            .find(|&t| traj[t] <= 1.1 * pre_outage)
            .map(|t| t - 860)
    };
    let rec_guarded = recovery(&traj_guarded);
    let rec_plain = recovery(&traj_plain);
    println!(
        "outage recovery: top-weight tenant mean quality {:.3} guarded vs {:.3} \
         proportional ({quality_ratio:.2}x); aggregate backlog back within 1.1x of \
         its pre-outage level {:?} vs {:?} slots after the uplink returns",
        sum_guarded[3].mean_quality, sum_plain[3].mean_quality, rec_guarded, rec_plain,
    );
    assert!(
        quality_ratio > 1.5,
        "guarded max-weight should hold the top-weight tenant well above \
         unguarded proportional share (ratio {quality_ratio:.3})"
    );
    for (name, rec) in [("guarded", rec_guarded), ("proportional", rec_plain)] {
        let slots = rec.unwrap_or_else(|| panic!("{name} fleet never drained the outage"));
        assert!(
            slots <= 30,
            "{name} fleet drained within 30 slots, took {slots}"
        );
    }
    // The trade is explicit: the deferred weight-1 tenants pay for the
    // premium tenant's quality.
    assert!(sum_guarded[0].mean_quality < sum_plain[0].mean_quality);
}
