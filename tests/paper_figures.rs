//! Shape checks for every reproduced figure/table, on scaled-down workloads
//! (the full-size artifacts come from `arvis-bench`'s `experiments` binary;
//! these tests pin the *qualitative* claims so regressions are caught by
//! `cargo test`).

use arvis_bench::{fig2_config, fig2_service_rate, paper_profile, PAPER_DEPTHS};

use arvis::core::controller::{MaxDepth, MinDepth, ProposedDpp};
use arvis::core::distributed::{run_fleet, FleetSpec};
use arvis::core::experiment::Experiment;
use arvis::core::sweep::{log_grid, rate_sweep, v_sweep};
use arvis::octree::{LodMode, Octree, OctreeConfig};
use arvis::pointcloud::synth::{SubjectProfile, SynthBodyConfig};
use arvis::quality::psnr::geometry_distortion;

const TEST_POINTS: usize = 40_000;

#[test]
fn fig1_resolution_table_shape() {
    // Fig. 1: deeper octrees draw more, smaller voxels, at higher PSNR.
    let cloud = SynthBodyConfig::new(SubjectProfile::Longdress)
        .with_target_points(TEST_POINTS)
        .with_seed(1)
        .generate();
    let tree =
        Octree::build(&cloud, &OctreeConfig::with_max_depth(*PAPER_DEPTHS.end())).expect("octree");
    let mut prev_voxels = 0usize;
    let mut prev_psnr = f64::NEG_INFINITY;
    for d in PAPER_DEPTHS {
        let lod = tree.extract_lod(d, LodMode::VoxelCenters);
        let psnr = geometry_distortion(&cloud, &lod.cloud).unwrap().psnr_db();
        assert!(lod.cloud.len() > prev_voxels, "voxels must grow with depth");
        assert!(psnr > prev_psnr, "PSNR must grow with depth");
        prev_voxels = lod.cloud.len();
        prev_psnr = psnr;
    }
    // Geometry PSNR gains ~6 dB per depth (voxel size halves); check the
    // span over 5 levels is in that ballpark.
    assert!(
        prev_psnr > 30.0,
        "deepest PSNR {prev_psnr} suspiciously low"
    );
}

#[test]
fn fig2a_queue_dynamics_shape() {
    let cfg = fig2_config(paper_profile(TEST_POINTS, 1));
    let exp = Experiment::new(cfg.clone());
    let proposed = exp.run(&mut ProposedDpp::new(cfg.controller_v));
    let max_run = exp.run(&mut MaxDepth);
    let min_run = exp.run(&mut MinDepth);

    // Divergence / convergence / stabilization triple.
    assert!(!max_run.stable && min_run.stable && proposed.stable);

    // Max-depth diverges linearly: final backlog ≈ slots × (a_max − b).
    let final_max = *max_run.backlog.values().last().unwrap();
    let profile = paper_profile(TEST_POINTS, 1);
    let drift = profile.arrival(10) - fig2_service_rate(&profile);
    // Exact recursion: Q(t) = t·(a−b) + a (slot 0 serves an empty queue).
    let expected = (cfg.slots - 1) as f64 * drift + profile.arrival(10);
    assert!(
        (final_max - expected).abs() < 1e-6 * expected,
        "divergence rate: got {final_max}, expected {expected}"
    );

    // Min-depth ends each slot at exactly a(5) — "converges to 0" at the
    // figure's 10^5 scale.
    let final_min = *min_run.backlog.values().last().unwrap();
    assert!(final_min <= profile.arrival(5) + 1e-9);

    // Proposed's plateau: final backlog within 3x of its mean after warmup
    // (bounded, not diverging), and well below max-depth's final.
    assert!(*proposed.backlog.values().last().unwrap() < final_max / 1.5);
}

#[test]
fn fig2b_control_action_shape() {
    let cfg = fig2_config(paper_profile(TEST_POINTS, 1));
    let exp = Experiment::new(cfg.clone());
    let proposed = exp.run(&mut ProposedDpp::new(cfg.controller_v));
    let max_run = exp.run(&mut MaxDepth);
    let min_run = exp.run(&mut MinDepth);

    // Baselines hold their extremes for the whole run.
    assert!(max_run.depth.values().iter().all(|&d| d == 10.0));
    assert!(min_run.depth.values().iter().all(|&d| d == 5.0));

    // Proposed: max depth before the knee, lower depths after.
    let depths = proposed.depth.values();
    let knee = depths.iter().position(|&d| d < 10.0).expect("knee exists");
    assert!(
        knee as f64 > 0.5 * arvis_bench::PAPER_KNEE,
        "knee {knee} too early"
    );
    assert!(depths[..knee].iter().all(|&d| d == 10.0));
    // After the knee the controller time-shares below the max.
    let after = &depths[knee..];
    let mean_after: f64 = after.iter().sum::<f64>() / after.len() as f64;
    assert!(
        (9.0..10.0).contains(&mean_after),
        "post-knee mean {mean_after}"
    );
}

#[test]
fn extension_v_sweep_tradeoff_shape() {
    // E1: quality rises toward 1 and backlog grows as V increases.
    let mut cfg = fig2_config(paper_profile(TEST_POINTS, 1));
    cfg.slots = 1_600;
    cfg.warmup = 800;
    let vs = log_grid(cfg.controller_v / 30.0, cfg.controller_v * 3.0, 5);
    let pts = v_sweep(&cfg, &vs);
    for w in pts.windows(2) {
        assert!(w[1].mean_quality >= w[0].mean_quality - 1e-9);
        assert!(w[1].mean_backlog >= w[0].mean_backlog * 0.9);
    }
    assert!(pts.last().unwrap().mean_quality > pts[0].mean_quality);
}

#[test]
fn extension_rate_sweep_shape() {
    // E3: more rendering capacity, more quality; all runs stable when the
    // horizon accommodates the plateau.
    let profile = paper_profile(TEST_POINTS, 1);
    let mut cfg = fig2_config(profile.clone());
    cfg.slots = 4_000;
    cfg.warmup = 2_000;
    let rates = [
        profile.arrival(7) * 1.5,
        profile.arrival(8) * 1.5,
        profile.arrival(10) * 1.2,
    ];
    let pts = rate_sweep(&cfg, &rates);
    assert!(pts[2].mean_quality > pts[0].mean_quality);
    assert!(
        pts[2].mean_quality == 1.0,
        "capacity above a(10) must allow permanent max depth"
    );
}

#[test]
fn extension_distributed_fleet_shape() {
    // E2: every device of a heterogeneous fleet independently stable.
    let mut cfg = fig2_config(paper_profile(TEST_POINTS, 1));
    cfg.slots = 3_200;
    cfg.warmup = 1_600;
    let outcomes = run_fleet(&cfg, FleetSpec::heterogeneous(6, 0.6));
    assert_eq!(outcomes.len(), 6);
    assert!(outcomes.iter().all(|o| o.result.stable));
}
