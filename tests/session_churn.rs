//! Session churn conformance: open-loop joins, departures, and SoA slot
//! compaction end to end.
//!
//! 1. **Churned replay** — the schema-3 E8 golden (Poisson joins onto a
//!    weighted uplink, geometric lifetimes, compaction on) replays
//!    bit-identically from its own JSON file, mid-run joins included.
//! 2. **Compaction ≡ dead-row skipping** — the same churned scenario with
//!    `compact` on and off produces bitwise-equal per-session summaries,
//!    downtime, uplink aggregates, per-slot stats, and CSV bytes, while
//!    the compacting run really does evict rows.
//! 3. **Join ≡ fresh session** — a session joining at slot `k` is bitwise
//!    a brand-new session run over the residual horizon (the local-clock
//!    contract, the cold-restart idiom extended to joins).
//! 4. **Zero churn ≡ pre-churn path** — an absent spec, an empty spec, and
//!    a spec whose schedule happens to be empty all run bitwise
//!    identically.
//! 5. **Schedule purity** — the precomputed join/departure schedule is a
//!    pure function of the spec (seeded property loop), so stepping order,
//!    chunking, and thread count cannot reach it.
//! 6. **Chunk invariance** — a churned run is bitwise identical across SoA
//!    chunk sizes.
//! 7. **Partial-horizon hygiene** — sessions departing before warm-up
//!    still summarize to finite fields; the only `NaN` the CSV may render
//!    is the documented `littles_delay` placeholder for frameless rows.
//! 8. **Churn soak** — 200 seeded random churn specs over random small
//!    fleets: exact scenario-file round-trips, replay determinism, and the
//!    compaction differential on every draw.
//!
//! This suite runs under both default and `--no-default-features` builds
//! (see CI's serial pass): churn determinism must not depend on the
//! parallel fan-out.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use arvis::core::churn::{ChurnArrivalSpec, ChurnPlane, ChurnSpec, LifetimeSpec};
use arvis::core::experiment::{ExperimentConfig, ServiceSpec};
use arvis::core::ledger::RunRecord;
use arvis::core::scenario::{ControllerSpec, Scenario, SessionSpec};
use arvis::core::session::SessionBatch;
use arvis::core::telemetry::SessionSummary;
use arvis::core::uplink::{run_contended, ContendedRun, SharedUplink, UplinkPolicy, UplinkSpec};
use arvis::quality::DepthProfile;
use arvis::sim::rng::child_seed;
use arvis_bench::presets::scenario_preset;

fn profile() -> DepthProfile {
    DepthProfile::from_parts(
        5,
        vec![100.0, 400.0, 1600.0, 6400.0, 25600.0, 102400.0],
        vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
    )
}

/// A small heterogeneous fleet of proposed controllers with jittered
/// service (so joins and departures must replay seeded processes, not
/// constants).
fn fleet(sessions: usize, slots: u64, seed: u64) -> Scenario {
    let cfg = ExperimentConfig::new(profile(), 2_000.0, slots).with_controller_v(1e7);
    let mut scenario = Scenario::new(slots);
    for i in 0..sessions {
        let mut spec = SessionSpec::from_config(&cfg, ControllerSpec::Proposed { v: 1e7 });
        spec.service = ServiceSpec::Jittered {
            rate: 1_400.0 + 350.0 * i as f64,
            sigma: 0.12,
        };
        spec.seed = child_seed(seed, i as u64);
        spec.frame_cap = Some(4_096);
        scenario.sessions.push(spec);
    }
    scenario
}

/// The joiner template every churn test clones: constant service so a
/// joiner's trajectory depends only on its own seeded stream.
fn template(seed: u64) -> SessionSpec {
    let cfg = ExperimentConfig::new(profile(), 2_000.0, 1).with_controller_v(1e7);
    let mut spec = SessionSpec::from_config(&cfg, ControllerSpec::Proposed { v: 1e7 });
    spec.service = ServiceSpec::Jittered {
        rate: 1_600.0,
        sigma: 0.1,
    };
    spec.seed = seed;
    spec.frame_cap = Some(4_096);
    spec
}

/// Bitwise equality of two per-session summaries (floats via `to_bits`).
fn assert_summaries_bit_identical(a: &SessionSummary, b: &SessionSummary, what: &str) {
    assert_eq!(a.slots, b.slots, "{what}: slots");
    let bits = [
        ("mean_quality", a.mean_quality, b.mean_quality),
        ("mean_backlog", a.mean_backlog, b.mean_backlog),
        ("backlog_p95", a.backlog_p95, b.backlog_p95),
        ("backlog_p99", a.backlog_p99, b.backlog_p99),
        (
            "frame_latency_mean",
            a.frame_latency_mean,
            b.frame_latency_mean,
        ),
        (
            "frame_latency_p95",
            a.frame_latency_p95,
            b.frame_latency_p95,
        ),
        (
            "frame_latency_p99",
            a.frame_latency_p99,
            b.frame_latency_p99,
        ),
        ("dropped_total", a.dropped_total, b.dropped_total),
        (
            "depth_switch_rate",
            a.depth_switch_rate,
            b.depth_switch_rate,
        ),
    ];
    for (field, x, y) in bits {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: {field} {x} vs {y}");
    }
    assert_eq!(a.frames_completed, b.frames_completed, "{what}: frames");
    assert_eq!(
        a.littles_delay.map(f64::to_bits),
        b.littles_delay.map(f64::to_bits),
        "{what}: littles_delay"
    );
    assert_eq!(a.stable, b.stable, "{what}: stable");
}

/// Bitwise equality of two whole contended runs, uplink aggregates and
/// downtime included.
fn assert_runs_bit_identical(a: &ContendedRun, b: &ContendedRun, what: &str) {
    assert_eq!(a.summaries.len(), b.summaries.len(), "{what}: sessions");
    for (i, (x, y)) in a.summaries.iter().zip(&b.summaries).enumerate() {
        assert_summaries_bit_identical(x, y, &format!("{what}: session {i}"));
    }
    assert_eq!(a.downtime, b.downtime, "{what}: downtime");
    let (ua, ub) = (&a.uplink, &b.uplink);
    assert_eq!(ua.slots, ub.slots, "{what}: uplink slots");
    assert_eq!(ua.contended_slots, ub.contended_slots, "{what}: contended");
    assert_eq!(ua.shed_slots, ub.shed_slots, "{what}: shed_slots");
    assert_eq!(
        ua.deferred_session_slots, ub.deferred_session_slots,
        "{what}: deferred_session_slots"
    );
    assert_eq!(ua.outage_slots, ub.outage_slots, "{what}: outage_slots");
    assert_eq!(
        ua.down_session_slots, ub.down_session_slots,
        "{what}: down_session_slots"
    );
    let floats = [
        ("mean_budget", ua.mean_budget, ub.mean_budget),
        ("mean_demand", ua.mean_demand, ub.mean_demand),
        ("mean_granted", ua.mean_granted, ub.mean_granted),
        ("mean_backlog", ua.mean_backlog, ub.mean_backlog),
        ("peak_backlog", ua.peak_backlog, ub.peak_backlog),
        ("lost_total", ua.lost_total, ub.lost_total),
    ];
    for (field, x, y) in floats {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: uplink {field} {x} vs {y}"
        );
    }
}

/// A churned scenario deliberately complementary to the E8 golden: trace
/// arrivals (not Poisson), uniform lifetimes (not geometric), a plain
/// max-weight-backlog uplink (not weighted).
fn churned_scenario(compact: bool) -> Scenario {
    let mut scenario = fleet(4, 600, 0xC4A);
    let demand: f64 = scenario
        .sessions
        .iter()
        .map(|s| s.service.mean_rate())
        .sum();
    scenario = scenario.with_uplink(UplinkSpec::new(
        0.8 * demand,
        UplinkPolicy::MaxWeightBacklog,
    ));
    let churn = ChurnSpec::new()
        .with_arrivals(
            ChurnArrivalSpec::Trace {
                counts: vec![0, 0, 0, 0, 0, 0, 0, 1],
            },
            template(0xC4A7E),
            9,
        )
        .with_lifetime(LifetimeSpec::Uniform {
            min: 40,
            max: 320,
            seed: 0xC4A11F,
        })
        .with_compaction(compact);
    scenario.with_churn(churn)
}

// ---------------------------------------------------------------------------
// 1. Churned replay from file
// ---------------------------------------------------------------------------

#[test]
fn churned_golden_replays_bit_identically_from_file() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join("e8_churn.json");
    let file = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e} (regenerate with `experiments emit all --dir scenarios`)",
            path.display()
        )
    });
    let from_file = Scenario::from_json_str(&file).expect("parse e8 golden");
    let from_rust = scenario_preset("e8_churn").expect("e8 preset");

    // The full record surface (summaries + uplink + downtime), canonical
    // bytes compared so every float survived the file round-trip exactly.
    let rec_file = RunRecord::replay("e8_churn", &from_file).expect("replay from file");
    let rec_rust = RunRecord::replay("e8_churn", &from_rust).expect("replay from preset");
    assert_eq!(
        rec_file.to_json().unwrap().to_pretty(),
        rec_rust.to_json().unwrap().to_pretty(),
        "file and in-Rust replays must agree byte for byte"
    );
    assert_eq!(rec_file.scenario_schema, 3, "E8 is a schema-3 scenario");

    // The churn actually happened: joiners beyond the initial fleet, and
    // departures accruing downtime.
    let run = run_contended(&from_file);
    assert!(
        run.summaries.len() > from_file.sessions.len(),
        "E8 must record mid-run joins ({} sessions, {} initial)",
        run.summaries.len(),
        from_file.sessions.len()
    );
    assert!(
        run.downtime.iter().any(|&d| d > 0),
        "E8 must record departures (all downtime zero)"
    );
    // And replaying the parsed scenario again is bit-identical.
    assert_runs_bit_identical(&run, &run_contended(&from_file), "e8 replay determinism");
}

// ---------------------------------------------------------------------------
// 2. Compaction is bitwise invisible
// ---------------------------------------------------------------------------

#[test]
fn compaction_is_bitwise_invisible_in_every_output() {
    let on = churned_scenario(true);
    let off = churned_scenario(false);
    let run_on = run_contended(&on);
    let run_off = run_contended(&off);
    assert_runs_bit_identical(&run_on, &run_off, "compaction differential");
    assert_eq!(
        run_on.to_csv(),
        run_off.to_csv(),
        "CSV bytes must not depend on compaction"
    );

    // Drive both by hand to compare every per-slot uplink stat and to
    // prove the compacting run really evicted rows (otherwise this test
    // would pass vacuously).
    let drive = |scenario: &Scenario| {
        let churn = scenario.churn.as_ref().expect("churned scenario");
        let mut plane = ChurnPlane::new(churn, scenario);
        let mut batch = SessionBatch::summary_only(scenario);
        let mut uplink = SharedUplink::new(scenario.uplink.clone().unwrap());
        let mut stats = Vec::new();
        while !batch.is_done() {
            plane.step_summary(&mut batch, &mut uplink);
            let s = uplink.step_slot(&mut batch);
            stats.push((
                s.slot,
                s.budget.to_bits(),
                s.demand.to_bits(),
                s.granted.to_bits(),
                s.backlog.to_bits(),
                s.contended,
                s.shed_sessions,
                s.lost.to_bits(),
                s.down_sessions,
            ));
        }
        (
            stats,
            plane.compacted_rows(),
            batch.len(),
            batch.logical_len(),
        )
    };
    let (stats_on, compacted_on, phys_on, logical_on) = drive(&on);
    let (stats_off, compacted_off, phys_off, logical_off) = drive(&off);
    assert_eq!(stats_on, stats_off, "per-slot uplink stats must match");
    assert!(
        compacted_on > 0,
        "the compacting run must actually evict rows"
    );
    assert_eq!(compacted_off, 0, "the non-compacting run must not");
    assert_eq!(
        logical_on, logical_off,
        "the logical session count is compaction-independent"
    );
    assert!(
        phys_on < phys_off,
        "compaction must shrink the physical SoA ({phys_on} vs {phys_off} rows)"
    );
}

// ---------------------------------------------------------------------------
// 3. A join is a fresh session over the residual horizon
// ---------------------------------------------------------------------------

#[test]
fn joiner_is_bitwise_a_fresh_session_over_the_residual_horizon() {
    let (slots, k) = (400u64, 137u64);
    let mut scenario = fleet(2, slots, 0x101A);
    // Unconstrained: every demand granted, so the joiner's trajectory is
    // exactly what it would be standing alone.
    scenario = scenario.with_uplink(UplinkSpec::unconstrained());
    let tpl = template(0x7E44);
    let mut counts = vec![0u64; k as usize];
    counts.push(1);
    let scenario = scenario.with_churn(ChurnSpec::new().with_arrivals(
        ChurnArrivalSpec::Trace { counts },
        tpl.clone(),
        1,
    ));

    let run = run_contended(&scenario);
    assert_eq!(
        run.summaries.len(),
        3,
        "two initial sessions plus the joiner"
    );
    let joiner = &run.summaries[2];
    assert_eq!(
        joiner.slots,
        slots - k,
        "joiner covers the residual horizon"
    );
    assert_eq!(run.downtime[2], 0, "a live joiner accrues no downtime");

    // The fresh twin: the same spec with the joiner's decorrelated seed,
    // run uncoupled over `slots - k` slots.
    let mut fresh_spec = tpl;
    fresh_spec.seed = child_seed(fresh_spec.seed, 0);
    let fresh = Scenario::new(slots - k).with_session(fresh_spec);
    let mut batch = SessionBatch::summary_only(&fresh);
    batch.run();
    let fresh_summary = batch.into_summaries().remove(0);
    assert_summaries_bit_identical(joiner, &fresh_summary, "join-at-k vs fresh");
}

// ---------------------------------------------------------------------------
// 4. Zero churn is the pre-churn code path
// ---------------------------------------------------------------------------

#[test]
fn zero_churn_specs_take_the_pre_churn_code_path_bitwise() {
    let base = {
        let mut s = fleet(3, 500, 0x2E40);
        let demand: f64 = s.sessions.iter().map(|x| x.service.mean_rate()).sum();
        s = s.with_uplink(UplinkSpec::new(
            0.75 * demand,
            UplinkPolicy::ProportionalShare,
        ));
        s
    };
    let baseline = run_contended(&base);

    // An empty spec is filtered out before a plane is ever built.
    let empty = base.clone().with_churn(ChurnSpec::new());
    assert_runs_bit_identical(&baseline, &run_contended(&empty), "empty churn spec");

    // A spec whose *schedule* is empty (trace of zeros, nobody departs)
    // routes through the churn stepping loop and must still be bitwise
    // the plain `SharedUplink::run`.
    let idle = base.clone().with_churn(ChurnSpec::new().with_arrivals(
        ChurnArrivalSpec::Trace { counts: vec![0] },
        template(0x2E41),
        1,
    ));
    assert!(!idle.churn.as_ref().unwrap().is_empty());
    assert_runs_bit_identical(&baseline, &run_contended(&idle), "idle churn schedule");
}

// ---------------------------------------------------------------------------
// 5. Schedule purity (seeded property loop)
// ---------------------------------------------------------------------------

/// A random-but-valid churn spec paired with a compatible scenario.
fn random_churned_scenario(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let sessions = rng.gen_range(2usize..5);
    let slots = rng.gen_range(96u64..160);
    let mut scenario = fleet(sessions, slots, rng.gen());
    let demand: f64 = scenario
        .sessions
        .iter()
        .map(|s| s.service.mean_rate())
        .sum();
    let weighted = rng.gen_bool(0.3);
    let policy = if weighted {
        UplinkPolicy::WeightedMaxWeight {
            weights: (0..sessions).map(|_| rng.gen_range(0.5..4.0)).collect(),
        }
    } else if rng.gen_bool(0.5) {
        UplinkPolicy::ProportionalShare
    } else {
        UplinkPolicy::MaxWeightBacklog
    };
    scenario = scenario.with_uplink(UplinkSpec::new(rng.gen_range(0.6..1.1) * demand, policy));

    let mut churn = ChurnSpec::new();
    let joins = rng.gen_bool(0.75);
    if joins {
        let arrivals = match rng.gen_range(0u8..3) {
            0 => ChurnArrivalSpec::Poisson {
                lambda: rng.gen_range(0.0..0.15),
                seed: rng.gen(),
            },
            1 => ChurnArrivalSpec::Mmpp2 {
                lambda_low: rng.gen_range(0.0..0.05),
                lambda_high: rng.gen_range(0.1..0.6),
                switch_up: rng.gen_range(0.0..0.3),
                switch_down: rng.gen_range(0.0..0.3),
                seed: rng.gen(),
            },
            _ => ChurnArrivalSpec::Trace {
                counts: (0..rng.gen_range(1usize..24))
                    .map(|_| u64::from(rng.gen_bool(0.1)))
                    .collect(),
            },
        };
        churn = churn.with_arrivals(arrivals, template(rng.gen()), rng.gen_range(1u64..8));
        if weighted {
            churn = churn.with_weight(rng.gen_range(0.5..4.0));
        }
    }
    if rng.gen_bool(0.75) || !joins {
        let lifetime = match rng.gen_range(0u8..3) {
            0 => LifetimeSpec::Fixed {
                slots: rng.gen_range(1u64..200),
            },
            1 => LifetimeSpec::Geometric {
                mean: rng.gen_range(1.0..120.0),
                seed: rng.gen(),
            },
            _ => {
                let min = rng.gen_range(1u64..60);
                LifetimeSpec::Uniform {
                    min,
                    max: min + rng.gen_range(0u64..100),
                    seed: rng.gen(),
                }
            }
        };
        churn = churn.with_lifetime(lifetime);
    }
    scenario.with_churn(churn.with_compaction(rng.gen_bool(0.5)))
}

#[test]
fn churn_schedules_are_pure_functions_of_the_spec() {
    for seed in 0..64u64 {
        let scenario = random_churned_scenario(seed);
        let churn = scenario.churn.as_ref().unwrap();
        let a = ChurnPlane::new(churn, &scenario);
        let b = ChurnPlane::new(churn, &scenario);
        let joins_a: Vec<(u64, u64)> = a
            .join_schedule()
            .iter()
            .map(|(slot, spec)| (*slot, spec.seed))
            .collect();
        let joins_b: Vec<(u64, u64)> = b
            .join_schedule()
            .iter()
            .map(|(slot, spec)| (*slot, spec.seed))
            .collect();
        assert_eq!(joins_a, joins_b, "seed {seed}: join schedule");
        assert_eq!(
            a.departure_schedule(),
            b.departure_schedule(),
            "seed {seed}: departure schedule"
        );
        assert!(
            joins_a.len() as u64 <= churn.max_joins,
            "seed {seed}: max_joins respected"
        );
        assert!(
            joins_a.windows(2).all(|w| w[0].0 <= w[1].0),
            "seed {seed}: joins sorted by slot"
        );
        assert!(
            a.departure_schedule().windows(2).all(|w| w[0] <= w[1]),
            "seed {seed}: departures sorted"
        );
        assert!(
            a.departure_schedule()
                .iter()
                .all(|&(at, _)| at < scenario.slots),
            "seed {seed}: departures inside the horizon"
        );
        // Joiner seeds are the decorrelated child streams, in join order.
        if let Some(tpl) = &churn.template {
            for (j, &(_, seed_j)) in joins_a.iter().enumerate() {
                assert_eq!(
                    seed_j,
                    child_seed(tpl.seed, j as u64),
                    "seed {seed}: joiner {j} seed"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 6. Chunk invariance
// ---------------------------------------------------------------------------

#[test]
fn churned_runs_are_invariant_to_soa_chunk_size() {
    let scenario = churned_scenario(true);
    let drive = |chunk: Option<usize>| {
        let churn = scenario.churn.as_ref().unwrap();
        let mut plane = ChurnPlane::new(churn, &scenario);
        let mut batch = SessionBatch::summary_only(&scenario);
        if let Some(c) = chunk {
            batch = batch.with_chunk_size(c);
        }
        let mut uplink = SharedUplink::new(scenario.uplink.clone().unwrap());
        while !batch.is_done() {
            plane.step_summary(&mut batch, &mut uplink);
            uplink.step_slot(&mut batch);
        }
        (batch.downtime(), batch.into_summaries())
    };
    let (downtime_default, summaries_default) = drive(None);
    for chunk in [1usize, 3, 7] {
        let (downtime, summaries) = drive(Some(chunk));
        assert_eq!(downtime, downtime_default, "chunk {chunk}: downtime");
        assert_eq!(summaries.len(), summaries_default.len(), "chunk {chunk}");
        for (i, (a, b)) in summaries.iter().zip(&summaries_default).enumerate() {
            assert_summaries_bit_identical(a, b, &format!("chunk {chunk} session {i}"));
        }
    }
}

// ---------------------------------------------------------------------------
// 7. Partial-horizon summaries stay finite
// ---------------------------------------------------------------------------

#[test]
fn early_departures_summarize_finite_with_only_the_documented_nan() {
    // Everybody departs at slot 1 — before the 16-slot warm-up, so every
    // warm aggregate summarizes an *empty* window. The pinned behavior:
    // means are 0.0 (not NaN), percentiles 0.0, and `littles_delay` is
    // `None`, which the CSV renders as the documented `NaN` placeholder.
    let mut scenario = fleet(3, 200, 0xDEAD);
    for s in &mut scenario.sessions {
        s.warmup = 16;
    }
    let demand: f64 = scenario
        .sessions
        .iter()
        .map(|s| s.service.mean_rate())
        .sum();
    scenario = scenario.with_uplink(UplinkSpec::new(
        0.8 * demand,
        UplinkPolicy::ProportionalShare,
    ));
    let scenario =
        scenario.with_churn(ChurnSpec::new().with_lifetime(LifetimeSpec::Fixed { slots: 1 }));
    let run = run_contended(&scenario);
    assert_eq!(run.summaries.len(), 3);
    for (i, s) in run.summaries.iter().enumerate() {
        for (field, v) in [
            ("mean_quality", s.mean_quality),
            ("mean_backlog", s.mean_backlog),
            ("backlog_p95", s.backlog_p95),
            ("backlog_p99", s.backlog_p99),
            ("frame_latency_mean", s.frame_latency_mean),
            ("frame_latency_p95", s.frame_latency_p95),
            ("frame_latency_p99", s.frame_latency_p99),
            ("dropped_total", s.dropped_total),
            ("depth_switch_rate", s.depth_switch_rate),
        ] {
            assert!(v.is_finite(), "session {i}: {field} = {v}");
        }
        if let Some(d) = s.littles_delay {
            assert!(d.is_finite(), "session {i}: littles_delay = {d}");
        }
        assert_eq!(
            run.downtime[i],
            scenario.slots - 1,
            "session {i}: downtime covers every slot after the departure"
        );
    }
    // The record codec (the ledger's hard finite gate) must accept it.
    RunRecord::replay("early_departures", &scenario).expect("record stays finite");
    // The only NaNs in the CSV are littles_delay placeholders of rows
    // that completed no frames.
    let csv = run.to_csv();
    let frameless = run
        .summaries
        .iter()
        .filter(|s| s.littles_delay.is_none())
        .count();
    assert_eq!(
        csv.matches("NaN").count(),
        frameless,
        "no NaN leaks beyond the littles_delay placeholder:\n{csv}"
    );
}

// ---------------------------------------------------------------------------
// 8. Churn soak
// ---------------------------------------------------------------------------

#[test]
fn churn_soak_round_trips_and_replays_200_random_specs() {
    for seed in 0..200u64 {
        let scenario = random_churned_scenario(seed);

        // Exact scenario-file round-trip.
        let text = scenario
            .to_json_string()
            .unwrap_or_else(|e| panic!("seed {seed}: encode: {e}"));
        let back = Scenario::from_json_str(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: parse: {e}\n{text}"));
        assert_eq!(
            back.to_json_string().unwrap(),
            text,
            "seed {seed}: emit(parse(emit)) must be byte-identical"
        );

        // Replay determinism, from the Rust value and from the file form.
        let run_a = run_contended(&scenario);
        let run_b = run_contended(&back);
        assert_runs_bit_identical(&run_a, &run_b, &format!("seed {seed}: file replay"));

        // The compaction differential on every draw.
        let mut flipped = scenario.clone();
        let churn = flipped.churn.as_mut().unwrap();
        churn.compact = !churn.compact;
        let run_c = run_contended(&flipped);
        assert_runs_bit_identical(&run_a, &run_c, &format!("seed {seed}: compaction flip"));
    }
}
