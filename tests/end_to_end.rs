//! End-to-end integration: synthetic dataset → octree → depth profile →
//! closed-loop scheduling, verifying the paper's headline claims on the
//! fully assembled system.

use arvis::core::controller::{
    DepthController, MaxDepth, MinDepth, ProposedDpp, QueueThreshold, RandomDepth,
};
use arvis::core::experiment::{v_for_knee, Experiment, ExperimentConfig, ServiceSpec};
use arvis::pointcloud::synth::{SubjectProfile, SynthBodyConfig};
use arvis::quality::DepthProfile;

/// A moderately sized measured workload shared by the tests in this file.
fn measured_profile() -> DepthProfile {
    let cloud = SynthBodyConfig::new(SubjectProfile::Longdress)
        .with_target_points(50_000)
        .with_seed(17)
        .generate();
    DepthProfile::measure(&cloud, 5..=10).expect("profile")
}

fn fig2_like_config(profile: DepthProfile, slots: u64) -> ExperimentConfig {
    let rate = (profile.arrival(9) * profile.arrival(10)).sqrt();
    let v = v_for_knee(&profile, rate, 300.0).expect("max depth unsustainable");
    ExperimentConfig::new(profile, rate, slots)
        .with_controller_v(v)
        .with_warmup(slots / 2)
}

#[test]
fn paper_claim_stability_triple() {
    // Fig. 2(a): max diverges, min converges to ~0, proposed stabilizes.
    let cfg = fig2_like_config(measured_profile(), 1_200);
    let exp = Experiment::new(cfg.clone());

    let max_run = exp.run(&mut MaxDepth);
    let min_run = exp.run(&mut MinDepth);
    let proposed = exp.run(&mut ProposedDpp::new(cfg.controller_v));

    assert!(!max_run.stable, "only-max-depth must diverge");
    assert!(min_run.stable, "only-min-depth must be stable");
    assert!(proposed.stable, "proposed must be stable");

    // Min-depth backlog is negligible relative to proposed's plateau.
    assert!(min_run.mean_backlog < proposed.mean_backlog / 100.0);
    // Proposed's plateau is well below the diverging baseline's mean.
    assert!(proposed.mean_backlog < max_run.mean_backlog);
}

#[test]
fn paper_claim_quality_ordering() {
    // Eq. (1): the proposed time-average quality sits strictly between the
    // baselines and close to the maximum.
    let cfg = fig2_like_config(measured_profile(), 1_200);
    let exp = Experiment::new(cfg.clone());
    let max_q = exp.run(&mut MaxDepth).mean_quality;
    let min_q = exp.run(&mut MinDepth).mean_quality;
    let prop_q = exp
        .run(&mut ProposedDpp::new(cfg.controller_v))
        .mean_quality;

    assert_eq!(max_q, 1.0);
    assert_eq!(min_q, 0.0);
    assert!(prop_q > 0.8, "proposed quality {prop_q} should be near max");
    assert!(
        prop_q < 1.0,
        "proposed must sacrifice some quality for stability"
    );
}

#[test]
fn paper_claim_knee_position() {
    // "recognizes 400 unit time as the optimized point": with V calibrated
    // by v_for_knee the first depth drop lands near the requested knee.
    let profile = measured_profile();
    let rate = (profile.arrival(9) * profile.arrival(10)).sqrt();
    for target in [200.0, 400.0] {
        let v = v_for_knee(&profile, rate, target).expect("calibration");
        let cfg = ExperimentConfig::new(profile.clone(), rate, 1_600).with_controller_v(v);
        let r = Experiment::new(cfg).run(&mut ProposedDpp::new(v));
        let knee = r
            .depth
            .values()
            .iter()
            .position(|&d| d < 10.0)
            .expect("depth must drop") as f64;
        assert!(
            (knee - target).abs() / target < 0.3,
            "knee {knee} too far from target {target}"
        );
    }
}

#[test]
fn proposed_beats_heuristic_baselines() {
    // Against random and threshold policies, the proposed scheduler achieves
    // at least as much quality among the stable policies.
    let cfg = fig2_like_config(measured_profile(), 2_000);
    let exp = Experiment::new(cfg.clone());

    let proposed = exp.run(&mut ProposedDpp::new(cfg.controller_v));
    let mut threshold =
        QueueThreshold::evenly_spaced(&cfg.stream.profile_at(0), 2.0 * proposed.mean_backlog);
    let threshold_run = exp.run(&mut threshold);
    let random_run = exp.run(&mut RandomDepth::new(5));

    assert!(proposed.stable);
    if threshold_run.stable {
        assert!(
            proposed.mean_quality >= threshold_run.mean_quality - 0.05,
            "proposed {} vs threshold {}",
            proposed.mean_quality,
            threshold_run.mean_quality
        );
    }
    // Random spends equal time at every depth: max-depth slots dominate the
    // arrivals, so its queue diverges at this service rate. Whatever its
    // verdict, its quality cannot exceed proposed's by the ordering of
    // time-shares.
    assert!(proposed.mean_quality >= random_run.mean_quality - 0.25);
}

#[test]
fn robustness_under_jitter_and_throttling() {
    // The scheduler observes only Q(t); stochastic service keeps it stable.
    let profile = measured_profile();
    let rate = (profile.arrival(9) * profile.arrival(10)).sqrt();
    let v = v_for_knee(&profile, rate, 200.0).expect("calibration");

    for service in [
        ServiceSpec::Jittered { rate, sigma: 0.25 },
        ServiceSpec::DutyCycled {
            high: rate * 1.2,
            low: rate * 0.5,
            high_slots: 300,
            low_slots: 100,
        },
    ] {
        let cfg = ExperimentConfig::new(profile.clone(), rate, 4_000)
            .with_service(service)
            .with_controller_v(v)
            .with_warmup(2_000)
            .with_seed(23);
        let r = Experiment::new(cfg).run(&mut ProposedDpp::new(v));
        assert!(r.stable, "proposed must stay stable under {service:?}");
        assert!(r.mean_quality > 0.3, "quality collapsed under {service:?}");
    }
}

#[test]
fn per_slot_decision_uses_only_local_information() {
    // The "fully distributed" property, mechanically: two controllers fed
    // identical (backlog, profile) observations make identical decisions
    // regardless of what else happened in their systems.
    let profile = measured_profile();
    let mut a = ProposedDpp::new(1e9);
    let mut b = ProposedDpp::new(1e9);
    // a gets warmed up on a different trajectory first.
    for slot in 0..100 {
        let _ = a.select_depth(slot, (slot as f64) * 1e4, &profile);
    }
    for (slot, q) in [(0u64, 0.0), (1, 5e5), (2, 3e6), (3, 1e8)] {
        assert_eq!(
            a.select_depth(slot, q, &profile),
            b.select_depth(slot, q, &profile),
            "decision must depend only on (Q, profile)"
        );
    }
}
