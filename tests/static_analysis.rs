//! The determinism contract as a workspace test: `arvis-lint` must report
//! zero findings on the real tree. Anything it flags is either a genuine
//! determinism hazard to fix or a justified exception to pragma-annotate —
//! never something to ignore.

use arvis_lint::{lint_workspace, LintConfig};

#[test]
fn workspace_has_zero_lint_findings() {
    let report = lint_workspace(&LintConfig::workspace()).expect("walk the workspace");
    assert!(
        report.files_scanned > 80,
        "suspiciously few files scanned ({}); did the walk root move?",
        report.files_scanned
    );
    assert!(
        !report.has_findings(),
        "the workspace must lint clean:\n{}",
        report.render_text()
    );
}

#[test]
fn workspace_report_json_is_deterministic() {
    let a = lint_workspace(&LintConfig::workspace()).expect("first walk");
    let b = lint_workspace(&LintConfig::workspace()).expect("second walk");
    assert_eq!(
        a.to_json().to_pretty(),
        b.to_json().to_pretty(),
        "two walks of the same tree must serialize byte-identically"
    );
}
