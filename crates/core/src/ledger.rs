//! The append-only regression ledger: bit-exact run records keyed by
//! scenario content hash.
//!
//! Every golden scenario has a canonical byte form ([`crate::json`]) and a
//! bit-deterministic replay, so a run's full summary surface can be
//! *committed* and mechanically re-checked: a [`RunRecord`] captures, for
//! one scenario, the content hash of its canonical bytes
//! ([`crate::Scenario::content_hash`]), the schema version it emits, a
//! code-version tag, and every number the replay produces — the
//! per-session [`SessionSummary`] fields, the [`UplinkSummary`] aggregates
//! (including the fault/shed counters) and the per-session downtime slots
//! on contended runs. A [`Ledger`] is the committed collection of records
//! (`results/ledger.json`), serialized through the same canonical JSON
//! layer as scenario files: strict parsing with line/column errors,
//! unknown-key rejection, shortest round-trip floats, and byte-identical
//! `emit → parse → emit`.
//!
//! The ledger is append-only in workflow terms: `experiments run <file>
//! --record` adds or regenerates the one record for that scenario;
//! `experiments verify <dir>` replays every scenario file and diffs the
//! recomputed record against the committed one **field by field** — any
//! single-bit drift in a float fails CI with the exact path
//! (`sessions[3].mean_quality: …`) and the regeneration command. Records
//! double as a result cache: a rerun whose (content hash, code version)
//! pair is already recorded can reuse the stored summaries instead of
//! re-simulating (`--from-raw` forces the re-run).
//!
//! ```
//! use arvis_core::ledger::{Ledger, RunRecord};
//! use arvis_core::scenario::{ControllerSpec, Scenario};
//! use arvis_core::experiment::ExperimentConfig;
//! use arvis_quality::DepthProfile;
//!
//! let profile = DepthProfile::from_parts(
//!     5,
//!     vec![100.0, 400.0, 1600.0, 6400.0, 25600.0, 102400.0],
//!     vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
//! );
//! let base = ExperimentConfig::new(profile, 2_000.0, 200);
//! let scenario = Scenario::replicated(&base, ControllerSpec::Proposed { v: 1e7 }, 2);
//!
//! // Record a replay, round-trip the ledger, verify bit-for-bit.
//! let record = RunRecord::replay("demo", &scenario).unwrap();
//! let mut ledger = Ledger::new();
//! ledger.upsert(record.clone());
//! let text = ledger.to_json_string().unwrap();
//! let back = Ledger::from_json_str(&text).unwrap();
//! assert_eq!(back.to_json_string().unwrap(), text, "canonical round-trip");
//!
//! let replay = RunRecord::replay("demo", &scenario).unwrap();
//! let stored = back.find(&replay.scenario_hash, &replay.code_version).unwrap();
//! assert!(stored.diff(&replay).unwrap().is_empty(), "bit-identical replay");
//! ```

use crate::json::{finite_num, num_or_inf_checked, JsonError, JsonKind, JsonValue};
use crate::scenario::Scenario;
use crate::session::SessionBatch;
use crate::telemetry::SessionSummary;
use crate::uplink::{run_contended, UplinkSummary};

/// The ledger-file schema version (the top-level `"schema"` member). Bump
/// on any record-format change.
pub const LEDGER_SCHEMA_VERSION: u64 = 1;

/// The code-version tag stamped into new records: the `arvis-core` crate
/// version. A record is only reused as a cache hit when both the scenario
/// hash *and* this tag match, so a PR that intentionally changes replay
/// numbers regenerates the ledger (and may bump the workspace version) in
/// the same change.
pub const CODE_VERSION: &str = env!("CARGO_PKG_VERSION");

/// One scenario's committed replay: content address, provenance tags, and
/// the full bit-exact summary surface.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Display name (the scenario file's stem, e.g. `e1_fig2`).
    pub scenario: String,
    /// SHA-256 of the scenario's canonical bytes
    /// ([`crate::Scenario::content_hash`]), 64 lowercase hex digits.
    pub scenario_hash: String,
    /// The schema version the scenario emits (1 plain, 2 faulted,
    /// 3 churned).
    pub scenario_schema: u64,
    /// The [`CODE_VERSION`] that produced the record.
    pub code_version: String,
    /// Per-session summaries, batch order.
    pub sessions: Vec<SessionSummary>,
    /// The uplink's aggregate summary — present exactly when the replay
    /// went through the contention plane (an `uplink` or `fault` member).
    pub uplink: Option<UplinkSummary>,
    /// Per-session slots spent down or dead (batch order); present with
    /// [`RunRecord::uplink`].
    pub downtime: Option<Vec<u64>>,
}

impl RunRecord {
    /// Replays `scenario` and captures its summary surface — through the
    /// shared-uplink contention plane when the scenario declares an
    /// `uplink`, a `fault` plan, or `churn` (the `experiments run`
    /// auto-selection), as uncoupled summary-only sessions otherwise.
    ///
    /// # Errors
    ///
    /// Errors when the scenario has no file form (extern controller) and
    /// therefore no content address.
    pub fn replay(name: impl Into<String>, scenario: &Scenario) -> Result<RunRecord, JsonError> {
        let scenario_hash = scenario.content_hash()?;
        let (sessions, uplink, downtime) =
            if scenario.uplink.is_some() || scenario.fault.is_some() || scenario.churn.is_some() {
                let run = run_contended(scenario);
                (run.summaries, Some(run.uplink), Some(run.downtime))
            } else {
                let mut batch = SessionBatch::summary_only(scenario);
                batch.run();
                (batch.into_summaries(), None, None)
            };
        Ok(RunRecord {
            scenario: name.into(),
            scenario_hash,
            scenario_schema: scenario.schema_version(),
            code_version: CODE_VERSION.to_string(),
            sessions,
            uplink,
            downtime,
        })
    }

    /// Encodes the record with members in the fixed canonical order:
    /// `scenario`, `scenario_hash`, `scenario_schema`, `code_version`,
    /// `sessions`, then `uplink` and `downtime` when present.
    ///
    /// # Errors
    ///
    /// Errors (naming the field) if any summary float that must be finite
    /// is not; the only lawfully infinite field is the uplink's
    /// `mean_budget`, which encodes as the string `"inf"`.
    pub fn to_json(&self) -> Result<JsonValue, JsonError> {
        let mut sessions = Vec::with_capacity(self.sessions.len());
        for (i, s) in self.sessions.iter().enumerate() {
            sessions.push(
                session_to_json(s)
                    .map_err(|e| JsonError::new(format!("session {i}: {}", e.msg)))?,
            );
        }
        let mut members = vec![
            ("scenario", JsonValue::str(self.scenario.as_str())),
            ("scenario_hash", JsonValue::str(self.scenario_hash.as_str())),
            ("scenario_schema", JsonValue::int(self.scenario_schema)),
            ("code_version", JsonValue::str(self.code_version.as_str())),
            ("sessions", JsonValue::arr(sessions)),
        ];
        if let Some(uplink) = &self.uplink {
            members.push(("uplink", uplink_to_json(uplink)?));
        }
        if let Some(downtime) = &self.downtime {
            members.push((
                "downtime",
                JsonValue::arr(downtime.iter().map(|&d| JsonValue::int(d)).collect()),
            ));
        }
        Ok(JsonValue::obj(members))
    }

    /// Decodes one record, rejecting unknown keys at every level.
    ///
    /// # Errors
    ///
    /// Errors with the offending position on missing/unknown keys and
    /// wrong types.
    pub fn from_json(v: &JsonValue) -> Result<RunRecord, JsonError> {
        let mut obj = v.as_obj()?;
        let scenario = obj.req("scenario")?.as_str()?.to_string();
        let scenario_hash = obj.req("scenario_hash")?.as_str()?.to_string();
        let scenario_schema = obj.req("scenario_schema")?.as_u64()?;
        let code_version = obj.req("code_version")?.as_str()?.to_string();
        let sessions = obj
            .req("sessions")?
            .as_array()?
            .iter()
            .map(session_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let uplink = match obj.opt("uplink") {
            Some(node) => Some(uplink_from_json(node)?),
            None => None,
        };
        let downtime = match obj.opt("downtime") {
            Some(node) => Some(
                node.as_array()?
                    .iter()
                    .map(JsonValue::as_u64)
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            None => None,
        };
        obj.finish()?;
        Ok(RunRecord {
            scenario,
            scenario_hash,
            scenario_schema,
            code_version,
            sessions,
            uplink,
            downtime,
        })
    }

    /// Field-level bitwise diff of this (committed) record against a
    /// `replay` recomputation: one line per mismatching field, e.g.
    /// `sessions[3].mean_quality: ledger 0.86… != replay 0.85…`. Floats
    /// compare through their shortest round-trip rendering, which is
    /// injective on bit patterns — an empty diff means the two records are
    /// bit-identical.
    ///
    /// # Errors
    ///
    /// Errors only if either record fails to encode (a non-finite field
    /// outside the lawful `mean_budget`).
    pub fn diff(&self, replay: &RunRecord) -> Result<Vec<String>, JsonError> {
        let ledger = self.to_json()?;
        let recomputed = replay.to_json()?;
        let mut out = Vec::new();
        diff_value("", &ledger, &recomputed, &mut out);
        Ok(out)
    }
}

/// The committed record collection behind `results/ledger.json`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Ledger {
    /// Records sorted by scenario name (the canonical file order).
    pub records: Vec<RunRecord>,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Ledger {
        Ledger {
            records: Vec::new(),
        }
    }

    /// The record cached for this (content hash, code version) pair, if
    /// any — the cache-lookup key: a hit is bit-exact by construction.
    pub fn find(&self, scenario_hash: &str, code_version: &str) -> Option<&RunRecord> {
        self.records
            .iter()
            .find(|r| r.scenario_hash == scenario_hash && r.code_version == code_version)
    }

    /// Adds `record`, replacing any existing record for the same scenario
    /// name or the same content hash, and keeps the collection sorted by
    /// (scenario, hash, code version) so emission stays canonical
    /// regardless of recording order.
    pub fn upsert(&mut self, record: RunRecord) {
        self.records
            .retain(|r| r.scenario != record.scenario && r.scenario_hash != record.scenario_hash);
        self.records.push(record);
        self.records.sort_by(|a, b| {
            (&a.scenario, &a.scenario_hash, &a.code_version).cmp(&(
                &b.scenario,
                &b.scenario_hash,
                &b.code_version,
            ))
        });
    }

    /// Encodes the ledger: `{"schema": …, "records": […]}`.
    ///
    /// # Errors
    ///
    /// Propagates record encode errors (see [`RunRecord::to_json`]).
    pub fn to_json(&self) -> Result<JsonValue, JsonError> {
        let records = self
            .records
            .iter()
            .map(RunRecord::to_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(JsonValue::obj(vec![
            ("schema", JsonValue::int(LEDGER_SCHEMA_VERSION)),
            ("records", JsonValue::arr(records)),
        ]))
    }

    /// Decodes a ledger tree, checking the schema version and rejecting
    /// unknown keys.
    ///
    /// # Errors
    ///
    /// Errors with the offending position on an unsupported `"schema"`,
    /// unknown or missing keys, and wrong types.
    pub fn from_json(v: &JsonValue) -> Result<Ledger, JsonError> {
        let mut obj = v.as_obj()?;
        let schema_node = obj.req("schema")?;
        let schema = schema_node.as_u64()?;
        if schema != LEDGER_SCHEMA_VERSION {
            return Err(JsonError::at(
                schema_node.pos,
                format!(
                    "unsupported ledger schema version {schema} \
                     (this build reads version {LEDGER_SCHEMA_VERSION})"
                ),
            ));
        }
        let records = obj
            .req("records")?
            .as_array()?
            .iter()
            .map(RunRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        obj.finish()?;
        Ok(Ledger { records })
    }

    /// Renders the canonical file form: the [`Ledger::to_json`] tree
    /// pretty-printed with a trailing newline. `emit → parse → emit` is
    /// byte-identical (pinned by `tests/regression_ledger.rs`).
    ///
    /// # Errors
    ///
    /// Propagates record encode errors.
    pub fn to_json_string(&self) -> Result<String, JsonError> {
        let mut out = self.to_json()?.to_pretty();
        out.push('\n');
        Ok(out)
    }

    /// Parses a ledger file: strict JSON ([`crate::json::parse`]) followed
    /// by [`Ledger::from_json`].
    ///
    /// # Errors
    ///
    /// Errors with line/column on any syntax or schema violation; never
    /// panics, whatever the input bytes.
    pub fn from_json_str(text: &str) -> Result<Ledger, JsonError> {
        Ledger::from_json(&crate::json::parse(text)?)
    }
}

/// Encodes a [`SessionSummary`] with members in struct order;
/// `littles_delay` is omitted when `None` (nothing served).
fn session_to_json(s: &SessionSummary) -> Result<JsonValue, JsonError> {
    let mut members = vec![
        ("slots", JsonValue::int(s.slots)),
        ("mean_quality", finite_num("mean_quality", s.mean_quality)?),
        ("mean_backlog", finite_num("mean_backlog", s.mean_backlog)?),
        ("backlog_p95", finite_num("backlog_p95", s.backlog_p95)?),
        ("backlog_p99", finite_num("backlog_p99", s.backlog_p99)?),
        ("frames_completed", JsonValue::int(s.frames_completed)),
        (
            "frame_latency_mean",
            finite_num("frame_latency_mean", s.frame_latency_mean)?,
        ),
        (
            "frame_latency_p95",
            finite_num("frame_latency_p95", s.frame_latency_p95)?,
        ),
        (
            "frame_latency_p99",
            finite_num("frame_latency_p99", s.frame_latency_p99)?,
        ),
    ];
    if let Some(delay) = s.littles_delay {
        members.push(("littles_delay", finite_num("littles_delay", delay)?));
    }
    members.push((
        "dropped_total",
        finite_num("dropped_total", s.dropped_total)?,
    ));
    members.push((
        "depth_switch_rate",
        finite_num("depth_switch_rate", s.depth_switch_rate)?,
    ));
    members.push(("stable", JsonValue::bool(s.stable)));
    Ok(JsonValue::obj(members))
}

/// Decodes a [`SessionSummary`], rejecting unknown keys.
fn session_from_json(v: &JsonValue) -> Result<SessionSummary, JsonError> {
    let mut obj = v.as_obj()?;
    let slots = obj.req("slots")?.as_u64()?;
    let mean_quality = obj.req("mean_quality")?.as_f64()?;
    let mean_backlog = obj.req("mean_backlog")?.as_f64()?;
    let backlog_p95 = obj.req("backlog_p95")?.as_f64()?;
    let backlog_p99 = obj.req("backlog_p99")?.as_f64()?;
    let frames_completed = obj.req("frames_completed")?.as_u64()?;
    let frame_latency_mean = obj.req("frame_latency_mean")?.as_f64()?;
    let frame_latency_p95 = obj.req("frame_latency_p95")?.as_f64()?;
    let frame_latency_p99 = obj.req("frame_latency_p99")?.as_f64()?;
    let littles_delay = match obj.opt("littles_delay") {
        Some(node) => Some(node.as_f64()?),
        None => None,
    };
    let dropped_total = obj.req("dropped_total")?.as_f64()?;
    let depth_switch_rate = obj.req("depth_switch_rate")?.as_f64()?;
    let stable = obj.req("stable")?.as_bool()?;
    obj.finish()?;
    Ok(SessionSummary {
        slots,
        mean_quality,
        mean_backlog,
        backlog_p95,
        backlog_p99,
        frames_completed,
        frame_latency_mean,
        frame_latency_p95,
        frame_latency_p99,
        littles_delay,
        dropped_total,
        depth_switch_rate,
        stable,
    })
}

/// Encodes an [`UplinkSummary`] with members in struct order; the mean
/// budget may lawfully be infinite (unconstrained uplink) and encodes as
/// the string `"inf"`.
fn uplink_to_json(u: &UplinkSummary) -> Result<JsonValue, JsonError> {
    Ok(JsonValue::obj(vec![
        ("slots", JsonValue::int(u.slots)),
        (
            "mean_budget",
            num_or_inf_checked("mean_budget", u.mean_budget)?,
        ),
        ("contended_slots", JsonValue::int(u.contended_slots)),
        ("mean_demand", finite_num("mean_demand", u.mean_demand)?),
        ("mean_granted", finite_num("mean_granted", u.mean_granted)?),
        ("mean_backlog", finite_num("mean_backlog", u.mean_backlog)?),
        ("peak_backlog", finite_num("peak_backlog", u.peak_backlog)?),
        ("shed_slots", JsonValue::int(u.shed_slots)),
        (
            "deferred_session_slots",
            JsonValue::int(u.deferred_session_slots),
        ),
        ("lost_total", finite_num("lost_total", u.lost_total)?),
        ("outage_slots", JsonValue::int(u.outage_slots)),
        ("down_session_slots", JsonValue::int(u.down_session_slots)),
    ]))
}

/// Decodes an [`UplinkSummary`], rejecting unknown keys.
fn uplink_from_json(v: &JsonValue) -> Result<UplinkSummary, JsonError> {
    let mut obj = v.as_obj()?;
    let slots = obj.req("slots")?.as_u64()?;
    let mean_budget = obj.req("mean_budget")?.as_f64_or_inf()?;
    let contended_slots = obj.req("contended_slots")?.as_u64()?;
    let mean_demand = obj.req("mean_demand")?.as_f64()?;
    let mean_granted = obj.req("mean_granted")?.as_f64()?;
    let mean_backlog = obj.req("mean_backlog")?.as_f64()?;
    let peak_backlog = obj.req("peak_backlog")?.as_f64()?;
    let shed_slots = obj.req("shed_slots")?.as_u64()?;
    let deferred_session_slots = obj.req("deferred_session_slots")?.as_u64()?;
    let lost_total = obj.req("lost_total")?.as_f64()?;
    let outage_slots = obj.req("outage_slots")?.as_u64()?;
    let down_session_slots = obj.req("down_session_slots")?.as_u64()?;
    obj.finish()?;
    Ok(UplinkSummary {
        slots,
        mean_budget,
        contended_slots,
        mean_demand,
        mean_granted,
        mean_backlog,
        peak_backlog,
        shed_slots,
        deferred_session_slots,
        lost_total,
        outage_slots,
        down_session_slots,
    })
}

/// Renders one scalar node for diff messages (objects/arrays never reach
/// this: [`diff_value`] recurses into them).
fn scalar_repr(v: &JsonValue) -> String {
    v.to_pretty()
}

/// Structural bitwise diff of two encoded records. Scalars compare through
/// their canonical rendering (injective on f64 bit patterns), objects
/// member-by-member (either side's extra members are reported), arrays
/// element-by-element plus a length line.
fn diff_value(path: &str, ledger: &JsonValue, replay: &JsonValue, out: &mut Vec<String>) {
    let join = |key: &str| {
        if path.is_empty() {
            key.to_string()
        } else {
            format!("{path}.{key}")
        }
    };
    match (&ledger.kind, &replay.kind) {
        (JsonKind::Obj(a), JsonKind::Obj(b)) => {
            for m in a {
                match b.iter().find(|n| n.key == m.key) {
                    Some(n) => diff_value(&join(&m.key), &m.value, &n.value, out),
                    None => out.push(format!(
                        "{}: ledger {} != replay <absent>",
                        join(&m.key),
                        scalar_repr(&m.value)
                    )),
                }
            }
            for n in b {
                if !a.iter().any(|m| m.key == n.key) {
                    out.push(format!(
                        "{}: ledger <absent> != replay {}",
                        join(&n.key),
                        scalar_repr(&n.value)
                    ));
                }
            }
        }
        (JsonKind::Arr(a), JsonKind::Arr(b)) => {
            if a.len() != b.len() {
                out.push(format!(
                    "{path}: ledger has {} elements != replay {}",
                    a.len(),
                    b.len()
                ));
            }
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                diff_value(&format!("{path}[{i}]"), x, y, out);
            }
        }
        _ => {
            let (x, y) = (scalar_repr(ledger), scalar_repr(replay));
            if x != y {
                out.push(format!("{path}: ledger {x} != replay {y}"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;
    use crate::scenario::ControllerSpec;
    use arvis_quality::DepthProfile;

    fn tiny_scenario(slots: u64) -> Scenario {
        let profile = DepthProfile::from_parts(
            5,
            vec![100.0, 400.0, 1600.0, 6400.0, 25600.0, 102400.0],
            vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
        );
        let base = ExperimentConfig::new(profile, 2_000.0, slots);
        Scenario::replicated(&base, ControllerSpec::Proposed { v: 1e7 }, 2)
    }

    #[test]
    fn record_round_trips_bit_exactly() {
        let scenario = tiny_scenario(200);
        let record = RunRecord::replay("tiny", &scenario).unwrap();
        let tree = record.to_json().unwrap();
        let back = RunRecord::from_json(&tree).unwrap();
        assert_eq!(back, record);
        assert!(record.diff(&back).unwrap().is_empty());
    }

    #[test]
    fn contended_record_carries_uplink_and_downtime() {
        let mut scenario = tiny_scenario(200);
        scenario = scenario.with_uplink(crate::uplink::UplinkSpec::new(
            3_000.0,
            crate::uplink::UplinkPolicy::ProportionalShare,
        ));
        let record = RunRecord::replay("tiny_uplink", &scenario).unwrap();
        assert!(record.uplink.is_some());
        assert_eq!(record.downtime.as_deref().map(<[u64]>::len), Some(2));
        let tree = record.to_json().unwrap();
        assert_eq!(RunRecord::from_json(&tree).unwrap(), record);
    }

    #[test]
    fn diff_names_the_field_and_both_values() {
        let scenario = tiny_scenario(200);
        let record = RunRecord::replay("tiny", &scenario).unwrap();
        let mut tampered = record.clone();
        tampered.sessions[1].mean_quality += 1e-9;
        tampered.sessions[0].slots += 1;
        let diff = record.diff(&tampered).unwrap();
        assert_eq!(diff.len(), 2);
        assert!(diff[0].starts_with("sessions[0].slots: ledger 200 != replay 201"));
        assert!(diff[1].starts_with("sessions[1].mean_quality: ledger "));
    }

    #[test]
    fn upsert_replaces_by_name_and_hash_and_sorts() {
        let scenario = tiny_scenario(200);
        let record = RunRecord::replay("bbb", &scenario).unwrap();
        let mut ledger = Ledger::new();
        ledger.upsert(record.clone());
        ledger.upsert(record.clone());
        assert_eq!(ledger.records.len(), 1, "same record upserts in place");

        let other = RunRecord::replay("aaa", &tiny_scenario(100)).unwrap();
        ledger.upsert(other.clone());
        assert_eq!(ledger.records.len(), 2);
        assert_eq!(ledger.records[0].scenario, "aaa", "sorted by name");

        // A renamed record with the old hash evicts the hash-match too.
        let renamed = RunRecord {
            scenario: "ccc".to_string(),
            ..record
        };
        ledger.upsert(renamed);
        assert_eq!(ledger.records.len(), 2);
        assert!(ledger.records.iter().all(|r| r.scenario != "bbb"));
    }

    #[test]
    fn ledger_rejects_unknown_keys_and_bad_schema() {
        let err = Ledger::from_json_str("{\n  \"schema\": 9,\n  \"records\": []\n}").unwrap_err();
        assert!(err.msg.contains("unsupported ledger schema"), "{}", err.msg);
        assert_eq!(err.pos.unwrap().line, 2);

        let err =
            Ledger::from_json_str("{\n  \"schema\": 1,\n  \"records\": [],\n  \"extra\": 0\n}")
                .unwrap_err();
        assert!(err.msg.contains("extra"), "{}", err.msg);
        assert_eq!(err.pos.unwrap().line, 4);
    }

    #[test]
    fn cache_lookup_requires_hash_and_code_version() {
        let scenario = tiny_scenario(200);
        let record = RunRecord::replay("tiny", &scenario).unwrap();
        let hash = record.scenario_hash.clone();
        let mut ledger = Ledger::new();
        ledger.upsert(record);
        assert!(ledger.find(&hash, CODE_VERSION).is_some());
        assert!(ledger.find(&hash, "9.9.9").is_none(), "stale code version");
        assert!(ledger.find("0000", CODE_VERSION).is_none());
    }
}
