//! Energy-aware extension: depth control under an *average power budget*.
//!
//! Mobile AR is battery-constrained; beyond delay stability, deployments cap
//! the time-average rendering energy. Lyapunov optimization handles this
//! with a virtual queue `Z(t)` for the constraint `avg e(d(t)) ≤ budget`
//! (see [`arvis_lyapunov::vq`]), extending the paper's Eq. (3) to
//!
//! ```text
//! d*(t) = argmax_d [ V·p_a(d) − Q(t)·a(d) − Z(t)·e(d) ]
//! ```
//!
//! This is the standard multi-constraint DPP construction the paper's
//! framework immediately supports; DESIGN.md lists it as extension work.

use arvis_lyapunov::dpp::DppController;
use arvis_lyapunov::vq::VirtualQueue;
use arvis_quality::DepthProfile;
use serde::{Deserialize, Serialize};

use crate::controller::DepthController;

/// Per-slot rendering-energy model: `e(d) = base + per_point · a(d)`
/// (energy in joules, or any consistent unit).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Fixed per-slot cost (display, tracking, SLAM).
    pub base: f64,
    /// Marginal cost per rendered point.
    pub per_point: f64,
}

impl EnergyModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics when either coefficient is negative or non-finite.
    pub fn new(base: f64, per_point: f64) -> Self {
        assert!(base.is_finite() && base >= 0.0, "base must be >= 0");
        assert!(
            per_point.is_finite() && per_point >= 0.0,
            "per_point must be >= 0"
        );
        EnergyModel { base, per_point }
    }

    /// Energy of rendering `points` in one slot.
    pub fn energy(&self, points: f64) -> f64 {
        self.base + self.per_point * points
    }
}

/// The proposed scheduler extended with an average-energy virtual queue.
#[derive(Debug, Clone)]
pub struct EnergyAwareDpp {
    inner: DppController,
    model: EnergyModel,
    z: VirtualQueue,
    /// Energy committed by the previous decision, charged to `Z` at the
    /// next observation (the decision's energy is spent during the slot).
    pending_energy: Option<f64>,
}

impl EnergyAwareDpp {
    /// Creates the controller with trade-off `v`, an energy model, and an
    /// average per-slot energy `budget`.
    ///
    /// # Panics
    ///
    /// Panics when `v < 0` or `budget < 0` (propagated from the parts).
    pub fn new(v: f64, model: EnergyModel, budget: f64) -> Self {
        EnergyAwareDpp {
            inner: DppController::new(v),
            model,
            z: VirtualQueue::new(budget),
            pending_energy: None,
        }
    }

    /// The energy virtual-queue backlog `Z(t)`.
    pub fn z_backlog(&self) -> f64 {
        self.z.backlog()
    }

    /// Empirical average energy per slot so far.
    pub fn average_energy(&self) -> f64 {
        self.z.average_x()
    }

    /// Whether the empirical average satisfies the budget within `slack`.
    pub fn budget_satisfied(&self, slack: f64) -> bool {
        self.z.satisfied(slack)
    }
}

impl DepthController for EnergyAwareDpp {
    fn select_depth(&mut self, _slot: u64, backlog: f64, profile: &DepthProfile) -> u8 {
        // Charge the previous slot's energy before deciding (Z(t) reflects
        // everything spent so far).
        if let Some(e) = self.pending_energy.take() {
            self.z.step(e);
        }
        let z = self.z.backlog();
        let v = self.inner.v();
        // Three-term closed form, still O(|R|): V·p(d) − Q·a(d) − Z·e(d).
        let mut best: Option<(u8, f64)> = None;
        for d in profile.depths() {
            let a = profile.arrival(d);
            let score = v * profile.quality(d) - backlog * a - z * self.model.energy(a);
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((d, score));
            }
        }
        let (action, _) = best.expect("profile has at least two depths");
        self.pending_energy = Some(self.model.energy(profile.arrival(action)));
        action
    }

    fn name(&self) -> &'static str {
        "energy_aware"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ProposedDpp;
    use crate::experiment::{Experiment, ExperimentConfig};

    fn profile() -> DepthProfile {
        DepthProfile::from_parts(
            5,
            vec![100.0, 400.0, 1600.0, 6400.0, 25600.0, 102400.0],
            vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
        )
    }

    fn config(slots: u64) -> ExperimentConfig {
        ExperimentConfig::new(profile(), 30_000.0, slots).with_warmup(slots / 2)
    }

    #[test]
    fn energy_model_math() {
        let m = EnergyModel::new(2.0, 0.001);
        assert_eq!(m.energy(0.0), 2.0);
        assert_eq!(m.energy(1000.0), 3.0);
    }

    #[test]
    #[should_panic(expected = ">= 0")]
    fn energy_model_rejects_negative() {
        let _ = EnergyModel::new(-1.0, 0.0);
    }

    #[test]
    fn loose_budget_behaves_like_unconstrained() {
        // Budget far above any possible consumption: Z stays 0 and the
        // controller matches the plain proposed scheduler exactly.
        let model = EnergyModel::new(1.0, 1e-3);
        let cfg = config(2_000).with_controller_v(1e7);
        let exp = Experiment::new(cfg.clone());
        let plain = exp.run(&mut ProposedDpp::new(cfg.controller_v));
        let mut energy_ctl = EnergyAwareDpp::new(cfg.controller_v, model, 1e9);
        let constrained = exp.run(&mut energy_ctl);
        assert_eq!(plain.depth, constrained.depth);
        assert_eq!(energy_ctl.z_backlog(), 0.0);
    }

    #[test]
    fn tight_budget_is_enforced() {
        // e(d) = a(d)·1e-3 + 1; unconstrained the controller time-shares
        // around a(d) ≈ 30k -> ~31 energy/slot. Cap at 12.
        let model = EnergyModel::new(1.0, 1e-3);
        let budget = 12.0;
        let cfg = config(6_000).with_controller_v(1e7);
        let mut ctl = EnergyAwareDpp::new(cfg.controller_v, model, budget);
        let r = Experiment::new(cfg).run(&mut ctl);
        assert!(
            ctl.budget_satisfied(0.05 * budget),
            "average energy {} exceeds budget {budget}",
            ctl.average_energy()
        );
        // And the real queue must still be stable (it is under-loaded once
        // the energy cap forces shallow depths).
        assert!(r.stable);
    }

    #[test]
    fn tight_budget_costs_quality() {
        let model = EnergyModel::new(1.0, 1e-3);
        let cfg = config(4_000).with_controller_v(1e7);
        let exp = Experiment::new(cfg.clone());
        let unconstrained = exp.run(&mut EnergyAwareDpp::new(cfg.controller_v, model, 1e9));
        let constrained = exp.run(&mut EnergyAwareDpp::new(cfg.controller_v, model, 12.0));
        assert!(
            constrained.mean_quality < unconstrained.mean_quality,
            "energy cap must reduce quality: {} vs {}",
            constrained.mean_quality,
            unconstrained.mean_quality
        );
    }

    #[test]
    fn tighter_budgets_use_less_energy() {
        let model = EnergyModel::new(1.0, 1e-3);
        let cfg = config(4_000).with_controller_v(1e7);
        let exp = Experiment::new(cfg.clone());
        let mut energies = Vec::new();
        for budget in [30.0, 15.0, 8.0] {
            let mut ctl = EnergyAwareDpp::new(cfg.controller_v, model, budget);
            let _ = exp.run(&mut ctl);
            energies.push(ctl.average_energy());
        }
        assert!(energies[0] >= energies[1] && energies[1] >= energies[2]);
    }
}
