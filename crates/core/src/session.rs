//! The session runtime: incremental per-slot stepping and SoA batches.
//!
//! The paper's closed loop (Algorithm 1) is inherently incremental — one
//! depth decision, one Lindley queue step per slot — but the legacy
//! [`crate::experiment::Experiment`] API only exposed run-to-completion.
//! This module turns the loop inside out:
//!
//! - a [`Session`] owns one device's state (stream, service process,
//!   controller, queue, FIFO latency tracker) and advances one slot per
//!   [`Session::step`], emitting a [`SlotOutcome`] and feeding a
//!   [`TelemetrySink`];
//! - a [`SessionBatch`] holds the state of N sessions in parallel arrays
//!   (struct-of-arrays: one `Vec` per component) and steps *all* sessions
//!   through one slot at a time, fanning fixed-size chunks of sessions out
//!   over `arvis_par` workers. Sessions are mutually independent, so batch
//!   results are bit-identical for every worker count, chunk size and
//!   session order — the same determinism contract as the octree and
//!   quality hot paths.
//!
//! Memory is O(sessions) with summary-only sinks: per-session state is the
//! queue scalars, the controller enum, the service process and the frames
//! currently awaiting service. Nothing scales with the horizon — except the
//! in-flight frame records of a *diverging* session, whose backlog (and
//! hence unserved-frame count) is unbounded by definition.

use arvis_lyapunov::adaptive::GrantRatioV;
use arvis_sim::latency::FifoLatencyTracker;
use arvis_sim::queue::WorkQueue;
use arvis_sim::service::{ConstantRate, DutyCycledRate, JitteredRate, ServiceProcess};
use serde::{Deserialize, Serialize};

use crate::controller::DepthController;
use crate::experiment::{ExperimentResult, ServiceSpec};
use crate::fault::CrashPolicy;
use crate::scenario::{BuiltController, ControllerSpec, Scenario, SessionSpec};
use crate::stream::ArStream;
use crate::telemetry::{FullTrace, SummarySink, TelemetrySink};
use crate::uplink::UplinkVAdaptSpec;

/// What one session observed during one slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotOutcome {
    /// The slot index τ.
    pub slot: u64,
    /// Chosen octree depth `d(τ)`.
    pub depth: u8,
    /// Visual quality `p_a(d(τ))` of the chosen depth.
    pub quality: f64,
    /// Injected workload `a(d(τ))`.
    pub arrival: f64,
    /// Offered service capacity `b(τ)`.
    pub service: f64,
    /// Work actually served.
    pub served: f64,
    /// Work dropped by a finite queue.
    pub dropped: f64,
    /// Backlog `Q(τ+1)` after the slot.
    pub backlog: f64,
}

/// Enum-dispatched service process state (the closed [`ServiceSpec`] set,
/// without the per-session `Box<dyn>` of the legacy runner).
#[derive(Debug, Clone)]
enum ServiceState {
    Constant(ConstantRate),
    Jittered(JitteredRate),
    DutyCycled(DutyCycledRate),
}

impl ServiceState {
    fn build(spec: ServiceSpec, seed: u64) -> ServiceState {
        match spec {
            ServiceSpec::Constant(rate) => ServiceState::Constant(ConstantRate::new(rate)),
            ServiceSpec::Jittered { rate, sigma } => {
                ServiceState::Jittered(JitteredRate::new(rate, sigma, seed))
            }
            ServiceSpec::DutyCycled {
                high,
                low,
                high_slots,
                low_slots,
            } => ServiceState::DutyCycled(DutyCycledRate::new(high, low, high_slots, low_slots)),
        }
    }

    fn capacity(&mut self, slot: u64) -> f64 {
        match self {
            ServiceState::Constant(s) => s.capacity(slot),
            ServiceState::Jittered(s) => s.capacity(slot),
            ServiceState::DutyCycled(s) => s.capacity(slot),
        }
    }
}

/// The one slot-advance kernel every execution path shares: Algorithm 1's
/// observe → decide → inject → serve sequence, in exactly the legacy
/// `Experiment::run` order, with telemetry routed through the sink.
///
/// The session's own service process supplies the slot's capacity. The
/// contention plane ([`crate::uplink`]) instead polls every session's
/// nominal capacity first ([`SessionBatch::fill_demands`]), admits the
/// aggregate against a shared budget, and completes the slot through
/// [`step_kernel_granted`] with the granted capacity. Both paths draw the
/// service process exactly once per slot, so an unconstrained grant is
/// bit-identical to this kernel.
fn step_kernel<C: DepthController + ?Sized, S: TelemetrySink>(
    slot: u64,
    stream: &ArStream,
    service: &mut ServiceState,
    controller: &mut C,
    queue: &mut WorkQueue,
    latency: &mut FifoLatencyTracker,
    sink: &mut S,
) -> SlotOutcome {
    let b = service.capacity(slot);
    step_kernel_granted(slot, stream, b, controller, queue, latency, sink)
}

/// [`step_kernel`] with the slot's service capacity supplied by the caller
/// (already drawn from the service process, possibly scaled down by a
/// shared-uplink admission policy).
fn step_kernel_granted<C: DepthController + ?Sized, S: TelemetrySink>(
    slot: u64,
    stream: &ArStream,
    b: f64,
    controller: &mut C,
    queue: &mut WorkQueue,
    latency: &mut FifoLatencyTracker,
    sink: &mut S,
) -> SlotOutcome {
    let profile = stream.profile_at(slot);
    // Observe Q(t) (paper Algorithm 1 line 4), decide (lines 6–11).
    let q = queue.backlog();
    let d = controller.select_depth(slot, q, &profile);
    let a = profile.arrival(d);
    let p = profile.quality(d);
    let step = queue.step(a, b);
    // Track the admitted work as one frame (drops shrink the frame).
    latency.step_streaming(slot, a - step.dropped, step.served, &mut |f| {
        sink.on_frame(&f)
    });
    let outcome = SlotOutcome {
        slot,
        depth: d,
        quality: p,
        arrival: a,
        service: b,
        served: step.served,
        dropped: step.dropped,
        backlog: step.backlog,
    };
    sink.on_slot(&outcome);
    outcome
}

/// One AR session as an incremental state machine.
///
/// Unlike the run-to-completion [`crate::experiment::Experiment`], a
/// session can be stepped slot by slot, interleaved with other sessions,
/// inspected mid-run, and driven past its nominal horizon.
#[derive(Debug)]
pub struct Session {
    stream: ArStream,
    service: ServiceState,
    controller: BuiltController,
    queue: WorkQueue,
    latency: FifoLatencyTracker,
    warmup: u64,
    horizon: u64,
    slot: u64,
}

impl Session {
    /// Builds a session from its spec with a `slots` horizon (the spec is
    /// consumed; clone it to build several sessions from one spec).
    pub fn new(spec: SessionSpec, slots: u64) -> Session {
        Session {
            service: ServiceState::build(spec.service, spec.seed),
            controller: spec.controller.build(),
            latency: spec.latency_tracker(),
            stream: spec.stream,
            queue: match spec.queue_capacity {
                Some(c) => WorkQueue::with_capacity(c),
                None => WorkQueue::new(),
            },
            warmup: spec.warmup,
            horizon: slots,
            slot: 0,
        }
    }

    /// The next slot to simulate (number of slots already taken).
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// The nominal horizon in slots ([`Session::run`]'s stopping point;
    /// [`Session::step`] may continue past it).
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Warm-up slots excluded from time averages.
    pub fn warmup(&self) -> u64 {
        self.warmup
    }

    /// `true` once the nominal horizon has been reached.
    pub fn is_done(&self) -> bool {
        self.slot >= self.horizon
    }

    /// The session's work queue (live backlog and conservation counters).
    pub fn queue(&self) -> &WorkQueue {
        &self.queue
    }

    /// The machine-readable name of the session's own controller.
    pub fn controller_name(&self) -> &'static str {
        self.controller.name()
    }

    /// Advances one slot under the session's own controller.
    pub fn step<S: TelemetrySink>(&mut self, sink: &mut S) -> SlotOutcome {
        let slot = self.slot;
        self.slot += 1;
        let Session {
            stream,
            service,
            controller,
            queue,
            latency,
            ..
        } = self;
        step_kernel(slot, stream, service, controller, queue, latency, sink)
    }

    /// Advances one slot with an externally owned controller (the open
    /// [`DepthController`] escape hatch; the session's own controller is
    /// bypassed and left untouched).
    pub fn step_with<C: DepthController + ?Sized, S: TelemetrySink>(
        &mut self,
        controller: &mut C,
        sink: &mut S,
    ) -> SlotOutcome {
        let slot = self.slot;
        self.slot += 1;
        let Session {
            stream,
            service,
            queue,
            latency,
            ..
        } = self;
        step_kernel(slot, stream, service, controller, queue, latency, sink)
    }

    /// Steps until the horizon is reached.
    pub fn run<S: TelemetrySink>(&mut self, sink: &mut S) {
        while !self.is_done() {
            self.step(sink);
        }
    }

    /// Convenience: runs to the horizon under a [`FullTrace`] and
    /// finalizes the legacy [`ExperimentResult`].
    pub fn run_to_result(mut self) -> ExperimentResult {
        let mut trace = FullTrace::new();
        self.run(&mut trace);
        trace.into_result(self.controller_name(), self.warmup, &self.queue)
    }
}

/// One session's liveness on the fault plane (see [`crate::fault`]).
///
/// Every session starts [`Liveness::Live`]; only
/// [`SessionBatch::crash_session`] moves it — the batch never crashes a
/// session on its own, so fault-free runs never leave `Live` and pay no
/// cost for the state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Liveness {
    /// The session is running normally.
    Live,
    /// The session is down and will restart at slot `until`.
    Down {
        /// The first slot the restarted session simulates again.
        until: u64,
        /// What the restart rebuilds (see [`CrashPolicy`]).
        policy: CrashPolicy,
    },
    /// The session crashed permanently and never comes back.
    Dead,
}

impl Liveness {
    /// `true` when the session is running this slot.
    pub fn is_live(&self) -> bool {
        matches!(self, Liveness::Live)
    }
}

/// The spec fragments a restart needs to rebuild per-session state
/// (everything but the stream, which stays in the batch's SoA arrays).
#[derive(Debug, Clone)]
struct RebuildInfo {
    controller: ControllerSpec,
    service: ServiceSpec,
    seed: u64,
    queue_capacity: Option<f64>,
    frame_cap: Option<usize>,
    uplink_v_adapt: Option<UplinkVAdaptSpec>,
}

impl RebuildInfo {
    fn of(spec: &SessionSpec) -> RebuildInfo {
        RebuildInfo {
            controller: spec.controller.clone(),
            service: spec.service,
            seed: spec.seed,
            queue_capacity: spec.queue_capacity,
            frame_cap: spec.frame_cap,
            uplink_v_adapt: spec.uplink_v_adapt,
        }
    }

    fn queue(&self) -> WorkQueue {
        match self.queue_capacity {
            Some(c) => WorkQueue::with_capacity(c),
            None => WorkQueue::new(),
        }
    }

    fn latency(&self) -> FifoLatencyTracker {
        match self.frame_cap {
            Some(cap) => FifoLatencyTracker::with_max_in_flight(cap),
            None => FifoLatencyTracker::new(),
        }
    }

    fn adapter(&self) -> Option<GrantRatioV> {
        self.uplink_v_adapt.map(|adapt| {
            let base_v = self
                .controller
                .proposed_v()
                .expect("validated at construction: adapt requires Proposed");
            adapt.build(base_v)
        })
    }
}

/// Default number of sessions stepped per work chunk. Fixed (never derived
/// from the worker count) so decompositions — and thus any chunk-ordered
/// reductions — are identical in serial and parallel execution.
pub const DEFAULT_SESSIONS_PER_CHUNK: usize = 64;

/// Order-preserving in-place filter by a positional keep mask (the SoA
/// compaction primitive — every parallel array drops the same rows).
fn compact_vec<T>(v: &mut Vec<T>, keep: &[bool]) {
    let mut p = 0;
    v.retain(|_| {
        let k = keep[p];
        p += 1;
        k
    });
}

/// One fan-out work unit: equal-index chunks of every per-session array,
/// including each session's liveness, local-clock offset and downtime
/// counter (the fault plane's state; all-`Live`, all-zero when no fault).
type ChunkTask<'a, S> = (
    &'a [ArStream],
    &'a mut [BuiltController],
    &'a mut [ServiceState],
    &'a mut [WorkQueue],
    &'a mut [FifoLatencyTracker],
    &'a mut [S],
    &'a [Liveness],
    &'a [u64],
    &'a mut [u64],
);

/// A [`SessionBatch::step_slot_granted`] work unit: like [`ChunkTask`] but
/// with the slot's service capacities already drawn (demands) and admitted
/// (grants), plus the per-session uplink-aware `V` adapters the
/// grant/demand feedback drives.
type GrantedChunkTask<'a, S> = (
    &'a [ArStream],
    &'a mut [BuiltController],
    &'a [f64],
    &'a [f64],
    &'a mut [Option<GrantRatioV>],
    &'a mut [WorkQueue],
    &'a mut [FifoLatencyTracker],
    &'a mut [S],
    &'a [Liveness],
    &'a [u64],
    &'a mut [u64],
);

/// A session physically evicted from the SoA arrays by
/// [`SessionBatch::compact`]: its finished telemetry keeps reporting under
/// its stable id, and its downtime keeps accruing arithmetically
/// (`downtime_at_retire + slots_since_retire`) exactly as the dead row
/// would have counted.
#[derive(Debug)]
struct Retired<S> {
    /// The session's stable id ([`SessionBatch::spawn_at`] order).
    id: u64,
    /// The sink, frozen at the crash (dead rows never feed their sink).
    sink: S,
    /// Downtime accrued while the dead row was still physically present.
    downtime: u64,
    /// The batch slot the row was evicted at.
    retire_slot: u64,
}

/// N sessions stepped in lock-step, state stored as struct-of-arrays.
///
/// One `Vec` per component (streams, controllers, service processes,
/// queues, latency trackers, sinks) keeps each component type contiguous;
/// a slot step zips equal-length chunks of all six arrays and fans the
/// chunks out over [`arvis_par`] workers. Sessions never interact, so the
/// batch is deterministic regardless of worker count, chunk size, and
/// session order.
///
/// # Stable ids and the logical view
///
/// Every session has a stable id — its creation index: scenario order for
/// the initial fleet, then [`SessionBatch::spawn_at`] order. Without churn,
/// ids and physical row indices coincide and everything below reduces to
/// the fixed-N behavior bit-for-bit. With churn, [`SessionBatch::compact`]
/// may physically evict [`Liveness::Dead`] rows, so the uplink-facing
/// surface is *id-indexed* ("logical"): [`SessionBatch::fill_backlogs`] /
/// [`SessionBatch::fill_demands`] scatter by id into vectors of
/// [`SessionBatch::logical_len`] entries (retired ids contribute the same
/// `0.0` a dead row would), [`SessionBatch::step_slot_granted`] gathers
/// grants by id, and [`SessionBatch::downtime`] /
/// [`SessionBatch::into_summaries`] assemble per-id outputs from live and
/// retired sessions alike. Compaction is therefore bitwise invisible to
/// every admission policy, aggregate, and telemetry row — the churn
/// plane's differential suite (`tests/session_churn.rs`) pins this.
#[derive(Debug)]
pub struct SessionBatch<S: TelemetrySink> {
    streams: Vec<ArStream>,
    controllers: Vec<BuiltController>,
    services: Vec<ServiceState>,
    queues: Vec<WorkQueue>,
    latencies: Vec<FifoLatencyTracker>,
    warmups: Vec<u64>,
    sinks: Vec<S>,
    /// Per-session uplink-aware `V` adapters (`None` for sessions without
    /// the knob). Driven only by [`SessionBatch::step_slot_granted`].
    adapters: Vec<Option<GrantRatioV>>,
    /// The demands drawn by the most recent
    /// [`SessionBatch::fill_demands`] — kept so the granted step can
    /// compute each session's grant/demand ratio.
    last_demands: Vec<f64>,
    /// The spec fragments each session's restart rebuilds from.
    rebuild: Vec<RebuildInfo>,
    /// Per-session liveness (all [`Liveness::Live`] without faults).
    liveness: Vec<Liveness>,
    /// Per-session local-clock offsets: a cold restart at batch slot `r`
    /// sets session `i`'s offset to `r`, and every kernel thereafter runs
    /// on `slot - local_offsets[i]` — which makes a cold-restarted
    /// session's trajectory *identical by construction* to a fresh session
    /// with the residual horizon. All-zero without faults, where
    /// `slot - 0` reproduces the fault-free arithmetic exactly.
    local_offsets: Vec<u64>,
    /// Per-session slots missed while down (includes permanent death).
    downtime: Vec<u64>,
    /// Physical row → stable session id (creation order). Identity until
    /// [`SessionBatch::compact`] evicts a dead row.
    ids: Vec<u64>,
    /// The next stable id to assign (== the logical session count).
    next_id: u64,
    /// Sessions evicted by [`SessionBatch::compact`], still reporting
    /// under their stable ids.
    retired: Vec<Retired<S>>,
    /// Scratch: per-physical-row grants gathered from the logical grant
    /// vector by [`SessionBatch::step_slot_granted`].
    phys_grants: Vec<f64>,
    /// Physical [`Liveness::Dead`] rows not yet evicted (compaction's
    /// trigger input).
    dead_rows: usize,
    slot: u64,
    horizon: u64,
    chunk: usize,
    /// `true` between [`SessionBatch::fill_demands`] and the matching
    /// [`SessionBatch::step_slot_granted`] — the service processes have
    /// already been drawn for the pending slot.
    demands_drawn: bool,
}

impl<S: TelemetrySink + Send> SessionBatch<S> {
    /// Builds a batch from a scenario, constructing one sink per session
    /// via `make_sink(index, spec)`.
    ///
    /// # Panics
    ///
    /// Panics when a session declares `uplink_v_adapt` without a
    /// [`crate::scenario::ControllerSpec::Proposed`] controller — the
    /// adaptation scales that controller's `V` and has nothing to act on
    /// otherwise.
    pub fn new(
        scenario: &Scenario,
        mut make_sink: impl FnMut(usize, &SessionSpec) -> S,
    ) -> SessionBatch<S> {
        let n = scenario.sessions.len();
        let mut batch = SessionBatch {
            streams: Vec::with_capacity(n),
            controllers: Vec::with_capacity(n),
            services: Vec::with_capacity(n),
            queues: Vec::with_capacity(n),
            latencies: Vec::with_capacity(n),
            warmups: Vec::with_capacity(n),
            sinks: Vec::with_capacity(n),
            adapters: Vec::with_capacity(n),
            last_demands: Vec::new(),
            rebuild: Vec::with_capacity(n),
            liveness: vec![Liveness::Live; n],
            local_offsets: vec![0; n],
            downtime: vec![0; n],
            ids: (0..n as u64).collect(),
            next_id: n as u64,
            retired: Vec::new(),
            phys_grants: Vec::new(),
            dead_rows: 0,
            slot: 0,
            horizon: scenario.slots,
            chunk: DEFAULT_SESSIONS_PER_CHUNK,
            demands_drawn: false,
        };
        for (i, spec) in scenario.sessions.iter().enumerate() {
            batch.streams.push(spec.stream.clone());
            batch.controllers.push(spec.controller.build());
            batch
                .services
                .push(ServiceState::build(spec.service, spec.seed));
            batch.queues.push(match spec.queue_capacity {
                Some(c) => WorkQueue::with_capacity(c),
                None => WorkQueue::new(),
            });
            batch.latencies.push(spec.latency_tracker());
            batch.warmups.push(spec.warmup);
            batch.sinks.push(make_sink(i, spec));
            batch.adapters.push(spec.uplink_v_adapt.map(|adapt| {
                let base_v = spec.controller.proposed_v().unwrap_or_else(|| {
                    panic!("session {i}: uplink_v_adapt requires a Proposed controller")
                });
                adapt.build(base_v)
            }));
            batch.rebuild.push(RebuildInfo::of(spec));
        }
        batch
    }

    /// Overrides the number of sessions per work chunk (results are
    /// invariant to this; it only tunes fan-out granularity).
    ///
    /// # Panics
    ///
    /// Panics when `chunk == 0`.
    #[must_use]
    pub fn with_chunk_size(mut self, chunk: usize) -> SessionBatch<S> {
        assert!(chunk > 0, "chunk size must be positive");
        self.chunk = chunk;
        self
    }

    /// Number of physical session rows in the batch (excludes sessions
    /// evicted by [`SessionBatch::compact`]; see
    /// [`SessionBatch::logical_len`]).
    pub fn len(&self) -> usize {
        self.queues.len()
    }

    /// Number of sessions ever created (initial fleet + every
    /// [`SessionBatch::spawn_at`]) — the length of every id-indexed
    /// ("logical") vector: backlogs, demands, grants, downtime, summaries.
    /// Equals [`SessionBatch::len`] until compaction evicts a row.
    pub fn logical_len(&self) -> usize {
        self.next_id as usize
    }

    /// Physical [`Liveness::Dead`] rows not yet evicted by
    /// [`SessionBatch::compact`].
    pub fn dead_rows(&self) -> usize {
        self.dead_rows
    }

    /// `true` for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.queues.is_empty()
    }

    /// The next slot to simulate.
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// The scenario horizon in slots.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// `true` once every session has reached the horizon.
    pub fn is_done(&self) -> bool {
        self.slot >= self.horizon
    }

    /// Session `i`'s work queue.
    pub fn queue(&self, i: usize) -> &WorkQueue {
        &self.queues[i]
    }

    /// Session `i`'s controller name.
    pub fn controller_name(&self, i: usize) -> &'static str {
        self.controllers[i].name()
    }

    /// The per-session sinks (physical row order; sinks of compacted
    /// sessions live in the retired list and are reachable only through
    /// [`SessionBatch::into_summaries`]).
    pub fn sinks(&self) -> &[S] {
        &self.sinks
    }

    /// Consumes the batch, returning the physical rows' sinks (retired
    /// sessions' sinks are dropped — use
    /// [`SessionBatch::into_summaries`] on churned summary batches).
    pub fn into_sinks(self) -> Vec<S> {
        self.sinks
    }

    /// Sum of all live backlogs, reduced in fixed chunk order (the
    /// deterministic reduction pattern: per-chunk partial sums in parallel,
    /// serial in-order combine).
    pub fn total_backlog(&self) -> f64 {
        arvis_par::map_chunks(&self.queues, self.chunk, |_, c| {
            // arvis-lint: allow(float-reduction-order, "within-chunk serial sum; map_chunks combines the per-chunk partials in fixed order — this IS the deterministic reducer")
            c.iter().map(WorkQueue::backlog).sum::<f64>()
        })
        .into_iter()
        .sum()
    }

    /// Writes every session's live backlog `Q_i(τ)` into `out` (stable-id
    /// order, resized to [`SessionBatch::logical_len`]) — the per-session
    /// observation a cross-session admission policy acts on. Retired ids
    /// report `0.0`, exactly what their dead row would (a permanent crash
    /// rebuilds an empty queue), so compaction cannot change the vector.
    pub fn fill_backlogs(&self, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.logical_len(), 0.0);
        for (p, queue) in self.queues.iter().enumerate() {
            out[self.ids[p] as usize] = queue.backlog();
        }
    }

    /// Draws every session's nominal service capacity for the *next* slot
    /// into `out` (stable-id order, resized to
    /// [`SessionBatch::logical_len`]; retired ids demand `0.0` like any
    /// dead row), advancing each service process by exactly one slot.
    ///
    /// This is phase one of a contended slot: poll demands, admit them
    /// against a shared budget, then complete the slot with
    /// [`SessionBatch::step_slot_granted`]. Every service process is drawn
    /// exactly once per slot — the same draws, in the same per-session
    /// order, as the one-phase [`SessionBatch::step_slot`] — so granting
    /// each session its full demand reproduces the uncoupled batch
    /// bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics when called twice for the same slot (demands already drawn)
    /// or when the batch is already past its horizon.
    pub fn fill_demands(&mut self, out: &mut Vec<f64>) {
        assert!(
            !self.demands_drawn,
            "fill_demands called twice for slot {}",
            self.slot
        );
        assert!(
            self.slot < self.horizon,
            "fill_demands past the horizon ({})",
            self.horizon
        );
        self.demands_drawn = true;
        let slot = self.slot;
        // Draw per physical row (the service processes live there), keeping
        // the draws so step_slot_granted can feed each session's
        // grant/demand ratio to its uplink-aware V adapter.
        self.last_demands.clear();
        self.last_demands.resize(self.services.len(), 0.0);
        let c = self.chunk;
        #[allow(clippy::type_complexity)]
        let tasks: Vec<(&[Liveness], &[u64], &mut [ServiceState], &mut [f64])> = self
            .liveness
            .chunks(c)
            .zip(self.local_offsets.chunks(c))
            .zip(self.services.chunks_mut(c))
            .zip(self.last_demands.chunks_mut(c))
            .map(|(((li, of), sv), dm)| (li, of, sv, dm))
            .collect();
        arvis_par::for_each_task(tasks, |_, (li, of, services, demands)| {
            for (i, (service, demand)) in services.iter_mut().zip(demands.iter_mut()).enumerate() {
                // A down or dead session demands nothing and — crucially —
                // draws nothing: its service process is not advanced, so a
                // cold restart replays a fresh process from its own seed.
                *demand = if li[i].is_live() {
                    service.capacity(slot - of[i])
                } else {
                    0.0
                };
            }
        });
        // Scatter to the logical (stable-id) view the admission policies
        // act on; retired ids stay 0.0, bitwise what a dead row writes.
        out.clear();
        out.resize(self.logical_len(), 0.0);
        for (p, &demand) in self.last_demands.iter().enumerate() {
            out[self.ids[p] as usize] = demand;
        }
    }

    /// Phase two of a contended slot: advances every session by one slot
    /// with the *granted* service capacities (stable-id order, one entry
    /// per [`SessionBatch::logical_len`] id), instead of drawing the
    /// service processes (already drawn by [`SessionBatch::fill_demands`]).
    /// Grants addressed to retired ids are ignored — they are `0.0` for
    /// any work-conserving policy, since a retired id demands nothing.
    ///
    /// # Panics
    ///
    /// Panics when `granted.len() != self.logical_len()` or when
    /// [`SessionBatch::fill_demands`] was not called for this slot (the
    /// service processes would otherwise skip a draw and desynchronize
    /// from the uncoupled batch).
    pub fn step_slot_granted(&mut self, granted: &[f64]) {
        assert_eq!(
            granted.len(),
            self.logical_len(),
            "granted-service vector length must match the logical session count"
        );
        assert!(
            self.demands_drawn,
            "step_slot_granted without fill_demands for slot {}",
            self.slot
        );
        self.demands_drawn = false;
        let slot = self.slot;
        self.slot += 1;
        // Gather the logical grant vector onto the physical rows.
        self.phys_grants.clear();
        self.phys_grants
            .extend(self.ids.iter().map(|&id| granted[id as usize]));
        let c = self.chunk;
        let mut tasks: Vec<GrantedChunkTask<'_, S>> =
            Vec::with_capacity(self.phys_grants.len().div_ceil(c));
        let mut streams = self.streams.chunks(c);
        let mut controllers = self.controllers.chunks_mut(c);
        let mut grants = self.phys_grants.chunks(c);
        let mut demands = self.last_demands.chunks(c);
        let mut adapters = self.adapters.chunks_mut(c);
        let mut queues = self.queues.chunks_mut(c);
        let mut latencies = self.latencies.chunks_mut(c);
        let mut sinks = self.sinks.chunks_mut(c);
        let mut liveness = self.liveness.chunks(c);
        let mut offsets = self.local_offsets.chunks(c);
        let mut downtime = self.downtime.chunks_mut(c);
        #[allow(clippy::type_complexity)]
        while let (
            Some(st),
            Some(ct),
            Some(gr),
            Some(dm),
            Some(ad),
            Some(qu),
            Some(la),
            Some(si),
            Some(li),
            Some(of),
            Some(dt),
        ) = (
            streams.next(),
            controllers.next(),
            grants.next(),
            demands.next(),
            adapters.next(),
            queues.next(),
            latencies.next(),
            sinks.next(),
            liveness.next(),
            offsets.next(),
            downtime.next(),
        ) {
            tasks.push((st, ct, gr, dm, ad, qu, la, si, li, of, dt));
        }
        arvis_par::for_each_task(tasks, |_, (st, ct, gr, dm, ad, qu, la, si, li, of, dt)| {
            for i in 0..st.len() {
                if !li[i].is_live() {
                    dt[i] += 1;
                    continue;
                }
                if let Some(adapter) = ad[i].as_mut() {
                    // The slot's admission outcome: what fraction of the
                    // polled demand the uplink granted (1 when idle).
                    let ratio = if dm[i] > 0.0 { gr[i] / dm[i] } else { 1.0 };
                    ct[i].set_v(adapter.observe(ratio));
                }
                step_kernel_granted(
                    slot - of[i],
                    &st[i],
                    gr[i],
                    &mut ct[i],
                    &mut qu[i],
                    &mut la[i],
                    &mut si[i],
                );
            }
        });
    }

    /// Crashes the session with stable id `i` under `policy`, effective
    /// immediately: the session misses the *next* simulated slot and every
    /// slot before `restart_at` (ignored — pass any value — for
    /// [`CrashPolicy::Permanent`]). Ids equal batch indices until
    /// compaction evicts a row, so pre-churn callers are unaffected.
    ///
    /// [`CrashPolicy::ColdRestart`] and [`CrashPolicy::Permanent`] discard
    /// the queue and in-flight frames at the crash (the device lost its
    /// state); [`CrashPolicy::WarmRestart`] preserves them. The restart
    /// itself happens in [`SessionBatch::apply_restarts`] — the fault
    /// plane ([`crate::fault::FaultPlane::apply_crashes`]) drives both on
    /// the contended path; the uncoupled [`SessionBatch::step_slot`] /
    /// [`SessionBatch::run`] paths skip non-live sessions but never
    /// restart them.
    ///
    /// # Panics
    ///
    /// Panics when the session is already down or dead (the scenario
    /// validation in [`crate::fault::FaultPlan::validate`] rejects
    /// overlapping crash schedules), or when the id was retired by
    /// compaction (scenario validation forbids churn lifetimes combined
    /// with `session_crash` events, so fault plans never hit this).
    pub fn crash_session(&mut self, i: usize, policy: CrashPolicy, restart_at: u64) {
        let p = self
            .ids
            .iter()
            .position(|&id| id == i as u64)
            .unwrap_or_else(|| {
                panic!("session {i} is no longer in the batch (departed and compacted)")
            });
        assert!(
            self.liveness[p].is_live(),
            "session {i} is already down or dead"
        );
        match policy {
            CrashPolicy::Permanent => {
                self.liveness[p] = Liveness::Dead;
                self.dead_rows += 1;
                self.queues[p] = self.rebuild[p].queue();
                self.latencies[p] = self.rebuild[p].latency();
            }
            CrashPolicy::ColdRestart => {
                self.liveness[p] = Liveness::Down {
                    until: restart_at,
                    policy,
                };
                self.queues[p] = self.rebuild[p].queue();
                self.latencies[p] = self.rebuild[p].latency();
            }
            CrashPolicy::WarmRestart => {
                self.liveness[p] = Liveness::Down {
                    until: restart_at,
                    policy,
                };
            }
        }
    }

    /// Restarts every session whose downtime has elapsed (`until <= slot`,
    /// where `slot` is the slot about to be simulated).
    ///
    /// A [`CrashPolicy::ColdRestart`] rebuilds the controller, service
    /// process, queue, latency tracker and `V` adapter from the spec and
    /// restarts the session's local clock at `slot` — from here on the
    /// session is *identical by construction* to a fresh session with the
    /// residual horizon. A [`CrashPolicy::WarmRestart`] re-warms only the
    /// controller and adapter, preserving the queue, in-flight frames,
    /// service process and local clock.
    pub fn apply_restarts(&mut self, slot: u64) {
        for i in 0..self.liveness.len() {
            let Liveness::Down { until, policy } = self.liveness[i] else {
                continue;
            };
            if until > slot {
                continue;
            }
            match policy {
                CrashPolicy::ColdRestart => {
                    self.controllers[i] = self.rebuild[i].controller.build();
                    self.services[i] =
                        ServiceState::build(self.rebuild[i].service, self.rebuild[i].seed);
                    self.queues[i] = self.rebuild[i].queue();
                    self.latencies[i] = self.rebuild[i].latency();
                    self.adapters[i] = self.rebuild[i].adapter();
                    self.local_offsets[i] = slot;
                }
                CrashPolicy::WarmRestart => {
                    self.controllers[i] = self.rebuild[i].controller.build();
                    self.adapters[i] = self.rebuild[i].adapter();
                }
                CrashPolicy::Permanent => unreachable!("permanent crashes are Dead, not Down"),
            }
            self.liveness[i] = Liveness::Live;
        }
    }

    /// Appends one freshly built session to every SoA array, live
    /// immediately: its first simulated slot is the batch's current slot,
    /// and its local clock starts there — by the cold-restart construction
    /// ([`SessionBatch::apply_restarts`]) the joiner's trajectory is
    /// *identical by construction* to a fresh session with the residual
    /// horizon. The new session gets the next stable id (`logical_len`
    /// grows by one). This is the churn plane's join primitive
    /// ([`crate::churn::ChurnPlane`]).
    ///
    /// # Panics
    ///
    /// Panics mid-slot (between [`SessionBatch::fill_demands`] and
    /// [`SessionBatch::step_slot_granted`]) — the slot's logical vectors
    /// are already sized — and when the spec declares `uplink_v_adapt`
    /// without a [`crate::scenario::ControllerSpec::Proposed`] controller.
    pub fn spawn_at(&mut self, spec: &SessionSpec, sink: S) {
        assert!(
            !self.demands_drawn,
            "spawn_at mid-slot: slot {} has polled demands",
            self.slot
        );
        let id = self.next_id;
        self.next_id += 1;
        self.streams.push(spec.stream.clone());
        self.controllers.push(spec.controller.build());
        self.services
            .push(ServiceState::build(spec.service, spec.seed));
        self.queues.push(match spec.queue_capacity {
            Some(c) => WorkQueue::with_capacity(c),
            None => WorkQueue::new(),
        });
        self.latencies.push(spec.latency_tracker());
        self.warmups.push(spec.warmup);
        self.sinks.push(sink);
        self.adapters.push(spec.uplink_v_adapt.map(|adapt| {
            let base_v = spec.controller.proposed_v().unwrap_or_else(|| {
                panic!("session {id}: uplink_v_adapt requires a Proposed controller")
            });
            adapt.build(base_v)
        }));
        self.rebuild.push(RebuildInfo::of(spec));
        self.liveness.push(Liveness::Live);
        self.local_offsets.push(self.slot);
        self.downtime.push(0);
        self.ids.push(id);
    }

    /// Physically evicts every [`Liveness::Dead`] row from the SoA arrays
    /// (order-preserving), moving its sink, downtime and stable id to the
    /// retired list so telemetry and downtime keep reporting under the
    /// same id. Returns the number of rows evicted.
    ///
    /// Bitwise invisible: the logical (id-indexed) surface — backlogs,
    /// demands, grants, downtime, summaries, `down_sessions` — is
    /// identical before and after, because a retired id contributes
    /// exactly what its dead row did (`0.0` demand/backlog, arithmetic
    /// downtime). Only the per-slot walk cost changes.
    ///
    /// # Panics
    ///
    /// Panics mid-slot (between [`SessionBatch::fill_demands`] and
    /// [`SessionBatch::step_slot_granted`]) — `last_demands` is positional
    /// and must not shift under a pending grant.
    pub fn compact(&mut self) -> usize {
        assert!(
            !self.demands_drawn,
            "compact mid-slot: slot {} has polled demands",
            self.slot
        );
        let keep: Vec<bool> = self
            .liveness
            .iter()
            .map(|l| !matches!(l, Liveness::Dead))
            .collect();
        let evicted = keep.iter().filter(|k| !**k).count();
        if evicted == 0 {
            return 0;
        }
        let slot = self.slot;
        let sinks = std::mem::take(&mut self.sinks);
        let mut kept = Vec::with_capacity(sinks.len() - evicted);
        for (p, sink) in sinks.into_iter().enumerate() {
            if keep[p] {
                kept.push(sink);
            } else {
                self.retired.push(Retired {
                    id: self.ids[p],
                    sink,
                    downtime: self.downtime[p],
                    retire_slot: slot,
                });
            }
        }
        self.sinks = kept;
        compact_vec(&mut self.streams, &keep);
        compact_vec(&mut self.controllers, &keep);
        compact_vec(&mut self.services, &keep);
        compact_vec(&mut self.queues, &keep);
        compact_vec(&mut self.latencies, &keep);
        compact_vec(&mut self.warmups, &keep);
        compact_vec(&mut self.adapters, &keep);
        compact_vec(&mut self.rebuild, &keep);
        compact_vec(&mut self.liveness, &keep);
        compact_vec(&mut self.local_offsets, &keep);
        compact_vec(&mut self.downtime, &keep);
        compact_vec(&mut self.ids, &keep);
        self.dead_rows = 0;
        evicted
    }

    /// Physical row `i`'s liveness (rows shift when
    /// [`SessionBatch::compact`] evicts; without compaction, row == id).
    pub fn liveness(&self, i: usize) -> Liveness {
        self.liveness[i]
    }

    /// Per-session slots missed while down or dead, in stable-id order
    /// (one entry per [`SessionBatch::logical_len`] id). A retired
    /// session's downtime keeps accruing arithmetically — exactly the
    /// per-slot `+1` its dead row would have counted.
    pub fn downtime(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.logical_len()];
        for (p, &id) in self.ids.iter().enumerate() {
            out[id as usize] = self.downtime[p];
        }
        for r in &self.retired {
            out[r.id as usize] = r.downtime + (self.slot - r.retire_slot);
        }
        out
    }

    /// Number of sessions currently down or dead (retired sessions are
    /// dead, so compaction leaves the count unchanged).
    pub fn down_sessions(&self) -> u64 {
        self.liveness.iter().filter(|l| !l.is_live()).count() as u64 + self.retired.len() as u64
    }

    /// Splits the parallel arrays into equal-index chunk tuples — the work
    /// units fanned out over `arvis_par` workers.
    fn chunk_tasks(&mut self) -> Vec<ChunkTask<'_, S>> {
        let c = self.chunk;
        let mut tasks = Vec::with_capacity(self.queues.len().div_ceil(c));
        let mut streams = self.streams.chunks(c);
        let mut controllers = self.controllers.chunks_mut(c);
        let mut services = self.services.chunks_mut(c);
        let mut queues = self.queues.chunks_mut(c);
        let mut latencies = self.latencies.chunks_mut(c);
        let mut sinks = self.sinks.chunks_mut(c);
        let mut liveness = self.liveness.chunks(c);
        let mut offsets = self.local_offsets.chunks(c);
        let mut downtime = self.downtime.chunks_mut(c);
        #[allow(clippy::type_complexity)]
        while let (
            Some(st),
            Some(ct),
            Some(sv),
            Some(qu),
            Some(la),
            Some(si),
            Some(li),
            Some(of),
            Some(dt),
        ) = (
            streams.next(),
            controllers.next(),
            services.next(),
            queues.next(),
            latencies.next(),
            sinks.next(),
            liveness.next(),
            offsets.next(),
            downtime.next(),
        ) {
            tasks.push((st, ct, sv, qu, la, si, li, of, dt));
        }
        tasks
    }

    /// Advances every session by one slot, fanning chunks of sessions out
    /// over the workers.
    ///
    /// Lock-step slot-major stepping is for callers that need cross-session
    /// synchronization points (e.g. per-slot aggregate telemetry or live
    /// admission control). When the whole horizon is known upfront,
    /// [`SessionBatch::run`] is substantially faster: it sweeps each
    /// session's slots back to back, keeping that session's state cache-hot
    /// instead of streaming the entire batch's state through cache once per
    /// slot.
    pub fn step_slot(&mut self) {
        assert!(
            !self.demands_drawn,
            "slot {} has polled demands; complete it with step_slot_granted",
            self.slot
        );
        let slot = self.slot;
        self.slot += 1;
        let tasks = self.chunk_tasks();
        arvis_par::for_each_task(tasks, |_, (st, ct, sv, qu, la, si, li, of, dt)| {
            for i in 0..st.len() {
                if !li[i].is_live() {
                    dt[i] += 1;
                    continue;
                }
                step_kernel(
                    slot - of[i],
                    &st[i],
                    &mut sv[i],
                    &mut ct[i],
                    &mut qu[i],
                    &mut la[i],
                    &mut si[i],
                );
            }
        });
    }

    /// Steps every session to the horizon.
    ///
    /// Sessions are mutually independent, so this sweeps session-major
    /// inside each chunk task (every session runs all its remaining slots
    /// while its state is cache-resident) while chunks fan out over the
    /// workers — bit-identical to repeated [`SessionBatch::step_slot`]
    /// calls, and the two can be freely interleaved.
    pub fn run(&mut self) {
        assert!(
            !self.demands_drawn,
            "slot {} has polled demands; complete it with step_slot_granted",
            self.slot
        );
        let (start, horizon) = (self.slot, self.horizon);
        if start >= horizon {
            return;
        }
        self.slot = horizon;
        let tasks = self.chunk_tasks();
        arvis_par::for_each_task(tasks, |_, (st, ct, sv, qu, la, si, li, of, dt)| {
            for i in 0..st.len() {
                if !li[i].is_live() {
                    dt[i] += horizon - start;
                    continue;
                }
                for slot in start..horizon {
                    step_kernel(
                        slot - of[i],
                        &st[i],
                        &mut sv[i],
                        &mut ct[i],
                        &mut qu[i],
                        &mut la[i],
                        &mut si[i],
                    );
                }
            }
        });
    }
}

impl SessionBatch<FullTrace> {
    /// A batch recording the full per-slot trace of every session
    /// (O(sessions × slots) memory — the legacy-compatible mode).
    pub fn full_trace(scenario: &Scenario) -> SessionBatch<FullTrace> {
        SessionBatch::new(scenario, |_, _| FullTrace::new())
    }

    /// Finalizes every session into the legacy [`ExperimentResult`]
    /// (batch order).
    pub fn into_results(self) -> Vec<ExperimentResult> {
        let names: Vec<&'static str> = self.controllers.iter().map(|c| c.name()).collect();
        self.sinks
            .into_iter()
            .zip(names)
            .zip(self.warmups)
            .zip(&self.queues)
            .map(|(((trace, name), warmup), queue)| trace.into_result(name, warmup, queue))
            .collect()
    }
}

impl SessionBatch<SummarySink> {
    /// A batch with streaming summary-only telemetry: O(sessions) memory
    /// regardless of the horizon.
    pub fn summary_only(scenario: &Scenario) -> SessionBatch<SummarySink> {
        let slots = scenario.slots;
        SessionBatch::new(scenario, |_, spec| SummarySink::new(spec.warmup, slots))
    }

    /// Finalizes every session's streaming summary, in stable-id order
    /// (one entry per [`SessionBatch::logical_len`] id): retired sessions
    /// report their sink frozen at the crash — bitwise the summary their
    /// dead row would have finished with, since dead rows never feed
    /// their sink.
    pub fn into_summaries(self) -> Vec<crate::telemetry::SessionSummary> {
        let mut out: Vec<Option<crate::telemetry::SessionSummary>> =
            (0..self.logical_len()).map(|_| None).collect();
        for r in &self.retired {
            out[r.id as usize] = Some(r.sink.finish());
        }
        for (p, sink) in self.sinks.iter().enumerate() {
            out[self.ids[p] as usize] = Some(sink.finish());
        }
        out.into_iter()
            .map(|s| s.expect("every stable id has exactly one sink"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;
    use crate::scenario::ControllerSpec;
    use crate::telemetry::NullSink;
    use arvis_quality::DepthProfile;

    fn profile() -> DepthProfile {
        DepthProfile::from_parts(
            5,
            vec![100.0, 400.0, 1600.0, 6400.0, 25600.0, 102400.0],
            vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
        )
    }

    fn config(rate: f64, slots: u64) -> ExperimentConfig {
        ExperimentConfig::new(profile(), rate, slots).with_controller_v(1e7)
    }

    #[test]
    fn session_steps_incrementally() {
        let cfg = config(2_000.0, 50);
        let spec = SessionSpec::from_config(&cfg, ControllerSpec::OnlyMax);
        let mut session = Session::new(spec, cfg.slots);
        assert_eq!(session.slot(), 0);
        assert!(!session.is_done());
        let mut sink = NullSink;
        let first = session.step(&mut sink);
        assert_eq!(first.slot, 0);
        assert_eq!(first.depth, 10);
        assert_eq!(first.arrival, 102_400.0);
        // Lindley: nothing to serve in slot 0, then the arrival enters.
        assert_eq!(first.backlog, 102_400.0);
        assert_eq!(session.slot(), 1);
        while !session.is_done() {
            session.step(&mut sink);
        }
        assert_eq!(session.slot(), 50);
        // Stepping past the horizon is allowed.
        let extra = session.step(&mut sink);
        assert_eq!(extra.slot, 50);
    }

    #[test]
    fn session_run_to_result_matches_summary_sink_means() {
        let cfg = config(2_000.0, 400);
        let spec = SessionSpec::from_config(&cfg, ControllerSpec::Proposed { v: 1e7 });
        let result = Session::new(spec.clone(), cfg.slots).run_to_result();

        let mut session = Session::new(spec, cfg.slots);
        let mut sink = SummarySink::new(cfg.warmup, cfg.slots);
        session.run(&mut sink);
        let summary = sink.finish();

        assert_eq!(summary.slots, 400);
        assert!((summary.mean_quality - result.mean_quality).abs() < 1e-12);
        assert!((summary.mean_backlog - result.mean_backlog).abs() < 1e-12);
        assert!((summary.dropped_total - result.dropped_total).abs() < 1e-12);
        assert!(
            (summary.frame_latency_mean - result.frame_latency.mean).abs() < 1e-12,
            "streaming latency mean must be exact"
        );
        assert_eq!(
            summary.littles_delay.is_some(),
            result.littles_delay.is_some()
        );
        assert!((summary.littles_delay.unwrap() - result.littles_delay.unwrap()).abs() < 1e-12);
        assert_eq!(summary.stable, result.stable);
        assert!((summary.depth_switch_rate - result.depth_switch_rate).abs() < 1e-12);
    }

    #[test]
    fn batch_runs_all_sessions_to_horizon() {
        let cfg = config(2_000.0, 120);
        let scenario = Scenario::replicated(&cfg, ControllerSpec::Proposed { v: 1e7 }, 9);
        let mut batch = SessionBatch::summary_only(&scenario);
        assert_eq!(batch.len(), 9);
        batch.run();
        assert!(batch.is_done());
        assert_eq!(batch.slot(), 120);
        let summaries = batch.into_summaries();
        assert_eq!(summaries.len(), 9);
        for s in &summaries {
            assert_eq!(s.slots, 120);
            assert!(s.stable);
        }
    }

    #[test]
    fn batch_total_backlog_is_chunk_invariant() {
        let cfg = config(2_000.0, 60);
        let scenario = Scenario::replicated(&cfg, ControllerSpec::OnlyMax, 13);
        let mut a = SessionBatch::summary_only(&scenario).with_chunk_size(3);
        let mut b = SessionBatch::summary_only(&scenario).with_chunk_size(64);
        a.run();
        b.run();
        assert_eq!(a.total_backlog().to_bits(), b.total_backlog().to_bits());
        assert!(a.total_backlog() > 0.0);
    }

    #[test]
    fn batch_full_trace_exposes_series() {
        let cfg = config(2_000.0, 40);
        let scenario = Scenario::single(&cfg, ControllerSpec::OnlyMin);
        let mut batch = SessionBatch::full_trace(&scenario);
        batch.run();
        assert_eq!(batch.sinks()[0].backlog.len(), 40);
        let results = batch.into_results();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].controller, "only_min_depth");
        assert_eq!(results[0].backlog.len(), 40);
    }

    #[test]
    fn csv_trace_matches_to_csv_and_labels_real_slots() {
        let cfg = config(2_000.0, 30);
        let spec = SessionSpec::from_config(&cfg, ControllerSpec::Proposed { v: 1e7 });

        // Full run: the streaming CSV must equal the retained-trace CSV.
        let mut csv_sink = crate::telemetry::CsvTrace::new();
        Session::new(spec.clone(), cfg.slots).run(&mut csv_sink);
        let result = Session::new(spec.clone(), cfg.slots).run_to_result();
        assert_eq!(csv_sink.csv(), result.to_csv());

        // Attached mid-run: rows are labelled with the simulated slot.
        let mut session = Session::new(spec, cfg.slots);
        let mut warmup_sink = NullSink;
        for _ in 0..5 {
            session.step(&mut warmup_sink);
        }
        let mut late = crate::telemetry::CsvTrace::new();
        session.step(&mut late);
        let first_row = late.csv().lines().nth(1).expect("one data row");
        assert!(first_row.starts_with("5,"), "got {first_row}");
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn batch_rejects_zero_chunk() {
        let cfg = config(2_000.0, 10);
        let scenario = Scenario::single(&cfg, ControllerSpec::OnlyMin);
        let _ = SessionBatch::summary_only(&scenario).with_chunk_size(0);
    }
}
