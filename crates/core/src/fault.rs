//! The deterministic fault-injection plane: outages, grant loss, session
//! crash/restart, and admission-control degradation.
//!
//! Every run the repo measured before this module was fault-free: the
//! uplink budget could *vary* ([`crate::uplink::BudgetProfile`]) but never
//! blacked out with loss semantics, sessions never stalled or lost state,
//! and nothing was ever shed at admission. This module adds all of that as
//! *data* — a [`FaultPlan`] of typed events carried by the scenario file
//! (`"schema": 2`) — while keeping the runtime's determinism contract
//! intact: a faulted run is bit-identical on replay, and an empty
//! [`FaultPlan`] is bit-identical to the fault-free path.
//!
//! ## Event types
//!
//! - [`FaultEvent::Outage`] — the uplink budget is forced to `0` for a
//!   window of slots, composing on top of whatever
//!   [`crate::uplink::BudgetProfile`] the scenario declares;
//! - [`FaultEvent::Brownout`] — the budget is multiplied by a factor in
//!   `[0, 1]` for a window (overlapping windows multiply);
//! - [`FaultEvent::GrantLoss`] — one session's *granted* capacity is lost
//!   after allocation with probability `p` per slot, drawn from a
//!   dedicated seeded stream so the sessions' own RNGs (and therefore
//!   every uncoupled path) stay bit-identical;
//! - [`FaultEvent::SessionCrash`] — one session goes down at a slot under
//!   a [`CrashPolicy`]: `ColdRestart` (queue + controller state reset,
//!   local clock restarted), `WarmRestart` (queue preserved, controller
//!   re-warmed), or `Permanent` (never comes back).
//!
//! ## Determinism contract
//!
//! - Grant-loss draws come from per-event xoshiro streams seeded by the
//!   event's own `seed`; exactly **one Bernoulli draw per event per slot**
//!   is taken, whatever the liveness or guard state, so composing faults
//!   never shifts another fault's draws.
//! - The degradation guard's shed set is chosen by *weight value* (whole
//!   lowest-weight groups), never by session index, so permuting sessions
//!   (together with their weights and fault events) permutes the results
//!   bit-for-bit — the same order-invariance the uplink policies keep.
//! - A `ColdRestart` session's post-restart trajectory is bit-identical
//!   to a fresh session with the residual horizon: the restart rebuilds
//!   the controller, queue, latency tracker, service process and `V`
//!   adapter from the spec and restarts the session's local clock.
//!
//! `tests/fault_plane.rs` pins all of the above, plus a seeded chaos soak
//! (hundreds of random fault plans over random fleets).

use serde::{Deserialize, Serialize};

use arvis_sim::rng::seeded;
use rand::rngs::StdRng;
use rand::Rng;

use crate::json::{self, JsonError, JsonValue};
use crate::session::SessionBatch;
use crate::telemetry::TelemetrySink;
use crate::uplink::invariant_sum;

/// What happens to a crashed session's state, and whether it comes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrashPolicy {
    /// The session restarts with its queue, controller, latency tracker,
    /// service process and `V` adapter rebuilt from the spec, and its
    /// local clock restarted — bit-identical to a fresh session with the
    /// residual horizon.
    ColdRestart,
    /// The session restarts with its queue (and latency tracker, service
    /// process and clock) preserved; only the controller and `V` adapter
    /// are re-warmed from the spec.
    WarmRestart,
    /// The session never comes back; its queue is discarded at the crash.
    Permanent,
}

impl CrashPolicy {
    /// Machine-readable policy name (the scenario-file tag).
    pub fn name(&self) -> &'static str {
        match self {
            CrashPolicy::ColdRestart => "cold_restart",
            CrashPolicy::WarmRestart => "warm_restart",
            CrashPolicy::Permanent => "permanent",
        }
    }
}

/// One typed fault event of a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// The uplink budget is forced to zero for `slots` slots starting at
    /// `start` (composes with — overrides — the scenario's budget
    /// profile).
    Outage {
        /// First affected slot.
        start: u64,
        /// Window length in slots (≥ 1).
        slots: u64,
    },
    /// The uplink budget is multiplied by `factor ∈ [0, 1]` for `slots`
    /// slots starting at `start`; overlapping brownouts multiply.
    Brownout {
        /// First affected slot.
        start: u64,
        /// Window length in slots (≥ 1).
        slots: u64,
        /// Budget multiplier in `[0, 1]`.
        factor: f64,
    },
    /// Session `session`'s granted capacity is lost (set to zero after
    /// allocation) with probability `p` each slot, drawn from a dedicated
    /// stream seeded with `seed`. At most one `GrantLoss` per session.
    GrantLoss {
        /// The affected session (batch order).
        session: usize,
        /// Per-slot loss probability in `[0, 1]`.
        p: f64,
        /// Seed of the event's own Bernoulli stream.
        seed: u64,
    },
    /// Session `session` crashes at `slot` (missing that slot) and — for
    /// the restartable policies — comes back `restart_after` slots later.
    SessionCrash {
        /// The affected session (batch order).
        session: usize,
        /// The first slot the session misses.
        slot: u64,
        /// Downtime in slots (required ≥ 1 for the restartable policies,
        /// forbidden for [`CrashPolicy::Permanent`]).
        restart_after: Option<u64>,
        /// What happens to the session's state.
        policy: CrashPolicy,
    },
}

/// How the degradation guard sheds the selected tenants' demands.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ShedMode {
    /// Shed tenants' demands are zeroed for the slot (full deferral).
    Defer,
    /// Shed tenants' demands are multiplied by `factor ∈ [0, 1)`.
    Clamp {
        /// Demand multiplier in `[0, 1)`.
        factor: f64,
    },
}

/// Admission control on the contended path: when the EMA'd
/// contended-fraction or the aggregate backlog crosses a threshold, the
/// guard sheds load deterministically — whole lowest-weight tenant groups
/// (weights from a `weighted_max_weight` policy, uniform otherwise — note
/// uniform weights form one group, so the guard then defers the whole
/// fleet) — and recovers with hysteresis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationGuardSpec {
    /// EMA smoothing factor for the contended-fraction signal, in
    /// `(0, 1]`.
    pub ema_alpha: f64,
    /// The guard engages when the smoothed contended fraction reaches
    /// this level (in `[release_below, 1]`).
    pub engage_above: f64,
    /// The guard releases once the smoothed contended fraction falls to
    /// this level *and* the backlog is below `backlog_limit` (hysteresis;
    /// in `[0, engage_above]`).
    pub release_below: f64,
    /// Aggregate-backlog threshold that also engages the guard
    /// (`f64::INFINITY` disables the backlog trigger).
    pub backlog_limit: f64,
    /// Fraction of the fleet to shed when engaged, in `(0, 1]`; whole
    /// lowest-weight groups are shed until at least
    /// `ceil(shed_fraction · n)` sessions are covered.
    pub shed_fraction: f64,
    /// What shedding does to the selected demands.
    pub mode: ShedMode,
}

impl DegradationGuardSpec {
    /// Validates the guard parameters.
    ///
    /// # Panics
    ///
    /// Panics when `ema_alpha ∉ (0, 1]`,
    /// `0 ≤ release_below ≤ engage_above ≤ 1` fails, `backlog_limit` is
    /// NaN or non-positive, `shed_fraction ∉ (0, 1]`, or a clamp factor
    /// is outside `[0, 1)`.
    pub fn validate(&self) {
        assert!(
            self.ema_alpha > 0.0 && self.ema_alpha <= 1.0,
            "guard ema_alpha must be in (0, 1], got {}",
            self.ema_alpha
        );
        assert!(
            0.0 <= self.release_below
                && self.release_below <= self.engage_above
                && self.engage_above <= 1.0,
            "guard needs 0 <= release_below <= engage_above <= 1, got [{}, {}]",
            self.release_below,
            self.engage_above
        );
        assert!(
            !self.backlog_limit.is_nan() && self.backlog_limit > 0.0,
            "guard backlog_limit must be positive (inf disables it), got {}",
            self.backlog_limit
        );
        assert!(
            self.shed_fraction > 0.0 && self.shed_fraction <= 1.0,
            "guard shed_fraction must be in (0, 1], got {}",
            self.shed_fraction
        );
        if let ShedMode::Clamp { factor } = self.mode {
            assert!(
                (0.0..1.0).contains(&factor),
                "guard clamp factor must be in [0, 1), got {factor}"
            );
        }
    }

    /// Encodes the guard for a scenario file.
    ///
    /// # Errors
    ///
    /// Errors on non-finite fields without a file form (everything but an
    /// infinite `backlog_limit`).
    pub fn to_json(&self) -> Result<JsonValue, JsonError> {
        let mode = match self.mode {
            ShedMode::Defer => JsonValue::obj(vec![("type", JsonValue::str("defer"))]),
            ShedMode::Clamp { factor } => JsonValue::obj(vec![
                ("type", JsonValue::str("clamp")),
                ("factor", json::finite_num("factor", factor)?),
            ]),
        };
        Ok(JsonValue::obj(vec![
            ("ema_alpha", json::finite_num("ema_alpha", self.ema_alpha)?),
            (
                "engage_above",
                json::finite_num("engage_above", self.engage_above)?,
            ),
            (
                "release_below",
                json::finite_num("release_below", self.release_below)?,
            ),
            (
                "backlog_limit",
                json::num_or_inf_checked("backlog_limit", self.backlog_limit)?,
            ),
            (
                "shed_fraction",
                json::finite_num("shed_fraction", self.shed_fraction)?,
            ),
            ("mode", mode),
        ]))
    }

    /// Decodes the guard from its scenario-file form, enforcing every
    /// [`DegradationGuardSpec::validate`] condition as a positioned error.
    ///
    /// # Errors
    ///
    /// Errors (with the offending position) on unknown or missing keys,
    /// wrong types, and out-of-range parameters.
    pub fn from_json(v: &JsonValue) -> Result<DegradationGuardSpec, JsonError> {
        let mut obj = v.as_obj()?;
        let alpha_node = obj.req("ema_alpha")?;
        let ema_alpha = alpha_node.as_f64()?;
        if !(ema_alpha > 0.0 && ema_alpha <= 1.0) {
            return Err(JsonError::at(
                alpha_node.pos,
                format!("ema_alpha must be in (0, 1], got {ema_alpha}"),
            ));
        }
        let engage_node = obj.req("engage_above")?;
        let engage_above = engage_node.as_f64()?;
        let release_node = obj.req("release_below")?;
        let release_below = release_node.as_f64()?;
        if !(0.0 <= release_below && release_below <= engage_above && engage_above <= 1.0) {
            return Err(JsonError::at(
                release_node.pos,
                format!(
                    "need 0 <= release_below <= engage_above <= 1, \
                     got [{release_below}, {engage_above}]"
                ),
            ));
        }
        let limit_node = obj.req("backlog_limit")?;
        let backlog_limit = limit_node.as_f64_or_inf()?;
        if backlog_limit <= 0.0 || backlog_limit.is_nan() {
            return Err(JsonError::at(
                limit_node.pos,
                format!("backlog_limit must be positive (inf disables it), got {backlog_limit}"),
            ));
        }
        let shed_node = obj.req("shed_fraction")?;
        let shed_fraction = shed_node.as_f64()?;
        if !(shed_fraction > 0.0 && shed_fraction <= 1.0) {
            return Err(JsonError::at(
                shed_node.pos,
                format!("shed_fraction must be in (0, 1], got {shed_fraction}"),
            ));
        }
        let mode_node = obj.req("mode")?;
        let mut mode_obj = mode_node.as_obj()?;
        let tag = mode_obj.req("type")?;
        let mode = match tag.as_str()? {
            "defer" => ShedMode::Defer,
            "clamp" => {
                let factor_node = mode_obj.req("factor")?;
                let factor = factor_node.as_f64()?;
                if !(0.0..1.0).contains(&factor) {
                    return Err(JsonError::at(
                        factor_node.pos,
                        format!("clamp factor must be in [0, 1), got {factor}"),
                    ));
                }
                ShedMode::Clamp { factor }
            }
            other => {
                return Err(JsonError::at(
                    tag.pos,
                    format!("unknown shed mode \"{other}\" (expected defer or clamp)"),
                ))
            }
        };
        mode_obj.finish()?;
        obj.finish()?;
        Ok(DegradationGuardSpec {
            ema_alpha,
            engage_above,
            release_below,
            backlog_limit,
            shed_fraction,
            mode,
        })
    }
}

/// A declarative fault plan: typed events plus an optional degradation
/// guard, carried by [`crate::scenario::Scenario::fault`] (`"schema": 2`).
///
/// An empty plan (no events, no guard) is bit-identical to no plan at all.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The fault events, in file order.
    pub events: Vec<FaultEvent>,
    /// Optional admission-control degradation guard.
    pub guard: Option<DegradationGuardSpec>,
}

impl FaultPlan {
    /// An empty plan (injects nothing; bit-identical to the fault-free
    /// path).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Appends one event.
    #[must_use]
    pub fn with_event(mut self, event: FaultEvent) -> FaultPlan {
        self.events.push(event);
        self
    }

    /// Attaches the degradation guard.
    #[must_use]
    pub fn with_guard(mut self, guard: DegradationGuardSpec) -> FaultPlan {
        self.guard = Some(guard);
        self
    }

    /// `true` when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.guard.is_none()
    }

    /// Validates the plan against a fleet of `sessions` sessions.
    ///
    /// # Panics
    ///
    /// Panics on a zero-length or overflowing window, a brownout factor
    /// outside `[0, 1]`, a loss probability outside `[0, 1]`, more than
    /// one [`FaultEvent::GrantLoss`] per session, an out-of-range session
    /// index, a `restart_after` missing (restartable) or present
    /// (permanent), per-session crash schedules that are unsorted or
    /// overlap a previous downtime window, a crash after a permanent one,
    /// or an invalid guard (see [`DegradationGuardSpec::validate`]).
    pub fn validate(&self, sessions: usize) {
        // arvis-lint: allow(panic-free-codecs, "the documented panicking variant; from_json routes the same walk into positioned errors")
        self.try_validate(sessions, &mut |msg| panic!("{msg}"))
    }

    /// The shared validation walk: every violation is reported through
    /// `fail` (panic for [`FaultPlan::validate`], positioned error
    /// collection for [`FaultPlan::from_json`]).
    fn try_validate(&self, sessions: usize, fail: &mut dyn FnMut(String)) {
        let mut has_loss = vec![false; sessions];
        // Per-session crash bookkeeping: (last crash slot, earliest slot
        // the next crash may use, permanently crashed).
        let mut crash_floor: Vec<Option<(u64, u64, bool)>> = vec![None; sessions];
        for (i, event) in self.events.iter().enumerate() {
            match event {
                FaultEvent::Outage { start, slots } | FaultEvent::Brownout { start, slots, .. } => {
                    if *slots == 0 {
                        fail(format!("event {i}: window must cover at least one slot"));
                    }
                    if start.checked_add(*slots).is_none() {
                        fail(format!(
                            "event {i}: window end overflows (start {start} + {slots})"
                        ));
                    }
                    if let FaultEvent::Brownout { factor, .. } = event {
                        if !(0.0..=1.0).contains(factor) {
                            fail(format!(
                                "event {i}: brownout factor must be in [0, 1], got {factor}"
                            ));
                        }
                    }
                }
                FaultEvent::GrantLoss { session, p, .. } => {
                    if *session >= sessions {
                        fail(format!(
                            "event {i}: session {session} out of range (fleet has {sessions})"
                        ));
                        continue;
                    }
                    if !(0.0..=1.0).contains(p) {
                        fail(format!(
                            "event {i}: loss probability must be in [0, 1], got {p}"
                        ));
                    }
                    if has_loss[*session] {
                        fail(format!(
                            "event {i}: session {session} already has a grant_loss event"
                        ));
                    }
                    has_loss[*session] = true;
                }
                FaultEvent::SessionCrash {
                    session,
                    slot,
                    restart_after,
                    policy,
                } => {
                    if *session >= sessions {
                        fail(format!(
                            "event {i}: session {session} out of range (fleet has {sessions})"
                        ));
                        continue;
                    }
                    let restart_at = match (policy, restart_after) {
                        (CrashPolicy::Permanent, Some(_)) => {
                            fail(format!(
                                "event {i}: a permanent crash takes no restart_after"
                            ));
                            u64::MAX
                        }
                        (CrashPolicy::Permanent, None) => u64::MAX,
                        (_, None) => {
                            fail(format!(
                                "event {i}: a {} crash requires restart_after",
                                policy.name()
                            ));
                            u64::MAX
                        }
                        (_, Some(0)) => {
                            fail(format!("event {i}: restart_after must be at least 1"));
                            u64::MAX
                        }
                        (_, Some(after)) => match slot.checked_add(*after) {
                            Some(at) => at,
                            None => {
                                fail(format!(
                                    "event {i}: restart slot overflows ({slot} + {after})"
                                ));
                                u64::MAX
                            }
                        },
                    };
                    match crash_floor[*session] {
                        Some((last, _, true)) => fail(format!(
                            "event {i}: session {session} crashed permanently at slot {last}; \
                             nothing can follow"
                        )),
                        Some((last, floor, false)) => {
                            if *slot <= last {
                                fail(format!(
                                    "event {i}: session {session} crashes must have strictly \
                                     ascending slots (got {slot} after {last})"
                                ));
                            } else if *slot < floor {
                                fail(format!(
                                    "event {i}: session {session} crash at slot {slot} overlaps \
                                     the previous downtime (ends at slot {floor})"
                                ));
                            }
                        }
                        None => {}
                    }
                    crash_floor[*session] =
                        Some((*slot, restart_at, matches!(policy, CrashPolicy::Permanent)));
                }
            }
        }
        if let Some(guard) = &self.guard {
            guard.validate();
        }
    }

    /// Encodes the plan for a scenario file:
    /// `{"events": […], "guard": …?}` with `"type"`-tagged events.
    ///
    /// # Errors
    ///
    /// Errors on non-finite parameters without a file form.
    pub fn to_json(&self) -> Result<JsonValue, JsonError> {
        let mut events = Vec::with_capacity(self.events.len());
        for event in &self.events {
            events.push(match event {
                FaultEvent::Outage { start, slots } => JsonValue::obj(vec![
                    ("type", JsonValue::str("outage")),
                    ("start", JsonValue::int(*start)),
                    ("slots", JsonValue::int(*slots)),
                ]),
                FaultEvent::Brownout {
                    start,
                    slots,
                    factor,
                } => JsonValue::obj(vec![
                    ("type", JsonValue::str("brownout")),
                    ("start", JsonValue::int(*start)),
                    ("slots", JsonValue::int(*slots)),
                    ("factor", json::finite_num("factor", *factor)?),
                ]),
                FaultEvent::GrantLoss { session, p, seed } => JsonValue::obj(vec![
                    ("type", JsonValue::str("grant_loss")),
                    ("session", JsonValue::int(*session as u64)),
                    ("p", json::finite_num("p", *p)?),
                    ("seed", JsonValue::int(*seed)),
                ]),
                FaultEvent::SessionCrash {
                    session,
                    slot,
                    restart_after,
                    policy,
                } => {
                    let mut members = vec![
                        ("type", JsonValue::str("session_crash")),
                        ("session", JsonValue::int(*session as u64)),
                        ("slot", JsonValue::int(*slot)),
                        ("policy", JsonValue::str(policy.name())),
                    ];
                    if let Some(after) = restart_after {
                        members.push(("restart_after", JsonValue::int(*after)));
                    }
                    JsonValue::obj(members)
                }
            });
        }
        let mut members = vec![("events", JsonValue::arr(events))];
        if let Some(guard) = &self.guard {
            members.push(("guard", guard.to_json()?));
        }
        Ok(JsonValue::obj(members))
    }

    /// Decodes a plan from its scenario-file form and validates it against
    /// a fleet of `sessions` sessions, turning every
    /// [`FaultPlan::validate`] panic into a positioned error.
    ///
    /// # Errors
    ///
    /// Errors (with the offending position) on unknown or missing keys,
    /// wrong types, unknown `"type"`/policy tags, and every cross-field
    /// violation [`FaultPlan::validate`] checks.
    pub fn from_json(v: &JsonValue, sessions: usize) -> Result<FaultPlan, JsonError> {
        let mut obj = v.as_obj()?;
        let events_node = obj.req("events")?;
        let mut events = Vec::new();
        let mut positions = Vec::new();
        for item in events_node.as_array()? {
            let mut event = item.as_obj()?;
            let tag = event.req("type")?;
            let parsed = match tag.as_str()? {
                "outage" => FaultEvent::Outage {
                    start: event.req("start")?.as_u64()?,
                    slots: event.req("slots")?.as_u64()?,
                },
                "brownout" => FaultEvent::Brownout {
                    start: event.req("start")?.as_u64()?,
                    slots: event.req("slots")?.as_u64()?,
                    factor: event.req("factor")?.as_f64()?,
                },
                "grant_loss" => FaultEvent::GrantLoss {
                    session: event.req("session")?.as_usize()?,
                    p: event.req("p")?.as_f64()?,
                    seed: event.req("seed")?.as_u64()?,
                },
                "session_crash" => {
                    let policy_node = event.req("policy")?;
                    let policy = match policy_node.as_str()? {
                        "cold_restart" => CrashPolicy::ColdRestart,
                        "warm_restart" => CrashPolicy::WarmRestart,
                        "permanent" => CrashPolicy::Permanent,
                        other => {
                            return Err(JsonError::at(
                                policy_node.pos,
                                format!(
                                    "unknown crash policy \"{other}\" (expected cold_restart, \
                                     warm_restart, or permanent)"
                                ),
                            ))
                        }
                    };
                    FaultEvent::SessionCrash {
                        session: event.req("session")?.as_usize()?,
                        slot: event.req("slot")?.as_u64()?,
                        restart_after: match event.opt("restart_after") {
                            Some(node) => Some(node.as_u64()?),
                            None => None,
                        },
                        policy,
                    }
                }
                other => {
                    return Err(JsonError::at(
                        tag.pos,
                        format!(
                            "unknown fault event type \"{other}\" (expected outage, brownout, \
                             grant_loss, or session_crash)"
                        ),
                    ))
                }
            };
            event.finish()?;
            positions.push(item.pos);
            events.push(parsed);
        }
        let guard = match obj.opt("guard") {
            Some(node) => Some(DegradationGuardSpec::from_json(node)?),
            None => None,
        };
        obj.finish()?;
        let plan = FaultPlan { events, guard };
        // Cross-field validation with the offending event's position: the
        // walk reports "event {i}: …", which indexes into `positions`.
        let mut first: Option<JsonError> = None;
        plan.try_validate(sessions, &mut |msg| {
            if first.is_none() {
                let pos = msg
                    .strip_prefix("event ")
                    .and_then(|rest| rest.split(':').next())
                    .and_then(|idx| idx.parse::<usize>().ok())
                    .and_then(|idx| positions.get(idx).copied())
                    .unwrap_or(v.pos);
                first = Some(JsonError::at(pos, msg));
            }
        });
        match first {
            Some(err) => Err(err),
            None => Ok(plan),
        }
    }
}

/// One session's pending grant-loss stream.
#[derive(Debug)]
struct LossState {
    session: usize,
    p: f64,
    rng: StdRng,
}

/// One session's crash schedule entry, precomputed from the plan.
#[derive(Debug, Clone, Copy)]
struct CrashEntry {
    session: usize,
    slot: u64,
    restart_at: u64,
    policy: CrashPolicy,
}

/// The degradation guard's live state.
#[derive(Debug)]
struct GuardState {
    spec: DegradationGuardSpec,
    ema: f64,
    engaged: bool,
    shed: Vec<bool>,
    levels: Vec<f64>,
}

impl GuardState {
    /// Updates the engage/release hysteresis for this slot and, when
    /// engaged, sheds the lowest-weight groups' demands. Returns the
    /// number of sessions shed.
    fn shed(&mut self, backlog: f64, demands: &mut [f64], weights: Option<&[f64]>) -> u64 {
        let spec = self.spec;
        let over = self.ema >= spec.engage_above || backlog >= spec.backlog_limit;
        let under = self.ema <= spec.release_below && backlog < spec.backlog_limit;
        if self.engaged {
            if under {
                self.engaged = false;
            }
        } else if over {
            self.engaged = true;
        }
        if !self.engaged || demands.is_empty() {
            return 0;
        }
        let n = demands.len();
        let target = ((spec.shed_fraction * n as f64).ceil() as usize).clamp(1, n);
        // Whole lowest-weight groups until the target is covered — chosen
        // by weight *value*, so the set permutes with the sessions.
        let weight = |i: usize| weights.map_or(1.0, |w| w[i]);
        self.levels.clear();
        self.levels.extend((0..n).map(weight));
        self.levels.sort_unstable_by(|a, b| a.total_cmp(b));
        self.levels.dedup_by(|a, b| a.total_cmp(b).is_eq());
        self.shed.clear();
        self.shed.resize(n, false);
        let mut covered = 0usize;
        for level in self.levels.iter() {
            for i in 0..n {
                if weight(i).total_cmp(level).is_eq() {
                    self.shed[i] = true;
                    covered += 1;
                }
            }
            if covered >= target {
                break;
            }
        }
        let mut count = 0u64;
        for (i, demand) in demands.iter_mut().enumerate() {
            if self.shed[i] {
                match spec.mode {
                    ShedMode::Defer => *demand = 0.0,
                    ShedMode::Clamp { factor } => *demand *= factor,
                }
                count += 1;
            }
        }
        count
    }

    fn observe(&mut self, contended: bool) {
        let x = if contended { 1.0 } else { 0.0 };
        self.ema += self.spec.ema_alpha * (x - self.ema);
    }
}

/// The runnable fault plane: precomputed budget windows, per-event loss
/// streams, per-session crash schedules and the guard state, plus the
/// streaming fault aggregates the uplink summary surfaces.
///
/// Built from a validated [`FaultPlan`] by the contention plane
/// ([`crate::uplink::SharedUplink::with_fault`]); faults act only through
/// the contended path — uncoupled batches never consult a plane.
#[derive(Debug)]
pub struct FaultPlane {
    /// Budget windows: `(start, end_exclusive, factor)`; outages carry
    /// factor `0`.
    windows: Vec<(u64, u64, f64)>,
    losses: Vec<LossState>,
    /// All crash entries sorted by (slot, session), consumed by a cursor.
    crashes: Vec<CrashEntry>,
    crash_cursor: usize,
    guard: Option<GuardState>,
    loss_scratch: Vec<f64>,
    sum_scratch: Vec<f64>,
    // Streaming aggregates.
    shed_slots: u64,
    deferred_session_slots: u64,
    lost_total: f64,
    outage_slots: u64,
}

impl FaultPlane {
    /// Builds the runtime state for a plan over a fleet of `sessions`
    /// sessions.
    ///
    /// # Panics
    ///
    /// Panics when [`FaultPlan::validate`] rejects the plan.
    pub fn new(plan: &FaultPlan, sessions: usize) -> FaultPlane {
        plan.validate(sessions);
        let mut windows = Vec::new();
        let mut losses = Vec::new();
        let mut crashes = Vec::new();
        for event in &plan.events {
            match event {
                FaultEvent::Outage { start, slots } => {
                    windows.push((*start, start + slots, 0.0));
                }
                FaultEvent::Brownout {
                    start,
                    slots,
                    factor,
                } => windows.push((*start, start + slots, *factor)),
                FaultEvent::GrantLoss { session, p, seed } => losses.push(LossState {
                    session: *session,
                    p: *p,
                    rng: seeded(*seed),
                }),
                FaultEvent::SessionCrash {
                    session,
                    slot,
                    restart_after,
                    policy,
                } => crashes.push(CrashEntry {
                    session: *session,
                    slot: *slot,
                    restart_at: match restart_after {
                        Some(after) => slot + after,
                        None => u64::MAX,
                    },
                    policy: *policy,
                }),
            }
        }
        // Loss draws happen in a fixed per-plane order; sorting by session
        // makes that order a pure function of the (validated, one-per-
        // session) event set rather than file order.
        losses.sort_unstable_by_key(|l| l.session);
        crashes.sort_unstable_by_key(|c| (c.slot, c.session));
        FaultPlane {
            windows,
            losses,
            crashes,
            crash_cursor: 0,
            guard: plan.guard.map(|spec| GuardState {
                spec,
                ema: 0.0,
                engaged: false,
                shed: Vec::new(),
                levels: Vec::new(),
            }),
            loss_scratch: Vec::new(),
            sum_scratch: Vec::new(),
            shed_slots: 0,
            deferred_session_slots: 0,
            lost_total: 0.0,
            outage_slots: 0,
        }
    }

    /// `true` when the plan declares a degradation guard.
    pub fn has_guard(&self) -> bool {
        self.guard.is_some()
    }

    /// The slot's budget after outage/brownout windows: an outage forces
    /// zero, brownouts multiply (overlapping windows compose by
    /// multiplication). Counts the slot in the outage aggregate when any
    /// outage window covers it.
    pub fn effective_budget(&mut self, slot: u64, base: f64) -> f64 {
        let mut budget = base;
        let mut in_outage = false;
        for &(start, end, factor) in &self.windows {
            if (start..end).contains(&slot) {
                budget *= factor;
                in_outage |= factor == 0.0;
            }
        }
        if in_outage {
            self.outage_slots += 1;
            // An infinite base budget times zero would be NaN; an outage
            // means *no* capacity, whatever the base.
            return 0.0;
        }
        budget
    }

    /// Applies the crash schedule for `slot`: restarts whose downtime has
    /// elapsed come first, then the crashes due this slot. Call once per
    /// slot, before polling demands.
    pub fn apply_crashes<S: TelemetrySink + Send>(
        &mut self,
        slot: u64,
        batch: &mut SessionBatch<S>,
    ) {
        batch.apply_restarts(slot);
        while let Some(entry) = self.crashes.get(self.crash_cursor) {
            if entry.slot > slot {
                break;
            }
            batch.crash_session(entry.session, entry.policy, entry.restart_at);
            self.crash_cursor += 1;
        }
    }

    /// Runs the degradation guard for this slot (no-op without one):
    /// updates the hysteresis from the smoothed contended fraction and the
    /// aggregate backlog, and sheds the selected demands. Returns the
    /// number of sessions shed.
    pub fn shed(&mut self, backlog: f64, demands: &mut [f64], weights: Option<&[f64]>) -> u64 {
        let Some(guard) = self.guard.as_mut() else {
            return 0;
        };
        let count = guard.shed(backlog, demands, weights);
        if count > 0 {
            self.shed_slots += 1;
            self.deferred_session_slots += count;
        }
        count
    }

    /// Applies every grant-loss stream for this slot: exactly one
    /// Bernoulli draw per event, whatever the grants or liveness, so
    /// composing faults never shifts the draws. A hit zeroes the
    /// session's grant. Returns the slot's (permutation-invariant) lost
    /// total.
    pub fn apply_loss(&mut self, grants: &mut [f64]) -> f64 {
        if self.losses.is_empty() {
            return 0.0;
        }
        self.loss_scratch.clear();
        for loss in self.losses.iter_mut() {
            let hit = loss.rng.gen::<f64>() < loss.p;
            if hit {
                let lost = grants[loss.session];
                if lost > 0.0 {
                    self.loss_scratch.push(lost);
                    grants[loss.session] = 0.0;
                }
            }
        }
        let lost = invariant_sum(self.loss_scratch.iter().copied(), &mut self.sum_scratch);
        self.lost_total += lost;
        lost
    }

    /// Feeds the slot's contention outcome to the guard's EMA (computed
    /// from the *offered* demand, before shedding).
    pub fn observe_contention(&mut self, contended: bool) {
        if let Some(guard) = self.guard.as_mut() {
            guard.observe(contended);
        }
    }

    /// Slots on which the guard shed at least one session.
    pub fn shed_slots(&self) -> u64 {
        self.shed_slots
    }

    /// Total session-slots deferred or clamped by the guard.
    pub fn deferred_session_slots(&self) -> u64 {
        self.deferred_session_slots
    }

    /// Total granted capacity destroyed by grant-loss events.
    pub fn lost_total(&self) -> f64 {
        self.lost_total
    }

    /// Slots covered by at least one outage window.
    pub fn outage_slots(&self) -> u64 {
        self.outage_slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guard_spec() -> DegradationGuardSpec {
        DegradationGuardSpec {
            ema_alpha: 0.1,
            engage_above: 0.8,
            release_below: 0.4,
            backlog_limit: f64::INFINITY,
            shed_fraction: 0.25,
            mode: ShedMode::Defer,
        }
    }

    #[test]
    fn plan_json_roundtrip_is_canonical() {
        let plan = FaultPlan::new()
            .with_event(FaultEvent::Outage {
                start: 100,
                slots: 20,
            })
            .with_event(FaultEvent::Brownout {
                start: 300,
                slots: 50,
                factor: 0.25,
            })
            .with_event(FaultEvent::GrantLoss {
                session: 1,
                p: 0.05,
                seed: 7,
            })
            .with_event(FaultEvent::SessionCrash {
                session: 0,
                slot: 40,
                restart_after: Some(10),
                policy: CrashPolicy::ColdRestart,
            })
            .with_event(FaultEvent::SessionCrash {
                session: 2,
                slot: 90,
                restart_after: None,
                policy: CrashPolicy::Permanent,
            })
            .with_guard(guard_spec());
        plan.validate(3);
        let text = plan.to_json().unwrap().to_pretty();
        let back = FaultPlan::from_json(&crate::json::parse(&text).unwrap(), 3).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.to_json().unwrap().to_pretty(), text, "canonical");
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let cases: Vec<(FaultPlan, &str, usize)> = vec![
            (
                FaultPlan::new().with_event(FaultEvent::Outage { start: 5, slots: 0 }),
                "at least one slot",
                2,
            ),
            (
                FaultPlan::new().with_event(FaultEvent::Brownout {
                    start: 0,
                    slots: 5,
                    factor: 1.5,
                }),
                "factor must be in [0, 1]",
                2,
            ),
            (
                FaultPlan::new().with_event(FaultEvent::GrantLoss {
                    session: 2,
                    p: 0.5,
                    seed: 1,
                }),
                "out of range",
                2,
            ),
            (
                FaultPlan::new()
                    .with_event(FaultEvent::GrantLoss {
                        session: 0,
                        p: 0.5,
                        seed: 1,
                    })
                    .with_event(FaultEvent::GrantLoss {
                        session: 0,
                        p: 0.1,
                        seed: 2,
                    }),
                "already has a grant_loss",
                2,
            ),
            (
                FaultPlan::new().with_event(FaultEvent::SessionCrash {
                    session: 0,
                    slot: 10,
                    restart_after: None,
                    policy: CrashPolicy::ColdRestart,
                }),
                "requires restart_after",
                2,
            ),
            (
                FaultPlan::new().with_event(FaultEvent::SessionCrash {
                    session: 0,
                    slot: 10,
                    restart_after: Some(5),
                    policy: CrashPolicy::Permanent,
                }),
                "takes no restart_after",
                2,
            ),
            (
                FaultPlan::new()
                    .with_event(FaultEvent::SessionCrash {
                        session: 0,
                        slot: 10,
                        restart_after: Some(20),
                        policy: CrashPolicy::WarmRestart,
                    })
                    .with_event(FaultEvent::SessionCrash {
                        session: 0,
                        slot: 15,
                        restart_after: Some(5),
                        policy: CrashPolicy::WarmRestart,
                    }),
                "overlaps the previous downtime",
                2,
            ),
            (
                FaultPlan::new()
                    .with_event(FaultEvent::SessionCrash {
                        session: 0,
                        slot: 10,
                        restart_after: None,
                        policy: CrashPolicy::Permanent,
                    })
                    .with_event(FaultEvent::SessionCrash {
                        session: 0,
                        slot: 50,
                        restart_after: Some(5),
                        policy: CrashPolicy::ColdRestart,
                    }),
                "nothing can follow",
                2,
            ),
        ];
        for (plan, want, sessions) in cases {
            let text = plan.to_json().unwrap().to_pretty();
            let err = FaultPlan::from_json(&crate::json::parse(&text).unwrap(), sessions)
                .expect_err(want);
            assert!(
                err.msg.contains(want),
                "got \"{}\", want \"{want}\"",
                err.msg
            );
            let caught =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plan.validate(sessions)));
            assert!(caught.is_err(), "validate must panic: {want}");
        }
    }

    #[test]
    fn effective_budget_composes_windows() {
        let plan = FaultPlan::new()
            .with_event(FaultEvent::Outage {
                start: 10,
                slots: 5,
            })
            .with_event(FaultEvent::Brownout {
                start: 0,
                slots: 100,
                factor: 0.5,
            })
            .with_event(FaultEvent::Brownout {
                start: 50,
                slots: 10,
                factor: 0.5,
            });
        let mut plane = FaultPlane::new(&plan, 1);
        assert_eq!(plane.effective_budget(0, 100.0), 50.0);
        assert_eq!(plane.effective_budget(12, 100.0), 0.0, "outage wins");
        assert_eq!(plane.effective_budget(55, 100.0), 25.0, "brownouts stack");
        assert_eq!(plane.effective_budget(12, f64::INFINITY), 0.0, "no NaN");
        assert_eq!(plane.outage_slots(), 2);
    }

    #[test]
    fn loss_draws_are_deterministic_and_always_taken() {
        let plan = FaultPlan::new().with_event(FaultEvent::GrantLoss {
            session: 0,
            p: 0.5,
            seed: 42,
        });
        let run = |grants: &mut Vec<f64>| {
            let mut plane = FaultPlane::new(&plan, 1);
            let mut pattern = Vec::new();
            for g in grants.iter_mut() {
                let before = *g;
                let lost = plane.apply_loss(std::slice::from_mut(g));
                pattern.push(lost == before && before > 0.0);
            }
            pattern
        };
        let mut a: Vec<f64> = (0..64).map(|i| (i % 7) as f64).collect();
        let mut b = a.clone();
        assert_eq!(run(&mut a), run(&mut b), "bit-deterministic");
        assert!(a.contains(&0.0));

        // p = 0 never loses; p = 1 always loses.
        for (p, want_lost) in [(0.0, 0.0), (1.0, 5.0)] {
            let plan = FaultPlan::new().with_event(FaultEvent::GrantLoss {
                session: 0,
                p,
                seed: 9,
            });
            let mut plane = FaultPlane::new(&plan, 1);
            let mut grants = [5.0];
            let lost = plane.apply_loss(&mut grants);
            assert_eq!(lost, want_lost);
        }
    }

    #[test]
    fn guard_sheds_lowest_weight_groups_with_hysteresis() {
        let plan = FaultPlan::new().with_guard(guard_spec());
        let mut plane = FaultPlane::new(&plan, 8);
        let weights: Vec<f64> = (0..8).map(|i| 1.0 + (i % 4) as f64).collect();
        let mut demands = vec![100.0; 8];
        // Not engaged yet: EMA is 0.
        assert_eq!(plane.shed(0.0, &mut demands, Some(&weights)), 0);
        // Saturate the EMA past engage_above.
        for _ in 0..50 {
            plane.observe_contention(true);
        }
        let mut demands = vec![100.0; 8];
        let shed = plane.shed(0.0, &mut demands, Some(&weights));
        // ceil(0.25 · 8) = 2: exactly the weight-1 group {0, 4}.
        assert_eq!(shed, 2);
        assert_eq!(demands[0], 0.0);
        assert_eq!(demands[4], 0.0);
        assert!(demands
            .iter()
            .enumerate()
            .all(|(i, &d)| d == 100.0 || i == 0 || i == 4));
        // Hysteresis: one idle observation is not enough to release.
        plane.observe_contention(false);
        let mut demands = vec![100.0; 8];
        assert!(plane.shed(0.0, &mut demands, Some(&weights)) > 0);
        // Decay the EMA below release_below: the guard lets go.
        for _ in 0..50 {
            plane.observe_contention(false);
        }
        let mut demands = vec![100.0; 8];
        assert_eq!(plane.shed(0.0, &mut demands, Some(&weights)), 0);
        assert_eq!(demands, vec![100.0; 8]);
        assert!(plane.shed_slots() >= 2);
        assert!(plane.deferred_session_slots() >= 4);
    }

    #[test]
    fn guard_backlog_trigger_and_clamp_mode() {
        let spec = DegradationGuardSpec {
            backlog_limit: 1_000.0,
            mode: ShedMode::Clamp { factor: 0.5 },
            ..guard_spec()
        };
        let plan = FaultPlan::new().with_guard(spec);
        let mut plane = FaultPlane::new(&plan, 4);
        let mut demands = vec![80.0; 4];
        // Backlog over the limit engages immediately, EMA still 0; uniform
        // weights form one group, so the whole fleet is clamped.
        let shed = plane.shed(2_000.0, &mut demands, None);
        assert_eq!(shed, 4);
        assert_eq!(demands, vec![40.0; 4]);
    }
}
