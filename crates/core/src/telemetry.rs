//! Pluggable per-session telemetry and the shared CSV emission helpers.
//!
//! The session runtime ([`crate::session`]) separates *simulation* from
//! *observation*: every slot the stepping kernel hands a [`SlotOutcome`]
//! (and any frames that completed during the slot) to a [`TelemetrySink`]
//! chosen by the caller. The sink decides what to keep:
//!
//! - [`FullTrace`] retains every per-slot series — O(slots) memory, exactly
//!   the paper's Fig. 2 data, and the backing store of the legacy
//!   [`crate::experiment::ExperimentResult`];
//! - [`SummarySink`] keeps streaming accumulators only — O(1) memory per
//!   session, which is what makes a [`crate::session::SessionBatch`] of
//!   millions of sessions O(sessions) instead of O(sessions × slots).
//!   Percentiles come from [`P2Quantile`] streaming estimators;
//! - [`CsvTrace`] streams rows of the trace CSV as they happen;
//! - [`NullSink`] records nothing (throughput measurements).
//!
//! The module also owns the one CSV escaping/formatting helper
//! ([`CsvRow`]) shared by every CSV producer in the crate
//! ([`crate::experiment::ExperimentResult::to_csv`], the summary rows, the
//! fleet and sweep tables), so quoting rules live in exactly one place.

use arvis_sim::latency::FrameLatency;
use arvis_sim::stats::{P2Quantile, SummaryStats, TimeSeries};
use serde::{Deserialize, Serialize};

use crate::experiment::ExperimentResult;
use crate::session::SlotOutcome;

// ---------------------------------------------------------------------------
// CSV helpers
// ---------------------------------------------------------------------------

/// Appends `field` to `buf` with RFC-4180 escaping: fields containing a
/// comma, double quote, CR or LF are wrapped in double quotes with inner
/// quotes doubled. Plain fields (every field the crate emits today) pass
/// through byte-identical.
fn push_escaped(buf: &mut String, field: &str) {
    if field.contains([',', '"', '\n', '\r']) {
        buf.push('"');
        for ch in field.chars() {
            if ch == '"' {
                buf.push('"');
            }
            buf.push(ch);
        }
        buf.push('"');
    } else {
        buf.push_str(field);
    }
}

/// Builder for one CSV row; the single formatting/escaping path shared by
/// every CSV emitter in the crate.
#[derive(Debug, Clone, Default)]
pub struct CsvRow {
    buf: String,
    any: bool,
}

impl CsvRow {
    /// Starts an empty row.
    pub fn new() -> CsvRow {
        CsvRow::default()
    }

    fn sep(&mut self) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
    }

    /// Appends a field rendered with its `Display` impl (escaped as needed).
    #[must_use]
    pub fn field(mut self, value: impl std::fmt::Display) -> CsvRow {
        self.sep();
        push_escaped(&mut self.buf, &value.to_string());
        self
    }

    /// Appends a field verbatim, skipping the escaping scan — for numbers
    /// and bools, whose `Display` output can never contain a CSV
    /// metacharacter. Unlike [`CsvRow::field`] this writes straight into
    /// the row buffer with no intermediate allocation (it is the per-slot
    /// path of the streaming [`CsvTrace`] sink).
    #[must_use]
    pub fn raw(mut self, value: impl std::fmt::Display) -> CsvRow {
        use std::fmt::Write as _;
        self.sep();
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Appends a float with fixed `decimals` (matches `{:.N}` formatting),
    /// writing straight into the row buffer.
    #[must_use]
    pub fn fixed(mut self, value: f64, decimals: usize) -> CsvRow {
        use std::fmt::Write as _;
        self.sep();
        let _ = write!(self.buf, "{value:.decimals$}");
        self
    }

    /// Appends an empty field (a missing cell in a padded table).
    #[must_use]
    pub fn empty(mut self) -> CsvRow {
        self.sep();
        self
    }

    /// The finished row, without a trailing newline.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// Renders aligned time series as CSV through the shared row builder:
/// first column `slot`, one column per series, shorter series padded with
/// empty cells. Byte-identical to `arvis_sim::stats::series_to_csv` for
/// unescaped names.
pub fn series_csv(series: &[&TimeSeries]) -> String {
    let mut header = CsvRow::new().field("slot");
    for s in series {
        header = header.field(s.name());
    }
    let mut out = header.finish();
    out.push('\n');
    let rows = series.iter().map(|s| s.len()).max().unwrap_or(0);
    for i in 0..rows {
        let mut row = CsvRow::new().raw(i);
        for s in series {
            row = match s.values().get(i) {
                Some(v) => row.raw(v),
                None => row.empty(),
            };
        }
        out.push_str(&row.finish());
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Consumer of a session's per-slot observations.
///
/// Both hooks default to no-ops so trivial sinks ([`NullSink`]) stay
/// trivial. `on_frame` fires zero or more times per slot (once per frame
/// whose FIFO service completed during the slot), always before the slot's
/// `on_slot`.
pub trait TelemetrySink {
    /// Called once per simulated slot with the slot's observables.
    fn on_slot(&mut self, outcome: &SlotOutcome) {
        let _ = outcome;
    }

    /// Called for every frame that completed rendering during the slot.
    fn on_frame(&mut self, frame: &FrameLatency) {
        let _ = frame;
    }
}

/// A sink that records nothing — for pure-throughput stepping.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {}

/// Full per-slot trace: the five series of the paper's Fig. 2 plus every
/// completed frame latency. Memory is O(slots); use [`SummarySink`] when
/// batching many sessions.
#[derive(Debug, Clone)]
pub struct FullTrace {
    /// `Q(τ)` after each slot.
    pub backlog: TimeSeries,
    /// Chosen depth per slot.
    pub depth: TimeSeries,
    /// Quality `p_a(d(τ))` per slot.
    pub quality: TimeSeries,
    /// Injected arrivals per slot.
    pub arrivals: TimeSeries,
    /// Offered service capacity per slot.
    pub service: TimeSeries,
    /// Sojourn times (slots) of completed frames, in completion order.
    pub frame_latencies: Vec<f64>,
}

impl FullTrace {
    /// An empty trace with the legacy series names.
    pub fn new() -> FullTrace {
        FullTrace {
            backlog: TimeSeries::new("queue_backlog"),
            depth: TimeSeries::new("control_action_depth"),
            quality: TimeSeries::new("quality"),
            arrivals: TimeSeries::new("arrivals"),
            service: TimeSeries::new("service"),
            frame_latencies: Vec::new(),
        }
    }

    /// Finalizes the trace into the legacy [`ExperimentResult`], deriving
    /// every metric exactly as the pre-session-runtime closed loop did.
    ///
    /// `queue` is the session's work queue after the final slot (for the
    /// drop/delay accounting that is not derivable from the series alone).
    pub fn into_result(
        self,
        controller: &str,
        warmup: u64,
        queue: &arvis_sim::queue::WorkQueue,
    ) -> ExperimentResult {
        let slots = self.backlog.len() as u64;
        let warm = warmup.min(slots) as usize;
        let mean_quality = self.quality.mean_from(warm).unwrap_or(0.0);
        let mean_backlog = self.backlog.mean_from(warm).unwrap_or(0.0);
        let stable = self.backlog.is_stable((slots / 2).max(2) as usize, 1e-3);
        let switches = self
            .depth
            .values()
            .windows(2)
            .filter(|w| w[0] != w[1])
            .count();
        let depth_switch_rate = if slots > 1 {
            switches as f64 / (slots - 1) as f64
        } else {
            0.0
        };
        let backlog_tail = SummaryStats::from_slice(&self.backlog.values()[warm..]);
        ExperimentResult {
            controller: controller.to_string(),
            dropped_total: queue.total_dropped(),
            littles_delay: queue.littles_law_delay(),
            frame_latency: SummaryStats::from_slice(&self.frame_latencies),
            depth_switch_rate,
            backlog: self.backlog,
            depth: self.depth,
            quality: self.quality,
            arrivals: self.arrivals,
            service: self.service,
            mean_quality,
            mean_backlog,
            backlog_tail,
            stable,
        }
    }
}

impl Default for FullTrace {
    fn default() -> Self {
        FullTrace::new()
    }
}

impl TelemetrySink for FullTrace {
    fn on_slot(&mut self, o: &SlotOutcome) {
        self.backlog.push(o.backlog);
        self.depth.push(f64::from(o.depth));
        self.quality.push(o.quality);
        self.arrivals.push(o.arrival);
        self.service.push(o.service);
    }

    fn on_frame(&mut self, frame: &FrameLatency) {
        self.frame_latencies.push(frame.latency_slots as f64);
    }
}

/// Streams the trace CSV row by row (same layout as
/// [`ExperimentResult::to_csv`]) without retaining the series. Rows are
/// labelled with the simulated slot index, so a trace attached mid-run
/// starts at the slot it first observed.
#[derive(Debug, Clone)]
pub struct CsvTrace {
    buf: String,
}

impl CsvTrace {
    /// A trace writer with the legacy trace header.
    pub fn new() -> CsvTrace {
        let header = CsvRow::new()
            .field("slot")
            .field("queue_backlog")
            .field("control_action_depth")
            .field("quality")
            .field("arrivals")
            .field("service")
            .finish();
        CsvTrace { buf: header + "\n" }
    }

    /// The CSV accumulated so far (header plus one row per recorded slot).
    pub fn csv(&self) -> &str {
        &self.buf
    }

    /// Consumes the sink, returning the CSV.
    pub fn into_csv(self) -> String {
        self.buf
    }
}

impl Default for CsvTrace {
    fn default() -> Self {
        CsvTrace::new()
    }
}

impl TelemetrySink for CsvTrace {
    fn on_slot(&mut self, o: &SlotOutcome) {
        let row = CsvRow::new()
            .raw(o.slot)
            .raw(o.backlog)
            .raw(f64::from(o.depth))
            .raw(o.quality)
            .raw(o.arrival)
            .raw(o.service)
            .finish();
        self.buf.push_str(&row);
        self.buf.push('\n');
    }
}

/// Online least-squares slope of `y` against the sample index — O(1)
/// memory, numerically stable centered (Welford-style) updates.
#[derive(Debug, Clone, Default)]
struct OnlineSlope {
    n: u64,
    mean_x: f64,
    mean_y: f64,
    m2x: f64,
    cxy: f64,
}

impl OnlineSlope {
    fn observe(&mut self, x: f64, y: f64) {
        self.n += 1;
        let n = self.n as f64;
        let dx = x - self.mean_x;
        self.mean_x += dx / n;
        self.mean_y += (y - self.mean_y) / n;
        self.cxy += dx * (y - self.mean_y);
        self.m2x += dx * (x - self.mean_x);
    }

    fn slope(&self) -> Option<f64> {
        (self.n >= 2 && self.m2x > 0.0).then(|| self.cxy / self.m2x)
    }
}

/// Streaming summary-only sink: O(1) memory per session regardless of the
/// horizon. Means are exact; percentiles are [`P2Quantile`] streaming
/// estimates; the stability verdict is an online least-squares backlog
/// slope — over the final half of the horizon once the run is there (the
/// same window the legacy `TimeSeries::is_stable` regresses over), and
/// over all post-warm-up slots when the sink is inspected mid-run, so a
/// diverging session reads as unstable at any checkpoint.
#[derive(Debug, Clone)]
pub struct SummarySink {
    warmup: u64,
    horizon: u64,
    slots: u64,
    quality_sum_warm: f64,
    backlog_sum_warm: f64,
    warm_count: u64,
    backlog_sum_all: f64,
    served_sum: f64,
    dropped_sum: f64,
    backlog_p95: P2Quantile,
    backlog_p99: P2Quantile,
    latency_count: u64,
    latency_sum: f64,
    latency_p95: P2Quantile,
    latency_p99: P2Quantile,
    last_depth: Option<u8>,
    switches: u64,
    trend_warm: OnlineSlope,
    trend_tail: OnlineSlope,
}

impl SummarySink {
    /// A summary sink for a session with the given warm-up and horizon
    /// (both in slots). The horizon positions the stability test's two
    /// comparison segments (third and fourth quarter of the run).
    pub fn new(warmup: u64, horizon: u64) -> SummarySink {
        SummarySink {
            warmup,
            horizon,
            slots: 0,
            quality_sum_warm: 0.0,
            backlog_sum_warm: 0.0,
            warm_count: 0,
            backlog_sum_all: 0.0,
            served_sum: 0.0,
            dropped_sum: 0.0,
            backlog_p95: P2Quantile::new(0.95),
            backlog_p99: P2Quantile::new(0.99),
            latency_count: 0,
            latency_sum: 0.0,
            latency_p95: P2Quantile::new(0.95),
            latency_p99: P2Quantile::new(0.99),
            last_depth: None,
            switches: 0,
            trend_warm: OnlineSlope::default(),
            trend_tail: OnlineSlope::default(),
        }
    }

    /// Finalizes the accumulators into a [`SessionSummary`].
    pub fn finish(&self) -> SessionSummary {
        let mean = |sum: f64, n: u64| if n == 0 { 0.0 } else { sum / n as f64 };
        let mean_backlog_all = mean(self.backlog_sum_all, self.slots);
        let littles_delay = if self.served_sum > 0.0 && self.slots > 0 {
            Some(mean_backlog_all / (self.served_sum / self.slots as f64))
        } else {
            None
        };
        // Normalized backlog drift: the tail-window regression when the
        // run has reached the final half of its horizon, otherwise the
        // full post-warm-up regression (mid-run checkpoints).
        let stable = match self.trend_tail.slope().or_else(|| self.trend_warm.slope()) {
            None => true,
            Some(slope) => slope / mean_backlog_all.abs().max(1.0) < 1e-3,
        };
        let depth_switch_rate = if self.slots > 1 {
            self.switches as f64 / (self.slots - 1) as f64
        } else {
            0.0
        };
        SessionSummary {
            slots: self.slots,
            mean_quality: mean(self.quality_sum_warm, self.warm_count),
            mean_backlog: mean(self.backlog_sum_warm, self.warm_count),
            backlog_p95: self.backlog_p95.estimate(),
            backlog_p99: self.backlog_p99.estimate(),
            frames_completed: self.latency_count,
            frame_latency_mean: mean(self.latency_sum, self.latency_count),
            frame_latency_p95: self.latency_p95.estimate(),
            frame_latency_p99: self.latency_p99.estimate(),
            littles_delay,
            dropped_total: self.dropped_sum,
            depth_switch_rate,
            stable,
        }
    }
}

impl TelemetrySink for SummarySink {
    fn on_slot(&mut self, o: &SlotOutcome) {
        let n = self.slots;
        if n >= self.warmup {
            self.quality_sum_warm += o.quality;
            self.backlog_sum_warm += o.backlog;
            self.warm_count += 1;
            self.backlog_p95.observe(o.backlog);
            self.backlog_p99.observe(o.backlog);
        }
        self.backlog_sum_all += o.backlog;
        self.served_sum += o.served;
        self.dropped_sum += o.dropped;
        if let Some(last) = self.last_depth {
            if last != o.depth {
                self.switches += 1;
            }
        }
        self.last_depth = Some(o.depth);
        if n >= self.warmup {
            self.trend_warm.observe(n as f64, o.backlog);
        }
        // Exactly the legacy window: the final `horizon/2` samples.
        if n >= self.horizon - self.horizon / 2 {
            self.trend_tail.observe(n as f64, o.backlog);
        }
        self.slots += 1;
    }

    fn on_frame(&mut self, frame: &FrameLatency) {
        let l = frame.latency_slots as f64;
        self.latency_count += 1;
        self.latency_sum += l;
        self.latency_p95.observe(l);
        self.latency_p99.observe(l);
    }
}

/// O(1)-sized summary of one session, as produced by [`SummarySink`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionSummary {
    /// Slots simulated.
    pub slots: u64,
    /// Time-average quality after warm-up (paper Eq. 1).
    pub mean_quality: f64,
    /// Time-average backlog after warm-up (paper Eq. 2 proxy).
    pub mean_backlog: f64,
    /// Streaming 95th-percentile backlog after warm-up.
    pub backlog_p95: f64,
    /// Streaming 99th-percentile backlog after warm-up.
    pub backlog_p99: f64,
    /// Frames whose rendering completed within the horizon.
    pub frames_completed: u64,
    /// Mean per-frame sojourn time (slots).
    pub frame_latency_mean: f64,
    /// Streaming 95th-percentile frame sojourn time (slots).
    pub frame_latency_p95: f64,
    /// Streaming 99th-percentile frame sojourn time (slots).
    pub frame_latency_p99: f64,
    /// Little's-law delay estimate (`None` before anything is served).
    pub littles_delay: Option<f64>,
    /// Total work dropped by a finite queue.
    pub dropped_total: f64,
    /// Fraction of slots whose depth differs from the previous slot's.
    pub depth_switch_rate: f64,
    /// Streaming stability verdict of the backlog tail.
    pub stable: bool,
}

impl SessionSummary {
    /// Header matching [`SessionSummary::csv_row`].
    pub fn csv_header() -> &'static str {
        "session,mean_quality,mean_backlog,backlog_p95,backlog_p99,stable,littles_delay,\
         frame_latency_mean,frame_latency_p95,frame_latency_p99,dropped_total"
    }

    /// One summary line labelled with `session` (an index or name).
    pub fn csv_row(&self, session: impl std::fmt::Display) -> String {
        CsvRow::new()
            .field(session)
            .fixed(self.mean_quality, 6)
            .fixed(self.mean_backlog, 3)
            .fixed(self.backlog_p95, 3)
            .fixed(self.backlog_p99, 3)
            .field(self.stable)
            .fixed(self.littles_delay.unwrap_or(f64::NAN), 3)
            .fixed(self.frame_latency_mean, 3)
            .fixed(self.frame_latency_p95, 3)
            .fixed(self.frame_latency_p99, 3)
            .fixed(self.dropped_total, 1)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_row_matches_legacy_formatting() {
        let row = CsvRow::new()
            .field("proposed")
            .fixed(0.123456789, 6)
            .fixed(1234.5678, 3)
            .field(true)
            .fixed(f64::NAN, 3)
            .fixed(7.0, 1)
            .finish();
        assert_eq!(row, "proposed,0.123457,1234.568,true,NaN,7.0");
    }

    #[test]
    fn csv_escaping_quotes_only_when_needed() {
        let row = CsvRow::new()
            .field("plain")
            .field("with,comma")
            .field("with\"quote")
            .empty()
            .field(42)
            .finish();
        assert_eq!(row, "plain,\"with,comma\",\"with\"\"quote\",,42");
    }

    #[test]
    fn csv_escapes_newlines_and_carriage_returns() {
        // RFC 4180: embedded line breaks force quoting but are preserved
        // verbatim inside the quotes.
        let row = CsvRow::new()
            .field("line1\nline2")
            .field("cr\rhere")
            .field("both\r\nkinds")
            .finish();
        assert_eq!(row, "\"line1\nline2\",\"cr\rhere\",\"both\r\nkinds\"");
    }

    #[test]
    fn csv_quotes_adjacent_to_metacharacters_double_correctly() {
        let row = CsvRow::new().field("a\"b,c\"d").field("\"").finish();
        assert_eq!(row, "\"a\"\"b,c\"\"d\",\"\"\"\"");
    }

    #[test]
    fn csv_nonfinite_floats_pass_through_unquoted() {
        // Rust renders NaN/±inf without CSV metacharacters, so every float
        // path (escaped, raw, fixed) must emit them bare and identically.
        let row = CsvRow::new()
            .field(f64::NAN)
            .field(f64::INFINITY)
            .field(f64::NEG_INFINITY)
            .raw(f64::NAN)
            .fixed(f64::INFINITY, 3)
            .fixed(f64::NEG_INFINITY, 1)
            .fixed(f64::NAN, 6)
            .finish();
        assert_eq!(row, "NaN,inf,-inf,NaN,inf,-inf,NaN");
    }

    #[test]
    fn csv_raw_and_field_agree_on_numbers_and_bools() {
        // `raw` skips the escaping scan; for Display output free of
        // metacharacters the two paths must be byte-identical.
        let a = CsvRow::new()
            .raw(42u64)
            .raw(-7i32)
            .raw(2.5f64)
            .raw(true)
            .finish();
        let b = CsvRow::new()
            .field(42u64)
            .field(-7i32)
            .field(2.5f64)
            .field(true)
            .finish();
        assert_eq!(a, b);
    }

    #[test]
    fn csv_empty_fields_in_every_position() {
        assert_eq!(CsvRow::new().empty().finish(), "");
        assert_eq!(CsvRow::new().empty().empty().empty().finish(), ",,");
        assert_eq!(CsvRow::new().empty().field("x").empty().finish(), ",x,");
        // An explicitly empty string behaves like `empty()`.
        assert_eq!(CsvRow::new().field("").field("y").finish(), ",y");
        // A default row is a fresh row.
        assert_eq!(CsvRow::default().field(1).finish(), "1");
    }

    #[test]
    fn csv_fixed_rounds_like_format_macro() {
        let row = CsvRow::new()
            .fixed(1.005, 2)
            .fixed(-0.0004, 3)
            .fixed(12345.6789, 0)
            .finish();
        assert_eq!(
            row,
            format!("{:.2},{:.3},{:.0}", 1.005, -0.0004, 12345.6789)
        );
    }

    #[test]
    fn series_csv_matches_sim_series_to_csv() {
        let a = TimeSeries::from_values("a", vec![1.0, 2.5]);
        let b = TimeSeries::from_values("b", vec![10.0]);
        assert_eq!(
            series_csv(&[&a, &b]),
            arvis_sim::stats::series_to_csv(&[&a, &b])
        );
    }

    #[test]
    fn summary_sink_means_are_exact() {
        let mut sink = SummarySink::new(2, 6);
        for (i, (q, bl)) in [(1.0, 10.0), (0.5, 20.0), (0.25, 30.0), (0.25, 30.0)]
            .iter()
            .enumerate()
        {
            sink.on_slot(&SlotOutcome {
                slot: i as u64,
                depth: 5,
                quality: *q,
                arrival: 1.0,
                service: 2.0,
                served: 1.0,
                dropped: 0.5,
                backlog: *bl,
            });
        }
        let s = sink.finish();
        assert_eq!(s.slots, 4);
        assert!((s.mean_quality - 0.25).abs() < 1e-12, "post-warmup mean");
        assert!((s.mean_backlog - 30.0).abs() < 1e-12);
        assert!((s.dropped_total - 2.0).abs() < 1e-12);
        assert_eq!(s.depth_switch_rate, 0.0);
        // Little: mean backlog over all slots 22.5, throughput 1 → 22.5.
        assert!((s.littles_delay.unwrap() - 22.5).abs() < 1e-12);
    }

    #[test]
    fn summary_sink_detects_divergence() {
        // Linear backlog growth of 10/slot over a 400-slot horizon.
        let mut diverging = SummarySink::new(0, 400);
        let mut flat = SummarySink::new(0, 400);
        for slot in 0..400u64 {
            let base = SlotOutcome {
                slot,
                depth: 5,
                quality: 0.5,
                arrival: 10.0,
                service: 0.0,
                served: 0.0,
                dropped: 0.0,
                backlog: 0.0,
            };
            diverging.on_slot(&SlotOutcome {
                backlog: 10.0 * slot as f64,
                ..base
            });
            flat.on_slot(&SlotOutcome {
                backlog: 100.0,
                ..base
            });
        }
        assert!(!diverging.finish().stable);
        assert!(flat.finish().stable);
    }

    #[test]
    fn summary_sink_flags_divergence_mid_run() {
        // A 2000-slot horizon inspected after only 300 slots: the tail
        // window has no samples yet, so the post-warm-up regression must
        // carry the verdict.
        let mut sink = SummarySink::new(50, 2_000);
        for slot in 0..300u64 {
            sink.on_slot(&SlotOutcome {
                slot,
                depth: 10,
                quality: 1.0,
                arrival: 1_000.0,
                service: 0.0,
                served: 0.0,
                dropped: 0.0,
                backlog: 1_000.0 * slot as f64,
            });
        }
        assert!(!sink.finish().stable, "mid-run divergence must be visible");
        // Same checkpoint on a flat backlog stays stable.
        let mut flat = SummarySink::new(50, 2_000);
        for slot in 0..300u64 {
            flat.on_slot(&SlotOutcome {
                slot,
                depth: 10,
                quality: 1.0,
                arrival: 1_000.0,
                service: 1_000.0,
                served: 1_000.0,
                dropped: 0.0,
                backlog: 1_000.0,
            });
        }
        assert!(flat.finish().stable);
    }

    #[test]
    fn summary_csv_row_shape() {
        let s = SummarySink::new(0, 4).finish();
        let row = s.csv_row(3);
        assert!(row.starts_with("3,"));
        assert_eq!(
            row.split(',').count(),
            SessionSummary::csv_header().split(',').count()
        );
    }
}
