//! Depth controllers: the proposed scheduler (Algorithm 1) and baselines.
//!
//! The [`DepthController`] trait is the *open* extension point: anything
//! that maps `(slot, backlog, profile) → depth` plugs into
//! [`crate::experiment::Experiment::run`] and — through
//! [`crate::scenario::ControllerSpec::Extern`] — into batched scenarios.
//! The session runtime's hot loop, however, dispatches the controllers in
//! this module through the closed enum
//! [`crate::scenario::BuiltController`], avoiding a per-slot virtual call
//! for the built-in policies.

use arvis_lyapunov::adaptive::AdaptiveV;
use arvis_lyapunov::dpp::{Candidate, DppController, Objective};
use arvis_quality::DepthProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A per-slot octree-depth selection policy.
///
/// Implementations receive the observed backlog `Q(t)` and the current
/// frame's [`DepthProfile`] (the table `d → (a(d), p_a(d))`), exactly the
/// information Algorithm 1 consumes — no arrival statistics, no global
/// state, which is what makes every policy here "fully distributed".
pub trait DepthController {
    /// Selects the depth for slot `slot` given backlog `backlog`.
    fn select_depth(&mut self, slot: u64, backlog: f64, profile: &DepthProfile) -> u8;

    /// Short machine-readable name for reports and CSV columns.
    fn name(&self) -> &'static str;
}

/// **The proposed scheduler** (paper Algorithm 1, "Stabilized AR
/// Visualization"): per slot, evaluate
/// `I(d) = V · p_a(d) − Q(t) · a(d)` for every candidate depth and pick the
/// maximizer.
///
/// Note the paper's pseudo-code literally *minimizes* `I` (`I ≤ I*` with
/// `I* ← ∞`), contradicting its own Eq. (3); see
/// [`Objective::PaperLiteralMinimize`] for the literal variant and the test
/// `paper_literal_rule_is_worse` demonstrating the consequence.
#[derive(Debug, Clone)]
pub struct ProposedDpp {
    inner: DppController,
}

impl ProposedDpp {
    /// Creates the scheduler with trade-off coefficient `V`.
    ///
    /// # Panics
    ///
    /// Panics when `v` is negative or non-finite.
    pub fn new(v: f64) -> Self {
        ProposedDpp {
            inner: DppController::new(v),
        }
    }

    /// Creates the scheduler with an explicit objective (for demonstrating
    /// the Algorithm-1 typo only; use [`ProposedDpp::new`] otherwise).
    pub fn with_objective(v: f64, objective: Objective) -> Self {
        ProposedDpp {
            inner: DppController::with_objective(v, objective),
        }
    }

    /// The trade-off coefficient `V`.
    pub fn v(&self) -> f64 {
        self.inner.v()
    }

    /// Replaces `V`.
    pub fn set_v(&mut self, v: f64) {
        self.inner.set_v(v);
    }
}

impl Default for ProposedDpp {
    /// A scheduler with `V = 1e6`, a reasonable default for point-unit
    /// workloads in the 10⁴–10⁵ arrivals range.
    fn default() -> Self {
        ProposedDpp::new(1e6)
    }
}

impl DepthController for ProposedDpp {
    fn select_depth(&mut self, _slot: u64, backlog: f64, profile: &DepthProfile) -> u8 {
        let candidates = profile.depths().map(|d| Candidate {
            action: d,
            utility: profile.quality(d),
            arrival: profile.arrival(d),
        });
        self.inner
            .decide(backlog, candidates)
            .expect("profile has at least two depths")
            .action
    }

    fn name(&self) -> &'static str {
        "proposed"
    }
}

/// Baseline: always render at the maximum candidate depth
/// ("only max-Depth" in the paper's Fig. 2 — maximal quality, diverging
/// queue when the device cannot keep up).
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxDepth;

impl DepthController for MaxDepth {
    fn select_depth(&mut self, _slot: u64, _backlog: f64, profile: &DepthProfile) -> u8 {
        profile.max_depth()
    }

    fn name(&self) -> &'static str {
        "only_max_depth"
    }
}

/// Baseline: always render at the minimum candidate depth
/// ("only min-Depth" — queue drains to zero, quality pinned at the floor).
#[derive(Debug, Clone, Copy, Default)]
pub struct MinDepth;

impl DepthController for MinDepth {
    fn select_depth(&mut self, _slot: u64, _backlog: f64, profile: &DepthProfile) -> u8 {
        profile.min_depth()
    }

    fn name(&self) -> &'static str {
        "only_min_depth"
    }
}

/// Baseline: a fixed depth, clamped into the candidate range.
#[derive(Debug, Clone, Copy)]
pub struct FixedDepth {
    /// The depth to hold.
    pub depth: u8,
}

impl FixedDepth {
    /// Creates a fixed-depth policy.
    pub fn new(depth: u8) -> Self {
        FixedDepth { depth }
    }
}

impl DepthController for FixedDepth {
    fn select_depth(&mut self, _slot: u64, _backlog: f64, profile: &DepthProfile) -> u8 {
        self.depth.clamp(profile.min_depth(), profile.max_depth())
    }

    fn name(&self) -> &'static str {
        "fixed_depth"
    }
}

/// Baseline: uniformly random depth each slot (seeded).
#[derive(Debug, Clone)]
pub struct RandomDepth {
    rng: StdRng,
}

impl RandomDepth {
    /// Creates a seeded random policy.
    pub fn new(seed: u64) -> Self {
        RandomDepth {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl DepthController for RandomDepth {
    fn select_depth(&mut self, _slot: u64, _backlog: f64, profile: &DepthProfile) -> u8 {
        self.rng
            .gen_range(profile.min_depth()..=profile.max_depth())
    }

    fn name(&self) -> &'static str {
        "random_depth"
    }
}

/// Baseline: hand-tuned backlog thresholds — drop one depth level per
/// threshold crossed. The natural heuristic an engineer would write without
/// the Lyapunov framework; the comparison quantifies what the closed form
/// buys.
#[derive(Debug, Clone)]
pub struct QueueThreshold {
    /// Ascending backlog thresholds; crossing the `k`-th drops the depth by
    /// `k + 1` levels below the maximum.
    thresholds: Vec<f64>,
}

impl QueueThreshold {
    /// Creates a threshold policy.
    ///
    /// # Panics
    ///
    /// Panics when `thresholds` is empty or not strictly ascending.
    pub fn new(thresholds: Vec<f64>) -> Self {
        assert!(!thresholds.is_empty(), "need at least one threshold");
        assert!(
            thresholds.windows(2).all(|w| w[0] < w[1]),
            "thresholds must be strictly ascending"
        );
        QueueThreshold { thresholds }
    }

    /// Evenly spaced thresholds between 0 and `max_backlog` covering the
    /// whole depth range of `profile`.
    pub fn evenly_spaced(profile: &DepthProfile, max_backlog: f64) -> Self {
        let levels = profile.len() - 1;
        let thresholds = (1..=levels)
            .map(|k| max_backlog * k as f64 / levels as f64)
            .collect();
        Self::new(thresholds)
    }
}

impl DepthController for QueueThreshold {
    fn select_depth(&mut self, _slot: u64, backlog: f64, profile: &DepthProfile) -> u8 {
        let crossed = self.thresholds.iter().filter(|&&t| backlog >= t).count() as u8;
        profile
            .max_depth()
            .saturating_sub(crossed)
            .max(profile.min_depth())
    }

    fn name(&self) -> &'static str {
        "queue_threshold"
    }
}

/// Extension: the proposed scheduler with online-adapted `V` regulating the
/// backlog around a target (see [`arvis_lyapunov::adaptive`]).
#[derive(Debug, Clone)]
pub struct AdaptiveDpp {
    inner: DppController,
    adapter: AdaptiveV,
}

impl AdaptiveDpp {
    /// Creates an adaptive scheduler starting at `initial_v` and regulating
    /// the backlog around `target_backlog`.
    pub fn new(initial_v: f64, target_backlog: f64) -> Self {
        AdaptiveDpp {
            inner: DppController::new(initial_v),
            adapter: AdaptiveV::new(initial_v, target_backlog, 0.02),
        }
    }

    /// The current (adapted) `V`.
    pub fn v(&self) -> f64 {
        self.inner.v()
    }
}

impl DepthController for AdaptiveDpp {
    fn select_depth(&mut self, _slot: u64, backlog: f64, profile: &DepthProfile) -> u8 {
        let v = self.adapter.observe(backlog);
        self.inner.set_v(v);
        let candidates = profile.depths().map(|d| Candidate {
            action: d,
            utility: profile.quality(d),
            arrival: profile.arrival(d),
        });
        self.inner
            .decide(backlog, candidates)
            .expect("profile has at least two depths")
            .action
    }

    fn name(&self) -> &'static str {
        "adaptive_v"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> DepthProfile {
        DepthProfile::from_parts(
            5,
            vec![100.0, 400.0, 1600.0, 6400.0, 25600.0, 102400.0],
            vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
        )
    }

    #[test]
    fn proposed_interpolates_between_extremes() {
        let p = profile();
        let mut c = ProposedDpp::new(1e6);
        assert_eq!(c.select_depth(0, 0.0, &p), 10, "empty queue -> max depth");
        assert_eq!(c.select_depth(0, 1e9, &p), 5, "huge queue -> min depth");
        let mid = c.select_depth(0, 3_000.0, &p);
        assert!((5..=10).contains(&mid));
    }

    #[test]
    fn proposed_depth_monotone_in_backlog() {
        let p = profile();
        let mut c = ProposedDpp::new(1e6);
        let mut last = u8::MAX;
        for q in [0.0, 1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7] {
            let d = c.select_depth(0, q, &p);
            assert!(d <= last, "depth must be non-increasing in backlog");
            last = d;
        }
    }

    #[test]
    fn max_min_fixed_policies() {
        let p = profile();
        assert_eq!(MaxDepth.select_depth(0, 1e9, &p), 10);
        assert_eq!(MinDepth.select_depth(0, 0.0, &p), 5);
        assert_eq!(FixedDepth::new(7).select_depth(0, 0.0, &p), 7);
        assert_eq!(FixedDepth::new(2).select_depth(0, 0.0, &p), 5, "clamped up");
        assert_eq!(
            FixedDepth::new(99).select_depth(0, 0.0, &p),
            10,
            "clamped down"
        );
    }

    #[test]
    fn random_depth_within_range_and_seeded() {
        let p = profile();
        let mut a = RandomDepth::new(7);
        let seq_a: Vec<u8> = (0..100).map(|s| a.select_depth(s, 0.0, &p)).collect();
        assert!(seq_a.iter().all(|d| (5..=10).contains(d)));
        let mut b = RandomDepth::new(7);
        let seq_b: Vec<u8> = (0..100).map(|s| b.select_depth(s, 0.0, &p)).collect();
        assert_eq!(seq_a, seq_b, "same seed, same sequence");
        // All depths eventually visited.
        for d in 5..=10u8 {
            assert!(seq_a.contains(&d), "depth {d} never chosen in 100 draws");
        }
    }

    #[test]
    fn threshold_policy_steps_down() {
        let p = profile();
        let mut c = QueueThreshold::new(vec![100.0, 200.0, 300.0, 400.0, 500.0]);
        assert_eq!(c.select_depth(0, 0.0, &p), 10);
        assert_eq!(c.select_depth(0, 150.0, &p), 9);
        assert_eq!(c.select_depth(0, 450.0, &p), 6);
        assert_eq!(c.select_depth(0, 1e9, &p), 5);
    }

    #[test]
    fn threshold_evenly_spaced_covers_range() {
        let p = profile();
        let mut c = QueueThreshold::evenly_spaced(&p, 1_000.0);
        assert_eq!(c.select_depth(0, 0.0, &p), 10);
        assert_eq!(c.select_depth(0, 2_000.0, &p), 5);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn threshold_rejects_unsorted() {
        let _ = QueueThreshold::new(vec![5.0, 3.0]);
    }

    #[test]
    fn adaptive_dpp_tracks_target() {
        let p = profile();
        let mut c = AdaptiveDpp::new(1e6, 1_000.0);
        let v0 = c.v();
        // Keep showing it an over-target backlog: V must fall.
        for s in 0..200 {
            let _ = c.select_depth(s, 50_000.0, &p);
        }
        assert!(c.v() < v0);
    }

    #[test]
    fn paper_literal_rule_is_worse() {
        // At an empty queue, the literal Algorithm-1 comparison (argmin)
        // picks the minimum quality — demonstrably not what Eq. (3) intends.
        let p = profile();
        let mut literal = ProposedDpp::with_objective(1e6, Objective::PaperLiteralMinimize);
        let mut correct = ProposedDpp::new(1e6);
        assert_eq!(correct.select_depth(0, 0.0, &p), 10);
        assert_eq!(literal.select_depth(0, 0.0, &p), 5);
    }

    #[test]
    fn names_are_distinct() {
        let p = profile();
        let mut controllers: Vec<Box<dyn DepthController>> = vec![
            Box::new(ProposedDpp::default()),
            Box::new(MaxDepth),
            Box::new(MinDepth),
            Box::new(FixedDepth::new(7)),
            Box::new(RandomDepth::new(0)),
            Box::new(QueueThreshold::evenly_spaced(&p, 100.0)),
            Box::new(AdaptiveDpp::new(1e6, 100.0)),
        ];
        let mut names: Vec<&str> = controllers.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
        // And they all produce valid depths through the trait object.
        for c in controllers.iter_mut() {
            let d = c.select_depth(0, 10.0, &p);
            assert!((5..=10).contains(&d));
        }
    }
}
