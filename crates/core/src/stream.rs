//! AR stream sources: where each slot's depth profile comes from.
//!
//! Each time slot the scheduler consults the current frame's
//! [`DepthProfile`] (per-depth arrivals and quality). Sources:
//!
//! - [`ArStream::constant`]: one profile for every slot (the paper's setup —
//!   a stationary stream whose per-depth statistics are those of the 8i
//!   bodies);
//! - [`ArStream::cycle`]: per-frame measured profiles of a dynamic sequence,
//!   replayed cyclically;
//! - [`ArStream::modulated`]: the constant profile with a sinusoidal
//!   arrival modulation (subject moving closer/farther), for robustness
//!   experiments.

use std::borrow::Cow;

use arvis_pointcloud::synth::FrameSequence;
use arvis_quality::profile::{DepthProfile, ProfileError, QualityMetric};

use crate::json::{self, JsonError, JsonValue};

/// A source of per-slot depth profiles.
#[derive(Debug, Clone)]
pub struct ArStream {
    kind: StreamKind,
}

#[derive(Debug, Clone)]
enum StreamKind {
    Constant(DepthProfile),
    Cycle(Vec<DepthProfile>),
    Modulated {
        base: DepthProfile,
        amplitude: f64,
        period_slots: f64,
    },
}

impl ArStream {
    /// A stationary stream: the same profile every slot.
    pub fn constant(profile: DepthProfile) -> ArStream {
        ArStream {
            kind: StreamKind::Constant(profile),
        }
    }

    /// Replays measured per-frame profiles cyclically.
    ///
    /// # Panics
    ///
    /// Panics when `profiles` is empty or the frames disagree on the depth
    /// range.
    pub fn cycle(profiles: Vec<DepthProfile>) -> ArStream {
        assert!(!profiles.is_empty(), "need at least one frame profile");
        let r = profiles[0].depths();
        assert!(
            profiles.iter().all(|p| p.depths() == r),
            "all frame profiles must share the same depth range"
        );
        ArStream {
            kind: StreamKind::Cycle(profiles),
        }
    }

    /// The base profile with arrivals scaled by
    /// `1 + amplitude · sin(2π · slot / period_slots)` — models the subject
    /// approaching and receding from the capture volume.
    ///
    /// # Panics
    ///
    /// Panics when `amplitude ∉ [0, 1)` or `period_slots <= 0`.
    pub fn modulated(base: DepthProfile, amplitude: f64, period_slots: f64) -> ArStream {
        assert!(
            (0.0..1.0).contains(&amplitude),
            "amplitude must be in [0, 1)"
        );
        assert!(period_slots > 0.0, "period must be positive");
        ArStream {
            kind: StreamKind::Modulated {
                base,
                amplitude,
                period_slots,
            },
        }
    }

    /// Measures per-frame profiles of a synthetic [`FrameSequence`] and
    /// builds a cycling stream. `frame_stride` measures every `stride`-th
    /// frame (profiles are expensive at full resolution).
    ///
    /// # Errors
    ///
    /// Propagates profile-measurement failures.
    ///
    /// # Panics
    ///
    /// Panics when `frame_stride == 0` or the sequence is empty.
    pub fn from_sequence(
        sequence: &FrameSequence,
        depths: std::ops::RangeInclusive<u8>,
        frame_stride: usize,
    ) -> Result<ArStream, ProfileError> {
        assert!(frame_stride >= 1, "stride must be >= 1");
        assert!(!sequence.is_empty(), "sequence must have frames");
        let mut profiles = Vec::new();
        // Shared octree scratch across the measured frames.
        let mut builder = arvis_octree::OctreeBuilder::new();
        let mut i = 0;
        while i < sequence.len() {
            let frame = sequence.frame(i);
            profiles.push(DepthProfile::measure_with_builder(
                &frame,
                depths.clone(),
                QualityMetric::LogPointCount,
                &mut builder,
            )?);
            i += frame_stride;
        }
        Ok(ArStream::cycle(profiles))
    }

    /// The profile in effect at `slot`.
    pub fn profile_at(&self, slot: u64) -> Cow<'_, DepthProfile> {
        match &self.kind {
            StreamKind::Constant(p) => Cow::Borrowed(p),
            StreamKind::Cycle(ps) => Cow::Borrowed(&ps[(slot as usize) % ps.len()]),
            StreamKind::Modulated {
                base,
                amplitude,
                period_slots,
            } => {
                let phase = std::f64::consts::TAU * slot as f64 / period_slots;
                let scale = 1.0 + amplitude * phase.sin();
                let arrivals = base
                    .depths()
                    .map(|d| base.arrival(d) * scale)
                    .collect::<Vec<_>>();
                let quality = base.depths().map(|d| base.quality(d)).collect();
                Cow::Owned(DepthProfile::from_parts(
                    base.min_depth(),
                    arrivals,
                    quality,
                ))
            }
        }
    }

    /// The long-run mean arrival at depth `d` across the stream.
    pub fn mean_arrival(&self, depth: u8) -> f64 {
        match &self.kind {
            StreamKind::Constant(p) => p.arrival(depth),
            StreamKind::Cycle(ps) => {
                ps.iter().map(|p| p.arrival(depth)).sum::<f64>() / ps.len() as f64
            }
            // Sinusoid has zero mean over a period.
            StreamKind::Modulated { base, .. } => base.arrival(depth),
        }
    }

    /// The depth range served by this stream.
    pub fn depths(&self) -> std::ops::RangeInclusive<u8> {
        match &self.kind {
            StreamKind::Constant(p) => p.depths(),
            StreamKind::Cycle(ps) => ps[0].depths(),
            StreamKind::Modulated { base, .. } => base.depths(),
        }
    }

    /// Encodes the stream for a scenario file (see [`crate::json`]):
    /// a `"type"`-tagged object (`constant` / `cycle` / `modulated`)
    /// whose profiles are `{min_depth, arrivals, quality}` tables.
    ///
    /// # Errors
    ///
    /// Errors when a profile value is non-finite (nothing non-finite has a
    /// scenario-file form here).
    pub fn to_json(&self) -> Result<JsonValue, JsonError> {
        Ok(match &self.kind {
            StreamKind::Constant(p) => JsonValue::obj(vec![
                ("type", JsonValue::str("constant")),
                ("profile", profile_to_json(p)?),
            ]),
            StreamKind::Cycle(ps) => JsonValue::obj(vec![
                ("type", JsonValue::str("cycle")),
                (
                    "profiles",
                    JsonValue::arr(
                        ps.iter()
                            .map(profile_to_json)
                            .collect::<Result<Vec<_>, _>>()?,
                    ),
                ),
            ]),
            StreamKind::Modulated {
                base,
                amplitude,
                period_slots,
            } => JsonValue::obj(vec![
                ("type", JsonValue::str("modulated")),
                ("base", profile_to_json(base)?),
                ("amplitude", json::finite_num("amplitude", *amplitude)?),
                (
                    "period_slots",
                    json::finite_num("period_slots", *period_slots)?,
                ),
            ]),
        })
    }

    /// Decodes a stream from its scenario-file form, enforcing every
    /// constructor invariant as an error (never a panic): non-empty
    /// cycles with matching depth ranges, `amplitude ∈ [0, 1)`,
    /// `period_slots > 0`.
    ///
    /// # Errors
    ///
    /// Errors (with the offending position) on unknown `"type"` tags,
    /// unknown or missing keys, wrong types, and invalid parameters.
    pub fn from_json(v: &JsonValue) -> Result<ArStream, JsonError> {
        let mut obj = v.as_obj()?;
        let tag = obj.req("type")?;
        let stream = match tag.as_str()? {
            "constant" => ArStream::constant(profile_from_json(obj.req("profile")?)?),
            "cycle" => {
                let node = obj.req("profiles")?;
                let items = node.as_array()?;
                if items.is_empty() {
                    return Err(JsonError::at(node.pos, "need at least one frame profile"));
                }
                let profiles = items
                    .iter()
                    .map(profile_from_json)
                    .collect::<Result<Vec<_>, _>>()?;
                let r = profiles[0].depths();
                if let Some(i) = profiles.iter().position(|p| p.depths() != r) {
                    return Err(JsonError::at(
                        items[i].pos,
                        "all frame profiles must share the same depth range",
                    ));
                }
                ArStream::cycle(profiles)
            }
            "modulated" => {
                let base = profile_from_json(obj.req("base")?)?;
                let amplitude_node = obj.req("amplitude")?;
                let amplitude = amplitude_node.as_f64()?;
                if !(0.0..1.0).contains(&amplitude) {
                    return Err(JsonError::at(
                        amplitude_node.pos,
                        format!("amplitude must be in [0, 1), got {amplitude}"),
                    ));
                }
                let period_node = obj.req("period_slots")?;
                let period_slots = period_node.as_f64()?;
                if period_slots <= 0.0 {
                    return Err(JsonError::at(
                        period_node.pos,
                        format!("period_slots must be positive, got {period_slots}"),
                    ));
                }
                ArStream::modulated(base, amplitude, period_slots)
            }
            other => {
                return Err(JsonError::at(
                    tag.pos,
                    format!(
                        "unknown stream type \"{other}\" \
                         (expected constant, cycle, or modulated)"
                    ),
                ))
            }
        };
        obj.finish()?;
        Ok(stream)
    }
}

/// Encodes a [`DepthProfile`] as its `{min_depth, arrivals, quality}`
/// table (the exact `from_parts` surface; PSNR columns are measurement
/// artifacts and never serialized).
fn profile_to_json(p: &DepthProfile) -> Result<JsonValue, JsonError> {
    Ok(JsonValue::obj(vec![
        ("min_depth", JsonValue::int(p.min_depth())),
        (
            "arrivals",
            JsonValue::arr(
                p.depths()
                    .map(|d| json::finite_num("arrival", p.arrival(d)))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
        ),
        (
            "quality",
            JsonValue::arr(
                p.depths()
                    .map(|d| json::finite_num("quality", p.quality(d)))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
        ),
    ]))
}

/// Decodes a depth profile, turning every `DepthProfile::from_parts` panic
/// condition into a positioned error.
fn profile_from_json(v: &JsonValue) -> Result<DepthProfile, JsonError> {
    let mut obj = v.as_obj()?;
    let min_depth = obj.req("min_depth")?.as_u8()?;
    let arrivals_node = obj.req("arrivals")?;
    let arrivals = finite_f64_array(arrivals_node)?;
    if arrivals.len() < 2 {
        return Err(JsonError::at(arrivals_node.pos, "need at least two depths"));
    }
    if arrivals.len() - 1 > usize::from(u8::MAX - min_depth) {
        return Err(JsonError::at(
            arrivals_node.pos,
            format!(
                "depth range overflows u8: min_depth {min_depth} + {} levels",
                arrivals.len()
            ),
        ));
    }
    if let Some(i) = arrivals.iter().position(|&a| a <= 0.0) {
        return Err(JsonError::at(
            arrivals_node.as_array()?[i].pos,
            format!("arrivals must be positive, got {}", arrivals[i]),
        ));
    }
    let quality_node = obj.req("quality")?;
    let quality = finite_f64_array(quality_node)?;
    if quality.len() != arrivals.len() {
        return Err(JsonError::at(
            quality_node.pos,
            format!(
                "quality has {} entries but arrivals has {}",
                quality.len(),
                arrivals.len()
            ),
        ));
    }
    obj.finish()?;
    Ok(DepthProfile::from_parts(min_depth, arrivals, quality))
}

/// Decodes an array of finite floats (the common profile-table shape).
pub(crate) fn finite_f64_array(v: &JsonValue) -> Result<Vec<f64>, JsonError> {
    v.as_array()?.iter().map(JsonValue::as_f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvis_pointcloud::synth::SubjectProfile;

    fn profile(scale: f64) -> DepthProfile {
        DepthProfile::from_parts(
            5,
            vec![scale * 100.0, scale * 400.0, scale * 1600.0],
            vec![0.0, 0.5, 1.0],
        )
    }

    #[test]
    fn constant_stream_is_constant() {
        let s = ArStream::constant(profile(1.0));
        assert_eq!(s.profile_at(0).arrival(5), 100.0);
        assert_eq!(s.profile_at(999).arrival(5), 100.0);
        assert_eq!(s.mean_arrival(6), 400.0);
        assert_eq!(s.depths(), 5..=7);
    }

    #[test]
    fn cycle_stream_rotates() {
        let s = ArStream::cycle(vec![profile(1.0), profile(2.0)]);
        assert_eq!(s.profile_at(0).arrival(5), 100.0);
        assert_eq!(s.profile_at(1).arrival(5), 200.0);
        assert_eq!(s.profile_at(2).arrival(5), 100.0);
        assert_eq!(s.mean_arrival(5), 150.0);
    }

    #[test]
    #[should_panic(expected = "same depth range")]
    fn cycle_rejects_mismatched_ranges() {
        let other = DepthProfile::from_parts(4, vec![1.0, 2.0], vec![0.0, 1.0]);
        let _ = ArStream::cycle(vec![profile(1.0), other]);
    }

    #[test]
    fn modulated_oscillates_and_preserves_quality() {
        let s = ArStream::modulated(profile(1.0), 0.5, 100.0);
        let at_zero = s.profile_at(0);
        let at_quarter = s.profile_at(25); // sin = 1 -> ×1.5
        let at_three_quarters = s.profile_at(75); // sin = -1 -> ×0.5
        assert!((at_zero.arrival(5) - 100.0).abs() < 1e-9);
        assert!((at_quarter.arrival(5) - 150.0).abs() < 1e-9);
        assert!((at_three_quarters.arrival(5) - 50.0).abs() < 1e-9);
        // Quality untouched by modulation.
        assert_eq!(at_quarter.quality(7), 1.0);
        assert_eq!(s.mean_arrival(5), 100.0);
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn modulated_rejects_full_amplitude() {
        let _ = ArStream::modulated(profile(1.0), 1.0, 10.0);
    }

    #[test]
    fn from_sequence_measures_frames() {
        let seq = FrameSequence::new(SubjectProfile::Loot, 4).with_target_points(2_000);
        let s = ArStream::from_sequence(&seq, 3..=5, 2).unwrap();
        // Frames 0 and 2 measured.
        let p0 = s.profile_at(0);
        let p1 = s.profile_at(1);
        assert_eq!(p0.depths(), 3..=5);
        // Different poses -> different occupancy (almost surely).
        assert_ne!(p0.arrival(5), p1.arrival(5));
        // Cycles with period 2.
        assert_eq!(s.profile_at(0).arrival(5), s.profile_at(2).arrival(5));
    }
}
