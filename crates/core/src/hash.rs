//! Dependency-free SHA-256 (FIPS 180-4) for content-addressing canonical
//! scenario bytes.
//!
//! The regression ledger (see [`crate::ledger`]) keys run records by the
//! SHA-256 of a scenario's canonical JSON form
//! ([`crate::Scenario::content_hash`]). Like the JSON layer in
//! [`crate::json`], the hash is vendored in-tree rather than pulled from
//! crates.io: the container this workspace builds in has no network
//! access, and the ~100 lines of FIPS 180-4 below are cheaper to audit
//! than to shim. Swapping to the `sha2` crate is a call-site-only change.
//!
//! The implementation is allocation-free per block, panic-free (all
//! arithmetic is explicitly wrapping, as the compression function
//! requires), and incremental:
//!
//! ```
//! use arvis_core::hash::{sha256_hex, Sha256};
//!
//! // One-shot and incremental hashing agree for any chunking.
//! let mut h = Sha256::new();
//! h.update(b"ab");
//! h.update(b"c");
//! assert_eq!(h.finalize_hex(), sha256_hex(b"abc"));
//! assert_eq!(
//!     sha256_hex(b"abc"),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
//! );
//! ```

/// Round constants: the first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state: the first 32 bits of the fractional parts of the
/// square roots of the first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// One compression round over a 64-byte block (FIPS 180-4 §6.2.2).
fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    for (s, v) in state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
        *s = s.wrapping_add(v);
    }
}

/// An incremental SHA-256 hasher.
///
/// Feed bytes with [`Sha256::update`] in any chunking; the digest depends
/// only on the concatenated byte stream.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    /// Total bytes absorbed (wrapping; only the low 64 bits of the bit
    /// length enter the padding, per FIPS 180-4 §5.1.1).
    len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

impl Sha256 {
    /// A fresh hasher (the FIPS 180-4 initial state).
    pub fn new() -> Sha256 {
        Sha256 {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            len: 0,
        }
    }

    /// Absorbs `data`; equivalent to absorbing its bytes one at a time.
    pub fn update(&mut self, data: &[u8]) {
        let mut data = data;
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                compress(&mut self.state, &block);
                self.buf_len = 0;
            }
        }
        let mut blocks = data.chunks_exact(64);
        for chunk in blocks.by_ref() {
            let mut block = [0u8; 64];
            block.copy_from_slice(chunk);
            compress(&mut self.state, &block);
        }
        let tail = blocks.remainder();
        if !tail.is_empty() {
            self.buf[..tail.len()].copy_from_slice(tail);
            self.buf_len = tail.len();
        }
    }

    /// Pads and returns the 32-byte digest, consuming the hasher.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.len.wrapping_mul(8);
        // One 0x80 byte, zeros to 56 mod 64, then the 64-bit big-endian
        // bit length (FIPS 180-4 §5.1.1): at most 72 padding bytes total.
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        let zeros = if self.buf_len < 56 {
            55 - self.buf_len
        } else {
            119 - self.buf_len
        };
        pad[1 + zeros..9 + zeros].copy_from_slice(&bit_len.to_be_bytes());
        self.update(&pad[..9 + zeros]);
        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// [`Sha256::finalize`] rendered as 64 lowercase hex digits.
    pub fn finalize_hex(self) -> String {
        to_hex(&self.finalize())
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// One-shot SHA-256 of `data` as 64 lowercase hex digits — the form the
/// regression ledger stores.
pub fn sha256_hex(data: &[u8]) -> String {
    to_hex(&sha256(data))
}

/// Lowercase hex rendering of a digest.
pub fn to_hex(digest: &[u8; 32]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(64);
    for &b in digest {
        s.push(HEX[(b >> 4) as usize] as char);
        s.push(HEX[(b & 0x0f) as usize] as char);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // The FIPS 180-4 / NIST CAVP reference vectors.
    const EMPTY: &str = "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855";
    const ABC: &str = "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad";
    const TWO_BLOCK: &str = "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1";
    const MILLION_A: &str = "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0";

    #[test]
    fn nist_vector_empty() {
        assert_eq!(sha256_hex(b""), EMPTY);
    }

    #[test]
    fn nist_vector_abc() {
        assert_eq!(sha256_hex(b"abc"), ABC);
    }

    #[test]
    fn nist_vector_two_block_message() {
        // 56 bytes: the message itself spills into a second padded block.
        let msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
        assert_eq!(sha256_hex(msg), TWO_BLOCK);
    }

    #[test]
    fn nist_vector_one_million_a() {
        let mut h = Sha256::new();
        for _ in 0..1_000_000 {
            h.update(b"a");
        }
        assert_eq!(h.finalize_hex(), MILLION_A);
    }

    #[test]
    fn incremental_chunkings_agree_on_the_vectors() {
        let msg: Vec<u8> = (0u16..300).map(|i| (i % 251) as u8).collect();
        let one_shot = sha256_hex(&msg);
        for chunk in [1usize, 3, 63, 64, 65, 128] {
            let mut h = Sha256::new();
            for piece in msg.chunks(chunk) {
                h.update(piece);
            }
            assert_eq!(h.finalize_hex(), one_shot, "chunk size {chunk}");
        }
    }

    #[test]
    fn boundary_lengths_pad_correctly() {
        // 55/56/63/64 bytes straddle the one-vs-two padded block boundary;
        // cross-check the incremental path against the one-shot path, and
        // pin 64 x 'a' against the known digest.
        for n in [55usize, 56, 63, 64, 119, 120] {
            let msg = vec![0xa5u8; n];
            let mut h = Sha256::new();
            h.update(&msg[..n / 2]);
            h.update(&msg[n / 2..]);
            assert_eq!(h.finalize(), sha256(&msg), "length {n}");
        }
        assert_eq!(
            sha256_hex(&[b'a'; 64]),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"
        );
    }
}
