//! A self-contained JSON layer for scenario files.
//!
//! The offline container vendors a no-op serde shim, so scenario files
//! cannot ride on derived `Serialize`/`Deserialize` impls. This module is
//! the dependency-free substitute: a [`JsonValue`] tree, a strict
//! recursive-descent parser with line/column errors ([`parse`]), and a
//! deterministic pretty-printer ([`JsonValue::to_pretty`]) — everything the
//! hand-written scenario codecs ([`crate::scenario::Scenario::to_json`] and
//! friends) need. On a networked build the codecs can become serde impls
//! behind the same `to_json_string`/`from_json_str` API.
//!
//! ## Exact round-trips
//!
//! Scenario conformance is pinned **bit-for-bit** (`tests/scenario_files.rs`),
//! so the codec must not lose a single float bit:
//!
//! - finite `f64`s print via Rust's shortest round-trip `Display` repr
//!   ([`format_f64`]); parsing is correctly rounded (`str::parse::<f64>`),
//!   so `parse(format(x)) == x` exactly;
//! - integer tokens (no `.`/exponent) are kept as exact integers
//!   ([`JsonKind::Int`]), so `u64` seeds beyond 2^53 survive unchanged;
//!   `-0` stays `-0.0` bitwise;
//! - non-finite literals (`NaN`, `Infinity`, `1e999`) are parse errors.
//!   Schema fields that legitimately admit an infinite value (uplink
//!   budgets, the α-fair exponent) encode it as the JSON string `"inf"`
//!   and decode it via [`JsonValue::as_f64_or_inf`].
//!
//! The printer is a pure function of the tree (two-space indent, scalar
//! arrays inline, object members in insertion order), and every codec emits
//! members in a fixed schema order — so `emit → parse → emit` is
//! byte-identical, the canonical-form contract the golden scenario suite
//! asserts.
//!
//! ## Errors
//!
//! Every parse or decode failure is a [`JsonError`] carrying the offending
//! [`Pos`] (1-based line and column): truncated input, unknown object keys
//! ([`ObjReader::finish`]), wrong types, out-of-range numbers, duplicate
//! keys. Nothing in this module panics on malformed input — the mini fuzz
//! loop in `tests/scenario_files.rs` mutates valid files at the byte level
//! and expects `Err`, never an abort.

use std::fmt;

/// A 1-based line/column position in the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column (in bytes) within the line.
    pub col: u32,
}

impl Pos {
    /// The position synthesized values carry (printer output never depends
    /// on positions, so emitted trees use this placeholder).
    pub const NONE: Pos = Pos { line: 0, col: 0 };
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.col)
    }
}

/// A JSON parse or decode error, with the source position when one exists
/// (encode-side errors — e.g. an `Extern` controller — have none).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Where in the source text the error was detected.
    pub pos: Option<Pos>,
    /// What went wrong.
    pub msg: String,
}

impl JsonError {
    /// An error at a known source position.
    pub fn at(pos: Pos, msg: impl Into<String>) -> JsonError {
        JsonError {
            pos: Some(pos),
            msg: msg.into(),
        }
    }

    /// A positionless error (encode side).
    pub fn new(msg: impl Into<String>) -> JsonError {
        JsonError {
            pos: None,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(p) => write!(f, "{p}: {}", self.msg),
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for JsonError {}

/// One `"key": value` member of a JSON object, with the key's position.
#[derive(Debug, Clone)]
pub struct Member {
    /// The member key.
    pub key: String,
    /// Where the key appeared (for unknown-key errors).
    pub pos: Pos,
    /// The member value.
    pub value: JsonValue,
}

/// The payload of a [`JsonValue`].
#[derive(Debug, Clone)]
pub enum JsonKind {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without `.` or an exponent, kept exact (this is
    /// what lets `u64` seeds round-trip losslessly). `-0` is *not* an
    /// `Int` — it parses as `Num(-0.0)` so the sign bit survives.
    Int(i128),
    /// Any other number, as a finite `f64` (the parser rejects overflow).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, members in source/emission order.
    Obj(Vec<Member>),
}

/// One node of a parsed or synthesized JSON tree.
#[derive(Debug, Clone)]
pub struct JsonValue {
    /// Where the value started in the source (or [`Pos::NONE`]).
    pub pos: Pos,
    /// The payload.
    pub kind: JsonKind,
}

/// Formats a finite `f64` as its shortest round-trip decimal repr (Rust's
/// `Display`, which never produces exponents — valid JSON by construction).
///
/// # Panics
///
/// Panics on NaN or infinity: non-finite values have no JSON number form
/// and must be encoded by the caller (e.g. as the string `"inf"`).
pub fn format_f64(x: f64) -> String {
    assert!(x.is_finite(), "cannot format non-finite {x} as JSON");
    format!("{x}")
}

/// Encodes a float field that must be finite, as a positionless encode
/// error (naming the field) otherwise — the codec-side counterpart of
/// [`JsonValue::num`]'s assert, for struct fields a caller can set to any
/// bit pattern.
///
/// # Errors
///
/// Errors on NaN and ±∞.
pub fn finite_num(field: &str, x: f64) -> Result<JsonValue, JsonError> {
    if x.is_finite() {
        Ok(JsonValue::num(x))
    } else {
        Err(JsonError::new(format!(
            "{field} must be finite to encode in a scenario file, got {x}"
        )))
    }
}

/// Like [`finite_num`] but `+∞` is allowed and encodes as the string
/// `"inf"` (the schema form for unbounded budgets and the max-min α).
///
/// # Errors
///
/// Errors on NaN and `-∞`.
pub fn num_or_inf_checked(field: &str, x: f64) -> Result<JsonValue, JsonError> {
    if x == f64::INFINITY {
        Ok(JsonValue::str("inf"))
    } else {
        finite_num(field, x)
    }
}

impl JsonValue {
    fn synth(kind: JsonKind) -> JsonValue {
        JsonValue {
            pos: Pos::NONE,
            kind,
        }
    }

    /// A synthesized `null`.
    pub fn null() -> JsonValue {
        JsonValue::synth(JsonKind::Null)
    }

    /// A synthesized boolean.
    pub fn bool(b: bool) -> JsonValue {
        JsonValue::synth(JsonKind::Bool(b))
    }

    /// A synthesized exact integer (use for every integer-typed schema
    /// field: seeds, slots, depths, periods).
    pub fn int(n: impl Into<i128>) -> JsonValue {
        JsonValue::synth(JsonKind::Int(n.into()))
    }

    /// A synthesized finite float.
    ///
    /// # Panics
    ///
    /// Panics on NaN or infinity (see [`format_f64`]); encode infinite
    /// values with [`JsonValue::num_or_inf`] where the schema allows them.
    pub fn num(x: f64) -> JsonValue {
        assert!(x.is_finite(), "cannot encode non-finite {x} as JSON number");
        JsonValue::synth(JsonKind::Num(x))
    }

    /// A float field that may be `+∞`, encoded as the string `"inf"`.
    ///
    /// # Panics
    ///
    /// Panics on NaN or `-∞` (no schema field admits either).
    pub fn num_or_inf(x: f64) -> JsonValue {
        if x == f64::INFINITY {
            JsonValue::str("inf")
        } else {
            JsonValue::num(x)
        }
    }

    /// A synthesized string.
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::synth(JsonKind::Str(s.into()))
    }

    /// A synthesized array.
    pub fn arr(items: Vec<JsonValue>) -> JsonValue {
        JsonValue::synth(JsonKind::Arr(items))
    }

    /// A synthesized object with members in the given (schema) order.
    pub fn obj(members: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::synth(JsonKind::Obj(
            members
                .into_iter()
                .map(|(key, value)| Member {
                    key: key.to_string(),
                    pos: Pos::NONE,
                    value,
                })
                .collect(),
        ))
    }

    /// Human-readable name of the value's JSON type (error messages).
    pub fn type_name(&self) -> &'static str {
        match self.kind {
            JsonKind::Null => "null",
            JsonKind::Bool(_) => "a boolean",
            JsonKind::Int(_) | JsonKind::Num(_) => "a number",
            JsonKind::Str(_) => "a string",
            JsonKind::Arr(_) => "an array",
            JsonKind::Obj(_) => "an object",
        }
    }

    fn type_err(&self, want: &str) -> JsonError {
        JsonError::at(
            self.pos,
            format!("expected {want}, found {}", self.type_name()),
        )
    }

    /// The value as a boolean.
    ///
    /// # Errors
    ///
    /// Errors when the value is not a boolean.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self.kind {
            JsonKind::Bool(b) => Ok(b),
            _ => Err(self.type_err("a boolean")),
        }
    }

    /// The value as a string slice.
    ///
    /// # Errors
    ///
    /// Errors when the value is not a string.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match &self.kind {
            JsonKind::Str(s) => Ok(s),
            _ => Err(self.type_err("a string")),
        }
    }

    /// The value as a finite `f64` (exact for every number the printer
    /// emits: shortest-repr floats parse back bit-identically and integer
    /// tokens convert by one correctly-rounded `i128 → f64` step, the same
    /// rounding the decimal literal itself would get).
    ///
    /// # Errors
    ///
    /// Errors when the value is not a number.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self.kind {
            JsonKind::Int(n) => Ok(n as f64),
            JsonKind::Num(x) => Ok(x),
            _ => Err(self.type_err("a number")),
        }
    }

    /// [`JsonValue::as_f64`], additionally accepting the string `"inf"`
    /// (and `"+inf"`) as `+∞` — the encoding of unbounded budgets and the
    /// max-min α.
    ///
    /// # Errors
    ///
    /// Errors when the value is neither a number nor an `"inf"` string.
    pub fn as_f64_or_inf(&self) -> Result<f64, JsonError> {
        match &self.kind {
            JsonKind::Str(s) if s == "inf" || s == "+inf" => Ok(f64::INFINITY),
            JsonKind::Str(_) => Err(JsonError::at(
                self.pos,
                "expected a number or the string \"inf\"",
            )),
            _ => self.as_f64(),
        }
    }

    /// The value as a `u64` (must be an exact non-negative integer token).
    ///
    /// # Errors
    ///
    /// Errors when the value is not an integer, is negative, or exceeds
    /// `u64::MAX`.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self.kind {
            JsonKind::Int(n) => u64::try_from(n)
                .map_err(|_| JsonError::at(self.pos, format!("integer {n} out of range for u64"))),
            JsonKind::Num(_) => Err(JsonError::at(
                self.pos,
                "expected an integer, found a non-integer number",
            )),
            _ => Err(self.type_err("an integer")),
        }
    }

    /// The value as a `usize`.
    ///
    /// # Errors
    ///
    /// Errors when the value is not an exact integer in `usize` range.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        let n = self.as_u64()?;
        usize::try_from(n)
            .map_err(|_| JsonError::at(self.pos, format!("integer {n} out of range for usize")))
    }

    /// The value as a `u8`.
    ///
    /// # Errors
    ///
    /// Errors when the value is not an exact integer in `0..=255`.
    pub fn as_u8(&self) -> Result<u8, JsonError> {
        let n = self.as_u64()?;
        u8::try_from(n)
            .map_err(|_| JsonError::at(self.pos, format!("integer {n} out of range for u8")))
    }

    /// The value as an array slice.
    ///
    /// # Errors
    ///
    /// Errors when the value is not an array.
    pub fn as_array(&self) -> Result<&[JsonValue], JsonError> {
        match &self.kind {
            JsonKind::Arr(items) => Ok(items),
            _ => Err(self.type_err("an array")),
        }
    }

    /// Opens the value as an object for strict member-by-member reading
    /// (see [`ObjReader`]).
    ///
    /// # Errors
    ///
    /// Errors when the value is not an object.
    pub fn as_obj(&self) -> Result<ObjReader<'_>, JsonError> {
        match &self.kind {
            JsonKind::Obj(members) => Ok(ObjReader {
                pos: self.pos,
                members,
                seen: vec![false; members.len()],
            }),
            _ => Err(self.type_err("an object")),
        }
    }

    /// Renders the tree in the canonical pretty form: two-space indent,
    /// arrays of scalars on one line, object members in insertion order,
    /// no trailing newline. A pure function of the tree — positions never
    /// influence the output — so `parse(s).to_pretty()` reproduces any
    /// canonically-formatted `s` byte for byte.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, 0);
        out
    }
}

/// Strict object reader: members are consumed by key, and
/// [`ObjReader::finish`] rejects any member never asked for — the
/// unknown-key strictness that keeps scenario files forward-diffable
/// (a typo'd or future key fails loudly instead of being ignored).
#[derive(Debug)]
pub struct ObjReader<'a> {
    pos: Pos,
    members: &'a [Member],
    seen: Vec<bool>,
}

impl<'a> ObjReader<'a> {
    /// The object's own source position.
    pub fn pos(&self) -> Pos {
        self.pos
    }

    fn lookup(&mut self, key: &str) -> Option<&'a JsonValue> {
        // Objects here are tiny (≤ 8 members); linear scan beats any map.
        for (i, m) in self.members.iter().enumerate() {
            if m.key == key {
                self.seen[i] = true;
                return Some(&m.value);
            }
        }
        None
    }

    /// A required member.
    ///
    /// # Errors
    ///
    /// Errors when the key is absent.
    pub fn req(&mut self, key: &str) -> Result<&'a JsonValue, JsonError> {
        self.lookup(key)
            .ok_or_else(|| JsonError::at(self.pos, format!("missing required key \"{key}\"")))
    }

    /// An optional member; absent keys and explicit `null` both read as
    /// `None` (the codec emits `Some` fields only, so both spellings mean
    /// the same thing on the way in).
    pub fn opt(&mut self, key: &str) -> Option<&'a JsonValue> {
        self.lookup(key)
            .filter(|v| !matches!(v.kind, JsonKind::Null))
    }

    /// Verifies every member was consumed.
    ///
    /// # Errors
    ///
    /// Errors on the first member no `req`/`opt` call asked for, at the
    /// key's own position.
    pub fn finish(self) -> Result<(), JsonError> {
        for (m, seen) in self.members.iter().zip(&self.seen) {
            if !seen {
                return Err(JsonError::at(m.pos, format!("unknown key \"{}\"", m.key)));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn is_scalar(v: &JsonValue) -> bool {
    !matches!(v.kind, JsonKind::Arr(_) | JsonKind::Obj(_))
}

fn write_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_string_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &JsonValue, depth: usize) {
    match &v.kind {
        JsonKind::Null => out.push_str("null"),
        JsonKind::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonKind::Int(n) => {
            use fmt::Write as _;
            let _ = write!(out, "{n}");
        }
        JsonKind::Num(x) => out.push_str(&format_f64(*x)),
        JsonKind::Str(s) => write_string_escaped(out, s),
        JsonKind::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
            } else if items.iter().all(is_scalar) {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_value(out, item, depth);
                }
                out.push(']');
            } else {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    write_indent(out, depth + 1);
                    write_value(out, item, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                write_indent(out, depth);
                out.push(']');
            }
        }
        JsonKind::Obj(members) => {
            if members.is_empty() {
                out.push_str("{}");
            } else {
                out.push_str("{\n");
                for (i, m) in members.iter().enumerate() {
                    write_indent(out, depth + 1);
                    write_string_escaped(out, &m.key);
                    out.push_str(": ");
                    write_value(out, &m.value, depth + 1);
                    if i + 1 < members.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                write_indent(out, depth);
                out.push('}');
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Maximum container nesting the parser accepts — far above any scenario
/// file (≤ 8 levels), but low enough that a pathological `[[[[…` from the
/// fuzz loop errors instead of exhausting the stack.
const MAX_DEPTH: u32 = 64;

/// Parses strict JSON (RFC 8259: no comments, no trailing commas, no
/// `NaN`/`Infinity` literals, exactly one top-level value) into a
/// [`JsonValue`] tree with source positions, rejecting duplicate object
/// keys and numbers that overflow `f64`.
///
/// # Errors
///
/// Errors on the first syntax violation, at its line/column.
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.i < p.bytes.len() {
        return Err(JsonError::at(
            p.pos(),
            "trailing characters after the top-level value",
        ));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Parser<'a> {
    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.i).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.i += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.bump();
        }
    }

    fn eof_err(&self) -> JsonError {
        JsonError::at(self.pos(), "unexpected end of input")
    }

    fn expect_byte(&mut self, want: u8) -> Result<(), JsonError> {
        match self.peek() {
            Some(b) if b == want => {
                self.bump();
                Ok(())
            }
            Some(b) => Err(JsonError::at(
                self.pos(),
                format!("expected '{}', found '{}'", want as char, printable(b)),
            )),
            None => Err(self.eof_err()),
        }
    }

    fn literal(&mut self, word: &str, kind: JsonKind, pos: Pos) -> Result<JsonValue, JsonError> {
        for want in word.bytes() {
            match self.bump() {
                Some(b) if b == want => {}
                Some(_) | None => {
                    return Err(JsonError::at(
                        pos,
                        format!("invalid literal (expected `{word}`)"),
                    ))
                }
            }
        }
        Ok(JsonValue { pos, kind })
    }

    fn value(&mut self, depth: u32) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::at(self.pos(), "nesting too deep"));
        }
        let pos = self.pos();
        match self.peek() {
            None => Err(self.eof_err()),
            Some(b'n') => self.literal("null", JsonKind::Null, pos),
            Some(b't') => self.literal("true", JsonKind::Bool(true), pos),
            Some(b'f') => self.literal("false", JsonKind::Bool(false), pos),
            Some(b'"') => {
                let s = self.string()?;
                Ok(JsonValue {
                    pos,
                    kind: JsonKind::Str(s),
                })
            }
            Some(b'[') => self.array(pos, depth),
            Some(b'{') => self.object(pos, depth),
            Some(b'-' | b'0'..=b'9') => self.number(pos),
            Some(b) => Err(JsonError::at(
                pos,
                format!("unexpected character '{}'", printable(b)),
            )),
        }
    }

    fn array(&mut self, pos: Pos, depth: u32) -> Result<JsonValue, JsonError> {
        self.bump(); // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(JsonValue {
                pos,
                kind: JsonKind::Arr(items),
            });
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b']') => {
                    self.bump();
                    return Ok(JsonValue {
                        pos,
                        kind: JsonKind::Arr(items),
                    });
                }
                Some(b) => {
                    return Err(JsonError::at(
                        self.pos(),
                        format!("expected ',' or ']', found '{}'", printable(b)),
                    ))
                }
                None => return Err(self.eof_err()),
            }
        }
    }

    fn object(&mut self, pos: Pos, depth: u32) -> Result<JsonValue, JsonError> {
        self.bump(); // '{'
        let mut members: Vec<Member> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(JsonValue {
                pos,
                kind: JsonKind::Obj(members),
            });
        }
        loop {
            self.skip_ws();
            let key_pos = self.pos();
            if self.peek() != Some(b'"') {
                return Err(match self.peek() {
                    Some(b) => JsonError::at(
                        key_pos,
                        format!("expected a string key, found '{}'", printable(b)),
                    ),
                    None => self.eof_err(),
                });
            }
            let key = self.string()?;
            if members.iter().any(|m| m.key == key) {
                return Err(JsonError::at(key_pos, format!("duplicate key \"{key}\"")));
            }
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push(Member {
                key,
                pos: key_pos,
                value,
            });
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b'}') => {
                    self.bump();
                    return Ok(JsonValue {
                        pos,
                        kind: JsonKind::Obj(members),
                    });
                }
                Some(b) => {
                    return Err(JsonError::at(
                        self.pos(),
                        format!("expected ',' or '}}', found '{}'", printable(b)),
                    ))
                }
                None => return Err(self.eof_err()),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.bump(); // '"'
        let mut out = String::new();
        loop {
            let ch_pos = self.pos();
            match self.bump() {
                None => return Err(self.eof_err()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    None => return Err(self.eof_err()),
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4(ch_pos)?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // High surrogate: require the paired low half.
                            let pair_pos = self.pos();
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(JsonError::at(
                                    pair_pos,
                                    "unpaired surrogate in \\u escape",
                                ));
                            }
                            let lo = self.hex4(pair_pos)?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(JsonError::at(
                                    pair_pos,
                                    "unpaired surrogate in \\u escape",
                                ));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else if (0xDC00..0xE000).contains(&hi) {
                            return Err(JsonError::at(ch_pos, "unpaired surrogate in \\u escape"));
                        } else {
                            hi
                        };
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => {
                                return Err(JsonError::at(ch_pos, "invalid \\u escape"));
                            }
                        }
                    }
                    Some(b) => {
                        return Err(JsonError::at(
                            ch_pos,
                            format!("invalid escape '\\{}'", printable(b)),
                        ))
                    }
                },
                Some(b) if b < 0x20 => {
                    return Err(JsonError::at(
                        ch_pos,
                        "unescaped control character in string",
                    ))
                }
                Some(b) => {
                    // Re-assemble the UTF-8 sequence this byte starts
                    // (input is a &str, so the sequence is valid).
                    let width = utf8_width(b);
                    let start = self.i - 1;
                    for _ in 1..width {
                        self.bump();
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + width])
                        .map_err(|_| JsonError::at(ch_pos, "invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self, pos: Pos) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                Some(_) => return Err(JsonError::at(pos, "invalid \\u escape")),
                None => return Err(self.eof_err()),
            };
            code = code * 16 + d;
        }
        Ok(code)
    }

    fn number(&mut self, pos: Pos) -> Result<JsonValue, JsonError> {
        let start = self.i;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.bump();
        }
        // Integer part: '0' or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => {
                self.bump();
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(JsonError::at(pos, "numbers may not have leading zeros"));
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.bump();
                }
            }
            _ => return Err(JsonError::at(pos, "invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.bump();
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::at(
                    pos,
                    "invalid number (digits must follow '.')",
                ));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::at(pos, "invalid number (empty exponent)"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        // The token is ASCII by construction; a non-UTF-8 slice here would
        // be a scanner bug, reported as a positioned error rather than a
        // panic (codecs never panic on input).
        let token = match std::str::from_utf8(&self.bytes[start..self.i]) {
            Ok(t) => t,
            Err(_) => return Err(JsonError::at(pos, "invalid number (non-ASCII bytes)")),
        };
        if !is_float {
            if let Ok(n) = token.parse::<i128>() {
                if n == 0 && negative {
                    // `-0` must keep its sign bit: store as a float.
                    return Ok(JsonValue {
                        pos,
                        kind: JsonKind::Num(-0.0),
                    });
                }
                return Ok(JsonValue {
                    pos,
                    kind: JsonKind::Int(n),
                });
            }
            // Falls through: an integer token too large for i128 is kept
            // as a correctly-rounded f64 (e.g. the 300-digit shortest repr
            // of 1e300).
        }
        let x: f64 = token
            .parse()
            .map_err(|_| JsonError::at(pos, "invalid number"))?;
        if !x.is_finite() {
            return Err(JsonError::at(pos, "number does not fit in an f64"));
        }
        Ok(JsonValue {
            pos,
            kind: JsonKind::Num(x),
        })
    }
}

fn printable(b: u8) -> char {
    if (0x20..0x7f).contains(&b) {
        b as char
    } else {
        '\u{fffd}'
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) -> String {
        parse(text).expect("parse").to_pretty()
    }

    #[test]
    fn scalars_parse_and_print() {
        assert_eq!(roundtrip("null"), "null");
        assert_eq!(roundtrip("true"), "true");
        assert_eq!(roundtrip("false"), "false");
        assert_eq!(roundtrip("42"), "42");
        assert_eq!(roundtrip("-7"), "-7");
        assert_eq!(roundtrip("0.5"), "0.5");
        assert_eq!(roundtrip("\"hi\""), "\"hi\"");
    }

    #[test]
    fn pretty_form_is_a_fixed_point() {
        let text = "{\n  \"a\": [1, 2, 3],\n  \"b\": {\n    \"c\": \"x\"\n  },\n  \"d\": []\n}";
        assert_eq!(roundtrip(text), text);
        // And printing is idempotent from any formatting.
        assert_eq!(
            roundtrip("{ \"a\":[1,2,3],\"b\":{\"c\":\"x\"},\"d\":[ ] }"),
            text
        );
    }

    #[test]
    fn floats_roundtrip_bitwise() {
        for x in [
            0.1,
            -0.0,
            1.0 / 3.0,
            f64::MAX,
            f64::MIN_POSITIVE,
            5e-324, // subnormal minimum
            1e300,
            -2.2250738585072014e-308,
            123_456_789.123_456_79,
        ] {
            let printed = JsonValue::num(x).to_pretty();
            let back = parse(&printed).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} printed as {printed}");
        }
    }

    #[test]
    fn u64_seeds_roundtrip_exactly() {
        for n in [0u64, 1, 2u64.pow(53) + 1, u64::MAX] {
            let printed = JsonValue::int(n).to_pretty();
            let back = parse(&printed).unwrap().as_u64().unwrap();
            assert_eq!(back, n);
        }
    }

    #[test]
    fn negative_zero_keeps_its_sign() {
        let v = parse("-0").unwrap();
        assert_eq!(v.as_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        // And it is not an integer.
        assert!(v.as_u64().is_err());
    }

    #[test]
    fn inf_string_encoding() {
        assert_eq!(JsonValue::num_or_inf(f64::INFINITY).to_pretty(), "\"inf\"");
        assert_eq!(
            parse("\"inf\"").unwrap().as_f64_or_inf().unwrap(),
            f64::INFINITY
        );
        assert_eq!(parse("2.5").unwrap().as_f64_or_inf().unwrap(), 2.5);
        assert!(parse("\"huge\"").unwrap().as_f64_or_inf().is_err());
    }

    #[test]
    fn non_finite_literals_are_rejected() {
        for text in [
            "NaN",
            "Infinity",
            "-Infinity",
            "nan",
            "inf",
            "1e999",
            "-1e999",
        ] {
            let err = parse(text).unwrap_err();
            assert!(err.pos.is_some(), "{text} must fail with a position");
        }
    }

    #[test]
    fn syntax_errors_carry_line_and_column() {
        let err = parse("{\n  \"a\": 1,\n  \"b\": }\n").unwrap_err();
        let pos = err.pos.unwrap();
        assert_eq!(pos.line, 3);
        assert_eq!(pos.col, 8);

        let err = parse("[1, 2,").unwrap_err();
        assert_eq!(err.msg, "unexpected end of input");

        let err = parse("").unwrap_err();
        assert_eq!(err.pos.unwrap(), Pos { line: 1, col: 1 });
    }

    #[test]
    fn strictness_rejections() {
        assert!(parse("[1, 2,]").is_err(), "trailing comma");
        assert!(parse("{\"a\": 1, \"a\": 2}").is_err(), "duplicate key");
        assert!(parse("01").is_err(), "leading zero");
        assert!(parse("1 2").is_err(), "trailing characters");
        assert!(parse("'a'").is_err(), "single quotes");
        assert!(parse("{a: 1}").is_err(), "unquoted key");
        assert!(parse("\"\u{1}\"").is_err(), "raw control character");
        assert!(parse("+1").is_err(), "leading plus");
        assert!(parse("1.").is_err(), "empty fraction");
        assert!(parse("1e").is_err(), "empty exponent");
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err(), "nesting too deep");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let tricky = "quote \" backslash \\ newline \n tab \t unicode \u{1f600} nul \u{0}";
        let printed = JsonValue::str(tricky).to_pretty();
        let back = parse(&printed).unwrap();
        assert_eq!(back.as_str().unwrap(), tricky);
        // Surrogate-pair escapes decode too.
        let v = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "\u{1f600}");
        assert!(parse("\"\\ud83d\"").is_err(), "lone high surrogate");
        assert!(parse("\"\\ude00\"").is_err(), "lone low surrogate");
        assert!(parse("\"\\q\"").is_err(), "unknown escape");
    }

    #[test]
    fn obj_reader_rejects_unknown_keys() {
        let v = parse("{\n  \"known\": 1,\n  \"mystery\": 2\n}").unwrap();
        let mut obj = v.as_obj().unwrap();
        assert_eq!(obj.req("known").unwrap().as_u64().unwrap(), 1);
        let err = obj.finish().unwrap_err();
        assert!(err.msg.contains("unknown key \"mystery\""), "{}", err.msg);
        assert_eq!(err.pos.unwrap().line, 3);

        let v = parse("{\"a\": 1}").unwrap();
        let mut obj = v.as_obj().unwrap();
        let err = obj.req("b").unwrap_err();
        assert!(err.msg.contains("missing required key \"b\""));
    }

    #[test]
    fn opt_treats_null_as_absent() {
        let v = parse("{\"a\": null, \"b\": 3}").unwrap();
        let mut obj = v.as_obj().unwrap();
        assert!(obj.opt("a").is_none());
        assert!(obj.opt("b").is_some());
        assert!(obj.opt("c").is_none());
        obj.finish().unwrap();
    }

    #[test]
    fn integer_typed_accessors_check_ranges() {
        assert!(parse("256").unwrap().as_u8().is_err());
        assert_eq!(parse("255").unwrap().as_u8().unwrap(), 255);
        assert!(parse("-1").unwrap().as_u64().is_err());
        assert!(parse("1.5").unwrap().as_u64().is_err());
        assert!(parse("18446744073709551616").unwrap().as_u64().is_err());
    }

    #[test]
    fn huge_integer_tokens_become_floats() {
        // The shortest repr of 1e300 is an integer token far beyond i128.
        let printed = JsonValue::num(1e300).to_pretty();
        let v = parse(&printed).unwrap();
        assert_eq!(v.as_f64().unwrap().to_bits(), 1e300f64.to_bits());
    }
}
