//! # arvis-core — quality-aware real-time AR visualization under delay constraints
//!
//! The paper's primary contribution: a Lyapunov drift-plus-penalty scheduler
//! that picks, each time slot, the octree depth `d*(t)` used to visualize the
//! next point-cloud frame,
//!
//! ```text
//! d*(t) = argmax_{d ∈ R} [ V · p_a(d) − Q(t) · a(d) ]        (paper Eq. 3)
//! ```
//!
//! maximizing time-average visual quality subject to the stability of the
//! visualization queue `Q(t)`.
//!
//! ## Layout
//!
//! - [`controller`]: the proposed scheduler (Algorithm 1) and all baselines
//!   (only-max-depth, only-min-depth, fixed, random, queue-threshold,
//!   adaptive-V), behind the open [`DepthController`] trait;
//! - [`scenario`]: declarative, serde-annotated descriptions of N
//!   heterogeneous sessions ([`Scenario`], [`scenario::SessionSpec`],
//!   enum-dispatched [`scenario::ControllerSpec`]);
//! - [`session`]: the incremental runtime — step one [`Session`] slot by
//!   slot, or thousands at once in a struct-of-arrays [`SessionBatch`]
//!   fanned out over `arvis_par`;
//! - [`uplink`]: the shared-uplink contention plane — M sessions' per-slot
//!   service demands admitted against a time-varying backhaul budget
//!   ([`uplink::BudgetProfile`]: constant / diurnal / piecewise steps /
//!   trace) by a pluggable [`uplink::UplinkPolicy`] (unconstrained /
//!   proportional-share / max-weight-backlog / weighted-max-weight /
//!   α-fair), riding on the slot-major batch stepping, with optional
//!   uplink-aware Lyapunov-`V` adaptation ([`uplink::UplinkVAdaptSpec`]);
//! - [`telemetry`]: pluggable [`telemetry::TelemetrySink`]s (full trace,
//!   streaming summary-only, CSV) and the shared CSV helpers;
//! - [`device`]: mobile-device rendering capacity models;
//! - [`stream`]: AR frame sources feeding per-slot depth profiles;
//! - [`experiment`]: the legacy run-to-completion closed loop, now a thin
//!   bit-identical layer over [`session`];
//! - [`sweep`], [`distributed`]: parameter sweeps and the multi-device
//!   fleet, likewise thin layers over session batches.
//!
//! ## Example: a heterogeneous session batch
//!
//! ```
//! use arvis_core::scenario::{ControllerSpec, Scenario, SessionSpec};
//! use arvis_core::session::SessionBatch;
//! use arvis_core::experiment::{ExperimentConfig, ServiceSpec};
//! use arvis_quality::DepthProfile;
//!
//! // A synthetic per-depth profile: arrivals quadruple, quality saturates.
//! let profile = DepthProfile::from_parts(
//!     5,
//!     vec![100.0, 400.0, 1600.0, 6400.0, 25600.0, 102400.0],
//!     vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
//! );
//! let base = ExperimentConfig::new(profile, 2_000.0, 400).with_controller_v(1e7);
//!
//! // 32 sessions: the proposed scheduler on devices of varying capacity,
//! // plus one max-depth control session.
//! let mut scenario = Scenario::replicated(
//!     &base,
//!     ControllerSpec::Proposed { v: base.controller_v },
//!     32,
//! );
//! for (i, spec) in scenario.sessions.iter_mut().enumerate() {
//!     spec.service = ServiceSpec::Constant(1_800.0 + 50.0 * i as f64);
//! }
//! scenario = scenario.with_session(SessionSpec::from_config(&base, ControllerSpec::OnlyMax));
//!
//! // Step all 33 sessions through every slot with O(sessions) memory.
//! let mut batch = SessionBatch::summary_only(&scenario);
//! batch.run();
//! let summaries = batch.into_summaries();
//! assert!(summaries[..32].iter().all(|s| s.stable), "proposed stabilizes");
//! assert!(!summaries[32].stable, "only-max-depth diverges");
//! assert!(summaries[0].backlog_p99 >= summaries[0].mean_backlog);
//! ```
//!
//! The legacy single-run API is unchanged (and produces bit-identical
//! numbers):
//!
//! ```
//! use arvis_core::controller::ProposedDpp;
//! use arvis_core::experiment::{Experiment, ExperimentConfig};
//! use arvis_quality::DepthProfile;
//!
//! let profile = DepthProfile::from_parts(
//!     5,
//!     vec![100.0, 400.0, 1600.0, 6400.0, 25600.0, 102400.0],
//!     vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
//! );
//! let config = ExperimentConfig::new(profile, 2_000.0, 800)
//!     .with_controller_v(1e7)
//!     .with_seed(1);
//! let result = Experiment::new(config).run(&mut ProposedDpp::default());
//! assert!(result.backlog.is_stable(400, 1e-3));
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod controller;
pub mod device;
pub mod distributed;
pub mod energy;
pub mod experiment;
pub mod pipeline;
pub mod scenario;
pub mod session;
pub mod stream;
pub mod sweep;
pub mod telemetry;
pub mod uplink;

pub use controller::{DepthController, ProposedDpp};
pub use experiment::{Experiment, ExperimentConfig, ExperimentResult};
pub use scenario::{ControllerSpec, Scenario, SessionSpec};
pub use session::{Session, SessionBatch, SlotOutcome};
pub use telemetry::{FullTrace, SessionSummary, SummarySink, TelemetrySink};
pub use uplink::{BudgetProfile, SharedUplink, UplinkPolicy, UplinkSpec, UplinkVAdaptSpec};
