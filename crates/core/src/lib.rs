//! # arvis-core — quality-aware real-time AR visualization under delay constraints
//!
//! The paper's primary contribution: a Lyapunov drift-plus-penalty scheduler
//! that picks, each time slot, the octree depth `d*(t)` used to visualize the
//! next point-cloud frame,
//!
//! ```text
//! d*(t) = argmax_{d ∈ R} [ V · p_a(d) − Q(t) · a(d) ]        (paper Eq. 3)
//! ```
//!
//! maximizing time-average visual quality subject to the stability of the
//! visualization queue `Q(t)`.
//!
//! ## Layout
//!
//! - [`controller`]: the proposed scheduler (Algorithm 1) and all baselines
//!   (only-max-depth, only-min-depth, fixed, random, queue-threshold,
//!   adaptive-V), behind the open [`DepthController`] trait;
//! - [`scenario`]: declarative descriptions of N heterogeneous sessions
//!   ([`Scenario`], [`scenario::SessionSpec`], enum-dispatched
//!   [`scenario::ControllerSpec`]), storable as JSON scenario files
//!   (see below);
//! - [`json`]: the self-contained JSON layer behind scenario files — a
//!   strict parser with line/column errors and a canonical pretty-printer
//!   with exact `f64`/`u64` round-trips;
//! - [`hash`]: dependency-free SHA-256 (FIPS 180-4) content-addressing the
//!   canonical scenario bytes ([`Scenario::content_hash`]);
//! - [`ledger`]: the append-only regression ledger — bit-exact
//!   [`ledger::RunRecord`]s keyed by (scenario hash, code version),
//!   committed as `results/ledger.json` and re-verified field-by-field in
//!   CI (`experiments verify`);
//! - [`session`]: the incremental runtime — step one [`Session`] slot by
//!   slot, or thousands at once in a struct-of-arrays [`SessionBatch`]
//!   fanned out over `arvis_par`;
//! - [`uplink`]: the shared-uplink contention plane — M sessions' per-slot
//!   service demands admitted against a time-varying backhaul budget
//!   ([`uplink::BudgetProfile`]: constant / diurnal / piecewise steps /
//!   trace) by a pluggable [`uplink::UplinkPolicy`] (unconstrained /
//!   proportional-share / max-weight-backlog / weighted-max-weight /
//!   α-fair), riding on the slot-major batch stepping, with optional
//!   uplink-aware Lyapunov-`V` adaptation ([`uplink::UplinkVAdaptSpec`]);
//! - [`fault`]: the deterministic fault-injection plane — uplink
//!   outage/brownout windows, per-session grant loss on dedicated RNG
//!   streams, session crash/restart (cold / warm / permanent), and a
//!   [`fault::DegradationGuardSpec`] admission guard that sheds the
//!   lowest-weight tenants under sustained contention, all declared in
//!   schema-2 scenario files and replayed bit-identically;
//! - [`churn`]: the open-loop session-churn plane — arrivals-driven
//!   mid-run joins ([`churn::ChurnArrivalSpec`]: Poisson / MMPP-2 / trace
//!   on dedicated seeded streams), per-session lifetime distributions
//!   ([`churn::LifetimeSpec`]), and SoA slot compaction
//!   ([`SessionBatch::compact`]) that physically evicts departed sessions
//!   while stable session ids keep telemetry, uplink weights, and CSV
//!   rows coherent — declared in schema-3 scenario files, replayed
//!   bit-identically, and bitwise invariant to compaction on/off;
//! - [`telemetry`]: pluggable [`telemetry::TelemetrySink`]s (full trace,
//!   streaming summary-only, CSV) and the shared CSV helpers;
//! - [`device`]: mobile-device rendering capacity models;
//! - [`stream`]: AR frame sources feeding per-slot depth profiles;
//! - [`experiment`]: the legacy run-to-completion closed loop, now a thin
//!   bit-identical layer over [`session`];
//! - [`sweep`], [`distributed`]: parameter sweeps and the multi-device
//!   fleet, likewise thin layers over session batches.
//!
//! ## Example: a heterogeneous session batch
//!
//! ```
//! use arvis_core::scenario::{ControllerSpec, Scenario, SessionSpec};
//! use arvis_core::session::SessionBatch;
//! use arvis_core::experiment::{ExperimentConfig, ServiceSpec};
//! use arvis_quality::DepthProfile;
//!
//! // A synthetic per-depth profile: arrivals quadruple, quality saturates.
//! let profile = DepthProfile::from_parts(
//!     5,
//!     vec![100.0, 400.0, 1600.0, 6400.0, 25600.0, 102400.0],
//!     vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
//! );
//! let base = ExperimentConfig::new(profile, 2_000.0, 400).with_controller_v(1e7);
//!
//! // 32 sessions: the proposed scheduler on devices of varying capacity,
//! // plus one max-depth control session.
//! let mut scenario = Scenario::replicated(
//!     &base,
//!     ControllerSpec::Proposed { v: base.controller_v },
//!     32,
//! );
//! for (i, spec) in scenario.sessions.iter_mut().enumerate() {
//!     spec.service = ServiceSpec::Constant(1_800.0 + 50.0 * i as f64);
//! }
//! scenario = scenario.with_session(SessionSpec::from_config(&base, ControllerSpec::OnlyMax));
//!
//! // Step all 33 sessions through every slot with O(sessions) memory.
//! let mut batch = SessionBatch::summary_only(&scenario);
//! batch.run();
//! let summaries = batch.into_summaries();
//! assert!(summaries[..32].iter().all(|s| s.stable), "proposed stabilizes");
//! assert!(!summaries[32].stable, "only-max-depth diverges");
//! assert!(summaries[0].backlog_p99 >= summaries[0].mean_backlog);
//! ```
//!
//! The legacy single-run API is unchanged (and produces bit-identical
//! numbers):
//!
//! ```
//! use arvis_core::controller::ProposedDpp;
//! use arvis_core::experiment::{Experiment, ExperimentConfig};
//! use arvis_quality::DepthProfile;
//!
//! let profile = DepthProfile::from_parts(
//!     5,
//!     vec![100.0, 400.0, 1600.0, 6400.0, 25600.0, 102400.0],
//!     vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
//! );
//! let config = ExperimentConfig::new(profile, 2_000.0, 800)
//!     .with_controller_v(1e7)
//!     .with_seed(1);
//! let result = Experiment::new(config).run(&mut ProposedDpp::default());
//! assert!(result.backlog.is_stable(400, 1e-3));
//! ```
//!
//! ## Scenario files
//!
//! Every [`Scenario`] — all controllers except the programmatic
//! [`scenario::ControllerSpec::Extern`], all services, streams, uplink
//! budgets/policies, the uplink-aware `V` knob, and the fault plan —
//! round-trips through a versioned JSON file: [`Scenario::to_json_string`]
//! / [`Scenario::from_json_str`]. The `experiments` binary runs them
//! directly (`experiments run scenario.json`), and the golden suite in
//! `tests/scenario_files.rs` pins that a file replays **bit-identically**
//! to the same scenario built in Rust.
//!
//! The format (schema versions 1–3; every object rejects unknown keys,
//! and all errors carry line/column):
//!
//! ```json
//! {
//!   "schema": 1,                    // required; this build reads 1 through 3
//!   "slots": 800,                   // shared horizon
//!   "sessions": [
//!     {
//!       "stream": {                 // "constant" | "cycle" | "modulated"
//!         "type": "constant",
//!         "profile": {              // the per-depth table of Fig. 2
//!           "min_depth": 5,
//!           "arrivals": [100, 400, 1600, 6400, 25600, 102400],
//!           "quality": [0, 0.2, 0.4, 0.6, 0.8, 1]
//!         }
//!       },
//!       "service": {                // "constant" | "jittered" | "duty_cycled"
//!         "type": "constant",
//!         "rate": 2000
//!       },
//!       "controller": {             // "proposed" | "only_max" | "only_min" |
//!         "type": "proposed",       // "fixed" | "random" | "threshold" |
//!         "v": 10000000             // "adaptive_v" ("extern" is rejected)
//!       },
//!       "seed": 7,                  // exact u64 (integers stay exact)
//!       "warmup": 200,
//!       "queue_capacity": 50000,    // optional; omit for an infinite queue
//!       "frame_cap": 8192,          // optional latency-tracker bound
//!       "uplink_v_adapt": {         // optional; requires "proposed"
//!         "low": 0.85, "high": 0.95, "step": 0.05, "min_v_scale": 0.01
//!       }
//!     }
//!   ],
//!   "uplink": {                     // optional shared-uplink contention
//!     "budget": {                   // "constant" | "diurnal" |
//!       "type": "diurnal",          // "piecewise_steps" | "trace"
//!       "mean": 9600, "amplitude": 7200, "period": 200, "phase": 0
//!     },
//!     "policy": {                   // "unconstrained" | "proportional_share" |
//!       "type": "alpha_fair",       // "max_weight_backlog" |
//!       "alpha": 2                  // "weighted_max_weight" | "alpha_fair"
//!     }
//!   },
//!   "fault": {                      // optional; requires "schema": 2
//!     "events": [
//!       { "type": "outage", "start": 800, "slots": 60 },
//!       { "type": "brownout", "start": 200, "slots": 80, "factor": 0.5 },
//!       { "type": "grant_loss", "session": 2, "p": 0.05, "seed": 77 },
//!       { "type": "session_crash", "session": 3, "slot": 400,
//!         "restart_after": 120,     // omit with "policy": "permanent"
//!         "policy": "cold_restart" }// | "warm_restart" | "permanent"
//!     ],
//!     "guard": {                    // optional degradation guard
//!       "ema_alpha": 0.05, "engage_above": 0.9, "release_below": 0.6,
//!       "backlog_limit": "inf", "shed_fraction": 0.25,
//!       "mode": { "type": "defer" } // | { "type": "clamp", "factor": … }
//!     }
//!   },
//!   "churn": {                      // optional; requires "schema": 3
//!     "arrivals": {                 // "poisson" | "mmpp2" | "trace"
//!       "type": "poisson", "lambda": 0.05, "seed": 11
//!     },
//!     "template": { "...": "a session spec, cloned per joiner" },
//!     "max_joins": 12,              // required with "arrivals"
//!     "weight": 1,                  // required iff the uplink is weighted
//!     "lifetime": {                 // "fixed" | "geometric" | "uniform"
//!       "type": "geometric", "mean": 500, "seed": 13
//!     },
//!     "compact": true               // evict departed SoA rows (bitwise no-op)
//!   }
//! }
//! ```
//!
//! **Versioning / migration.** Schema 2 adds the optional `"fault"`
//! member — see [`fault`] for the event semantics and the determinism
//! contract (faulted replays are bit-identical; an empty plan is bitwise
//! the fault-free path; a cold restart's trajectory is bitwise a fresh
//! session over the residual horizon). Schema 3 (this build) adds the
//! optional `"churn"` member — see [`churn`]: joiner trajectories are
//! bitwise fresh sessions over the residual horizon (the cold-restart
//! construction), a churned file replays bit-identically including
//! mid-run joins, and `"compact"` never changes a single output bit.
//! Emission always uses the lowest schema version that can express the
//! scenario, and this build *reads* versions 1 through 3, so every
//! schema-1/2 file parses unchanged and fault-free (or churn-free)
//! emission stays byte-identical with older builds. To migrate, bump
//! `"schema"` to 3 and add the `"churn"` member — declaring `"churn"` at
//! a lower `"schema"` (like `"fault"` at `"schema": 1`) is a positioned
//! error, so stale version stamps cannot smuggle new surfaces past older
//! readers.
//!
//! Floats print in shortest round-trip form and parse back bit-identically;
//! the infinite budget / max-min `alpha` encode as the string `"inf"`
//! (bare `Infinity`/`NaN` literals are parse errors). Emission is
//! canonical — `emit → parse → emit` is byte-identical — so files diff
//! cleanly under version control:
//!
//! ```
//! use arvis_core::scenario::{ControllerSpec, Scenario};
//! use arvis_core::experiment::ExperimentConfig;
//! use arvis_quality::DepthProfile;
//!
//! let profile = DepthProfile::from_parts(
//!     5,
//!     vec![100.0, 400.0, 1600.0, 6400.0, 25600.0, 102400.0],
//!     vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
//! );
//! let base = ExperimentConfig::new(profile, 2_000.0, 400);
//! let scenario = Scenario::replicated(&base, ControllerSpec::Proposed { v: 1e7 }, 4);
//!
//! let text = scenario.to_json_string().unwrap();
//! let back = Scenario::from_json_str(&text).unwrap();
//! assert_eq!(back.to_json_string().unwrap(), text, "canonical round-trip");
//! assert_eq!(back.len(), 4);
//!
//! // Malformed input errors carry line/column, and never panic.
//! let err = Scenario::from_json_str("{\n  \"schema\": 1,\n  \"slots\": }\n").unwrap_err();
//! assert_eq!(err.pos.unwrap().line, 3);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod churn;
pub mod controller;
pub mod device;
pub mod distributed;
pub mod energy;
pub mod experiment;
pub mod fault;
pub mod hash;
pub mod json;
pub mod ledger;
pub mod pipeline;
pub mod scenario;
pub mod session;
pub mod stream;
pub mod sweep;
pub mod telemetry;
pub mod uplink;

pub use churn::{ChurnArrivalSpec, ChurnPlane, ChurnSpec, LifetimeSpec};
pub use controller::{DepthController, ProposedDpp};
pub use experiment::{Experiment, ExperimentConfig, ExperimentResult};
pub use fault::{CrashPolicy, DegradationGuardSpec, FaultEvent, FaultPlan, FaultPlane, ShedMode};
pub use ledger::{Ledger, RunRecord};
pub use scenario::{ControllerSpec, Scenario, SessionSpec};
pub use session::{Session, SessionBatch, SlotOutcome};
pub use telemetry::{FullTrace, SessionSummary, SummarySink, TelemetrySink};
pub use uplink::{BudgetProfile, SharedUplink, UplinkPolicy, UplinkSpec, UplinkVAdaptSpec};
