//! # arvis-core — quality-aware real-time AR visualization under delay constraints
//!
//! The paper's primary contribution: a Lyapunov drift-plus-penalty scheduler
//! that picks, each time slot, the octree depth `d*(t)` used to visualize the
//! next point-cloud frame,
//!
//! ```text
//! d*(t) = argmax_{d ∈ R} [ V · p_a(d) − Q(t) · a(d) ]        (paper Eq. 3)
//! ```
//!
//! maximizing time-average visual quality subject to the stability of the
//! visualization queue `Q(t)`.
//!
//! ## Layout
//!
//! - [`controller`]: the proposed scheduler (Algorithm 1) and all baselines
//!   (only-max-depth, only-min-depth, fixed, random, queue-threshold,
//!   adaptive-V);
//! - [`device`]: mobile-device rendering capacity models;
//! - [`stream`]: AR frame sources feeding per-slot depth profiles;
//! - [`experiment`]: the slotted closed-loop simulation that reproduces the
//!   paper's Fig. 2, plus analytic calibration helpers;
//! - [`sweep`]: parallel parameter sweeps (V, service rate) for the
//!   trade-off extensions;
//! - [`distributed`]: the multi-device experiment backing the paper's
//!   "fully distributed" claim.
//!
//! ## Example
//!
//! ```
//! use arvis_core::controller::{DepthController, ProposedDpp};
//! use arvis_core::experiment::{Experiment, ExperimentConfig};
//! use arvis_quality::DepthProfile;
//!
//! // A synthetic per-depth profile: arrivals quadruple, quality saturates.
//! let profile = DepthProfile::from_parts(
//!     5,
//!     vec![100.0, 400.0, 1600.0, 6400.0, 25600.0, 102400.0],
//!     vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
//! );
//! let config = ExperimentConfig::new(profile, 2_000.0, 800)
//!     .with_controller_v(1e7)
//!     .with_seed(1);
//! let result = Experiment::new(config).run(&mut ProposedDpp::default());
//! assert!(result.backlog.is_stable(400, 1e-3));
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod controller;
pub mod device;
pub mod distributed;
pub mod energy;
pub mod experiment;
pub mod pipeline;
pub mod stream;
pub mod sweep;

pub use controller::{DepthController, ProposedDpp};
pub use experiment::{Experiment, ExperimentConfig, ExperimentResult};
