//! The materialized pipeline: real octrees, real byte streams, real decode.
//!
//! [`crate::experiment`] drives the scheduler against a *profile* (the
//! per-depth table), which is all Algorithm 1 needs. This module closes the
//! loop with actual data structures: each slot the chosen depth's LoD frame
//! is **encoded** (occupancy + attribute streams, `arvis_octree::attr`), its
//! true byte size enters the queue, and decoded frames are verified against
//! the octree. It demonstrates (a) the scheduler is unit-agnostic — bytes
//! work as well as points — and (b) the codec path is lossless at every
//! depth the controller selects.

use std::collections::HashMap;
use std::ops::RangeInclusive;

use arvis_octree::attr::{frames_equivalent, EncodedFrame};
use arvis_octree::{LodMode, Octree, OctreeBuilder, OctreeConfig, OctreeError};
use arvis_pointcloud::aabb::Aabb;
use arvis_pointcloud::cloud::PointCloud;
use arvis_quality::DepthProfile;
use arvis_sim::queue::WorkQueue;
use arvis_sim::stats::TimeSeries;

use crate::controller::DepthController;

/// A prepared content sequence: octrees over a shared cube, ready to encode
/// at any depth.
#[derive(Debug)]
pub struct PreparedSequence {
    trees: Vec<Octree>,
    depths: RangeInclusive<u8>,
    /// Byte-unit profile per frame (arrival = encoded frame size).
    byte_profiles: Vec<DepthProfile>,
}

impl PreparedSequence {
    /// Builds octrees for every frame over the union bounding cube and
    /// derives byte-unit profiles.
    ///
    /// # Errors
    ///
    /// Propagates octree construction failures (empty frames, excessive
    /// depth).
    ///
    /// # Panics
    ///
    /// Panics when `frames` is empty or the depth range is reversed /
    /// starts at 0 (the codec needs depth ≥ 1).
    pub fn prepare(
        frames: &[PointCloud],
        depths: RangeInclusive<u8>,
    ) -> Result<PreparedSequence, OctreeError> {
        assert!(!frames.is_empty(), "need at least one frame");
        assert!(
            *depths.start() >= 1 && depths.start() < depths.end(),
            "need 1 <= min_depth < max_depth"
        );
        // Shared cube: union of all frame boxes, so voxel grids align
        // across the sequence.
        let cube = frames
            .iter()
            .filter_map(|f| f.aabb())
            .reduce(|a, b| a.union(&b))
            .map(|b| b.bounding_cube())
            .ok_or(OctreeError::EmptyCloud)?;
        let max_depth = *depths.end();
        let mut trees = Vec::with_capacity(frames.len());
        let mut byte_profiles = Vec::with_capacity(frames.len());
        // One builder for the whole sequence: Morton/SoA scratch buffers
        // are allocated for the first frame and reused for every other.
        let mut builder = OctreeBuilder::new();
        for f in frames {
            let tree = builder.build(f, &OctreeConfig::with_max_depth(max_depth).in_cube(cube))?;
            let arrivals: Vec<f64> = depths
                .clone()
                .map(|d| tree.encoded_frame_size(d) as f64)
                .collect();
            let quality: Vec<f64> = {
                // Log-byte quality, normalized like the point-count model.
                let lo = arrivals[0].ln();
                let hi = arrivals.last().expect("non-empty").ln();
                arrivals
                    .iter()
                    .map(|a| ((a.ln() - lo) / (hi - lo)).clamp(0.0, 1.0))
                    .collect()
            };
            byte_profiles.push(DepthProfile::from_parts(*depths.start(), arrivals, quality));
            trees.push(tree);
        }
        Ok(PreparedSequence {
            trees,
            depths,
            byte_profiles,
        })
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// `true` when no frames were prepared (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// The shared bounding cube.
    pub fn cube(&self) -> &Aabb {
        self.trees[0].cube()
    }

    /// The candidate depths.
    pub fn depths(&self) -> RangeInclusive<u8> {
        self.depths.clone()
    }

    /// The byte-unit profile of frame `i % len`.
    pub fn byte_profile(&self, slot: u64) -> &DepthProfile {
        &self.byte_profiles[(slot as usize) % self.byte_profiles.len()]
    }

    /// The octree of frame `i % len`.
    pub fn tree(&self, slot: u64) -> &Octree {
        &self.trees[(slot as usize) % self.trees.len()]
    }
}

/// Outcome of an encoded-pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Queue backlog in **bytes** per slot.
    pub backlog_bytes: TimeSeries,
    /// Chosen depth per slot.
    pub depth: TimeSeries,
    /// Total bytes encoded (= admitted work).
    pub bytes_encoded: u64,
    /// Frames whose decode was verified against the LoD extraction.
    pub frames_verified: usize,
    /// Whether every verified decode was bit-faithful.
    pub all_decodes_lossless: bool,
    /// Stability verdict of the byte backlog.
    pub stable: bool,
}

/// Runs the encoded pipeline for `slots` slots against a device that drains
/// `bytes_per_slot`. Every `verify_every`-th slot the encoded frame is
/// decoded and compared against the LoD extraction (0 disables
/// verification).
pub fn run_encoded_pipeline(
    sequence: &PreparedSequence,
    controller: &mut dyn DepthController,
    bytes_per_slot: f64,
    slots: u64,
    verify_every: u64,
) -> PipelineReport {
    let mut queue = WorkQueue::new();
    let mut backlog_bytes = TimeSeries::new("backlog_bytes");
    let mut depth_series = TimeSeries::new("depth");
    let mut bytes_encoded = 0u64;
    let mut frames_verified = 0usize;
    let mut all_lossless = true;
    // Encoded frames are cached per (frame, depth): a real system encodes
    // once per content segment, not per transmission.
    let mut cache: HashMap<(usize, u8), EncodedFrame> = HashMap::new();

    for slot in 0..slots {
        let profile = sequence.byte_profile(slot);
        let d = controller.select_depth(slot, queue.backlog(), profile);
        let frame_idx = (slot as usize) % sequence.len();
        let tree = sequence.tree(slot);
        let frame = cache
            .entry((frame_idx, d))
            .or_insert_with(|| EncodedFrame::encode(tree, d));
        let size = frame.byte_size() as f64;
        bytes_encoded += frame.byte_size() as u64;
        queue.step(size, bytes_per_slot);
        backlog_bytes.push(queue.backlog());
        depth_series.push(f64::from(d));

        if verify_every > 0 && slot % verify_every == 0 {
            let decoded = frame
                .decode(tree.cube())
                .expect("self-encoded frame decodes");
            let lod = tree.extract_lod(d, LodMode::VoxelCenters);
            if !frames_equivalent(&decoded, &lod.cloud) {
                all_lossless = false;
            }
            frames_verified += 1;
        }
    }

    let stable = backlog_bytes.is_stable((slots / 2).max(2) as usize, 1e-3);
    PipelineReport {
        backlog_bytes,
        depth: depth_series,
        bytes_encoded,
        frames_verified,
        all_decodes_lossless: all_lossless,
        stable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{MaxDepth, ProposedDpp};
    use arvis_pointcloud::synth::{FrameSequence, SubjectProfile};

    fn sequence() -> PreparedSequence {
        let seq = FrameSequence::new(SubjectProfile::RedAndBlack, 4).with_target_points(4_000);
        let frames: Vec<PointCloud> = seq.iter_frames().collect();
        PreparedSequence::prepare(&frames, 2..=6).unwrap()
    }

    #[test]
    fn prepare_builds_aligned_trees() {
        let s = sequence();
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.depths(), 2..=6);
        // All trees share the cube.
        for slot in 0..4u64 {
            assert_eq!(s.tree(slot).cube(), s.cube());
        }
        // Byte profiles grow with depth.
        let p = s.byte_profile(0);
        assert!(p.arrival(6) > p.arrival(2));
        assert_eq!(p.quality(2), 0.0);
        assert_eq!(p.quality(6), 1.0);
    }

    #[test]
    fn byte_profile_matches_real_encoded_sizes() {
        let s = sequence();
        for slot in 0..4u64 {
            let p = s.byte_profile(slot);
            for d in 2..=6u8 {
                let real = EncodedFrame::encode(s.tree(slot), d).byte_size() as f64;
                assert_eq!(p.arrival(d), real, "frame {slot} depth {d}");
            }
        }
    }

    #[test]
    fn pipeline_is_stable_and_lossless_under_proposed() {
        let s = sequence();
        // Service between the two deepest byte sizes.
        let p = s.byte_profile(0);
        let rate = (p.arrival(5) * p.arrival(6)).sqrt();
        let mut ctl = ProposedDpp::new(1e7);
        let report = run_encoded_pipeline(&s, &mut ctl, rate, 2_000, 10);
        assert!(report.stable, "byte-unit scheduling must stabilize");
        assert!(report.all_decodes_lossless, "codec must be lossless");
        assert_eq!(report.frames_verified, 200);
        assert!(report.bytes_encoded > 0);
        // The controller must actually use multiple depths (time-sharing).
        let depths: std::collections::BTreeSet<i64> =
            report.depth.values().iter().map(|&d| d as i64).collect();
        assert!(depths.len() >= 2, "expected time-sharing, got {depths:?}");
    }

    #[test]
    fn pipeline_diverges_under_max_depth_when_undersized() {
        let s = sequence();
        let p = s.byte_profile(0);
        let rate = p.arrival(5); // below the depth-6 byte rate
        let report = run_encoded_pipeline(&s, &mut MaxDepth, rate, 1_000, 0);
        assert!(!report.stable);
        assert_eq!(report.frames_verified, 0, "verification disabled");
    }

    #[test]
    fn prepare_rejects_bad_inputs() {
        assert!(PreparedSequence::prepare(&[PointCloud::new()], 2..=5).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn prepare_rejects_empty_sequence() {
        let _ = PreparedSequence::prepare(&[], 2..=5);
    }

    #[test]
    #[should_panic(expected = "min_depth")]
    fn prepare_rejects_zero_min_depth() {
        let seq = FrameSequence::new(SubjectProfile::Loot, 1).with_target_points(500);
        let frames: Vec<PointCloud> = seq.iter_frames().collect();
        let _ = PreparedSequence::prepare(&frames, 0..=4);
    }
}
