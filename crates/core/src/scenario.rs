//! Declarative scenarios: everything a session needs, as plain data.
//!
//! A [`Scenario`] is a serde-annotated description of N heterogeneous AR
//! sessions — stream, service model, controller, seed, queue bounds per
//! session plus one shared horizon. It unifies what used to be three
//! disjoint entry points (`ExperimentConfig` for a single run,
//! `FleetSpec` for the distributed demo, ad-hoc grids for the sweeps) into
//! one value that can be stored, diffed, and handed to the
//! [`crate::session::SessionBatch`] runtime.
//!
//! Controllers are described by [`ControllerSpec`], a closed enum that the
//! hot loop dispatches with a `match` instead of a `Box<dyn>` virtual call.
//! User-defined policies still plug in through the
//! [`crate::controller::DepthController`] trait via
//! [`ControllerSpec::Extern`].

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use arvis_sim::rng::child_seed;

use crate::controller::{
    AdaptiveDpp, DepthController, FixedDepth, MaxDepth, MinDepth, ProposedDpp, QueueThreshold,
    RandomDepth,
};
use crate::distributed::FleetSpec;
use crate::experiment::{ExperimentConfig, ServiceSpec};
use crate::json::{self, JsonError, JsonValue};
use crate::stream::ArStream;

/// The newest scenario-file schema version this build reads and writes
/// (the required top-level `"schema"` field). Bump on any
/// backwards-incompatible change to the file format so old binaries fail
/// loudly instead of misreading new files.
///
/// Version history: 1 = the original format; 2 = adds the optional
/// top-level `"fault"` plan ([`crate::fault::FaultPlan`]); 3 = adds the
/// optional top-level `"churn"` spec ([`crate::churn::ChurnSpec`]).
/// Version-1 and version-2 files parse unchanged, and emission stays at
/// the lowest version that can express the scenario (1 without fault or
/// churn, 2 with only a fault plan) — so existing files are bitwise
/// backwards-compatible both ways.
pub const SCENARIO_SCHEMA_VERSION: u64 = 3;

/// Factory for a user-defined depth controller, pluggable into a
/// [`ControllerSpec`] (and therefore into scenarios and batches) without
/// the runtime knowing the concrete type.
pub trait ExternController: Send + Sync {
    /// Builds a fresh controller instance for one session.
    fn build(&self) -> Box<dyn DepthController + Send>;
}

/// A shareable handle to an [`ExternController`] factory.
#[derive(Clone)]
pub struct ExternSpec(Arc<dyn ExternController>);

impl ExternSpec {
    /// Wraps a factory.
    pub fn new(factory: impl ExternController + 'static) -> ExternSpec {
        ExternSpec(Arc::new(factory))
    }

    /// Builds one controller instance.
    pub fn build(&self) -> Box<dyn DepthController + Send> {
        self.0.build()
    }
}

impl std::fmt::Debug for ExternSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ExternSpec(..)")
    }
}

/// Blanket impl so a plain closure can serve as the factory.
impl<F> ExternController for F
where
    F: Fn() -> Box<dyn DepthController + Send> + Send + Sync,
{
    fn build(&self) -> Box<dyn DepthController + Send> {
        self()
    }
}

/// Declarative description of a per-slot depth-selection policy.
///
/// Building ([`ControllerSpec::build`]) yields a [`BuiltController`] whose
/// hot-loop dispatch is a `match` over this closed set; the `Extern`
/// variant keeps the open [`DepthController`] trait available for user
/// extensions at the price of one virtual call per slot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ControllerSpec {
    /// The proposed Lyapunov scheduler (Algorithm 1) with trade-off `v`.
    Proposed {
        /// The quality/backlog trade-off coefficient `V` of Eq. (3).
        v: f64,
    },
    /// Always the maximum candidate depth ("only max-Depth").
    OnlyMax,
    /// Always the minimum candidate depth ("only min-Depth").
    OnlyMin,
    /// A fixed depth, clamped into the candidate range.
    Fixed {
        /// The depth to hold.
        depth: u8,
    },
    /// Uniformly random depth each slot.
    Random {
        /// RNG seed of the policy's own stream.
        seed: u64,
    },
    /// Hand-tuned backlog thresholds (one depth level per crossing).
    Threshold {
        /// Ascending backlog thresholds.
        thresholds: Vec<f64>,
    },
    /// The proposed scheduler with online-adapted `V`.
    AdaptiveV {
        /// Starting `V`.
        initial_v: f64,
        /// Backlog level the adaptation regulates around.
        target_backlog: f64,
    },
    /// A user-defined controller built through the open trait.
    ///
    /// Skipped by serde: a trait-object factory has no serializable form,
    /// so scenario files can describe every built-in policy but externs
    /// must be attached programmatically after loading.
    #[serde(skip)]
    Extern(ExternSpec),
}

impl ControllerSpec {
    /// Builds the runnable controller state for one session.
    ///
    /// # Panics
    ///
    /// Propagates the constructor panics of the underlying policies
    /// (negative `v`, empty/unsorted thresholds).
    pub fn build(&self) -> BuiltController {
        match self {
            ControllerSpec::Proposed { v } => BuiltController::Proposed(ProposedDpp::new(*v)),
            ControllerSpec::OnlyMax => BuiltController::Max(MaxDepth),
            ControllerSpec::OnlyMin => BuiltController::Min(MinDepth),
            ControllerSpec::Fixed { depth } => BuiltController::Fixed(FixedDepth::new(*depth)),
            ControllerSpec::Random { seed } => BuiltController::Random(RandomDepth::new(*seed)),
            ControllerSpec::Threshold { thresholds } => {
                BuiltController::Threshold(QueueThreshold::new(thresholds.clone()))
            }
            ControllerSpec::AdaptiveV {
                initial_v,
                target_backlog,
            } => BuiltController::Adaptive(AdaptiveDpp::new(*initial_v, *target_backlog)),
            ControllerSpec::Extern(spec) => BuiltController::Extern(spec.build()),
        }
    }

    /// The fixed trade-off coefficient `V` of a
    /// [`ControllerSpec::Proposed`] spec, `None` for every other policy —
    /// the base value uplink-aware `V` adaptation
    /// ([`SessionSpec::uplink_v_adapt`]) scales around.
    pub fn proposed_v(&self) -> Option<f64> {
        match self {
            ControllerSpec::Proposed { v } => Some(*v),
            _ => None,
        }
    }

    /// Encodes the spec for a scenario file (see [`crate::json`]): a
    /// `"type"`-tagged object (`proposed` / `only_max` / `only_min` /
    /// `fixed` / `random` / `threshold` / `adaptive_v`).
    ///
    /// # Errors
    ///
    /// Errors on [`ControllerSpec::Extern`]: a trait-object factory has no
    /// file form, so extern controllers must be attached programmatically
    /// after loading — exactly the limitation the old `#[serde(skip)]`
    /// annotation expressed, now surfaced as a clear error.
    pub fn to_json(&self) -> Result<JsonValue, JsonError> {
        Ok(match self {
            ControllerSpec::Proposed { v } => JsonValue::obj(vec![
                ("type", JsonValue::str("proposed")),
                ("v", json::finite_num("v", *v)?),
            ]),
            ControllerSpec::OnlyMax => JsonValue::obj(vec![("type", JsonValue::str("only_max"))]),
            ControllerSpec::OnlyMin => JsonValue::obj(vec![("type", JsonValue::str("only_min"))]),
            ControllerSpec::Fixed { depth } => JsonValue::obj(vec![
                ("type", JsonValue::str("fixed")),
                ("depth", JsonValue::int(*depth)),
            ]),
            ControllerSpec::Random { seed } => JsonValue::obj(vec![
                ("type", JsonValue::str("random")),
                ("seed", JsonValue::int(*seed)),
            ]),
            ControllerSpec::Threshold { thresholds } => JsonValue::obj(vec![
                ("type", JsonValue::str("threshold")),
                (
                    "thresholds",
                    JsonValue::arr(
                        thresholds
                            .iter()
                            .map(|&t| json::finite_num("threshold", t))
                            .collect::<Result<Vec<_>, _>>()?,
                    ),
                ),
            ]),
            ControllerSpec::AdaptiveV {
                initial_v,
                target_backlog,
            } => JsonValue::obj(vec![
                ("type", JsonValue::str("adaptive_v")),
                ("initial_v", json::finite_num("initial_v", *initial_v)?),
                (
                    "target_backlog",
                    json::finite_num("target_backlog", *target_backlog)?,
                ),
            ]),
            ControllerSpec::Extern(_) => {
                return Err(JsonError::new(
                    "extern controllers cannot be encoded in a scenario file; \
                     attach them programmatically after loading",
                ))
            }
        })
    }

    /// Decodes a spec from its scenario-file form, enforcing the
    /// controller constructors' invariants (non-negative `v`, positive
    /// adaptive targets, non-empty strictly-ascending thresholds) as
    /// errors instead of panics. The `extern` tag is rejected explicitly:
    /// scenario files can describe every built-in policy, never a
    /// user-defined one.
    ///
    /// # Errors
    ///
    /// Errors (with the offending position) on unknown `"type"` tags,
    /// unknown or missing keys, wrong types, and invalid parameters.
    pub fn from_json(v: &JsonValue) -> Result<ControllerSpec, JsonError> {
        let mut obj = v.as_obj()?;
        let tag = obj.req("type")?;
        let spec = match tag.as_str()? {
            "proposed" => {
                let v_node = obj.req("v")?;
                let v = v_node.as_f64()?;
                if v < 0.0 {
                    return Err(JsonError::at(
                        v_node.pos,
                        format!("v must be >= 0, got {v}"),
                    ));
                }
                ControllerSpec::Proposed { v }
            }
            "only_max" => ControllerSpec::OnlyMax,
            "only_min" => ControllerSpec::OnlyMin,
            "fixed" => ControllerSpec::Fixed {
                depth: obj.req("depth")?.as_u8()?,
            },
            "random" => ControllerSpec::Random {
                seed: obj.req("seed")?.as_u64()?,
            },
            "threshold" => {
                let node = obj.req("thresholds")?;
                let items = node.as_array()?;
                if items.is_empty() {
                    return Err(JsonError::at(node.pos, "need at least one threshold"));
                }
                let thresholds = items
                    .iter()
                    .map(JsonValue::as_f64)
                    .collect::<Result<Vec<_>, _>>()?;
                if !thresholds.windows(2).all(|w| w[0] < w[1]) {
                    return Err(JsonError::at(
                        node.pos,
                        "thresholds must be strictly ascending",
                    ));
                }
                ControllerSpec::Threshold { thresholds }
            }
            "adaptive_v" => {
                let v_node = obj.req("initial_v")?;
                let initial_v = v_node.as_f64()?;
                if initial_v <= 0.0 {
                    return Err(JsonError::at(
                        v_node.pos,
                        format!("initial V must be > 0, got {initial_v}"),
                    ));
                }
                let t_node = obj.req("target_backlog")?;
                let target_backlog = t_node.as_f64()?;
                if target_backlog <= 0.0 {
                    return Err(JsonError::at(
                        t_node.pos,
                        format!("target backlog must be > 0, got {target_backlog}"),
                    ));
                }
                ControllerSpec::AdaptiveV {
                    initial_v,
                    target_backlog,
                }
            }
            "extern" => {
                return Err(JsonError::at(
                    tag.pos,
                    "extern controllers cannot be described in a scenario file; \
                     use a built-in controller type and attach externs programmatically",
                ))
            }
            other => {
                return Err(JsonError::at(
                    tag.pos,
                    format!(
                        "unknown controller type \"{other}\" (expected proposed, only_max, \
                         only_min, fixed, random, threshold, or adaptive_v)"
                    ),
                ))
            }
        };
        obj.finish()?;
        Ok(spec)
    }
}

/// Runnable controller state: the closed enum the session hot loop
/// dispatches with a `match` (plus the boxed escape hatch for externs).
pub enum BuiltController {
    /// [`ProposedDpp`] state.
    Proposed(ProposedDpp),
    /// [`MaxDepth`] state.
    Max(MaxDepth),
    /// [`MinDepth`] state.
    Min(MinDepth),
    /// [`FixedDepth`] state.
    Fixed(FixedDepth),
    /// [`RandomDepth`] state.
    Random(RandomDepth),
    /// [`QueueThreshold`] state.
    Threshold(QueueThreshold),
    /// [`AdaptiveDpp`] state.
    Adaptive(AdaptiveDpp),
    /// A user-defined controller behind the open trait.
    Extern(Box<dyn DepthController + Send>),
}

impl BuiltController {
    /// Replaces the Lyapunov trade-off `V` of a
    /// [`BuiltController::Proposed`] controller; a no-op for every other
    /// policy. The hook the uplink-aware `V` adaptation
    /// ([`crate::uplink::UplinkVAdaptSpec`]) drives each contended slot.
    pub fn set_v(&mut self, v: f64) {
        if let BuiltController::Proposed(c) = self {
            c.set_v(v);
        }
    }
}

impl DepthController for BuiltController {
    fn select_depth(
        &mut self,
        slot: u64,
        backlog: f64,
        profile: &arvis_quality::DepthProfile,
    ) -> u8 {
        match self {
            BuiltController::Proposed(c) => c.select_depth(slot, backlog, profile),
            BuiltController::Max(c) => c.select_depth(slot, backlog, profile),
            BuiltController::Min(c) => c.select_depth(slot, backlog, profile),
            BuiltController::Fixed(c) => c.select_depth(slot, backlog, profile),
            BuiltController::Random(c) => c.select_depth(slot, backlog, profile),
            BuiltController::Threshold(c) => c.select_depth(slot, backlog, profile),
            BuiltController::Adaptive(c) => c.select_depth(slot, backlog, profile),
            BuiltController::Extern(c) => c.select_depth(slot, backlog, profile),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            BuiltController::Proposed(c) => c.name(),
            BuiltController::Max(c) => c.name(),
            BuiltController::Min(c) => c.name(),
            BuiltController::Fixed(c) => c.name(),
            BuiltController::Random(c) => c.name(),
            BuiltController::Threshold(c) => c.name(),
            BuiltController::Adaptive(c) => c.name(),
            BuiltController::Extern(c) => c.name(),
        }
    }
}

impl std::fmt::Debug for BuiltController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BuiltController({})", self.name())
    }
}

/// Everything one session needs: frame source, device model, policy,
/// seed and queue bounds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionSpec {
    /// The frame source feeding per-slot depth profiles.
    pub stream: ArStream,
    /// The device's service model.
    pub service: ServiceSpec,
    /// The per-slot depth policy.
    pub controller: ControllerSpec,
    /// RNG seed for the session's stochastic components.
    pub seed: u64,
    /// Optional finite queue capacity.
    pub queue_capacity: Option<f64>,
    /// Slots excluded from time-average metrics.
    pub warmup: u64,
    /// Optional bound on the latency tracker's in-flight frame records
    /// (see `FifoLatencyTracker::with_max_in_flight`): a diverging
    /// session's memory stays O(cap) at the price of coarsened (merged,
    /// upper-bounded) frame latencies once the backlog exceeds the cap.
    /// `None` (the default) keeps exact per-frame accounting.
    pub frame_cap: Option<usize>,
    /// Optional uplink-aware `V` adaptation (see
    /// [`crate::uplink::UplinkVAdaptSpec`]): when the session is stepped
    /// through the shared-uplink contention plane, it observes its
    /// grant/demand ratio each slot and scales its Lyapunov `V` with a
    /// bounded multiplicative update, shedding quality instead of
    /// diverging when the link saturates. Requires a
    /// [`ControllerSpec::Proposed`] controller (the knob scales that
    /// controller's `V`); uncoupled runs never engage it.
    pub uplink_v_adapt: Option<crate::uplink::UplinkVAdaptSpec>,
}

impl SessionSpec {
    /// Derives a spec from a legacy [`ExperimentConfig`] plus a policy.
    pub fn from_config(cfg: &ExperimentConfig, controller: ControllerSpec) -> SessionSpec {
        SessionSpec {
            stream: cfg.stream.clone(),
            service: cfg.service,
            controller,
            seed: cfg.seed,
            queue_capacity: cfg.queue_capacity,
            warmup: cfg.warmup,
            frame_cap: None,
            uplink_v_adapt: None,
        }
    }

    /// Enables uplink-aware `V` adaptation for this session (see
    /// [`SessionSpec::uplink_v_adapt`]).
    #[must_use]
    pub fn with_uplink_v_adapt(mut self, adapt: crate::uplink::UplinkVAdaptSpec) -> SessionSpec {
        self.uplink_v_adapt = Some(adapt);
        self
    }

    /// Builds the session's latency tracker (capped when `frame_cap` is
    /// set).
    pub(crate) fn latency_tracker(&self) -> arvis_sim::latency::FifoLatencyTracker {
        match self.frame_cap {
            Some(cap) => arvis_sim::latency::FifoLatencyTracker::with_max_in_flight(cap),
            None => arvis_sim::latency::FifoLatencyTracker::new(),
        }
    }

    /// Encodes the spec for a scenario file (see [`crate::json`]).
    /// Optional fields (`queue_capacity`, `frame_cap`, `uplink_v_adapt`)
    /// are emitted only when set, so files stay minimal and diffs stay
    /// focused.
    ///
    /// # Errors
    ///
    /// Errors on an [`ControllerSpec::Extern`] controller (no file form).
    pub fn to_json(&self) -> Result<JsonValue, JsonError> {
        let mut members = vec![
            ("stream", self.stream.to_json()?),
            ("service", self.service.to_json()?),
            ("controller", self.controller.to_json()?),
            ("seed", JsonValue::int(self.seed)),
            ("warmup", JsonValue::int(self.warmup)),
        ];
        if let Some(capacity) = self.queue_capacity {
            members.push((
                "queue_capacity",
                json::finite_num("queue_capacity", capacity)?,
            ));
        }
        if let Some(cap) = self.frame_cap {
            members.push(("frame_cap", JsonValue::int(cap as u64)));
        }
        if let Some(adapt) = &self.uplink_v_adapt {
            members.push(("uplink_v_adapt", adapt.to_json()?));
        }
        Ok(JsonValue::obj(members))
    }

    /// Decodes a spec from its scenario-file form. Optional fields may be
    /// absent or `null`. Cross-field constraints are enforced here with
    /// specific errors: `uplink_v_adapt` requires a `proposed` controller
    /// with `v > 0` (the adaptation scales that controller's `V`), the
    /// queue capacity must be finite and non-negative, and `frame_cap`
    /// must be at least 1.
    ///
    /// # Errors
    ///
    /// Errors (with the offending position) on unknown or missing keys,
    /// wrong types, and invalid or inconsistent parameters.
    pub fn from_json(v: &JsonValue) -> Result<SessionSpec, JsonError> {
        let mut obj = v.as_obj()?;
        let stream = ArStream::from_json(obj.req("stream")?)?;
        let service = ServiceSpec::from_json(obj.req("service")?)?;
        let controller = ControllerSpec::from_json(obj.req("controller")?)?;
        let seed = obj.req("seed")?.as_u64()?;
        let warmup = obj.req("warmup")?.as_u64()?;
        let queue_capacity = match obj.opt("queue_capacity") {
            Some(node) => {
                let capacity = node.as_f64()?;
                if capacity < 0.0 {
                    return Err(JsonError::at(
                        node.pos,
                        format!("queue_capacity must be >= 0, got {capacity}"),
                    ));
                }
                Some(capacity)
            }
            None => None,
        };
        let frame_cap = match obj.opt("frame_cap") {
            Some(node) => {
                let cap = node.as_usize()?;
                if cap == 0 {
                    return Err(JsonError::at(node.pos, "frame_cap must be positive"));
                }
                Some(cap)
            }
            None => None,
        };
        let uplink_v_adapt = match obj.opt("uplink_v_adapt") {
            Some(node) => {
                let adapt = crate::uplink::UplinkVAdaptSpec::from_json(node)?;
                match controller.proposed_v() {
                    Some(v) if v > 0.0 => {}
                    Some(v) => {
                        return Err(JsonError::at(
                            node.pos,
                            format!(
                                "uplink_v_adapt requires v > 0 on the proposed controller, got {v}"
                            ),
                        ))
                    }
                    None => {
                        return Err(JsonError::at(
                            node.pos,
                            "uplink_v_adapt requires a proposed controller \
                             (the adaptation scales its V)",
                        ))
                    }
                }
                Some(adapt)
            }
            None => None,
        };
        obj.finish()?;
        Ok(SessionSpec {
            stream,
            service,
            controller,
            seed,
            queue_capacity,
            warmup,
            frame_cap,
            uplink_v_adapt,
        })
    }
}

/// A declarative multi-session workload: N session specs sharing one slot
/// horizon, optionally coupled through a shared uplink.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Number of slots every session simulates.
    pub slots: u64,
    /// The sessions, in batch order.
    pub sessions: Vec<SessionSpec>,
    /// Optional shared-uplink contention: when set, the sessions' per-slot
    /// service demands are admitted against one backhaul budget by the
    /// spec's policy (see [`crate::uplink`]) instead of being served
    /// independently. `None` keeps the sessions uncoupled.
    pub uplink: Option<crate::uplink::UplinkSpec>,
    /// Optional deterministic fault plan (outages, grant loss, session
    /// crashes, admission control — see [`crate::fault`]). Faults act on
    /// the contended path: a scenario with a fault plan runs through
    /// [`crate::uplink::run_contended`] even without an `uplink` spec
    /// (with an unconstrained uplink). `None` keeps the fault-free path,
    /// bit-identically.
    pub fault: Option<crate::fault::FaultPlan>,
    /// Optional session churn (mid-run joins, departures, SoA compaction —
    /// see [`crate::churn`]). Churn acts on the contended path, like
    /// faults. `None` — or an empty spec — keeps the fixed-N path,
    /// bit-identically.
    pub churn: Option<crate::churn::ChurnSpec>,
}

impl Scenario {
    /// An empty scenario over `slots` slots.
    pub fn new(slots: u64) -> Scenario {
        Scenario {
            slots,
            sessions: Vec::new(),
            uplink: None,
            fault: None,
            churn: None,
        }
    }

    /// Appends one session.
    #[must_use]
    pub fn with_session(mut self, spec: SessionSpec) -> Scenario {
        self.sessions.push(spec);
        self
    }

    /// Couples the sessions through a shared uplink (see [`crate::uplink`]).
    #[must_use]
    pub fn with_uplink(mut self, spec: crate::uplink::UplinkSpec) -> Scenario {
        self.uplink = Some(spec);
        self
    }

    /// Attaches a fault plan (see [`crate::fault`]), validating it against
    /// the sessions declared so far — call after the fleet is built.
    ///
    /// # Panics
    ///
    /// Panics when [`crate::fault::FaultPlan::validate`] rejects the plan
    /// for this fleet.
    #[must_use]
    pub fn with_fault(mut self, plan: crate::fault::FaultPlan) -> Scenario {
        plan.validate(self.sessions.len());
        self.fault = Some(plan);
        self
    }

    /// Attaches a churn spec (see [`crate::churn`]), validating it against
    /// the uplink and fault plan declared so far — call last, after
    /// [`Scenario::with_uplink`] / [`Scenario::with_fault`].
    ///
    /// # Panics
    ///
    /// Panics when [`crate::churn::ChurnSpec::validate`] rejects the spec,
    /// when the weight pairing is wrong for this scenario's uplink policy
    /// (a `weighted_max_weight` uplink requires a churn weight for joiners
    /// and any other policy forbids one), or when churn lifetimes are
    /// combined with `session_crash` fault events (the two would race for
    /// the same sessions' liveness).
    #[must_use]
    pub fn with_churn(mut self, churn: crate::churn::ChurnSpec) -> Scenario {
        churn.validate();
        // arvis-lint: allow(panic-free-codecs, "the documented panicking builder; from_json routes the same checks into positioned errors")
        self.check_churn(&churn, &mut |msg| panic!("{msg}"));
        self.churn = Some(churn);
        self
    }

    /// The scenario-level churn cross-checks shared by
    /// [`Scenario::with_churn`] (panicking) and [`Scenario::from_json`]
    /// (positioned errors): weight/policy pairing and the
    /// lifetime/`session_crash` exclusion.
    fn check_churn(&self, churn: &crate::churn::ChurnSpec, fail: &mut dyn FnMut(String)) {
        let weighted = matches!(
            self.uplink.as_ref().map(|u| &u.policy),
            Some(crate::uplink::UplinkPolicy::WeightedMaxWeight { .. })
        );
        if churn.arrivals.is_some() {
            if weighted && churn.weight.is_none() {
                fail(
                    "a weighted_max_weight uplink requires a churn weight for joiners".to_string(),
                );
            }
            if !weighted && churn.weight.is_some() {
                fail("a churn weight requires a weighted_max_weight uplink".to_string());
            }
        }
        if churn.lifetime.is_some()
            && self.fault.as_ref().is_some_and(|plan| {
                plan.events
                    .iter()
                    .any(|e| matches!(e, crate::fault::FaultEvent::SessionCrash { .. }))
            })
        {
            fail(
                "churn lifetimes cannot be combined with session_crash fault events \
                 (both drive session liveness)"
                    .to_string(),
            );
        }
    }

    /// A single-session scenario from a legacy config and a policy.
    pub fn single(cfg: &ExperimentConfig, controller: ControllerSpec) -> Scenario {
        Scenario::new(cfg.slots).with_session(SessionSpec::from_config(cfg, controller))
    }

    /// `n` copies of one config/policy with decorrelated per-session seeds
    /// (`child_seed(cfg.seed, i)`) — the homogeneous multi-tenant workload.
    pub fn replicated(cfg: &ExperimentConfig, controller: ControllerSpec, n: usize) -> Scenario {
        let mut scenario = Scenario::new(cfg.slots);
        for i in 0..n {
            let mut spec = SessionSpec::from_config(cfg, controller.clone());
            spec.seed = child_seed(cfg.seed, i as u64);
            scenario.sessions.push(spec);
        }
        scenario
    }

    /// The legacy fleet construction: `fleet.devices` sessions running the
    /// proposed scheduler at `base.controller_v`, service rates spread per
    /// [`FleetSpec`], seeds `child_seed(0xF1EE7, device)` — the exact
    /// per-device setup `distributed::run_fleet` has always used.
    ///
    /// # Panics
    ///
    /// Panics when `fleet.devices == 0` or the base service is not
    /// constant-rate (heterogeneity is defined on constant rates).
    pub fn fleet(base: &ExperimentConfig, fleet: FleetSpec) -> Scenario {
        assert!(fleet.devices > 0, "need at least one device");
        let base_rate = match base.service {
            ServiceSpec::Constant(r) => r,
            // arvis-lint: allow(panic-free-codecs, "legacy Experiment API with a documented panic contract; the JSON path validates via from_json instead")
            _ => panic!("fleet experiments require a constant-rate base service"),
        };
        let mut scenario = Scenario::new(base.slots);
        for i in 0..fleet.devices {
            let mut spec = SessionSpec::from_config(
                base,
                ControllerSpec::Proposed {
                    v: base.controller_v,
                },
            );
            spec.service = ServiceSpec::Constant(fleet_rate(base_rate, fleet, i));
            spec.seed = child_seed(0xF1EE7, i as u64);
            scenario.sessions.push(spec);
        }
        scenario
    }

    /// One proposed-scheduler session per `V` in `vs`, otherwise identical
    /// to `base` — the quality–delay trade-off sweep.
    pub fn v_sweep(base: &ExperimentConfig, vs: &[f64]) -> Scenario {
        let mut scenario = Scenario::new(base.slots);
        for &v in vs {
            scenario.sessions.push(SessionSpec::from_config(
                base,
                ControllerSpec::Proposed { v },
            ));
        }
        scenario
    }

    /// One proposed-scheduler session per constant service rate in `rates`,
    /// holding `V` at `base.controller_v` — the robustness sweep.
    pub fn rate_sweep(base: &ExperimentConfig, rates: &[f64]) -> Scenario {
        let mut scenario = Scenario::new(base.slots);
        for &rate in rates {
            let mut spec = SessionSpec::from_config(
                base,
                ControllerSpec::Proposed {
                    v: base.controller_v,
                },
            );
            spec.service = ServiceSpec::Constant(rate);
            scenario.sessions.push(spec);
        }
        scenario
    }

    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// `true` when no sessions are declared.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Encodes the scenario as a JSON tree (see [`crate::json`] for the
    /// format contract). The top level is
    /// `{"schema": …, "slots": …, "sessions": […], "uplink": …?, "fault": …?, "churn": …?}`
    /// with members in that fixed order — the schema version plus
    /// unknown-key rejection keeps files forward-diffable. Emission uses
    /// the lowest schema version that can express the scenario
    /// ([`Scenario::schema_version`]): fault-free churn-free files stay
    /// byte-identical to what version-1 builds wrote, faulted files to
    /// version-2 output.
    ///
    /// # Errors
    ///
    /// Errors when any session's controller is [`ControllerSpec::Extern`]
    /// (no file form), naming the offending session index.
    pub fn to_json(&self) -> Result<JsonValue, JsonError> {
        let mut sessions = Vec::with_capacity(self.sessions.len());
        for (i, spec) in self.sessions.iter().enumerate() {
            sessions.push(
                spec.to_json()
                    .map_err(|e| JsonError::new(format!("session {i}: {}", e.msg)))?,
            );
        }
        let mut members = vec![
            ("schema", JsonValue::int(self.schema_version())),
            ("slots", JsonValue::int(self.slots)),
            ("sessions", JsonValue::arr(sessions)),
        ];
        if let Some(uplink) = &self.uplink {
            members.push(("uplink", uplink.to_json()?));
        }
        if let Some(fault) = &self.fault {
            members.push(("fault", fault.to_json()?));
        }
        if let Some(churn) = &self.churn {
            members.push(("churn", churn.to_json()?));
        }
        Ok(JsonValue::obj(members))
    }

    /// Decodes a scenario from a JSON tree, checking the schema version,
    /// rejecting unknown keys at every level, and enforcing the one
    /// cross-object constraint a single spec cannot see: a
    /// `weighted_max_weight` uplink must carry exactly one weight per
    /// session.
    ///
    /// # Errors
    ///
    /// Errors (with the offending position) on a missing or unsupported
    /// `"schema"`, unknown or missing keys, wrong types, and invalid
    /// parameters anywhere in the tree.
    pub fn from_json(v: &JsonValue) -> Result<Scenario, JsonError> {
        let mut obj = v.as_obj()?;
        let schema_node = obj.req("schema")?;
        let schema = schema_node.as_u64()?;
        if !(1..=SCENARIO_SCHEMA_VERSION).contains(&schema) {
            return Err(JsonError::at(
                schema_node.pos,
                format!(
                    "unsupported schema version {schema} \
                     (this build reads versions 1 through {SCENARIO_SCHEMA_VERSION})"
                ),
            ));
        }
        let slots = obj.req("slots")?.as_u64()?;
        let sessions_node = obj.req("sessions")?;
        let sessions = sessions_node
            .as_array()?
            .iter()
            .map(SessionSpec::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let uplink = match obj.opt("uplink") {
            Some(node) => {
                let spec = crate::uplink::UplinkSpec::from_json(node)?;
                if let crate::uplink::UplinkPolicy::WeightedMaxWeight { weights } = &spec.policy {
                    if weights.len() != sessions.len() {
                        return Err(JsonError::at(
                            node.pos,
                            format!(
                                "weighted_max_weight declares {} weights for {} sessions \
                                 (need exactly one per session)",
                                weights.len(),
                                sessions.len()
                            ),
                        ));
                    }
                }
                Some(spec)
            }
            None => None,
        };
        let fault = match obj.opt("fault") {
            Some(node) => {
                if schema < 2 {
                    return Err(JsonError::at(
                        node.pos,
                        format!("\"fault\" requires schema version 2 (file declares {schema})"),
                    ));
                }
                Some(crate::fault::FaultPlan::from_json(node, sessions.len())?)
            }
            None => None,
        };
        let churn = match obj.opt("churn") {
            Some(node) => {
                if schema < 3 {
                    return Err(JsonError::at(
                        node.pos,
                        format!("\"churn\" requires schema version 3 (file declares {schema})"),
                    ));
                }
                Some((crate::churn::ChurnSpec::from_json(node)?, node.pos))
            }
            None => None,
        };
        obj.finish()?;
        let scenario = Scenario {
            slots,
            sessions,
            uplink,
            fault,
            churn: None,
        };
        let churn = match churn {
            Some((spec, pos)) => {
                let mut first: Option<JsonError> = None;
                scenario.check_churn(&spec, &mut |msg| {
                    if first.is_none() {
                        first = Some(JsonError::at(pos, msg));
                    }
                });
                if let Some(err) = first {
                    return Err(err);
                }
                Some(spec)
            }
            None => None,
        };
        Ok(Scenario { churn, ..scenario })
    }

    /// Renders the scenario in the canonical file form: the
    /// [`Scenario::to_json`] tree pretty-printed with a trailing newline.
    /// Canonical means reproducible: `from_json_str` followed by
    /// `to_json_string` is byte-identical for any canonically-formatted
    /// file (pinned by the golden suite in `tests/scenario_files.rs`).
    ///
    /// # Errors
    ///
    /// Errors when the scenario contains an extern controller.
    pub fn to_json_string(&self) -> Result<String, JsonError> {
        let mut out = self.to_json()?.to_pretty();
        out.push('\n');
        Ok(out)
    }

    /// Parses a scenario file: strict JSON ([`crate::json::parse`])
    /// followed by [`Scenario::from_json`].
    ///
    /// # Errors
    ///
    /// Errors with line/column on any syntax or schema violation; never
    /// panics, whatever the input bytes.
    pub fn from_json_str(text: &str) -> Result<Scenario, JsonError> {
        Scenario::from_json(&crate::json::parse(text)?)
    }

    /// The schema version this scenario *emits* — the lowest version that
    /// can express it, so files stay byte-compatible with the oldest
    /// readers that understand them: 1 without fault or churn, 2 with only
    /// a fault plan, [`SCENARIO_SCHEMA_VERSION`] once churn is declared.
    pub fn schema_version(&self) -> u64 {
        if self.churn.is_some() {
            SCENARIO_SCHEMA_VERSION
        } else if self.fault.is_some() {
            2
        } else {
            1
        }
    }

    /// The SHA-256 of the canonical file form ([`Scenario::to_json_string`])
    /// as 64 lowercase hex digits — the scenario's content address.
    ///
    /// Because emission is canonical (`emit → parse → emit` is
    /// byte-identical), two scenarios hash equal exactly when their file
    /// forms are byte-identical; any semantic edit (one field, one float
    /// bit) changes the hash. The regression ledger
    /// ([`crate::ledger`]) keys run records by this value.
    ///
    /// # Errors
    ///
    /// Errors when the scenario contains an extern controller (no file
    /// form, hence no content address).
    pub fn content_hash(&self) -> Result<String, JsonError> {
        Ok(crate::hash::sha256_hex(self.to_json_string()?.as_bytes()))
    }
}

/// Device `i`'s service rate under a [`FleetSpec`] spread (the legacy
/// `run_fleet` formula).
pub(crate) fn fleet_rate(base_rate: f64, fleet: FleetSpec, i: usize) -> f64 {
    if fleet.devices == 1 || fleet.rate_spread == 0.0 {
        base_rate
    } else {
        let frac = i as f64 / (fleet.devices - 1) as f64;
        base_rate * (1.0 - fleet.rate_spread / 2.0 + fleet.rate_spread * frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvis_quality::DepthProfile;

    fn profile() -> DepthProfile {
        DepthProfile::from_parts(
            5,
            vec![100.0, 400.0, 1600.0, 6400.0, 25600.0, 102400.0],
            vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
        )
    }

    fn config() -> ExperimentConfig {
        ExperimentConfig::new(profile(), 2_000.0, 100).with_seed(9)
    }

    #[test]
    fn built_controllers_keep_legacy_names() {
        let p = profile();
        let specs = [
            (ControllerSpec::Proposed { v: 1e6 }, "proposed"),
            (ControllerSpec::OnlyMax, "only_max_depth"),
            (ControllerSpec::OnlyMin, "only_min_depth"),
            (ControllerSpec::Fixed { depth: 7 }, "fixed_depth"),
            (ControllerSpec::Random { seed: 3 }, "random_depth"),
            (
                ControllerSpec::Threshold {
                    thresholds: vec![10.0, 20.0],
                },
                "queue_threshold",
            ),
            (
                ControllerSpec::AdaptiveV {
                    initial_v: 1e6,
                    target_backlog: 100.0,
                },
                "adaptive_v",
            ),
        ];
        for (spec, want) in specs {
            let mut built = spec.build();
            assert_eq!(built.name(), want);
            let d = built.select_depth(0, 50.0, &p);
            assert!((5..=10).contains(&d), "{want} returned depth {d}");
        }
    }

    #[test]
    fn built_matches_hand_constructed_policy() {
        let p = profile();
        let mut built = ControllerSpec::Random { seed: 11 }.build();
        let mut direct = RandomDepth::new(11);
        for slot in 0..50 {
            assert_eq!(
                built.select_depth(slot, 0.0, &p),
                direct.select_depth(slot, 0.0, &p)
            );
        }
    }

    #[test]
    fn extern_spec_plugs_in_user_controllers() {
        let spec = ControllerSpec::Extern(ExternSpec::new(|| {
            Box::new(FixedDepth::new(6)) as Box<dyn DepthController + Send>
        }));
        let mut built = spec.build();
        assert_eq!(built.name(), "fixed_depth");
        assert_eq!(built.select_depth(0, 0.0, &profile()), 6);
        // Clones share the factory.
        let mut clone = spec.clone().build();
        assert_eq!(clone.select_depth(0, 0.0, &profile()), 6);
    }

    #[test]
    fn replicated_scenario_decorrelates_seeds() {
        let s = Scenario::replicated(&config(), ControllerSpec::OnlyMax, 4);
        assert_eq!(s.len(), 4);
        assert_eq!(s.slots, 100);
        let mut seeds: Vec<u64> = s.sessions.iter().map(|x| x.seed).collect();
        seeds.dedup();
        assert_eq!(seeds.len(), 4, "seeds must differ");
        assert_eq!(seeds[0], child_seed(9, 0));
    }

    #[test]
    fn fleet_scenario_reproduces_legacy_layout() {
        let base = config().with_controller_v(5e6);
        let fleet = FleetSpec::heterogeneous(5, 1.0);
        let s = Scenario::fleet(&base, fleet);
        assert_eq!(s.len(), 5);
        for (i, spec) in s.sessions.iter().enumerate() {
            assert_eq!(spec.seed, child_seed(0xF1EE7, i as u64));
            let ServiceSpec::Constant(rate) = spec.service else {
                panic!("fleet sessions must be constant-rate");
            };
            assert!((rate - fleet_rate(2_000.0, fleet, i)).abs() < 1e-12);
            let ControllerSpec::Proposed { v } = spec.controller else {
                panic!("fleet sessions run the proposed scheduler");
            };
            assert_eq!(v, 5e6);
        }
        // Spread of 1.0 spans ±50%.
        let ServiceSpec::Constant(lo) = s.sessions[0].service else {
            unreachable!()
        };
        let ServiceSpec::Constant(hi) = s.sessions[4].service else {
            unreachable!()
        };
        assert!((lo - 1_000.0).abs() < 1e-9);
        assert!((hi - 3_000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "constant-rate")]
    fn fleet_scenario_rejects_stochastic_base() {
        let base = config().with_service(ServiceSpec::Jittered {
            rate: 2_000.0,
            sigma: 0.1,
        });
        let _ = Scenario::fleet(&base, FleetSpec::homogeneous(2));
    }

    #[test]
    fn scenario_json_roundtrip_is_exact_and_canonical() {
        use crate::uplink::{BudgetProfile, UplinkPolicy, UplinkSpec, UplinkVAdaptSpec};
        let cfg = config();
        let mut scenario = Scenario::new(1_600);
        for controller in [
            ControllerSpec::Proposed { v: 1e7 },
            ControllerSpec::OnlyMax,
            ControllerSpec::OnlyMin,
            ControllerSpec::Fixed { depth: 7 },
            ControllerSpec::Random { seed: u64::MAX },
            ControllerSpec::Threshold {
                thresholds: vec![0.1, 1e4, 1e8],
            },
            ControllerSpec::AdaptiveV {
                initial_v: 3.5e6,
                target_backlog: 1234.5,
            },
        ] {
            let mut spec = SessionSpec::from_config(&cfg, controller);
            spec.seed = 0x1234_5678_9abc_def0;
            scenario.sessions.push(spec);
        }
        scenario.sessions[0].queue_capacity = Some(50_000.0);
        scenario.sessions[0].frame_cap = Some(4_096);
        scenario.sessions[0].uplink_v_adapt = Some(UplinkVAdaptSpec::default());
        scenario.sessions[1].service = ServiceSpec::Jittered {
            rate: 2_000.0,
            sigma: 0.2,
        };
        scenario.sessions[2].service = ServiceSpec::DutyCycled {
            high: 3_000.0,
            low: 750.0,
            high_slots: 30,
            low_slots: 10,
        };
        scenario.sessions[3].stream = ArStream::modulated(profile(), 0.25, 400.0);
        scenario = scenario.with_uplink(UplinkSpec::with_profile(
            BudgetProfile::Diurnal {
                mean: 9_600.0,
                amplitude: 7_200.0,
                period: 200,
                phase: 0.25,
            },
            UplinkPolicy::WeightedMaxWeight {
                weights: (1..=7).map(f64::from).collect(),
            },
        ));

        let text = scenario.to_json_string().expect("encode");
        let back = Scenario::from_json_str(&text).expect("decode");
        // Canonical: re-encoding the decoded scenario is byte-identical.
        assert_eq!(back.to_json_string().unwrap(), text);
        // And the decoded structure matches bitwise where it matters.
        assert_eq!(back.slots, scenario.slots);
        assert_eq!(back.len(), scenario.len());
        assert_eq!(back.sessions[0].seed, scenario.sessions[0].seed);
        assert_eq!(back.sessions[0].frame_cap, Some(4_096));
        assert_eq!(back.uplink, scenario.uplink);
        for (a, b) in back.sessions.iter().zip(&scenario.sessions) {
            let pa = a.stream.profile_at(7);
            let pb = b.stream.profile_at(7);
            for d in pa.depths() {
                assert_eq!(pa.arrival(d).to_bits(), pb.arrival(d).to_bits());
                assert_eq!(pa.quality(d).to_bits(), pb.quality(d).to_bits());
            }
        }
    }

    #[test]
    fn extern_controllers_have_no_file_form() {
        let spec = ControllerSpec::Extern(ExternSpec::new(|| {
            Box::new(FixedDepth::new(6)) as Box<dyn DepthController + Send>
        }));
        let err = spec.to_json().unwrap_err();
        assert!(err.msg.contains("extern"), "{}", err.msg);
        let scenario = Scenario::new(10).with_session(SessionSpec::from_config(&config(), spec));
        let err = scenario.to_json_string().unwrap_err();
        assert!(err.msg.contains("session 0"), "{}", err.msg);
    }

    #[test]
    fn sweep_scenarios_cover_the_grid() {
        let base = config().with_controller_v(3e6);
        let vs = [1e5, 1e6, 1e7];
        let s = Scenario::v_sweep(&base, &vs);
        assert_eq!(s.len(), 3);
        for (spec, &v_want) in s.sessions.iter().zip(&vs) {
            let ControllerSpec::Proposed { v } = spec.controller else {
                panic!("v-sweep uses the proposed scheduler");
            };
            assert_eq!(v, v_want);
        }
        let rates = [500.0, 4_000.0];
        let r = Scenario::rate_sweep(&base, &rates);
        for (spec, &want) in r.sessions.iter().zip(&rates) {
            let ServiceSpec::Constant(got) = spec.service else {
                panic!("rate sweep is constant-rate");
            };
            assert_eq!(got, want);
            let ControllerSpec::Proposed { v } = spec.controller else {
                panic!()
            };
            assert_eq!(v, 3e6);
        }
    }
}
