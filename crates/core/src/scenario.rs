//! Declarative scenarios: everything a session needs, as plain data.
//!
//! A [`Scenario`] is a serde-annotated description of N heterogeneous AR
//! sessions — stream, service model, controller, seed, queue bounds per
//! session plus one shared horizon. It unifies what used to be three
//! disjoint entry points (`ExperimentConfig` for a single run,
//! `FleetSpec` for the distributed demo, ad-hoc grids for the sweeps) into
//! one value that can be stored, diffed, and handed to the
//! [`crate::session::SessionBatch`] runtime.
//!
//! Controllers are described by [`ControllerSpec`], a closed enum that the
//! hot loop dispatches with a `match` instead of a `Box<dyn>` virtual call.
//! User-defined policies still plug in through the
//! [`crate::controller::DepthController`] trait via
//! [`ControllerSpec::Extern`].

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use arvis_sim::rng::child_seed;

use crate::controller::{
    AdaptiveDpp, DepthController, FixedDepth, MaxDepth, MinDepth, ProposedDpp, QueueThreshold,
    RandomDepth,
};
use crate::distributed::FleetSpec;
use crate::experiment::{ExperimentConfig, ServiceSpec};
use crate::stream::ArStream;

/// Factory for a user-defined depth controller, pluggable into a
/// [`ControllerSpec`] (and therefore into scenarios and batches) without
/// the runtime knowing the concrete type.
pub trait ExternController: Send + Sync {
    /// Builds a fresh controller instance for one session.
    fn build(&self) -> Box<dyn DepthController + Send>;
}

/// A shareable handle to an [`ExternController`] factory.
#[derive(Clone)]
pub struct ExternSpec(Arc<dyn ExternController>);

impl ExternSpec {
    /// Wraps a factory.
    pub fn new(factory: impl ExternController + 'static) -> ExternSpec {
        ExternSpec(Arc::new(factory))
    }

    /// Builds one controller instance.
    pub fn build(&self) -> Box<dyn DepthController + Send> {
        self.0.build()
    }
}

impl std::fmt::Debug for ExternSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ExternSpec(..)")
    }
}

/// Blanket impl so a plain closure can serve as the factory.
impl<F> ExternController for F
where
    F: Fn() -> Box<dyn DepthController + Send> + Send + Sync,
{
    fn build(&self) -> Box<dyn DepthController + Send> {
        self()
    }
}

/// Declarative description of a per-slot depth-selection policy.
///
/// Building ([`ControllerSpec::build`]) yields a [`BuiltController`] whose
/// hot-loop dispatch is a `match` over this closed set; the `Extern`
/// variant keeps the open [`DepthController`] trait available for user
/// extensions at the price of one virtual call per slot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ControllerSpec {
    /// The proposed Lyapunov scheduler (Algorithm 1) with trade-off `v`.
    Proposed {
        /// The quality/backlog trade-off coefficient `V` of Eq. (3).
        v: f64,
    },
    /// Always the maximum candidate depth ("only max-Depth").
    OnlyMax,
    /// Always the minimum candidate depth ("only min-Depth").
    OnlyMin,
    /// A fixed depth, clamped into the candidate range.
    Fixed {
        /// The depth to hold.
        depth: u8,
    },
    /// Uniformly random depth each slot.
    Random {
        /// RNG seed of the policy's own stream.
        seed: u64,
    },
    /// Hand-tuned backlog thresholds (one depth level per crossing).
    Threshold {
        /// Ascending backlog thresholds.
        thresholds: Vec<f64>,
    },
    /// The proposed scheduler with online-adapted `V`.
    AdaptiveV {
        /// Starting `V`.
        initial_v: f64,
        /// Backlog level the adaptation regulates around.
        target_backlog: f64,
    },
    /// A user-defined controller built through the open trait.
    ///
    /// Skipped by serde: a trait-object factory has no serializable form,
    /// so scenario files can describe every built-in policy but externs
    /// must be attached programmatically after loading.
    #[serde(skip)]
    Extern(ExternSpec),
}

impl ControllerSpec {
    /// Builds the runnable controller state for one session.
    ///
    /// # Panics
    ///
    /// Propagates the constructor panics of the underlying policies
    /// (negative `v`, empty/unsorted thresholds).
    pub fn build(&self) -> BuiltController {
        match self {
            ControllerSpec::Proposed { v } => BuiltController::Proposed(ProposedDpp::new(*v)),
            ControllerSpec::OnlyMax => BuiltController::Max(MaxDepth),
            ControllerSpec::OnlyMin => BuiltController::Min(MinDepth),
            ControllerSpec::Fixed { depth } => BuiltController::Fixed(FixedDepth::new(*depth)),
            ControllerSpec::Random { seed } => BuiltController::Random(RandomDepth::new(*seed)),
            ControllerSpec::Threshold { thresholds } => {
                BuiltController::Threshold(QueueThreshold::new(thresholds.clone()))
            }
            ControllerSpec::AdaptiveV {
                initial_v,
                target_backlog,
            } => BuiltController::Adaptive(AdaptiveDpp::new(*initial_v, *target_backlog)),
            ControllerSpec::Extern(spec) => BuiltController::Extern(spec.build()),
        }
    }

    /// The fixed trade-off coefficient `V` of a
    /// [`ControllerSpec::Proposed`] spec, `None` for every other policy —
    /// the base value uplink-aware `V` adaptation
    /// ([`SessionSpec::uplink_v_adapt`]) scales around.
    pub fn proposed_v(&self) -> Option<f64> {
        match self {
            ControllerSpec::Proposed { v } => Some(*v),
            _ => None,
        }
    }
}

/// Runnable controller state: the closed enum the session hot loop
/// dispatches with a `match` (plus the boxed escape hatch for externs).
pub enum BuiltController {
    /// [`ProposedDpp`] state.
    Proposed(ProposedDpp),
    /// [`MaxDepth`] state.
    Max(MaxDepth),
    /// [`MinDepth`] state.
    Min(MinDepth),
    /// [`FixedDepth`] state.
    Fixed(FixedDepth),
    /// [`RandomDepth`] state.
    Random(RandomDepth),
    /// [`QueueThreshold`] state.
    Threshold(QueueThreshold),
    /// [`AdaptiveDpp`] state.
    Adaptive(AdaptiveDpp),
    /// A user-defined controller behind the open trait.
    Extern(Box<dyn DepthController + Send>),
}

impl BuiltController {
    /// Replaces the Lyapunov trade-off `V` of a
    /// [`BuiltController::Proposed`] controller; a no-op for every other
    /// policy. The hook the uplink-aware `V` adaptation
    /// ([`crate::uplink::UplinkVAdaptSpec`]) drives each contended slot.
    pub fn set_v(&mut self, v: f64) {
        if let BuiltController::Proposed(c) = self {
            c.set_v(v);
        }
    }
}

impl DepthController for BuiltController {
    fn select_depth(
        &mut self,
        slot: u64,
        backlog: f64,
        profile: &arvis_quality::DepthProfile,
    ) -> u8 {
        match self {
            BuiltController::Proposed(c) => c.select_depth(slot, backlog, profile),
            BuiltController::Max(c) => c.select_depth(slot, backlog, profile),
            BuiltController::Min(c) => c.select_depth(slot, backlog, profile),
            BuiltController::Fixed(c) => c.select_depth(slot, backlog, profile),
            BuiltController::Random(c) => c.select_depth(slot, backlog, profile),
            BuiltController::Threshold(c) => c.select_depth(slot, backlog, profile),
            BuiltController::Adaptive(c) => c.select_depth(slot, backlog, profile),
            BuiltController::Extern(c) => c.select_depth(slot, backlog, profile),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            BuiltController::Proposed(c) => c.name(),
            BuiltController::Max(c) => c.name(),
            BuiltController::Min(c) => c.name(),
            BuiltController::Fixed(c) => c.name(),
            BuiltController::Random(c) => c.name(),
            BuiltController::Threshold(c) => c.name(),
            BuiltController::Adaptive(c) => c.name(),
            BuiltController::Extern(c) => c.name(),
        }
    }
}

impl std::fmt::Debug for BuiltController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BuiltController({})", self.name())
    }
}

/// Everything one session needs: frame source, device model, policy,
/// seed and queue bounds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionSpec {
    /// The frame source feeding per-slot depth profiles.
    pub stream: ArStream,
    /// The device's service model.
    pub service: ServiceSpec,
    /// The per-slot depth policy.
    pub controller: ControllerSpec,
    /// RNG seed for the session's stochastic components.
    pub seed: u64,
    /// Optional finite queue capacity.
    pub queue_capacity: Option<f64>,
    /// Slots excluded from time-average metrics.
    pub warmup: u64,
    /// Optional bound on the latency tracker's in-flight frame records
    /// (see `FifoLatencyTracker::with_max_in_flight`): a diverging
    /// session's memory stays O(cap) at the price of coarsened (merged,
    /// upper-bounded) frame latencies once the backlog exceeds the cap.
    /// `None` (the default) keeps exact per-frame accounting.
    pub frame_cap: Option<usize>,
    /// Optional uplink-aware `V` adaptation (see
    /// [`crate::uplink::UplinkVAdaptSpec`]): when the session is stepped
    /// through the shared-uplink contention plane, it observes its
    /// grant/demand ratio each slot and scales its Lyapunov `V` with a
    /// bounded multiplicative update, shedding quality instead of
    /// diverging when the link saturates. Requires a
    /// [`ControllerSpec::Proposed`] controller (the knob scales that
    /// controller's `V`); uncoupled runs never engage it.
    pub uplink_v_adapt: Option<crate::uplink::UplinkVAdaptSpec>,
}

impl SessionSpec {
    /// Derives a spec from a legacy [`ExperimentConfig`] plus a policy.
    pub fn from_config(cfg: &ExperimentConfig, controller: ControllerSpec) -> SessionSpec {
        SessionSpec {
            stream: cfg.stream.clone(),
            service: cfg.service,
            controller,
            seed: cfg.seed,
            queue_capacity: cfg.queue_capacity,
            warmup: cfg.warmup,
            frame_cap: None,
            uplink_v_adapt: None,
        }
    }

    /// Enables uplink-aware `V` adaptation for this session (see
    /// [`SessionSpec::uplink_v_adapt`]).
    #[must_use]
    pub fn with_uplink_v_adapt(mut self, adapt: crate::uplink::UplinkVAdaptSpec) -> SessionSpec {
        self.uplink_v_adapt = Some(adapt);
        self
    }

    /// Builds the session's latency tracker (capped when `frame_cap` is
    /// set).
    pub(crate) fn latency_tracker(&self) -> arvis_sim::latency::FifoLatencyTracker {
        match self.frame_cap {
            Some(cap) => arvis_sim::latency::FifoLatencyTracker::with_max_in_flight(cap),
            None => arvis_sim::latency::FifoLatencyTracker::new(),
        }
    }
}

/// A declarative multi-session workload: N session specs sharing one slot
/// horizon, optionally coupled through a shared uplink.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Number of slots every session simulates.
    pub slots: u64,
    /// The sessions, in batch order.
    pub sessions: Vec<SessionSpec>,
    /// Optional shared-uplink contention: when set, the sessions' per-slot
    /// service demands are admitted against one backhaul budget by the
    /// spec's policy (see [`crate::uplink`]) instead of being served
    /// independently. `None` keeps the sessions uncoupled.
    pub uplink: Option<crate::uplink::UplinkSpec>,
}

impl Scenario {
    /// An empty scenario over `slots` slots.
    pub fn new(slots: u64) -> Scenario {
        Scenario {
            slots,
            sessions: Vec::new(),
            uplink: None,
        }
    }

    /// Appends one session.
    #[must_use]
    pub fn with_session(mut self, spec: SessionSpec) -> Scenario {
        self.sessions.push(spec);
        self
    }

    /// Couples the sessions through a shared uplink (see [`crate::uplink`]).
    #[must_use]
    pub fn with_uplink(mut self, spec: crate::uplink::UplinkSpec) -> Scenario {
        self.uplink = Some(spec);
        self
    }

    /// A single-session scenario from a legacy config and a policy.
    pub fn single(cfg: &ExperimentConfig, controller: ControllerSpec) -> Scenario {
        Scenario::new(cfg.slots).with_session(SessionSpec::from_config(cfg, controller))
    }

    /// `n` copies of one config/policy with decorrelated per-session seeds
    /// (`child_seed(cfg.seed, i)`) — the homogeneous multi-tenant workload.
    pub fn replicated(cfg: &ExperimentConfig, controller: ControllerSpec, n: usize) -> Scenario {
        let mut scenario = Scenario::new(cfg.slots);
        for i in 0..n {
            let mut spec = SessionSpec::from_config(cfg, controller.clone());
            spec.seed = child_seed(cfg.seed, i as u64);
            scenario.sessions.push(spec);
        }
        scenario
    }

    /// The legacy fleet construction: `fleet.devices` sessions running the
    /// proposed scheduler at `base.controller_v`, service rates spread per
    /// [`FleetSpec`], seeds `child_seed(0xF1EE7, device)` — the exact
    /// per-device setup `distributed::run_fleet` has always used.
    ///
    /// # Panics
    ///
    /// Panics when `fleet.devices == 0` or the base service is not
    /// constant-rate (heterogeneity is defined on constant rates).
    pub fn fleet(base: &ExperimentConfig, fleet: FleetSpec) -> Scenario {
        assert!(fleet.devices > 0, "need at least one device");
        let base_rate = match base.service {
            ServiceSpec::Constant(r) => r,
            _ => panic!("fleet experiments require a constant-rate base service"),
        };
        let mut scenario = Scenario::new(base.slots);
        for i in 0..fleet.devices {
            let mut spec = SessionSpec::from_config(
                base,
                ControllerSpec::Proposed {
                    v: base.controller_v,
                },
            );
            spec.service = ServiceSpec::Constant(fleet_rate(base_rate, fleet, i));
            spec.seed = child_seed(0xF1EE7, i as u64);
            scenario.sessions.push(spec);
        }
        scenario
    }

    /// One proposed-scheduler session per `V` in `vs`, otherwise identical
    /// to `base` — the quality–delay trade-off sweep.
    pub fn v_sweep(base: &ExperimentConfig, vs: &[f64]) -> Scenario {
        let mut scenario = Scenario::new(base.slots);
        for &v in vs {
            scenario.sessions.push(SessionSpec::from_config(
                base,
                ControllerSpec::Proposed { v },
            ));
        }
        scenario
    }

    /// One proposed-scheduler session per constant service rate in `rates`,
    /// holding `V` at `base.controller_v` — the robustness sweep.
    pub fn rate_sweep(base: &ExperimentConfig, rates: &[f64]) -> Scenario {
        let mut scenario = Scenario::new(base.slots);
        for &rate in rates {
            let mut spec = SessionSpec::from_config(
                base,
                ControllerSpec::Proposed {
                    v: base.controller_v,
                },
            );
            spec.service = ServiceSpec::Constant(rate);
            scenario.sessions.push(spec);
        }
        scenario
    }

    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// `true` when no sessions are declared.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }
}

/// Device `i`'s service rate under a [`FleetSpec`] spread (the legacy
/// `run_fleet` formula).
pub(crate) fn fleet_rate(base_rate: f64, fleet: FleetSpec, i: usize) -> f64 {
    if fleet.devices == 1 || fleet.rate_spread == 0.0 {
        base_rate
    } else {
        let frac = i as f64 / (fleet.devices - 1) as f64;
        base_rate * (1.0 - fleet.rate_spread / 2.0 + fleet.rate_spread * frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvis_quality::DepthProfile;

    fn profile() -> DepthProfile {
        DepthProfile::from_parts(
            5,
            vec![100.0, 400.0, 1600.0, 6400.0, 25600.0, 102400.0],
            vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
        )
    }

    fn config() -> ExperimentConfig {
        ExperimentConfig::new(profile(), 2_000.0, 100).with_seed(9)
    }

    #[test]
    fn built_controllers_keep_legacy_names() {
        let p = profile();
        let specs = [
            (ControllerSpec::Proposed { v: 1e6 }, "proposed"),
            (ControllerSpec::OnlyMax, "only_max_depth"),
            (ControllerSpec::OnlyMin, "only_min_depth"),
            (ControllerSpec::Fixed { depth: 7 }, "fixed_depth"),
            (ControllerSpec::Random { seed: 3 }, "random_depth"),
            (
                ControllerSpec::Threshold {
                    thresholds: vec![10.0, 20.0],
                },
                "queue_threshold",
            ),
            (
                ControllerSpec::AdaptiveV {
                    initial_v: 1e6,
                    target_backlog: 100.0,
                },
                "adaptive_v",
            ),
        ];
        for (spec, want) in specs {
            let mut built = spec.build();
            assert_eq!(built.name(), want);
            let d = built.select_depth(0, 50.0, &p);
            assert!((5..=10).contains(&d), "{want} returned depth {d}");
        }
    }

    #[test]
    fn built_matches_hand_constructed_policy() {
        let p = profile();
        let mut built = ControllerSpec::Random { seed: 11 }.build();
        let mut direct = RandomDepth::new(11);
        for slot in 0..50 {
            assert_eq!(
                built.select_depth(slot, 0.0, &p),
                direct.select_depth(slot, 0.0, &p)
            );
        }
    }

    #[test]
    fn extern_spec_plugs_in_user_controllers() {
        let spec = ControllerSpec::Extern(ExternSpec::new(|| {
            Box::new(FixedDepth::new(6)) as Box<dyn DepthController + Send>
        }));
        let mut built = spec.build();
        assert_eq!(built.name(), "fixed_depth");
        assert_eq!(built.select_depth(0, 0.0, &profile()), 6);
        // Clones share the factory.
        let mut clone = spec.clone().build();
        assert_eq!(clone.select_depth(0, 0.0, &profile()), 6);
    }

    #[test]
    fn replicated_scenario_decorrelates_seeds() {
        let s = Scenario::replicated(&config(), ControllerSpec::OnlyMax, 4);
        assert_eq!(s.len(), 4);
        assert_eq!(s.slots, 100);
        let mut seeds: Vec<u64> = s.sessions.iter().map(|x| x.seed).collect();
        seeds.dedup();
        assert_eq!(seeds.len(), 4, "seeds must differ");
        assert_eq!(seeds[0], child_seed(9, 0));
    }

    #[test]
    fn fleet_scenario_reproduces_legacy_layout() {
        let base = config().with_controller_v(5e6);
        let fleet = FleetSpec::heterogeneous(5, 1.0);
        let s = Scenario::fleet(&base, fleet);
        assert_eq!(s.len(), 5);
        for (i, spec) in s.sessions.iter().enumerate() {
            assert_eq!(spec.seed, child_seed(0xF1EE7, i as u64));
            let ServiceSpec::Constant(rate) = spec.service else {
                panic!("fleet sessions must be constant-rate");
            };
            assert!((rate - fleet_rate(2_000.0, fleet, i)).abs() < 1e-12);
            let ControllerSpec::Proposed { v } = spec.controller else {
                panic!("fleet sessions run the proposed scheduler");
            };
            assert_eq!(v, 5e6);
        }
        // Spread of 1.0 spans ±50%.
        let ServiceSpec::Constant(lo) = s.sessions[0].service else {
            unreachable!()
        };
        let ServiceSpec::Constant(hi) = s.sessions[4].service else {
            unreachable!()
        };
        assert!((lo - 1_000.0).abs() < 1e-9);
        assert!((hi - 3_000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "constant-rate")]
    fn fleet_scenario_rejects_stochastic_base() {
        let base = config().with_service(ServiceSpec::Jittered {
            rate: 2_000.0,
            sigma: 0.1,
        });
        let _ = Scenario::fleet(&base, FleetSpec::homogeneous(2));
    }

    #[test]
    fn sweep_scenarios_cover_the_grid() {
        let base = config().with_controller_v(3e6);
        let vs = [1e5, 1e6, 1e7];
        let s = Scenario::v_sweep(&base, &vs);
        assert_eq!(s.len(), 3);
        for (spec, &v_want) in s.sessions.iter().zip(&vs) {
            let ControllerSpec::Proposed { v } = spec.controller else {
                panic!("v-sweep uses the proposed scheduler");
            };
            assert_eq!(v, v_want);
        }
        let rates = [500.0, 4_000.0];
        let r = Scenario::rate_sweep(&base, &rates);
        for (spec, &want) in r.sessions.iter().zip(&rates) {
            let ServiceSpec::Constant(got) = spec.service else {
                panic!("rate sweep is constant-rate");
            };
            assert_eq!(got, want);
            let ControllerSpec::Proposed { v } = spec.controller else {
                panic!()
            };
            assert_eq!(v, 3e6);
        }
    }
}
