//! Parallel parameter sweeps: the quality–delay trade-off over `V` and
//! robustness over service rates.
//!
//! Eq. (3)'s `V` buys quality at the price of backlog (`O(1/V)` utility gap,
//! `O(V)` backlog — see [`arvis_lyapunov::bounds`]). These sweeps measure
//! that trade-off empirically; they back the extension experiments E1 and
//! E3 of DESIGN.md.
//!
//! Since the session-runtime redesign each sweep is a thin layer: the grid
//! becomes a [`Scenario`] (one session per grid point) stepped by a
//! [`SessionBatch`], so sweep parallelism rides the same deterministic
//! `arvis_par` fan-out as everything else.

use crate::experiment::ExperimentConfig;
use crate::scenario::Scenario;
use crate::session::SessionBatch;
use crate::telemetry::CsvRow;

/// One point of a V-sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VSweepPoint {
    /// The trade-off coefficient.
    pub v: f64,
    /// Time-average quality after warm-up.
    pub mean_quality: f64,
    /// Time-average backlog after warm-up.
    pub mean_backlog: f64,
    /// Stability verdict.
    pub stable: bool,
}

/// Runs the proposed scheduler for every `V` in `vs` (in parallel) against
/// the same base configuration.
pub fn v_sweep(base: &ExperimentConfig, vs: &[f64]) -> Vec<VSweepPoint> {
    // Chunk size 1: one grid point per fan-out unit, matching the
    // thread-per-point concurrency of the pre-batch implementation.
    let mut batch = SessionBatch::full_trace(&Scenario::v_sweep(base, vs)).with_chunk_size(1);
    batch.run();
    batch
        .into_results()
        .into_iter()
        .zip(vs)
        .map(|(r, &v)| VSweepPoint {
            v,
            mean_quality: r.mean_quality,
            mean_backlog: r.mean_backlog,
            stable: r.stable,
        })
        .collect()
}

/// Renders a V-sweep as CSV.
pub fn v_sweep_csv(points: &[VSweepPoint]) -> String {
    let mut out = String::from("v,mean_quality,mean_backlog,stable\n");
    for p in points {
        out.push_str(
            &CsvRow::new()
                .field(p.v)
                .fixed(p.mean_quality, 6)
                .fixed(p.mean_backlog, 3)
                .field(p.stable)
                .finish(),
        );
        out.push('\n');
    }
    out
}

/// A logarithmic grid of `n` values from `lo` to `hi` (inclusive).
///
/// # Panics
///
/// Panics when `lo <= 0`, `hi < lo`, or `n < 2`.
pub fn log_grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi >= lo, "need 0 < lo <= hi");
    assert!(n >= 2, "need at least two grid points");
    let (llo, lhi) = (lo.ln(), hi.ln());
    (0..n)
        .map(|i| (llo + (lhi - llo) * i as f64 / (n - 1) as f64).exp())
        .collect()
}

/// One point of a service-rate sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateSweepPoint {
    /// The constant service rate used.
    pub service_rate: f64,
    /// Time-average quality after warm-up.
    pub mean_quality: f64,
    /// Time-average backlog after warm-up.
    pub mean_backlog: f64,
    /// Stability verdict.
    pub stable: bool,
}

/// Runs the proposed scheduler across service rates (in parallel), holding
/// `V` fixed at `base.controller_v`.
pub fn rate_sweep(base: &ExperimentConfig, rates: &[f64]) -> Vec<RateSweepPoint> {
    let mut batch = SessionBatch::full_trace(&Scenario::rate_sweep(base, rates)).with_chunk_size(1);
    batch.run();
    batch
        .into_results()
        .into_iter()
        .zip(rates)
        .map(|(r, &service_rate)| RateSweepPoint {
            service_rate,
            mean_quality: r.mean_quality,
            mean_backlog: r.mean_backlog,
            stable: r.stable,
        })
        .collect()
}

/// Renders a rate sweep as CSV.
pub fn rate_sweep_csv(points: &[RateSweepPoint]) -> String {
    let mut out = String::from("service_rate,mean_quality,mean_backlog,stable\n");
    for p in points {
        out.push_str(
            &CsvRow::new()
                .field(p.service_rate)
                .fixed(p.mean_quality, 6)
                .fixed(p.mean_backlog, 3)
                .field(p.stable)
                .finish(),
        );
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvis_quality::DepthProfile;

    fn base() -> ExperimentConfig {
        let profile = DepthProfile::from_parts(
            5,
            vec![100.0, 400.0, 1600.0, 6400.0, 25600.0, 102400.0],
            vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
        );
        ExperimentConfig::new(profile, 2_000.0, 1_000)
    }

    #[test]
    fn log_grid_endpoints_and_monotonicity() {
        let g = log_grid(10.0, 1000.0, 5);
        assert_eq!(g.len(), 5);
        assert!((g[0] - 10.0).abs() < 1e-9);
        assert!((g[4] - 1000.0).abs() < 1e-6);
        for w in g.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!((g[2] - 100.0).abs() < 1e-6, "log-midpoint");
    }

    #[test]
    #[should_panic(expected = "0 < lo")]
    fn log_grid_rejects_nonpositive() {
        let _ = log_grid(0.0, 1.0, 3);
    }

    #[test]
    fn v_sweep_shows_quality_delay_tradeoff() {
        let vs = log_grid(1e4, 1e8, 5);
        let points = v_sweep(&base(), &vs);
        assert_eq!(points.len(), 5);
        // Quality non-decreasing in V; backlog non-decreasing in V.
        for w in points.windows(2) {
            assert!(
                w[1].mean_quality >= w[0].mean_quality - 1e-9,
                "quality must grow with V: {points:?}"
            );
            assert!(
                w[1].mean_backlog >= w[0].mean_backlog - 1e-9,
                "backlog must grow with V: {points:?}"
            );
        }
        // Preserves input order.
        for (p, &v) in points.iter().zip(&vs) {
            assert_eq!(p.v, v);
        }
    }

    #[test]
    fn rate_sweep_quality_grows_with_capacity() {
        let rates = [500.0, 2_000.0, 8_000.0, 32_000.0];
        let points = rate_sweep(&base().with_controller_v(1e7), &rates);
        assert_eq!(points.len(), 4);
        for w in points.windows(2) {
            assert!(
                w[1].mean_quality >= w[0].mean_quality - 1e-9,
                "more capacity, more quality: {points:?}"
            );
        }
        // All runs remain stable (DPP adapts to the rate).
        assert!(points.iter().all(|p| p.stable));
    }

    #[test]
    fn sweep_csvs() {
        let vs = [1e5, 1e6];
        let points = v_sweep(&base(), &vs);
        let csv = v_sweep_csv(&points);
        assert!(csv.starts_with("v,"));
        assert_eq!(csv.trim().lines().count(), 3);

        let rp = rate_sweep(&base(), &[1_000.0]);
        let rcsv = rate_sweep_csv(&rp);
        assert!(rcsv.starts_with("service_rate,"));
        assert_eq!(rcsv.trim().lines().count(), 2);
    }
}
