//! Deterministic open-loop session churn (`"schema": 3`): arrivals-driven
//! mid-run joins, per-session lifetime distributions, and SoA slot
//! compaction.
//!
//! A [`ChurnSpec`] turns a fixed-N scenario into a churning fleet:
//!
//! - **Joins.** An arrival process from `arvis_sim::arrivals`
//!   ([`ChurnArrivalSpec`]: Poisson / MMPP-2 / trace, on its own dedicated
//!   seeded RNG stream) decides how many sessions join at each slot, up to
//!   `max_joins`. Every joiner is a clone of the `template`
//!   [`SessionSpec`] with a decorrelated seed
//!   (`child_seed(template.seed, join_index)`), spawned through
//!   [`crate::session::SessionBatch::spawn_at`] — the cold-restart idiom,
//!   so a session joining at slot `k` is **bitwise** a fresh session run
//!   over the residual horizon.
//! - **Departures.** An optional [`LifetimeSpec`] assigns every session —
//!   the initial fleet (born at slot 0) and every joiner (born at its join
//!   slot) — a lifetime drawn as a pure function of the spec and the
//!   session's stable id (`child_seed(seed, id)`), so the departure
//!   schedule is order-invariant by construction. A departing session dies
//!   permanently ([`CrashPolicy::Permanent`] semantics: queue and latency
//!   state discarded) at `birth + lifetime`.
//! - **Compaction.** With `compact` enabled the plane periodically calls
//!   [`crate::session::SessionBatch::compact`], physically evicting `Dead`
//!   rows from the SoA arrays so departed sessions cost nothing per slot.
//!   Because the batch exposes a *logical* (id-indexed) view to the uplink
//!   and telemetry — retired ids contribute exactly the `0.0`
//!   backlog/demand/grant a dead row would — a compacted run is **bitwise
//!   equal** to the same run with compaction disabled, whatever slots the
//!   (deterministic, amortized) trigger fires on.
//!
//! The whole join/departure schedule is precomputed from the spec at
//! [`ChurnPlane::new`] time, which makes bit-exact file replay and
//! order/chunk/serial-parallel invariance trivial: stepping order cannot
//! influence the schedule because the schedule exists before stepping
//! begins. `tests/session_churn.rs` is the differential conformance suite
//! pinning all of the above.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::fault::CrashPolicy;
use crate::json::{self, JsonError, JsonValue, Pos};
use crate::scenario::{ControllerSpec, Scenario, SessionSpec};
use crate::session::SessionBatch;
use crate::telemetry::{SummarySink, TelemetrySink};
use crate::uplink::SharedUplink;
use arvis_sim::arrivals::{ArrivalProcess, Mmpp2, PoissonArrivals};
use arvis_sim::rng::{child_seed, seeded};

/// The arrival process driving mid-run session joins, mirroring
/// `arvis_sim::arrivals` (each variant runs on its own seeded RNG stream,
/// decoupled from every session's stream).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChurnArrivalSpec {
    /// Poisson arrivals: `lambda` expected joins per slot.
    Poisson {
        /// Expected joins per slot (finite, ≥ 0).
        lambda: f64,
        /// Seed of the arrival process's dedicated RNG stream.
        seed: u64,
    },
    /// Two-state Markov-modulated Poisson process: bursts of
    /// `lambda_high` joins/slot over a `lambda_low` baseline.
    Mmpp2 {
        /// Joins per slot in the low state (finite, ≥ 0).
        lambda_low: f64,
        /// Joins per slot in the high state (finite, ≥ 0).
        lambda_high: f64,
        /// Per-slot probability of switching low → high (in `[0, 1]`).
        switch_up: f64,
        /// Per-slot probability of switching high → low (in `[0, 1]`).
        switch_down: f64,
        /// Seed of the arrival process's dedicated RNG stream.
        seed: u64,
    },
    /// Replayed join counts, cycled over the horizon like
    /// `arvis_sim::arrivals::TraceArrivals`.
    Trace {
        /// Joins per slot; slot `t` reads `counts[t % len]` (non-empty).
        counts: Vec<u64>,
    },
}

impl ChurnArrivalSpec {
    /// Reports parameter violations through `fail`, prefixed `"arrivals:"`.
    fn try_validate(&self, fail: &mut dyn FnMut(String)) {
        match self {
            ChurnArrivalSpec::Poisson { lambda, .. } => {
                if !(lambda.is_finite() && *lambda >= 0.0) {
                    fail(format!(
                        "arrivals: poisson lambda must be finite and non-negative, got {lambda}"
                    ));
                }
            }
            ChurnArrivalSpec::Mmpp2 {
                lambda_low,
                lambda_high,
                switch_up,
                switch_down,
                ..
            } => {
                for (name, rate) in [("lambda_low", lambda_low), ("lambda_high", lambda_high)] {
                    if !(rate.is_finite() && *rate >= 0.0) {
                        fail(format!(
                            "arrivals: mmpp2 {name} must be finite and non-negative, got {rate}"
                        ));
                    }
                }
                for (name, p) in [("switch_up", switch_up), ("switch_down", switch_down)] {
                    if !(0.0..=1.0).contains(p) {
                        fail(format!("arrivals: mmpp2 {name} must be in [0, 1], got {p}"));
                    }
                }
            }
            ChurnArrivalSpec::Trace { counts } => {
                if counts.is_empty() {
                    fail("arrivals: need at least one traced join count".to_string());
                }
            }
        }
    }
}

/// Per-session lifetime distribution. Every session — initial fleet and
/// joiners alike — draws its lifetime as a pure function of the spec and
/// its stable session id (`child_seed(seed, id)`), so the departure
/// schedule is independent of stepping, chunking, and join interleaving.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LifetimeSpec {
    /// Every session lives exactly `slots` slots.
    Fixed {
        /// Lifetime in slots (≥ 1).
        slots: u64,
    },
    /// Geometric lifetime on `{1, 2, …}` with the given mean (success
    /// probability `1 / mean` per slot).
    Geometric {
        /// Mean lifetime in slots (finite, ≥ 1).
        mean: f64,
        /// Seed of the per-session lifetime draws.
        seed: u64,
    },
    /// Uniform integer lifetime on `[min, max]`.
    Uniform {
        /// Shortest lifetime in slots (≥ 1).
        min: u64,
        /// Longest lifetime in slots (≥ `min`).
        max: u64,
        /// Seed of the per-session lifetime draws.
        seed: u64,
    },
}

impl LifetimeSpec {
    /// Reports parameter violations through `fail`, prefixed `"lifetime:"`.
    fn try_validate(&self, fail: &mut dyn FnMut(String)) {
        match self {
            LifetimeSpec::Fixed { slots } => {
                if *slots == 0 {
                    fail("lifetime: fixed lifetime must be at least 1 slot".to_string());
                }
            }
            LifetimeSpec::Geometric { mean, .. } => {
                if !(mean.is_finite() && *mean >= 1.0) {
                    fail(format!(
                        "lifetime: geometric mean must be finite and at least 1, got {mean}"
                    ));
                }
            }
            LifetimeSpec::Uniform { min, max, .. } => {
                if *min == 0 || min > max {
                    fail(format!(
                        "lifetime: uniform lifetime needs 1 <= min <= max, got [{min}, {max}]"
                    ));
                }
            }
        }
    }

    /// The lifetime (in slots, ≥ 1) of the session with stable id `id` — a
    /// pure function of the spec and the id, independent of draw order.
    pub fn draw(&self, id: u64) -> u64 {
        match self {
            LifetimeSpec::Fixed { slots } => *slots,
            LifetimeSpec::Geometric { mean, seed } => {
                let mut rng = seeded(child_seed(*seed, id));
                let u: f64 = rng.gen();
                let p = 1.0 / *mean;
                if p >= 1.0 {
                    1
                } else {
                    // Inverse-CDF geometric on {1, 2, …}: u ∈ [0, 1) keeps
                    // both logs finite and the tail non-negative.
                    let tail = (1.0 - u).ln() / (1.0 - p).ln();
                    (tail.floor() as u64).saturating_add(1)
                }
            }
            LifetimeSpec::Uniform { min, max, seed } => {
                let mut rng = seeded(child_seed(*seed, id));
                rng.gen_range(*min..=*max)
            }
        }
    }
}

/// Declarative session churn, carried by
/// [`crate::scenario::Scenario::churn`] (`"schema": 3`).
///
/// An empty spec (no arrivals, no lifetime) is bit-identical to no spec at
/// all — the churn plane is simply not attached, mirroring the empty
/// [`crate::fault::FaultPlan`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChurnSpec {
    /// The arrival process driving mid-run joins (`None`: nobody joins).
    pub arrivals: Option<ChurnArrivalSpec>,
    /// The [`SessionSpec`] every joiner clones (with a decorrelated seed);
    /// required with `arrivals`.
    pub template: Option<SessionSpec>,
    /// Hard cap on total joins over the horizon (bounds memory); required
    /// ≥ 1 with `arrivals`, and must stay 0 without them.
    pub max_joins: u64,
    /// Uplink weight of every joined session; required (finite, positive)
    /// when the scenario's uplink policy is weighted, meaningless (and
    /// rejected) otherwise.
    pub weight: Option<f64>,
    /// Per-session lifetime distribution (`None`: nobody departs).
    pub lifetime: Option<LifetimeSpec>,
    /// Physically evict departed sessions from the SoA arrays. Bitwise
    /// invisible in every telemetry, uplink, and CSV output (the
    /// acceptance bar of the differential suite); off, dead rows are
    /// skipped but still walked each slot.
    pub compact: bool,
}

impl ChurnSpec {
    /// An empty spec: no joins, no departures, compaction armed (it has
    /// nothing to do until churn is declared).
    pub fn new() -> ChurnSpec {
        ChurnSpec {
            arrivals: None,
            template: None,
            max_joins: 0,
            weight: None,
            lifetime: None,
            compact: true,
        }
    }

    /// Declares mid-run joins: `arrivals` decides when, `template` decides
    /// what, `max_joins` bounds how many.
    #[must_use]
    pub fn with_arrivals(
        mut self,
        arrivals: ChurnArrivalSpec,
        template: SessionSpec,
        max_joins: u64,
    ) -> ChurnSpec {
        self.arrivals = Some(arrivals);
        self.template = Some(template);
        self.max_joins = max_joins;
        self
    }

    /// Sets the uplink weight of joined sessions (required with a weighted
    /// uplink policy).
    #[must_use]
    pub fn with_weight(mut self, weight: f64) -> ChurnSpec {
        self.weight = Some(weight);
        self
    }

    /// Declares per-session lifetimes (departures).
    #[must_use]
    pub fn with_lifetime(mut self, lifetime: LifetimeSpec) -> ChurnSpec {
        self.lifetime = Some(lifetime);
        self
    }

    /// Enables or disables SoA compaction of departed sessions.
    #[must_use]
    pub fn with_compaction(mut self, compact: bool) -> ChurnSpec {
        self.compact = compact;
        self
    }

    /// `true` when the spec churns nothing at all (no arrivals, no
    /// lifetimes) — the plane is then not attached and the run is bitwise
    /// the pre-churn code path.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_none() && self.lifetime.is_none()
    }

    /// Validates the spec's internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on bad arrival/lifetime parameters, arrivals without a
    /// template or with `max_joins == 0`, a template / `max_joins` /
    /// `weight` without arrivals, a non-positive or non-finite weight, or
    /// a template whose `uplink_v_adapt` lacks a proposed controller.
    pub fn validate(&self) {
        // arvis-lint: allow(panic-free-codecs, "the documented panicking variant; from_json routes the same walk into positioned errors")
        self.try_validate(&mut |msg| panic!("{msg}"))
    }

    /// The shared validation walk: every violation is reported through
    /// `fail`, prefixed with the offending field name (panic for
    /// [`ChurnSpec::validate`], positioned error for
    /// [`ChurnSpec::from_json`]).
    fn try_validate(&self, fail: &mut dyn FnMut(String)) {
        if let Some(arrivals) = &self.arrivals {
            arrivals.try_validate(fail);
            if self.template.is_none() {
                fail("arrivals: churn arrivals require a session template".to_string());
            }
            if self.max_joins == 0 {
                fail("max_joins: churn arrivals require max_joins >= 1".to_string());
            }
        } else {
            if self.template.is_some() {
                fail("template: a churn template requires arrivals".to_string());
            }
            if self.max_joins > 0 {
                fail("max_joins: max_joins without arrivals has no effect; omit it".to_string());
            }
            if self.weight.is_some() {
                fail("weight: a churn weight requires arrivals".to_string());
            }
        }
        if let Some(template) = &self.template {
            let proposed = matches!(template.controller, ControllerSpec::Proposed { v } if v > 0.0);
            if template.uplink_v_adapt.is_some() && !proposed {
                fail(
                    "template: uplink_v_adapt requires a proposed controller with v > 0"
                        .to_string(),
                );
            }
        }
        if let Some(weight) = self.weight {
            if !(weight.is_finite() && weight > 0.0) {
                fail(format!(
                    "weight: churn weight must be finite and positive, got {weight}"
                ));
            }
        }
        if let Some(lifetime) = &self.lifetime {
            lifetime.try_validate(fail);
        }
    }

    /// Encodes the spec for a scenario file: `arrivals`, `template` and
    /// `max_joins` only when joins are declared, `weight` / `lifetime`
    /// only when set, `compact` always.
    ///
    /// # Errors
    ///
    /// Errors on non-finite parameters, an extern-controller template (no
    /// file form), or arrivals without a template.
    pub fn to_json(&self) -> Result<JsonValue, JsonError> {
        let mut members = Vec::new();
        if let Some(arrivals) = &self.arrivals {
            members.push((
                "arrivals",
                match arrivals {
                    ChurnArrivalSpec::Poisson { lambda, seed } => JsonValue::obj(vec![
                        ("type", JsonValue::str("poisson")),
                        ("lambda", json::finite_num("lambda", *lambda)?),
                        ("seed", JsonValue::int(*seed)),
                    ]),
                    ChurnArrivalSpec::Mmpp2 {
                        lambda_low,
                        lambda_high,
                        switch_up,
                        switch_down,
                        seed,
                    } => JsonValue::obj(vec![
                        ("type", JsonValue::str("mmpp2")),
                        ("lambda_low", json::finite_num("lambda_low", *lambda_low)?),
                        (
                            "lambda_high",
                            json::finite_num("lambda_high", *lambda_high)?,
                        ),
                        ("switch_up", json::finite_num("switch_up", *switch_up)?),
                        (
                            "switch_down",
                            json::finite_num("switch_down", *switch_down)?,
                        ),
                        ("seed", JsonValue::int(*seed)),
                    ]),
                    ChurnArrivalSpec::Trace { counts } => JsonValue::obj(vec![
                        ("type", JsonValue::str("trace")),
                        (
                            "counts",
                            JsonValue::arr(counts.iter().map(|&c| JsonValue::int(c)).collect()),
                        ),
                    ]),
                },
            ));
            let template = self.template.as_ref().ok_or_else(|| {
                JsonError::new("churn arrivals require a session template".to_string())
            })?;
            members.push(("template", template.to_json()?));
            members.push(("max_joins", JsonValue::int(self.max_joins)));
        }
        if let Some(weight) = self.weight {
            members.push(("weight", json::finite_num("weight", weight)?));
        }
        if let Some(lifetime) = &self.lifetime {
            members.push((
                "lifetime",
                match lifetime {
                    LifetimeSpec::Fixed { slots } => JsonValue::obj(vec![
                        ("type", JsonValue::str("fixed")),
                        ("slots", JsonValue::int(*slots)),
                    ]),
                    LifetimeSpec::Geometric { mean, seed } => JsonValue::obj(vec![
                        ("type", JsonValue::str("geometric")),
                        ("mean", json::finite_num("mean", *mean)?),
                        ("seed", JsonValue::int(*seed)),
                    ]),
                    LifetimeSpec::Uniform { min, max, seed } => JsonValue::obj(vec![
                        ("type", JsonValue::str("uniform")),
                        ("min", JsonValue::int(*min)),
                        ("max", JsonValue::int(*max)),
                        ("seed", JsonValue::int(*seed)),
                    ]),
                },
            ));
        }
        members.push(("compact", JsonValue::bool(self.compact)));
        Ok(JsonValue::obj(members))
    }

    /// Decodes a spec from its scenario-file form, turning every
    /// [`ChurnSpec::validate`] panic into a positioned error.
    ///
    /// # Errors
    ///
    /// Errors (with the offending position) on unknown or missing keys,
    /// wrong types, unknown `"type"` tags, and every consistency violation
    /// [`ChurnSpec::validate`] checks.
    pub fn from_json(v: &JsonValue) -> Result<ChurnSpec, JsonError> {
        let mut obj = v.as_obj()?;
        let mut positions: Vec<(&str, Pos)> = Vec::new();
        let arrivals = match obj.opt("arrivals") {
            Some(node) => {
                positions.push(("arrivals", node.pos));
                let mut arr = node.as_obj()?;
                let tag = arr.req("type")?;
                let parsed = match tag.as_str()? {
                    "poisson" => ChurnArrivalSpec::Poisson {
                        lambda: arr.req("lambda")?.as_f64()?,
                        seed: arr.req("seed")?.as_u64()?,
                    },
                    "mmpp2" => ChurnArrivalSpec::Mmpp2 {
                        lambda_low: arr.req("lambda_low")?.as_f64()?,
                        lambda_high: arr.req("lambda_high")?.as_f64()?,
                        switch_up: arr.req("switch_up")?.as_f64()?,
                        switch_down: arr.req("switch_down")?.as_f64()?,
                        seed: arr.req("seed")?.as_u64()?,
                    },
                    "trace" => ChurnArrivalSpec::Trace {
                        counts: arr
                            .req("counts")?
                            .as_array()?
                            .iter()
                            .map(JsonValue::as_u64)
                            .collect::<Result<Vec<_>, _>>()?,
                    },
                    other => {
                        return Err(JsonError::at(
                            tag.pos,
                            format!(
                                "unknown churn arrival type \"{other}\" (expected poisson, \
                                 mmpp2, or trace)"
                            ),
                        ))
                    }
                };
                arr.finish()?;
                Some(parsed)
            }
            None => None,
        };
        let template = match obj.opt("template") {
            Some(node) => {
                positions.push(("template", node.pos));
                Some(SessionSpec::from_json(node)?)
            }
            None => None,
        };
        let max_joins = match obj.opt("max_joins") {
            Some(node) => {
                positions.push(("max_joins", node.pos));
                node.as_u64()?
            }
            None => 0,
        };
        let weight = match obj.opt("weight") {
            Some(node) => {
                positions.push(("weight", node.pos));
                Some(node.as_f64()?)
            }
            None => None,
        };
        let lifetime = match obj.opt("lifetime") {
            Some(node) => {
                positions.push(("lifetime", node.pos));
                let mut life = node.as_obj()?;
                let tag = life.req("type")?;
                let parsed = match tag.as_str()? {
                    "fixed" => LifetimeSpec::Fixed {
                        slots: life.req("slots")?.as_u64()?,
                    },
                    "geometric" => LifetimeSpec::Geometric {
                        mean: life.req("mean")?.as_f64()?,
                        seed: life.req("seed")?.as_u64()?,
                    },
                    "uniform" => LifetimeSpec::Uniform {
                        min: life.req("min")?.as_u64()?,
                        max: life.req("max")?.as_u64()?,
                        seed: life.req("seed")?.as_u64()?,
                    },
                    other => {
                        return Err(JsonError::at(
                            tag.pos,
                            format!(
                                "unknown churn lifetime type \"{other}\" (expected fixed, \
                                 geometric, or uniform)"
                            ),
                        ))
                    }
                };
                life.finish()?;
                Some(parsed)
            }
            None => None,
        };
        let compact = obj.req("compact")?.as_bool()?;
        obj.finish()?;
        let spec = ChurnSpec {
            arrivals,
            template,
            max_joins,
            weight,
            lifetime,
            compact,
        };
        // Cross-field validation with the offending member's position: the
        // walk prefixes each message with the field name.
        let mut first: Option<JsonError> = None;
        spec.try_validate(&mut |msg| {
            if first.is_none() {
                let pos = msg
                    .split(':')
                    .next()
                    .and_then(|field| {
                        positions
                            .iter()
                            .find(|(name, _)| *name == field)
                            .map(|(_, pos)| *pos)
                    })
                    .unwrap_or(v.pos);
                first = Some(JsonError::at(pos, msg));
            }
        });
        match first {
            Some(err) => Err(err),
            None => Ok(spec),
        }
    }
}

impl Default for ChurnSpec {
    fn default() -> Self {
        ChurnSpec::new()
    }
}

/// The arrival process's runtime form, sampled sequentially over slots.
#[derive(Debug)]
enum JoinSampler {
    Poisson(PoissonArrivals),
    Mmpp(Mmpp2),
    Trace(Vec<u64>),
}

impl JoinSampler {
    fn build(spec: &ChurnArrivalSpec) -> JoinSampler {
        match spec {
            ChurnArrivalSpec::Poisson { lambda, seed } => {
                JoinSampler::Poisson(PoissonArrivals::new(*lambda, *seed))
            }
            ChurnArrivalSpec::Mmpp2 {
                lambda_low,
                lambda_high,
                switch_up,
                switch_down,
                seed,
            } => JoinSampler::Mmpp(Mmpp2::new(
                *lambda_low,
                *lambda_high,
                *switch_up,
                *switch_down,
                *seed,
            )),
            ChurnArrivalSpec::Trace { counts } => JoinSampler::Trace(counts.clone()),
        }
    }

    /// Joins due at `slot`. Poisson/MMPP counts are integer-valued floats,
    /// so the cast is exact.
    fn count(&mut self, slot: u64) -> u64 {
        match self {
            JoinSampler::Poisson(p) => p.sample(slot) as u64,
            JoinSampler::Mmpp(m) => m.sample(slot) as u64,
            JoinSampler::Trace(counts) => counts[(slot as usize) % counts.len()],
        }
    }
}

/// The churn plane's runtime state: the full join/departure schedule,
/// precomputed from a [`ChurnSpec`] as a pure function of the spec — no
/// stepping-order, chunking, or threading dependence is possible because
/// the schedule exists before the first slot runs.
#[derive(Debug)]
pub struct ChurnPlane {
    /// `(join slot, joiner spec)`, ascending by slot (construction order).
    joins: Vec<(u64, SessionSpec)>,
    join_cursor: usize,
    /// `(death slot, stable session id)`, sorted ascending.
    deaths: Vec<(u64, u64)>,
    death_cursor: usize,
    weight: Option<f64>,
    compact: bool,
    horizon: u64,
    compacted_rows: u64,
}

impl ChurnPlane {
    /// Precomputes the full churn schedule for `scenario`.
    ///
    /// Joins: the arrival process is sampled sequentially over slots
    /// `0..horizon`, and joiner `j` clones the template with seed
    /// `child_seed(template.seed, j)`; sampling stops once `max_joins`
    /// sessions have joined. Departures: session id `i` (initial fleet
    /// `0..n`, then joiners in join order) dies at
    /// `birth(i) + lifetime.draw(i)` when that lands inside the horizon.
    ///
    /// # Panics
    ///
    /// Panics on an invalid spec (see [`ChurnSpec::validate`]).
    pub fn new(spec: &ChurnSpec, scenario: &Scenario) -> ChurnPlane {
        spec.validate();
        let horizon = scenario.slots;
        let n0 = scenario.sessions.len() as u64;
        let mut joins = Vec::new();
        if let (Some(arrivals), Some(template)) = (&spec.arrivals, &spec.template) {
            let mut sampler = JoinSampler::build(arrivals);
            let mut j: u64 = 0;
            'slots: for slot in 0..horizon {
                let due = sampler.count(slot);
                for _ in 0..due {
                    if j >= spec.max_joins {
                        break 'slots;
                    }
                    let mut joiner = template.clone();
                    joiner.seed = child_seed(template.seed, j);
                    joins.push((slot, joiner));
                    j += 1;
                }
            }
        }
        let mut deaths = Vec::new();
        if let Some(lifetime) = &spec.lifetime {
            let total = n0 + joins.len() as u64;
            for id in 0..total {
                let birth = if id < n0 {
                    0
                } else {
                    joins[(id - n0) as usize].0
                };
                let death = birth.saturating_add(lifetime.draw(id));
                if death < horizon {
                    deaths.push((death, id));
                }
            }
            deaths.sort_unstable();
        }
        ChurnPlane {
            joins,
            join_cursor: 0,
            deaths,
            death_cursor: 0,
            weight: spec.weight,
            compact: spec.compact,
            horizon,
            compacted_rows: 0,
        }
    }

    /// Applies the slot's churn to `batch` (departures first, then joins,
    /// then amortized compaction) — call once per slot, *before*
    /// [`SharedUplink::step_slot`]. Joined sessions get a sink from
    /// `make_sink(spec, residual_horizon)` and their weight is registered
    /// with the uplink so weighted policies and the degradation guard's
    /// groups follow the fleet.
    pub fn step<S, F>(
        &mut self,
        batch: &mut SessionBatch<S>,
        uplink: &mut SharedUplink,
        make_sink: &mut F,
    ) where
        S: TelemetrySink + Send,
        F: FnMut(&SessionSpec, u64) -> S,
    {
        let slot = batch.slot();
        while self
            .deaths
            .get(self.death_cursor)
            .is_some_and(|&(at, _)| at <= slot)
        {
            let (_, id) = self.deaths[self.death_cursor];
            self.death_cursor += 1;
            batch.crash_session(id as usize, CrashPolicy::Permanent, 0);
        }
        while self
            .joins
            .get(self.join_cursor)
            .is_some_and(|&(at, _)| at <= slot)
        {
            let (_, spec) = &self.joins[self.join_cursor];
            let sink = make_sink(spec, self.horizon - slot);
            batch.spawn_at(spec, sink);
            uplink.register_join(self.weight);
            self.join_cursor += 1;
        }
        // Deterministic amortized trigger. The *timing* cannot matter —
        // the batch's logical view makes compaction bitwise invisible —
        // so the trigger only trades walk cost against copy cost.
        if self.compact {
            let dead = batch.dead_rows();
            if dead >= 64 || dead * 4 >= batch.len().max(1) {
                self.compacted_rows += batch.compact() as u64;
            }
        }
    }

    /// [`ChurnPlane::step`] specialized to summary-only batches — joiners
    /// get a [`SummarySink`] over the residual horizon, exactly like a
    /// fresh fixed-N session of that length (the `run_contended` path).
    pub fn step_summary(
        &mut self,
        batch: &mut SessionBatch<SummarySink>,
        uplink: &mut SharedUplink,
    ) {
        self.step(batch, uplink, &mut |spec, residual| {
            SummarySink::new(spec.warmup, residual)
        })
    }

    /// The precomputed join schedule: `(join slot, joiner spec)` ascending.
    pub fn join_schedule(&self) -> &[(u64, SessionSpec)] {
        &self.joins
    }

    /// The precomputed departure schedule: `(death slot, session id)`
    /// ascending.
    pub fn departure_schedule(&self) -> &[(u64, u64)] {
        &self.deaths
    }

    /// Rows physically evicted by compaction so far.
    pub fn compacted_rows(&self) -> u64 {
        self.compacted_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;
    use arvis_quality::DepthProfile;

    fn template() -> SessionSpec {
        let profile = DepthProfile::from_parts(5, vec![100.0, 400.0], vec![0.0, 1.0]);
        let base = ExperimentConfig::new(profile, 500.0, 64);
        SessionSpec::from_config(&base, ControllerSpec::Proposed { v: 1e6 })
    }

    fn scenario(slots: u64, sessions: usize) -> Scenario {
        let mut s = Scenario::new(slots);
        for _ in 0..sessions {
            s.sessions.push(template());
        }
        s
    }

    #[test]
    fn empty_spec_is_empty_and_valid() {
        let spec = ChurnSpec::new();
        assert!(spec.is_empty());
        spec.validate();
        let plane = ChurnPlane::new(&spec, &scenario(100, 2));
        assert!(plane.join_schedule().is_empty());
        assert!(plane.departure_schedule().is_empty());
    }

    #[test]
    fn join_schedule_is_deterministic_and_capped() {
        let spec = ChurnSpec::new().with_arrivals(
            ChurnArrivalSpec::Poisson {
                lambda: 0.5,
                seed: 9,
            },
            template(),
            5,
        );
        let sc = scenario(200, 2);
        let a = ChurnPlane::new(&spec, &sc);
        let b = ChurnPlane::new(&spec, &sc);
        assert!(a.join_schedule().len() <= 5);
        assert_eq!(
            a.join_schedule()
                .iter()
                .map(|(slot, s)| (*slot, s.seed))
                .collect::<Vec<_>>(),
            b.join_schedule()
                .iter()
                .map(|(slot, s)| (*slot, s.seed))
                .collect::<Vec<_>>(),
        );
        // Joiner seeds are decorrelated children of the template seed.
        for (j, (_, joiner)) in a.join_schedule().iter().enumerate() {
            assert_eq!(joiner.seed, child_seed(template().seed, j as u64));
        }
    }

    #[test]
    fn trace_arrivals_cycle_and_respect_the_cap() {
        let spec = ChurnSpec::new().with_arrivals(
            ChurnArrivalSpec::Trace {
                counts: vec![1, 0, 0, 0],
            },
            template(),
            100,
        );
        let plane = ChurnPlane::new(&spec, &scenario(12, 1));
        let slots: Vec<u64> = plane.join_schedule().iter().map(|(s, _)| *s).collect();
        assert_eq!(slots, vec![0, 4, 8], "one join per 4-slot cycle");
    }

    #[test]
    fn lifetime_draws_are_pure_functions_of_the_id() {
        let life = LifetimeSpec::Geometric {
            mean: 40.0,
            seed: 3,
        };
        for id in 0..50u64 {
            let a = life.draw(id);
            assert!(a >= 1);
            assert_eq!(a, life.draw(id), "id {id} draw must be reproducible");
        }
        let fixed = LifetimeSpec::Fixed { slots: 7 };
        assert_eq!(fixed.draw(0), 7);
        let uniform = LifetimeSpec::Uniform {
            min: 3,
            max: 9,
            seed: 11,
        };
        for id in 0..50u64 {
            let d = uniform.draw(id);
            assert!((3..=9).contains(&d));
        }
    }

    #[test]
    fn departures_cover_initial_fleet_and_joiners() {
        let spec = ChurnSpec::new()
            .with_arrivals(ChurnArrivalSpec::Trace { counts: vec![1] }, template(), 4)
            .with_lifetime(LifetimeSpec::Fixed { slots: 10 });
        let plane = ChurnPlane::new(&spec, &scenario(100, 3));
        assert_eq!(plane.join_schedule().len(), 4);
        // Initial ids 0..3 die at 10; joiners (slots 0..4) die 10 after.
        let mut expected: Vec<(u64, u64)> = (0..3u64).map(|id| (10, id)).collect();
        for (j, (slot, _)) in plane.join_schedule().iter().enumerate() {
            expected.push((slot + 10, 3 + j as u64));
        }
        expected.sort_unstable();
        assert_eq!(plane.departure_schedule(), &expected[..]);
    }

    #[test]
    #[should_panic(expected = "max_joins")]
    fn arrivals_without_max_joins_panic() {
        ChurnSpec::new()
            .with_arrivals(
                ChurnArrivalSpec::Poisson {
                    lambda: 1.0,
                    seed: 0,
                },
                template(),
                0,
            )
            .validate();
    }

    #[test]
    #[should_panic(expected = "weight: a churn weight requires arrivals")]
    fn weight_without_arrivals_panics() {
        ChurnSpec::new().with_weight(2.0).validate();
    }

    #[test]
    fn codec_round_trips_and_positions_errors() {
        let spec = ChurnSpec::new()
            .with_arrivals(
                ChurnArrivalSpec::Mmpp2 {
                    lambda_low: 0.01,
                    lambda_high: 0.5,
                    switch_up: 0.05,
                    switch_down: 0.2,
                    seed: 42,
                },
                template(),
                8,
            )
            .with_weight(1.5)
            .with_lifetime(LifetimeSpec::Uniform {
                min: 20,
                max: 200,
                seed: 5,
            });
        let tree = spec.to_json().unwrap();
        let text = tree.to_pretty();
        let back = ChurnSpec::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.to_json().unwrap().to_pretty(), text, "canonical");
        assert_eq!(back.max_joins, 8);
        assert_eq!(back.weight, Some(1.5));

        // A bad cross-field combination decodes to a positioned error.
        let bad = "{\"max_joins\": 3, \"compact\": true}";
        let err = ChurnSpec::from_json(&crate::json::parse(bad).unwrap()).unwrap_err();
        assert!(err.msg.contains("max_joins"), "{}", err.msg);
        assert!(err.pos.is_some());
    }
}
