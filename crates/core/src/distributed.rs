//! Multi-device distributed operation.
//!
//! §II of the paper: "our solution can be computed in a distributed manner,
//! because it works with closed-form equation computation with no side
//! information." This module demonstrates it: `M` devices, each with its own
//! queue, stream and scheduler, run concurrently with **zero shared state**;
//! per-device stability and quality match the single-device runs.
//!
//! Since the session-runtime redesign the fleet is a thin layer over
//! [`Scenario::fleet`] + [`SessionBatch`]: device state lives in the
//! batch's parallel arrays and every slot fans out over `arvis_par`
//! workers. The "no side information" claim survives mechanically — the
//! per-session stepping kernel touches only that session's arrays, and
//! batch results are bit-identical at every worker count.

use crate::experiment::{ExperimentConfig, ExperimentResult, ServiceSpec};
use crate::scenario::Scenario;
use crate::session::SessionBatch;
use crate::telemetry::CsvRow;

/// Heterogeneity of a device fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSpec {
    /// Number of devices.
    pub devices: usize,
    /// Relative spread of per-device service rates around the base config's
    /// rate: device `i` gets `rate × (1 − spread/2 + spread·i/(M−1))`.
    pub rate_spread: f64,
}

impl FleetSpec {
    /// A homogeneous fleet.
    pub fn homogeneous(devices: usize) -> Self {
        FleetSpec {
            devices,
            rate_spread: 0.0,
        }
    }

    /// A heterogeneous fleet with the given relative rate spread (e.g. `0.5`
    /// spans ±25% around the nominal rate).
    ///
    /// # Panics
    ///
    /// Panics when `spread` is not in `[0, 2)`.
    pub fn heterogeneous(devices: usize, spread: f64) -> Self {
        assert!((0.0..2.0).contains(&spread), "spread must be in [0, 2)");
        FleetSpec {
            devices,
            rate_spread: spread,
        }
    }
}

/// The outcome of one device's independent run.
#[derive(Debug, Clone)]
pub struct DeviceOutcome {
    /// Device index within the fleet.
    pub device: usize,
    /// The service rate this device ran at.
    pub service_rate: f64,
    /// The full experiment result.
    pub result: ExperimentResult,
}

/// Runs `fleet.devices` independent copies of the experiment concurrently
/// through a [`SessionBatch`], with decorrelated seeds and (optionally)
/// heterogeneous service rates. No scheduler state is shared: each session
/// owns its controller and queue inside the batch arrays.
///
/// # Panics
///
/// Panics when `fleet.devices == 0` or the base config does not use a
/// constant-rate service (heterogeneity is defined on constant rates).
pub fn run_fleet(base: &ExperimentConfig, fleet: FleetSpec) -> Vec<DeviceOutcome> {
    let scenario = Scenario::fleet(base, fleet);
    let rates: Vec<f64> = scenario
        .sessions
        .iter()
        .map(|s| match s.service {
            ServiceSpec::Constant(r) => r,
            _ => unreachable!("Scenario::fleet emits constant-rate sessions"),
        })
        .collect();
    // Chunk size 1: a fleet is few sessions with long runs, so the fan-out
    // unit is one device — the per-device concurrency the thread-per-device
    // implementation had (results are chunk-invariant either way).
    let mut batch = SessionBatch::full_trace(&scenario).with_chunk_size(1);
    batch.run();
    batch
        .into_results()
        .into_iter()
        .zip(rates)
        .enumerate()
        .map(|(device, (result, service_rate))| DeviceOutcome {
            device,
            service_rate,
            result,
        })
        .collect()
}

/// Fleet-level summary CSV: one row per device.
pub fn fleet_csv(outcomes: &[DeviceOutcome]) -> String {
    let mut out = CsvRow::new()
        .field("device")
        .field("service_rate")
        .field("mean_quality")
        .field("mean_backlog")
        .field("stable")
        .finish();
    out.push('\n');
    for o in outcomes {
        out.push_str(
            &CsvRow::new()
                .field(o.device)
                .fixed(o.service_rate, 1)
                .fixed(o.result.mean_quality, 6)
                .fixed(o.result.mean_backlog, 3)
                .field(o.result.stable)
                .finish(),
        );
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ProposedDpp;
    use crate::experiment::Experiment;
    use arvis_quality::DepthProfile;
    use arvis_sim::rng::child_seed;

    fn base() -> ExperimentConfig {
        let profile = DepthProfile::from_parts(
            5,
            vec![100.0, 400.0, 1600.0, 6400.0, 25600.0, 102400.0],
            vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
        );
        ExperimentConfig::new(profile, 2_000.0, 600).with_controller_v(1e7)
    }

    #[test]
    fn homogeneous_fleet_is_uniform_and_stable() {
        let outcomes = run_fleet(&base(), FleetSpec::homogeneous(4));
        assert_eq!(outcomes.len(), 4);
        for o in &outcomes {
            assert!(o.result.stable, "device {} unstable", o.device);
            assert_eq!(o.service_rate, 2_000.0);
        }
        // Same deterministic setup -> identical qualities.
        let q0 = outcomes[0].result.mean_quality;
        for o in &outcomes {
            assert!((o.result.mean_quality - q0).abs() < 1e-12);
        }
    }

    #[test]
    fn heterogeneous_fleet_faster_devices_get_more_quality() {
        let outcomes = run_fleet(&base(), FleetSpec::heterogeneous(5, 1.0));
        assert_eq!(outcomes.len(), 5);
        for w in outcomes.windows(2) {
            assert!(w[0].service_rate < w[1].service_rate);
        }
        // Quality-vs-rate is non-monotone pointwise (the controller
        // time-shares a coarse discrete depth set), but the ordering must
        // hold between the extremes of a 1.0 spread.
        assert!(
            outcomes.last().unwrap().result.mean_quality
                > outcomes.first().unwrap().result.mean_quality
        );
        // Every device independently stable — the distributed claim.
        assert!(outcomes.iter().all(|o| o.result.stable));
    }

    #[test]
    fn fleet_matches_single_device_run() {
        let base = base();
        let solo = Experiment::new(base.clone().with_seed(child_seed(0xF1EE7, 0)))
            .run(&mut ProposedDpp::new(base.controller_v));
        let fleet = run_fleet(&base, FleetSpec::homogeneous(3));
        assert_eq!(fleet[0].result.backlog, solo.backlog);
    }

    #[test]
    fn fleet_csv_shape() {
        let outcomes = run_fleet(&base(), FleetSpec::homogeneous(2));
        let csv = fleet_csv(&outcomes);
        assert!(csv.starts_with("device,"));
        assert_eq!(csv.trim().lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_fleet_rejected() {
        let _ = run_fleet(&base(), FleetSpec::homogeneous(0));
    }

    #[test]
    #[should_panic(expected = "spread")]
    fn bad_spread_rejected() {
        let _ = FleetSpec::heterogeneous(3, 2.5);
    }
}
