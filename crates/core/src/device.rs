//! Mobile-device rendering capacity models.
//!
//! The paper's motivation is "intensive time-consuming computations for AR
//! visualization in mobile devices". This module calibrates the abstract
//! service process in points-per-slot for representative device classes; the
//! figures' shapes only require that the capacity sit strictly between the
//! min-depth and max-depth arrival rates, which all presets satisfy for the
//! default synthetic bodies.

use arvis_sim::service::{ConstantRate, DutyCycledRate, JitteredRate, ServiceProcess};
use serde::{Deserialize, Serialize};

/// A device class with a nominal rendering throughput.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable device-class name.
    pub name: &'static str,
    /// Nominal points rendered per time slot.
    pub points_per_slot: f64,
    /// Relative frame-time jitter (σ of the multiplicative noise).
    pub jitter_sigma: f64,
}

impl DeviceProfile {
    /// A budget phone: low throughput, high thermal jitter.
    pub const BUDGET_PHONE: DeviceProfile = DeviceProfile {
        name: "budget_phone",
        points_per_slot: 20_000.0,
        jitter_sigma: 0.25,
    };

    /// A flagship phone.
    pub const FLAGSHIP_PHONE: DeviceProfile = DeviceProfile {
        name: "flagship_phone",
        points_per_slot: 60_000.0,
        jitter_sigma: 0.15,
    };

    /// A tethered AR headset with active cooling.
    pub const HEADSET: DeviceProfile = DeviceProfile {
        name: "headset",
        points_per_slot: 150_000.0,
        jitter_sigma: 0.08,
    };

    /// All presets, slowest first.
    pub const ALL: [DeviceProfile; 3] = [
        DeviceProfile::BUDGET_PHONE,
        DeviceProfile::FLAGSHIP_PHONE,
        DeviceProfile::HEADSET,
    ];

    /// A custom profile.
    ///
    /// # Panics
    ///
    /// Panics when `points_per_slot < 0` or `jitter_sigma < 0`.
    pub fn custom(points_per_slot: f64, jitter_sigma: f64) -> DeviceProfile {
        assert!(points_per_slot >= 0.0, "throughput must be >= 0");
        assert!(jitter_sigma >= 0.0, "jitter must be >= 0");
        DeviceProfile {
            name: "custom",
            points_per_slot,
            jitter_sigma,
        }
    }

    /// An ideal (deterministic) service process at the nominal rate.
    pub fn ideal_service(&self) -> ConstantRate {
        ConstantRate::new(self.points_per_slot)
    }

    /// A jittered service process reflecting frame-time variance.
    pub fn jittered_service(&self, seed: u64) -> JitteredRate {
        JitteredRate::new(self.points_per_slot, self.jitter_sigma, seed)
    }

    /// A thermally throttled service: full rate for `high_slots`, then
    /// `throttle_factor × rate` for `low_slots`, repeating.
    ///
    /// # Panics
    ///
    /// Panics when `throttle_factor ∉ [0, 1]` or the cycle is empty.
    pub fn throttled_service(
        &self,
        throttle_factor: f64,
        high_slots: u64,
        low_slots: u64,
    ) -> DutyCycledRate {
        assert!(
            (0.0..=1.0).contains(&throttle_factor),
            "throttle factor must be in [0, 1]"
        );
        DutyCycledRate::new(
            self.points_per_slot,
            self.points_per_slot * throttle_factor,
            high_slots,
            low_slots,
        )
    }
}

/// Boxes the right service process for a device given a robustness scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ServiceScenario {
    /// Deterministic nominal rate.
    #[default]
    Ideal,
    /// Frame-time jitter.
    Jittered,
    /// Periodic thermal throttling to 40% for 100 of every 400 slots.
    Throttled,
}

impl ServiceScenario {
    /// Builds the service process for `device` under this scenario.
    pub fn build(self, device: &DeviceProfile, seed: u64) -> Box<dyn ServiceProcess + Send> {
        match self {
            ServiceScenario::Ideal => Box::new(device.ideal_service()),
            ServiceScenario::Jittered => Box::new(device.jittered_service(seed)),
            ServiceScenario::Throttled => Box::new(device.throttled_service(0.4, 300, 100)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_throughput() {
        let all = DeviceProfile::ALL;
        for w in all.windows(2) {
            assert!(w[0].points_per_slot < w[1].points_per_slot);
        }
    }

    #[test]
    fn ideal_service_is_nominal() {
        let mut s = DeviceProfile::HEADSET.ideal_service();
        assert_eq!(s.capacity(0), 150_000.0);
    }

    #[test]
    fn jittered_service_varies_around_nominal() {
        let d = DeviceProfile::FLAGSHIP_PHONE;
        let mut s = d.jittered_service(3);
        let samples: Vec<f64> = (0..5_000).map(|i| s.capacity(i)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - d.points_per_slot).abs() / d.points_per_slot < 0.05);
        assert!(samples.iter().any(|&c| c != d.points_per_slot));
    }

    #[test]
    fn throttled_service_cycles() {
        let d = DeviceProfile::BUDGET_PHONE;
        let mut s = d.throttled_service(0.5, 2, 2);
        assert_eq!(s.capacity(0), 20_000.0);
        assert_eq!(s.capacity(2), 10_000.0);
        assert_eq!(s.capacity(4), 20_000.0);
    }

    #[test]
    fn scenario_builder_produces_working_processes() {
        let d = DeviceProfile::FLAGSHIP_PHONE;
        for scenario in [
            ServiceScenario::Ideal,
            ServiceScenario::Jittered,
            ServiceScenario::Throttled,
        ] {
            let mut s = scenario.build(&d, 1);
            assert!(s.capacity(0) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "throttle factor")]
    fn bad_throttle_rejected() {
        let _ = DeviceProfile::HEADSET.throttled_service(1.5, 1, 1);
    }

    #[test]
    fn custom_profile() {
        let d = DeviceProfile::custom(1234.0, 0.0);
        assert_eq!(d.points_per_slot, 1234.0);
        assert_eq!(d.name, "custom");
    }
}
