//! The closed-loop slotted experiment reproducing the paper's evaluation.
//!
//! Per slot τ: observe `Q(τ)` → the controller picks `d(τ)` → the workload
//! `a(d(τ))` of the current frame enters the queue → the device serves up to
//! its capacity → record backlog, chosen depth and quality. Figs. 2(a) and
//! 2(b) of the paper are exactly the `backlog` and `depth` series of three
//! runs (proposed / only-max / only-min) over 800 slots.
//!
//! Since the session-runtime redesign this module is a thin compatibility
//! layer: [`Experiment::run`] drives one [`crate::session::Session`] to
//! completion under a [`crate::telemetry::FullTrace`] sink and produces
//! numbers bit-identical to the original closed loop. New code that steps
//! incrementally or batches many devices should use
//! [`crate::scenario::Scenario`] and [`crate::session::SessionBatch`]
//! directly.

use arvis_sim::service::{ConstantRate, DutyCycledRate, JitteredRate, ServiceProcess};
use arvis_sim::stats::{SummaryStats, TimeSeries};
use serde::{Deserialize, Serialize};

use crate::controller::{DepthController, ProposedDpp};
use crate::json::{self, JsonError, JsonValue};
use crate::scenario::{ControllerSpec, SessionSpec};
use crate::session::Session;
use crate::stream::ArStream;
use crate::telemetry::{CsvRow, FullTrace};
use arvis_quality::DepthProfile;

/// Cloneable specification of a service process (built per run so repeated
/// and parallel runs stay independent and reproducible).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServiceSpec {
    /// Deterministic rate (points/slot).
    Constant(f64),
    /// Rate with multiplicative Gaussian jitter.
    Jittered {
        /// Nominal rate.
        rate: f64,
        /// Relative σ of the jitter.
        sigma: f64,
    },
    /// Periodic throttling.
    DutyCycled {
        /// Unthrottled rate.
        high: f64,
        /// Throttled rate.
        low: f64,
        /// Slots at `high` per cycle.
        high_slots: u64,
        /// Slots at `low` per cycle.
        low_slots: u64,
    },
}

impl ServiceSpec {
    /// Builds the service process (seeded for the stochastic variants).
    pub fn build(&self, seed: u64) -> Box<dyn ServiceProcess + Send> {
        match *self {
            ServiceSpec::Constant(rate) => Box::new(ConstantRate::new(rate)),
            ServiceSpec::Jittered { rate, sigma } => Box::new(JitteredRate::new(rate, sigma, seed)),
            ServiceSpec::DutyCycled {
                high,
                low,
                high_slots,
                low_slots,
            } => Box::new(DutyCycledRate::new(high, low, high_slots, low_slots)),
        }
    }

    /// The long-run mean service rate.
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ServiceSpec::Constant(rate) => rate,
            ServiceSpec::Jittered { rate, .. } => rate,
            ServiceSpec::DutyCycled {
                high,
                low,
                high_slots,
                low_slots,
            } => {
                (high * high_slots as f64 + low * low_slots as f64)
                    / (high_slots + low_slots) as f64
            }
        }
    }

    /// Encodes the spec for a scenario file (see [`crate::json`]): a
    /// `"type"`-tagged object (`constant` / `jittered` / `duty_cycled`).
    ///
    /// # Errors
    ///
    /// Errors when a rate or sigma is non-finite (the service
    /// constructors reject those values too, so nothing non-finite has a
    /// file form).
    pub fn to_json(&self) -> Result<JsonValue, JsonError> {
        Ok(match *self {
            ServiceSpec::Constant(rate) => JsonValue::obj(vec![
                ("type", JsonValue::str("constant")),
                ("rate", json::finite_num("rate", rate)?),
            ]),
            ServiceSpec::Jittered { rate, sigma } => JsonValue::obj(vec![
                ("type", JsonValue::str("jittered")),
                ("rate", json::finite_num("rate", rate)?),
                ("sigma", json::finite_num("sigma", sigma)?),
            ]),
            ServiceSpec::DutyCycled {
                high,
                low,
                high_slots,
                low_slots,
            } => JsonValue::obj(vec![
                ("type", JsonValue::str("duty_cycled")),
                ("high", json::finite_num("high", high)?),
                ("low", json::finite_num("low", low)?),
                ("high_slots", JsonValue::int(high_slots)),
                ("low_slots", JsonValue::int(low_slots)),
            ]),
        })
    }

    /// Decodes a spec from its scenario-file form, enforcing the service
    /// constructors' invariants (finite non-negative rates and sigma, a
    /// non-empty duty cycle) as errors instead of panics.
    ///
    /// # Errors
    ///
    /// Errors (with the offending position) on unknown `"type"` tags,
    /// unknown or missing keys, wrong types, and invalid parameters.
    pub fn from_json(v: &JsonValue) -> Result<ServiceSpec, JsonError> {
        let rate_field = |obj: &mut crate::json::ObjReader<'_>, key: &str| {
            let node = obj.req(key)?;
            let rate = node.as_f64()?;
            if rate < 0.0 {
                return Err(JsonError::at(
                    node.pos,
                    format!("{key} must be >= 0, got {rate}"),
                ));
            }
            Ok(rate)
        };
        let mut obj = v.as_obj()?;
        let tag = obj.req("type")?;
        let spec = match tag.as_str()? {
            "constant" => ServiceSpec::Constant(rate_field(&mut obj, "rate")?),
            "jittered" => ServiceSpec::Jittered {
                rate: rate_field(&mut obj, "rate")?,
                sigma: rate_field(&mut obj, "sigma")?,
            },
            "duty_cycled" => {
                let high = rate_field(&mut obj, "high")?;
                let low = rate_field(&mut obj, "low")?;
                let high_slots = obj.req("high_slots")?.as_u64()?;
                let low_node = obj.req("low_slots")?;
                let low_slots = low_node.as_u64()?;
                // checked_add: two u64::MAX-ish slot counts must error,
                // not overflow (the service constructor sums them too).
                match high_slots.checked_add(low_slots) {
                    Some(0) => return Err(JsonError::at(low_node.pos, "cycle must be non-empty")),
                    None => {
                        return Err(JsonError::at(
                            low_node.pos,
                            "high_slots + low_slots overflows u64",
                        ))
                    }
                    Some(_) => {}
                }
                ServiceSpec::DutyCycled {
                    high,
                    low,
                    high_slots,
                    low_slots,
                }
            }
            other => {
                return Err(JsonError::at(
                    tag.pos,
                    format!(
                        "unknown service type \"{other}\" \
                         (expected constant, jittered, or duty_cycled)"
                    ),
                ))
            }
        };
        obj.finish()?;
        Ok(spec)
    }
}

/// Configuration of one closed-loop run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// The frame source.
    pub stream: ArStream,
    /// The device's service model.
    pub service: ServiceSpec,
    /// Number of slots to simulate (the paper uses 800).
    pub slots: u64,
    /// RNG seed for stochastic components.
    pub seed: u64,
    /// Optional finite queue capacity (drops beyond it are counted).
    pub queue_capacity: Option<f64>,
    /// Slots excluded from time-average metrics (transient warm-up).
    pub warmup: u64,
    /// Trade-off coefficient used by [`Experiment::run_proposed`].
    pub controller_v: f64,
}

impl ExperimentConfig {
    /// A stationary-stream experiment over `slots` slots with a constant
    /// service of `service_rate` points/slot.
    pub fn new(profile: DepthProfile, service_rate: f64, slots: u64) -> Self {
        ExperimentConfig {
            stream: ArStream::constant(profile),
            service: ServiceSpec::Constant(service_rate),
            slots,
            seed: 0,
            queue_capacity: None,
            warmup: slots / 4,
            controller_v: 1e6,
        }
    }

    /// Replaces the stream.
    #[must_use]
    pub fn with_stream(mut self, stream: ArStream) -> Self {
        self.stream = stream;
        self
    }

    /// Replaces the service specification.
    #[must_use]
    pub fn with_service(mut self, service: ServiceSpec) -> Self {
        self.service = service;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets a finite queue capacity.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: f64) -> Self {
        self.queue_capacity = Some(capacity);
        self
    }

    /// Sets the warm-up slot count for time-average metrics.
    #[must_use]
    pub fn with_warmup(mut self, warmup: u64) -> Self {
        self.warmup = warmup;
        self
    }

    /// Sets the `V` used by [`Experiment::run_proposed`].
    #[must_use]
    pub fn with_controller_v(mut self, v: f64) -> Self {
        self.controller_v = v;
        self
    }
}

/// Per-run output: full time series plus derived metrics.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Name of the controller that produced the run.
    pub controller: String,
    /// `Q(τ)` after each slot — Fig. 2(a)'s y-axis.
    pub backlog: TimeSeries,
    /// Chosen depth per slot — Fig. 2(b)'s y-axis.
    pub depth: TimeSeries,
    /// Quality `p_a(d(τ))` per slot.
    pub quality: TimeSeries,
    /// Injected arrivals `a(d(τ))` per slot.
    pub arrivals: TimeSeries,
    /// Offered service capacity per slot.
    pub service: TimeSeries,
    /// Total work dropped by a finite queue (0 for infinite).
    pub dropped_total: f64,
    /// Time-average quality after warm-up — the paper's objective (Eq. 1).
    pub mean_quality: f64,
    /// Time-average backlog after warm-up — the constraint proxy (Eq. 2).
    pub mean_backlog: f64,
    /// Distribution of the post-warm-up backlog (exact nearest-rank
    /// percentiles). The Lyapunov bound is about tails, not means: a run
    /// with a benign `mean_backlog` can still hide p99 excursions an order
    /// of magnitude above it.
    pub backlog_tail: SummaryStats,
    /// Little's-law delay estimate in slots.
    pub littles_delay: Option<f64>,
    /// Exact per-frame FIFO sojourn times (slots), over frames completed
    /// within the horizon — the per-frame view of the paper's delay
    /// constraint.
    pub frame_latency: SummaryStats,
    /// Fraction of slots whose chosen depth differs from the previous
    /// slot's — the *flicker* rate. Depth oscillation is the perceptual
    /// price of DPP time-sharing; 0 for the fixed baselines.
    pub depth_switch_rate: f64,
    /// Stability verdict of the backlog tail.
    pub stable: bool,
}

impl ExperimentResult {
    /// All series as CSV (slot-indexed columns).
    pub fn to_csv(&self) -> String {
        crate::telemetry::series_csv(&[
            &self.backlog,
            &self.depth,
            &self.quality,
            &self.arrivals,
            &self.service,
        ])
    }

    /// One summary line: `controller,mean_quality,mean_backlog,stable,...`,
    /// including the p95/p99 backlog and delay tails.
    pub fn summary_csv_row(&self) -> String {
        CsvRow::new()
            .field(&self.controller)
            .fixed(self.mean_quality, 6)
            .fixed(self.mean_backlog, 3)
            .field(self.stable)
            .fixed(self.littles_delay.unwrap_or(f64::NAN), 3)
            .fixed(self.frame_latency.mean, 3)
            .fixed(self.frame_latency.p95, 3)
            .fixed(self.dropped_total, 1)
            .fixed(self.backlog_tail.p95, 3)
            .fixed(self.backlog_tail.p99, 3)
            .fixed(self.frame_latency.p99, 3)
            .finish()
    }

    /// Header matching [`ExperimentResult::summary_csv_row`].
    pub fn summary_csv_header() -> &'static str {
        "controller,mean_quality,mean_backlog,stable,littles_delay,frame_latency_mean,\
         frame_latency_p95,dropped_total,backlog_p95,backlog_p99,frame_latency_p99"
    }
}

/// The closed-loop runner.
#[derive(Debug, Clone)]
pub struct Experiment {
    config: ExperimentConfig,
}

impl Experiment {
    /// Creates a runner for the given configuration.
    pub fn new(config: ExperimentConfig) -> Self {
        Experiment { config }
    }

    /// Borrows the configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Runs the closed loop with the given controller.
    ///
    /// This is now a compatibility shim over the incremental session
    /// runtime: it drives a [`Session`] with the caller's controller (the
    /// open-trait path) under a full-trace sink. The per-slot sequence —
    /// observe, decide, inject, serve, account — is the shared
    /// `session::step_kernel`, so the numbers are bit-identical to the
    /// pre-redesign loop.
    pub fn run(&self, controller: &mut dyn DepthController) -> ExperimentResult {
        let cfg = &self.config;
        // The spec's own controller is inert here (step_with bypasses it);
        // OnlyMin is the cheapest placeholder to build.
        let spec = SessionSpec::from_config(cfg, ControllerSpec::OnlyMin);
        let mut session = Session::new(spec, cfg.slots);
        let mut trace = FullTrace::new();
        while !session.is_done() {
            session.step_with(controller, &mut trace);
        }
        trace.into_result(controller.name(), cfg.warmup, session.queue())
    }

    /// Convenience: runs the proposed scheduler with the configured `V`.
    pub fn run_proposed(&self) -> ExperimentResult {
        self.run(&mut ProposedDpp::new(self.config.controller_v))
    }
}

/// Calibrates `V` so the proposed scheduler's backlog knee (the slot where it
/// first abandons the maximum depth) lands near `knee_slots`, assuming a
/// stationary profile and constant service.
///
/// Derivation: while `Q` is small the maximizer is `d_max`; under the
/// Lindley recursion the backlog after slot `t` is
/// `Q(t) = a_max + (t−1)·δ = t·δ + b` with `δ = a(d_max) − b` (the first
/// slot's arrival enters before any service has drained). Depth `d`
/// overtakes `d_max` once `Q > V·(p_max − p(d)) / (a_max − a(d))`; the
/// binding depth is the one minimizing that ratio, so the first switch
/// happens at `t* ≈ (V·ρ_min − b) / δ` with
/// `ρ_min = min_d (p_max−p(d))/(a_max−a(d))`. Inverting gives
/// `V = (t*·δ + b) / ρ_min`. (Without the `+ b` offset the knee lands
/// `b/δ` slots early, a large error whenever the service rate dwarfs the
/// per-slot drift, as in the Fig. 2 setup.)
///
/// Returns `None` when the service rate already covers the max-depth
/// arrival (no knee: max depth is sustainable forever).
pub fn v_for_knee(profile: &DepthProfile, service_rate: f64, knee_slots: f64) -> Option<f64> {
    let d_max = profile.max_depth();
    let (a_max, p_max) = (profile.arrival(d_max), profile.quality(d_max));
    let delta = a_max - service_rate;
    if delta <= 0.0 || knee_slots <= 0.0 {
        return None;
    }
    let rho_min = profile
        .depths()
        .filter(|&d| d != d_max)
        .map(|d| (p_max - profile.quality(d)) / (a_max - profile.arrival(d)))
        .fold(f64::INFINITY, f64::min);
    if !rho_min.is_finite() || rho_min <= 0.0 {
        return None;
    }
    Some((knee_slots * delta + service_rate) / rho_min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{MaxDepth, MinDepth};

    fn profile() -> DepthProfile {
        DepthProfile::from_parts(
            5,
            vec![100.0, 400.0, 1600.0, 6400.0, 25600.0, 102400.0],
            vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
        )
    }

    fn config(rate: f64, slots: u64) -> ExperimentConfig {
        ExperimentConfig::new(profile(), rate, slots)
    }

    #[test]
    fn max_depth_diverges_when_undersized() {
        // Service 2000 < a(10)=102400: linear divergence, Fig. 2(a) red curve.
        let r = Experiment::new(config(2_000.0, 800)).run(&mut MaxDepth);
        assert!(!r.stable, "max-depth must diverge");
        let final_q = *r.backlog.values().last().unwrap();
        // Drift ≈ 100400/slot.
        assert!(final_q > 7e7, "final backlog {final_q}");
        assert!(r.mean_quality == 1.0);
    }

    #[test]
    fn min_depth_converges_to_zero() {
        let r = Experiment::new(config(2_000.0, 800)).run(&mut MinDepth);
        assert!(r.stable);
        // Arrivals 100 < service 2000: backlog ends each slot at exactly a(5).
        assert!(*r.backlog.values().last().unwrap() <= 100.0 + 1e-9);
        assert_eq!(r.mean_quality, 0.0);
    }

    #[test]
    fn proposed_is_stable_with_intermediate_quality() {
        let cfg = config(2_000.0, 2_000).with_controller_v(1e7);
        let r = Experiment::new(cfg).run_proposed();
        assert!(r.stable, "proposed must stabilize");
        assert!(
            r.mean_quality > 0.05 && r.mean_quality < 1.0,
            "quality {} must be strictly between baselines",
            r.mean_quality
        );
        assert_eq!(r.controller, "proposed");
    }

    #[test]
    fn proposed_beats_threshold_ordering() {
        // Time-average quality: min-depth ≤ proposed ≤ max-depth.
        let q = |r: &ExperimentResult| r.mean_quality;
        let min_r = Experiment::new(config(2_000.0, 800)).run(&mut MinDepth);
        let max_r = Experiment::new(config(2_000.0, 800)).run(&mut MaxDepth);
        let prop = Experiment::new(config(2_000.0, 800).with_controller_v(1e7)).run_proposed();
        assert!(q(&min_r) <= q(&prop));
        assert!(q(&prop) <= q(&max_r));
    }

    #[test]
    fn series_lengths_match_slots() {
        let r = Experiment::new(config(2_000.0, 123)).run(&mut MaxDepth);
        for s in [&r.backlog, &r.depth, &r.quality, &r.arrivals, &r.service] {
            assert_eq!(s.len(), 123);
        }
    }

    #[test]
    fn runs_are_reproducible() {
        let cfg = config(2_000.0, 300)
            .with_service(ServiceSpec::Jittered {
                rate: 2_000.0,
                sigma: 0.2,
            })
            .with_seed(42);
        let a = Experiment::new(cfg.clone()).run_proposed();
        let b = Experiment::new(cfg).run_proposed();
        assert_eq!(a.backlog, b.backlog);
        assert_eq!(a.depth, b.depth);
    }

    #[test]
    fn different_seeds_differ_under_jitter() {
        let base = config(2_000.0, 300).with_service(ServiceSpec::Jittered {
            rate: 2_000.0,
            sigma: 0.2,
        });
        let a = Experiment::new(base.clone().with_seed(1)).run_proposed();
        let b = Experiment::new(base.with_seed(2)).run_proposed();
        assert_ne!(a.backlog, b.backlog);
    }

    #[test]
    fn finite_queue_drops_under_overload() {
        let cfg = config(2_000.0, 400).with_queue_capacity(50_000.0);
        let r = Experiment::new(cfg).run(&mut MaxDepth);
        assert!(r.dropped_total > 0.0, "overloaded finite queue must drop");
        assert!(r.backlog.summary().max <= 50_000.0 + 1e-9);
    }

    #[test]
    fn v_zero_behaves_like_min_depth() {
        let cfg = config(2_000.0, 400).with_controller_v(0.0);
        let r = Experiment::new(cfg).run_proposed();
        // With V=0, once backlog > 0 the controller minimizes arrivals.
        let depths = r.depth.values();
        assert!(depths.iter().skip(1).all(|&d| d == 5.0));
    }

    #[test]
    fn service_spec_mean_rates() {
        assert_eq!(ServiceSpec::Constant(5.0).mean_rate(), 5.0);
        assert_eq!(
            ServiceSpec::Jittered {
                rate: 5.0,
                sigma: 0.1
            }
            .mean_rate(),
            5.0
        );
        let duty = ServiceSpec::DutyCycled {
            high: 10.0,
            low: 0.0,
            high_slots: 1,
            low_slots: 1,
        };
        assert_eq!(duty.mean_rate(), 5.0);
    }

    #[test]
    fn knee_calibration_places_the_knee() {
        let p = profile();
        let rate = 2_000.0;
        for target in [200.0f64, 400.0] {
            let v = v_for_knee(&p, rate, target).unwrap();
            let cfg = ExperimentConfig::new(p.clone(), rate, 1_600).with_controller_v(v);
            let r = Experiment::new(cfg).run_proposed();
            // Find the first slot where the depth leaves the maximum.
            let knee = r
                .depth
                .values()
                .iter()
                .position(|&d| d < 10.0)
                .expect("depth must eventually drop") as f64;
            assert!(
                (knee - target).abs() / target < 0.25,
                "target {target}, measured knee {knee}"
            );
        }
    }

    #[test]
    fn knee_calibration_refuses_sustainable_rates() {
        let p = profile();
        assert!(v_for_knee(&p, 200_000.0, 400.0).is_none());
        assert!(v_for_knee(&p, 2_000.0, -1.0).is_none());
    }

    #[test]
    fn csv_outputs() {
        let r = Experiment::new(config(2_000.0, 10)).run(&mut MaxDepth);
        let csv = r.to_csv();
        assert!(csv.starts_with("slot,queue_backlog,control_action_depth"));
        assert_eq!(csv.trim().lines().count(), 11);
        let row = r.summary_csv_row();
        assert!(row.starts_with("only_max_depth,"));
        assert_eq!(
            row.split(',').count(),
            ExperimentResult::summary_csv_header().split(',').count()
        );
    }

    #[test]
    fn depth_switch_rate_of_baselines_is_zero() {
        let r = Experiment::new(config(2_000.0, 400)).run(&mut MaxDepth);
        assert_eq!(r.depth_switch_rate, 0.0);
        let r = Experiment::new(config(2_000.0, 400)).run(&mut MinDepth);
        assert_eq!(r.depth_switch_rate, 0.0);
    }

    #[test]
    fn proposed_flickers_only_after_the_knee() {
        // Pre-knee the proposed scheduler holds max depth; oscillation is
        // confined to the time-sharing phase, so the switch rate is well
        // below 1 but positive.
        let cfg = config(2_000.0, 2_000).with_controller_v(1e7);
        let r = Experiment::new(cfg).run_proposed();
        assert!(r.depth_switch_rate > 0.0, "time-sharing must switch depths");
        assert!(
            r.depth_switch_rate < 0.9,
            "switch rate {} suspiciously high",
            r.depth_switch_rate
        );
    }
}
