//! The shared-uplink contention plane: M sessions, one backhaul.
//!
//! The paper models a single device whose renderer is the bottleneck; at
//! fleet scale the binding resource is usually the *shared* link the
//! sessions stream over. This module couples the sessions of a
//! [`Scenario`] through per-slot aggregate admission control:
//!
//! 1. **Poll** — every session's nominal service capacity for the slot is
//!    drawn ([`SessionBatch::fill_demands`]), together with its live
//!    backlog ([`SessionBatch::fill_backlogs`]);
//! 2. **Admit** — an [`UplinkPolicy`] grants each session an effective
//!    capacity, never above its demand, with the grand total never above
//!    the [`UplinkSpec::budget`];
//! 3. **Complete** — the slot finishes through
//!    [`SessionBatch::step_slot_granted`] with the granted capacities, and
//!    the slot's aggregates feed the uplink telemetry.
//!
//! Coupling sessions threatens the batch runtime's determinism contract,
//! so every policy is written to be **order-invariant bit-for-bit**:
//! aggregate sums are computed over value-sorted copies (permutation
//! invariant), and [`UplinkPolicy::MaxWeightBacklog`] water-fills over
//! descending-backlog *groups* (ties share pro rata) instead of picking
//! an arbitrary order within a tie. `tests/shared_uplink.rs` pins the
//! resulting invariants: per-slot conservation under a binding budget,
//! session-order / chunk-size / serial-vs-parallel invariance for every
//! policy, and [`UplinkPolicy::Unconstrained`] ≡ the uncoupled batch.
//!
//! ## Example: one declarative file describes the contended fleet
//!
//! ```
//! use arvis_core::experiment::ExperimentConfig;
//! use arvis_core::scenario::{ControllerSpec, Scenario};
//! use arvis_core::uplink::{run_contended, UplinkPolicy, UplinkSpec};
//! use arvis_quality::DepthProfile;
//!
//! let profile = DepthProfile::from_parts(
//!     5,
//!     vec![100.0, 400.0, 1600.0, 6400.0, 25600.0, 102400.0],
//!     vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
//! );
//! let base = ExperimentConfig::new(profile, 2_000.0, 400).with_controller_v(1e7);
//!
//! // 8 tenants sharing a backhaul that covers 70% of their aggregate
//! // demand, served largest-queue-first.
//! let scenario = Scenario::replicated(&base, ControllerSpec::Proposed { v: 1e7 }, 8)
//!     .with_uplink(UplinkSpec::new(0.7 * 8.0 * 2_000.0, UplinkPolicy::MaxWeightBacklog));
//!
//! let run = run_contended(&scenario);
//! assert_eq!(run.summaries.len(), 8);
//! assert_eq!(run.uplink.contended_slots, 400, "budget binds every slot");
//! assert!(run.uplink.utilization() > 0.999, "scarce budget fully spent");
//! ```

use serde::{Deserialize, Serialize};

use crate::scenario::Scenario;
use crate::session::SessionBatch;
use crate::telemetry::{CsvRow, SessionSummary, TelemetrySink};

/// Sums `values` in ascending value order (scratch holds the sorted copy),
/// so the total is bit-identical under any permutation of `values` —
/// the primitive every aggregate in this module is built on.
fn invariant_sum(values: impl Iterator<Item = f64>, scratch: &mut Vec<f64>) -> f64 {
    scratch.clear();
    scratch.extend(values);
    scratch.sort_unstable_by(|a, b| a.total_cmp(b));
    scratch.iter().sum()
}

/// How a shared uplink divides its per-slot budget among contending
/// sessions.
///
/// Every policy grants each session at most its demand, grants at most the
/// budget in total, and — whenever aggregate demand fits the budget —
/// grants every demand in full (work conservation). They differ only in
/// how scarcity is split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UplinkPolicy {
    /// No admission control: every demand is granted verbatim, the budget
    /// is ignored. Bit-identical to running the batch uncoupled.
    Unconstrained,
    /// Scarcity is split pro rata to demand: `g_i = d_i · B / Σd` while
    /// `Σd > B`. Backlog-blind — an idle tenant's reserved share is
    /// wasted while a loaded tenant diverges.
    ProportionalShare,
    /// The Lyapunov-natural policy: budget water-fills sessions in
    /// descending backlog order (largest queues first), equal-backlog
    /// groups sharing pro rata to demand. This is max-weight scheduling
    /// with weight `Q_i(τ)`, the drift-minimizing choice.
    MaxWeightBacklog,
}

impl UplinkPolicy {
    /// Machine-readable policy name (CSV column value).
    pub fn name(&self) -> &'static str {
        match self {
            UplinkPolicy::Unconstrained => "unconstrained",
            UplinkPolicy::ProportionalShare => "proportional_share",
            UplinkPolicy::MaxWeightBacklog => "max_weight_backlog",
        }
    }

    /// Computes per-session grants for one slot into `grants` (resized to
    /// match), given every session's live backlog and polled demand.
    ///
    /// Deterministic and order-invariant: permuting the sessions permutes
    /// the grants bit-for-bit. Each grant is in `[0, demand_i]`; the
    /// granted total never exceeds `budget` beyond f64 rounding (each
    /// scarce slot performs one global scale or one scale per backlog
    /// group, so the accumulated error is a few ulps).
    ///
    /// # Panics
    ///
    /// Panics when `backlogs` and `demands` disagree in length, or when
    /// `budget` is NaN or negative (`f64::INFINITY` is allowed and never
    /// binds).
    pub fn allocate(&self, budget: f64, backlogs: &[f64], demands: &[f64], grants: &mut Vec<f64>) {
        let mut scratch = Vec::with_capacity(demands.len());
        let total = invariant_sum(demands.iter().copied(), &mut scratch);
        self.allocate_with(
            budget,
            backlogs,
            demands,
            total,
            grants,
            &mut scratch,
            &mut Vec::new(),
        );
    }

    /// [`UplinkPolicy::allocate`] with caller-owned scratch buffers and
    /// the (permutation-invariant) aggregate demand `total` already
    /// computed — the allocation-free per-slot path of [`SharedUplink`].
    #[allow(clippy::too_many_arguments)]
    fn allocate_with(
        &self,
        budget: f64,
        backlogs: &[f64],
        demands: &[f64],
        total: f64,
        grants: &mut Vec<f64>,
        scratch: &mut Vec<f64>,
        order: &mut Vec<usize>,
    ) {
        assert_eq!(
            backlogs.len(),
            demands.len(),
            "backlogs and demands must be parallel arrays"
        );
        assert!(!budget.is_nan() && budget >= 0.0, "bad budget {budget}");
        grants.clear();
        grants.extend_from_slice(demands);
        if matches!(self, UplinkPolicy::Unconstrained) {
            return;
        }
        if total <= budget {
            return; // slack: every demand granted in full, bit-for-bit
        }
        match self {
            UplinkPolicy::Unconstrained => unreachable!(),
            UplinkPolicy::ProportionalShare => {
                // total > budget ≥ 0 ⟹ total > 0: the scale is finite.
                let scale = budget / total;
                for g in grants.iter_mut() {
                    *g *= scale;
                }
            }
            UplinkPolicy::MaxWeightBacklog => {
                // Sessions in descending backlog order; equal backlogs
                // form one group so ties are symmetric (order-invariant).
                order.clear();
                order.extend(0..backlogs.len());
                order.sort_unstable_by(|&i, &j| backlogs[j].total_cmp(&backlogs[i]));
                let mut remaining = budget;
                let mut at = 0;
                while at < order.len() {
                    let group_backlog = backlogs[order[at]];
                    let mut end = at;
                    while end < order.len()
                        && backlogs[order[end]].total_cmp(&group_backlog).is_eq()
                    {
                        end += 1;
                    }
                    let group = &order[at..end];
                    let group_total = invariant_sum(group.iter().map(|&i| demands[i]), scratch);
                    if group_total <= remaining {
                        // Whole group served at full demand (grants
                        // already hold the demands).
                        remaining -= group_total;
                    } else {
                        // The budget runs dry inside this group: split
                        // what is left pro rata to demand, and starve
                        // every strictly-smaller backlog group.
                        // group_total > remaining ≥ 0 ⟹ group_total > 0.
                        let scale = remaining / group_total;
                        for &i in group {
                            grants[i] *= scale;
                        }
                        for &i in &order[end..] {
                            grants[i] = 0.0;
                        }
                        return;
                    }
                    at = end;
                }
            }
        }
    }
}

/// Declarative description of a shared uplink: one backhaul budget
/// (service units per slot, the same units as [`crate::experiment::ServiceSpec`]
/// rates) and the policy dividing it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UplinkSpec {
    /// Aggregate service the backhaul can carry per slot.
    pub budget: f64,
    /// How scarcity is divided.
    pub policy: UplinkPolicy,
}

impl UplinkSpec {
    /// A shared uplink with the given per-slot budget and policy.
    ///
    /// # Panics
    ///
    /// Panics when `budget` is NaN or negative (`f64::INFINITY` is a
    /// valid never-binding budget).
    pub fn new(budget: f64, policy: UplinkPolicy) -> UplinkSpec {
        assert!(!budget.is_nan() && budget >= 0.0, "bad budget {budget}");
        UplinkSpec { budget, policy }
    }

    /// The no-op uplink: infinite budget, [`UplinkPolicy::Unconstrained`].
    pub fn unconstrained() -> UplinkSpec {
        UplinkSpec {
            budget: f64::INFINITY,
            policy: UplinkPolicy::Unconstrained,
        }
    }
}

/// One slot's aggregate uplink observations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UplinkSlotStats {
    /// The simulated slot.
    pub slot: u64,
    /// Aggregate demand `Σ d_i(τ)` polled from the sessions.
    pub demand: f64,
    /// Aggregate service granted by the policy.
    pub granted: f64,
    /// Aggregate backlog `Σ Q_i(τ)` observed at the start of the slot.
    pub backlog: f64,
    /// `true` when the budget bound (aggregate demand exceeded it).
    pub contended: bool,
}

/// Streaming aggregate summary of a contended run (O(1) memory).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UplinkSummary {
    /// Slots driven through the uplink.
    pub slots: u64,
    /// The per-slot budget.
    pub budget: f64,
    /// Slots whose aggregate demand exceeded the budget.
    pub contended_slots: u64,
    /// Time-average aggregate demand.
    pub mean_demand: f64,
    /// Time-average aggregate granted service.
    pub mean_granted: f64,
    /// Time-average aggregate backlog.
    pub mean_backlog: f64,
    /// Largest aggregate backlog observed.
    pub peak_backlog: f64,
}

impl UplinkSummary {
    /// Fraction of slots whose demand exceeded the budget.
    pub fn contended_fraction(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.contended_slots as f64 / self.slots as f64
        }
    }

    /// Mean granted service as a fraction of the budget (0 for an
    /// infinite or zero-slot budget).
    pub fn utilization(&self) -> f64 {
        if self.budget.is_finite() && self.budget > 0.0 {
            self.mean_granted / self.budget
        } else {
            0.0
        }
    }
}

/// The contention-plane driver: owns the uplink spec, the per-slot scratch
/// vectors and the streaming aggregate accumulators, and steps a
/// [`SessionBatch`] slot by slot through poll → admit → complete.
///
/// The driver is deliberately separate from the batch: the same
/// `SharedUplink` can drive batches with any [`TelemetrySink`], and a
/// batch driven with [`UplinkSpec::unconstrained`] is bit-identical to
/// [`SessionBatch::run`].
#[derive(Debug)]
pub struct SharedUplink {
    spec: UplinkSpec,
    backlogs: Vec<f64>,
    demands: Vec<f64>,
    grants: Vec<f64>,
    scratch: Vec<f64>,
    order: Vec<usize>,
    slots: u64,
    contended_slots: u64,
    demand_sum: f64,
    granted_sum: f64,
    backlog_sum: f64,
    peak_backlog: f64,
}

impl SharedUplink {
    /// A driver for the given uplink spec.
    pub fn new(spec: UplinkSpec) -> SharedUplink {
        SharedUplink {
            spec,
            backlogs: Vec::new(),
            demands: Vec::new(),
            grants: Vec::new(),
            scratch: Vec::new(),
            order: Vec::new(),
            slots: 0,
            contended_slots: 0,
            demand_sum: 0.0,
            granted_sum: 0.0,
            backlog_sum: 0.0,
            peak_backlog: 0.0,
        }
    }

    /// The uplink spec this driver enforces.
    pub fn spec(&self) -> &UplinkSpec {
        &self.spec
    }

    /// The grants of the most recent slot (batch order; empty before the
    /// first step).
    pub fn last_grants(&self) -> &[f64] {
        &self.grants
    }

    /// Advances the batch one slot through the contention plane and
    /// returns the slot's aggregate stats.
    ///
    /// All aggregates are permutation-invariant sums, so the returned
    /// stats — like the per-session results — are bit-identical under
    /// session reordering.
    pub fn step_slot<S: TelemetrySink + Send>(
        &mut self,
        batch: &mut SessionBatch<S>,
    ) -> UplinkSlotStats {
        let slot = batch.slot();
        batch.fill_backlogs(&mut self.backlogs);
        batch.fill_demands(&mut self.demands);
        let demand = invariant_sum(self.demands.iter().copied(), &mut self.scratch);
        self.spec.policy.allocate_with(
            self.spec.budget,
            &self.backlogs,
            &self.demands,
            demand,
            &mut self.grants,
            &mut self.scratch,
            &mut self.order,
        );
        batch.step_slot_granted(&self.grants);

        let granted = invariant_sum(self.grants.iter().copied(), &mut self.scratch);
        let backlog = invariant_sum(self.backlogs.iter().copied(), &mut self.scratch);
        let contended = demand > self.spec.budget;
        self.slots += 1;
        self.contended_slots += u64::from(contended);
        self.demand_sum += demand;
        self.granted_sum += granted;
        self.backlog_sum += backlog;
        self.peak_backlog = self.peak_backlog.max(backlog);
        UplinkSlotStats {
            slot,
            demand,
            granted,
            backlog,
            contended,
        }
    }

    /// Drives the batch to its horizon.
    pub fn run<S: TelemetrySink + Send>(&mut self, batch: &mut SessionBatch<S>) {
        while !batch.is_done() {
            self.step_slot(batch);
        }
    }

    /// Finalizes the streaming aggregates.
    pub fn summary(&self) -> UplinkSummary {
        let mean = |sum: f64| {
            if self.slots == 0 {
                0.0
            } else {
                sum / self.slots as f64
            }
        };
        UplinkSummary {
            slots: self.slots,
            budget: self.spec.budget,
            contended_slots: self.contended_slots,
            mean_demand: mean(self.demand_sum),
            mean_granted: mean(self.granted_sum),
            mean_backlog: mean(self.backlog_sum),
            peak_backlog: self.peak_backlog,
        }
    }
}

/// A finished contended run: per-session summaries plus the uplink
/// aggregates.
#[derive(Debug, Clone)]
pub struct ContendedRun {
    /// The policy that ran.
    pub policy: UplinkPolicy,
    /// Per-session streaming summaries (batch order).
    pub summaries: Vec<SessionSummary>,
    /// The uplink's aggregate summary.
    pub uplink: UplinkSummary,
}

impl ContendedRun {
    /// Header matching [`ContendedRun::to_csv`]: the per-session summary
    /// columns plus the run's aggregate uplink columns (repeated per row
    /// so each row is self-describing).
    pub fn csv_header() -> String {
        format!(
            "{},policy,uplink_budget,uplink_contended_frac,uplink_utilization,\
             uplink_mean_backlog,uplink_peak_backlog",
            SessionSummary::csv_header()
        )
    }

    /// One row per session: the session summary followed by the aggregate
    /// uplink columns.
    pub fn to_csv(&self) -> String {
        let mut out = ContendedRun::csv_header();
        out.push('\n');
        // The aggregate columns are run-level constants.
        let aggregate = CsvRow::new()
            .field(self.policy.name())
            .fixed(self.uplink.budget, 1)
            .fixed(self.uplink.contended_fraction(), 4)
            .fixed(self.uplink.utilization(), 4)
            .fixed(self.uplink.mean_backlog, 1)
            .fixed(self.uplink.peak_backlog, 1)
            .finish();
        for (i, s) in self.summaries.iter().enumerate() {
            out.push_str(&s.csv_row(i));
            out.push(',');
            out.push_str(&aggregate);
            out.push('\n');
        }
        out
    }
}

/// Runs a scenario through the contention plane with summary-only sinks:
/// the scenario's own [`Scenario::uplink`] spec, or
/// [`UplinkSpec::unconstrained`] when it declares none.
pub fn run_contended(scenario: &Scenario) -> ContendedRun {
    let spec = scenario.uplink.unwrap_or_else(UplinkSpec::unconstrained);
    let mut batch = SessionBatch::summary_only(scenario);
    let mut uplink = SharedUplink::new(spec);
    uplink.run(&mut batch);
    ContendedRun {
        policy: spec.policy,
        summaries: batch.into_summaries(),
        uplink: uplink.summary(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;
    use crate::scenario::ControllerSpec;
    use arvis_quality::DepthProfile;

    fn profile() -> DepthProfile {
        DepthProfile::from_parts(
            5,
            vec![100.0, 400.0, 1600.0, 6400.0, 25600.0, 102400.0],
            vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
        )
    }

    #[test]
    fn slack_budget_grants_every_demand_verbatim() {
        for policy in [
            UplinkPolicy::Unconstrained,
            UplinkPolicy::ProportionalShare,
            UplinkPolicy::MaxWeightBacklog,
        ] {
            let demands = [100.0, 250.0, 0.0, 3.5];
            let backlogs = [10.0, 0.0, 99.0, 10.0];
            let mut grants = Vec::new();
            policy.allocate(1_000.0, &backlogs, &demands, &mut grants);
            assert_eq!(grants, demands.to_vec(), "{}", policy.name());
        }
    }

    #[test]
    fn proportional_share_scales_pro_rata() {
        let demands = [300.0, 100.0];
        let mut grants = Vec::new();
        UplinkPolicy::ProportionalShare.allocate(200.0, &[0.0, 0.0], &demands, &mut grants);
        assert!((grants[0] - 150.0).abs() < 1e-9);
        assert!((grants[1] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn max_weight_serves_largest_queues_first() {
        let demands = [100.0, 100.0, 100.0];
        let backlogs = [5.0, 500.0, 50.0];
        let mut grants = Vec::new();
        UplinkPolicy::MaxWeightBacklog.allocate(150.0, &backlogs, &demands, &mut grants);
        // Deepest queue (index 1) gets its full demand, the next (index 2)
        // the remainder, the shallowest nothing.
        assert_eq!(grants[1], 100.0);
        assert!((grants[2] - 50.0).abs() < 1e-9);
        assert_eq!(grants[0], 0.0);
    }

    #[test]
    fn max_weight_splits_ties_pro_rata() {
        let demands = [60.0, 180.0];
        let backlogs = [70.0, 70.0];
        let mut grants = Vec::new();
        UplinkPolicy::MaxWeightBacklog.allocate(120.0, &backlogs, &demands, &mut grants);
        // One group of equal backlogs: 120 split 1:3.
        assert!((grants[0] - 30.0).abs() < 1e-9);
        assert!((grants[1] - 90.0).abs() < 1e-9);
    }

    #[test]
    fn zero_demand_under_zero_budget_is_fine() {
        let mut grants = Vec::new();
        for policy in [
            UplinkPolicy::ProportionalShare,
            UplinkPolicy::MaxWeightBacklog,
        ] {
            policy.allocate(0.0, &[1.0, 2.0], &[0.0, 0.0], &mut grants);
            assert_eq!(grants, vec![0.0, 0.0]);
            policy.allocate(0.0, &[1.0, 2.0], &[5.0, 0.0], &mut grants);
            assert_eq!(grants, vec![0.0, 0.0], "{}", policy.name());
        }
    }

    #[test]
    fn driver_reports_contention_and_conserves_budget() {
        let cfg = ExperimentConfig::new(profile(), 3_000.0, 50);
        let scenario = Scenario::replicated(&cfg, ControllerSpec::OnlyMax, 4)
            .with_uplink(UplinkSpec::new(5_000.0, UplinkPolicy::ProportionalShare));
        let mut batch = crate::session::SessionBatch::summary_only(&scenario);
        let mut uplink = SharedUplink::new(scenario.uplink.unwrap());
        let mut saw_contended = false;
        while !batch.is_done() {
            let stats = uplink.step_slot(&mut batch);
            // Demand is 4 × 3000 = 12000 > 5000 every slot.
            assert!(stats.granted <= 5_000.0 * (1.0 + 1e-12));
            saw_contended |= stats.contended;
        }
        assert!(saw_contended);
        let summary = uplink.summary();
        assert_eq!(summary.slots, 50);
        assert_eq!(summary.contended_slots, 50);
        assert!(summary.utilization() > 0.999 && summary.utilization() < 1.001);
        assert!((summary.mean_demand - 12_000.0).abs() < 1e-6);
    }

    #[test]
    fn run_contended_without_uplink_is_unconstrained() {
        let cfg = ExperimentConfig::new(profile(), 2_000.0, 80);
        let scenario = Scenario::replicated(&cfg, ControllerSpec::Proposed { v: 1e7 }, 3);
        let run = run_contended(&scenario);
        assert_eq!(run.policy, UplinkPolicy::Unconstrained);
        assert_eq!(run.summaries.len(), 3);
        assert_eq!(run.uplink.slots, 80);
        assert_eq!(run.uplink.contended_slots, 0);
        assert_eq!(run.uplink.utilization(), 0.0, "infinite budget");
        let csv = run.to_csv();
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.lines().nth(1).unwrap().contains("unconstrained"));
        assert_eq!(
            csv.lines().next().unwrap().split(',').count(),
            csv.lines().nth(1).unwrap().split(',').count()
        );
    }

    #[test]
    #[should_panic(expected = "bad budget")]
    fn spec_rejects_negative_budget() {
        let _ = UplinkSpec::new(-1.0, UplinkPolicy::ProportionalShare);
    }
}
