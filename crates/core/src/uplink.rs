//! The shared-uplink contention plane: M sessions, one backhaul.
//!
//! The paper models a single device whose renderer is the bottleneck; at
//! fleet scale the binding resource is usually the *shared* link the
//! sessions stream over. This module couples the sessions of a
//! [`Scenario`] through per-slot aggregate admission control:
//!
//! 1. **Poll** — every session's nominal service capacity for the slot is
//!    drawn ([`SessionBatch::fill_demands`]), together with its live
//!    backlog ([`SessionBatch::fill_backlogs`]);
//! 2. **Admit** — an [`UplinkPolicy`] grants each session an effective
//!    capacity, never above its demand, with the grand total never above
//!    the slot's budget ([`BudgetProfile::budget_at`]);
//! 3. **Complete** — the slot finishes through
//!    [`SessionBatch::step_slot_granted`] with the granted capacities, and
//!    the slot's aggregates feed the uplink telemetry.
//!
//! ## Time-varying budgets
//!
//! The backhaul budget is a [`BudgetProfile`] evaluated per slot:
//! [`BudgetProfile::Constant`] (the PR-3 behavior),
//! [`BudgetProfile::Diurnal`] (a sinusoid around a mean — the
//! day/night backhaul cycle), [`BudgetProfile::PiecewiseSteps`]
//! (scheduled capacity changes) and [`BudgetProfile::Trace`] (a measured
//! per-slot budget series). [`UplinkSummary::utilization`] accordingly
//! normalizes by the *realized mean* budget, not a single constant.
//!
//! ## Policies
//!
//! - [`UplinkPolicy::Unconstrained`] — no admission control;
//! - [`UplinkPolicy::ProportionalShare`] — scarcity pro rata to demand
//!   (backlog-blind);
//! - [`UplinkPolicy::MaxWeightBacklog`] — largest queues first, the
//!   Lyapunov drift-minimizing choice;
//! - [`UplinkPolicy::WeightedMaxWeight`] — max-weight on `w_i · Q_i`,
//!   expressing per-tenant priority classes; uniform weights reproduce
//!   `MaxWeightBacklog` bit-for-bit;
//! - [`UplinkPolicy::AlphaFair`] — the demand-weighted α-fair family:
//!   `α = 1` is proportional fairness (pro rata to demand), `α → ∞` is
//!   max-min fairness (deterministic water-filling to a common level).
//!
//! Coupling sessions threatens the batch runtime's determinism contract,
//! so every policy is written to be **order-invariant bit-for-bit**:
//! aggregate sums are computed over value-sorted copies (permutation
//! invariant), max-weight water-fills over descending-priority *groups*
//! (ties share pro rata) instead of picking an arbitrary order within a
//! tie, and α-fair derives its water level from permutation-invariant
//! sums with pointwise capping. `tests/shared_uplink.rs` and
//! `tests/uplink_adaptive.rs` pin the resulting invariants: per-slot
//! conservation under a binding budget, session-order / chunk-size /
//! serial-vs-parallel invariance for every policy, and
//! [`UplinkPolicy::Unconstrained`] ≡ the uncoupled batch.
//!
//! ## Uplink-aware `V` adaptation
//!
//! A tenant that keeps its Lyapunov `V` fixed while the link starves it
//! parks its backlog at the fixed-`V` plateau. [`UplinkVAdaptSpec`]
//! (surfaced as `SessionSpec::uplink_v_adapt`) closes the loop: each
//! contended slot the session observes its grant/demand ratio and feeds an
//! [`arvis_lyapunov::adaptive::GrantRatioV`] — a bounded multiplicative
//! update with a hysteresis band — so saturation shrinks `V` (shedding
//! quality and arrivals) and slack restores it. The adaptation only acts
//! through the contention plane's granted stepping; uncoupled runs never
//! touch it.
//!
//! ## Example: one declarative file describes the contended fleet
//!
//! ```
//! use arvis_core::experiment::ExperimentConfig;
//! use arvis_core::scenario::{ControllerSpec, Scenario};
//! use arvis_core::uplink::{run_contended, BudgetProfile, UplinkPolicy, UplinkSpec};
//! use arvis_quality::DepthProfile;
//!
//! let profile = DepthProfile::from_parts(
//!     5,
//!     vec![100.0, 400.0, 1600.0, 6400.0, 25600.0, 102400.0],
//!     vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
//! );
//! let base = ExperimentConfig::new(profile, 2_000.0, 400).with_controller_v(1e7);
//!
//! // 8 tenants sharing a diurnal backhaul averaging 70% of their
//! // aggregate demand, served largest-queue-first.
//! let scenario = Scenario::replicated(&base, ControllerSpec::Proposed { v: 1e7 }, 8)
//!     .with_uplink(UplinkSpec::with_profile(
//!         BudgetProfile::Diurnal {
//!             mean: 0.7 * 8.0 * 2_000.0,
//!             amplitude: 0.2 * 8.0 * 2_000.0,
//!             period: 100,
//!             phase: 0.0,
//!         },
//!         UplinkPolicy::MaxWeightBacklog,
//!     ));
//!
//! let run = run_contended(&scenario);
//! assert_eq!(run.summaries.len(), 8);
//! assert!(run.uplink.contended_slots > 0, "budget binds below the mean");
//! assert!(run.uplink.utilization() > 0.9, "scarce budget mostly spent");
//! ```

use serde::{Deserialize, Serialize};

use arvis_lyapunov::adaptive::GrantRatioV;

use crate::json::{self, JsonError, JsonValue};
use crate::scenario::Scenario;
use crate::session::SessionBatch;
use crate::telemetry::{CsvRow, SessionSummary, TelemetrySink};

/// Sums `values` in ascending value order (scratch holds the sorted copy),
/// so the total is bit-identical under any permutation of `values` —
/// the primitive every aggregate in this module is built on. Shared with
/// the fault plane (`crate::fault`), whose lost-grant aggregate keeps the
/// same contract.
pub(crate) fn invariant_sum(values: impl Iterator<Item = f64>, scratch: &mut Vec<f64>) -> f64 {
    scratch.clear();
    scratch.extend(values);
    scratch.sort_unstable_by(|a, b| a.total_cmp(b));
    scratch.iter().sum()
}

/// A per-slot backhaul budget, evaluated as a pure function of the slot
/// index — deterministic by construction, so time-varying budgets keep the
/// batch runtime's bit-reproducibility.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BudgetProfile {
    /// The same budget every slot (`f64::INFINITY` = never binds).
    Constant(f64),
    /// A sinusoidal day/night cycle:
    /// `mean + amplitude · sin(2π · (slot / period + phase))`.
    Diurnal {
        /// Time-average budget.
        mean: f64,
        /// Swing around the mean (`amplitude <= mean` keeps the budget
        /// non-negative).
        amplitude: f64,
        /// Cycle length in slots.
        period: u64,
        /// Phase offset in cycles (`0.25` starts at the peak).
        phase: f64,
    },
    /// Scheduled capacity changes: each step's budget holds from its
    /// `start` slot until the next step. The first step must start at
    /// slot 0.
    PiecewiseSteps(Vec<BudgetStep>),
    /// A measured per-slot budget series; slots past the end hold the last
    /// value.
    Trace(Vec<f64>),
}

/// One step of a [`BudgetProfile::PiecewiseSteps`] schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetStep {
    /// First slot this budget applies to.
    pub start: u64,
    /// The per-slot budget from `start` on.
    pub budget: f64,
}

impl BudgetProfile {
    /// The budget for `slot`.
    pub fn budget_at(&self, slot: u64) -> f64 {
        match self {
            BudgetProfile::Constant(b) => *b,
            BudgetProfile::Diurnal {
                mean,
                amplitude,
                period,
                phase,
            } => {
                let cycles = slot as f64 / *period as f64 + phase;
                mean + amplitude * (std::f64::consts::TAU * cycles).sin()
            }
            BudgetProfile::PiecewiseSteps(steps) => {
                let idx = steps.partition_point(|s| s.start <= slot);
                steps[idx.saturating_sub(1)].budget
            }
            BudgetProfile::Trace(budgets) => {
                let idx = (slot as usize).min(budgets.len() - 1);
                budgets[idx]
            }
        }
    }

    /// Encodes the profile for a scenario file (see [`crate::json`]): a
    /// `"type"`-tagged object; infinite budgets encode as the string
    /// `"inf"`.
    ///
    /// # Errors
    ///
    /// Errors on NaN or `-∞` values (nothing non-finite besides `+∞`
    /// budgets has a file form).
    pub fn to_json(&self) -> Result<JsonValue, JsonError> {
        Ok(match self {
            BudgetProfile::Constant(b) => JsonValue::obj(vec![
                ("type", JsonValue::str("constant")),
                ("budget", json::num_or_inf_checked("budget", *b)?),
            ]),
            BudgetProfile::Diurnal {
                mean,
                amplitude,
                period,
                phase,
            } => JsonValue::obj(vec![
                ("type", JsonValue::str("diurnal")),
                ("mean", json::finite_num("mean", *mean)?),
                ("amplitude", json::finite_num("amplitude", *amplitude)?),
                ("period", JsonValue::int(*period)),
                ("phase", json::finite_num("phase", *phase)?),
            ]),
            BudgetProfile::PiecewiseSteps(steps) => JsonValue::obj(vec![
                ("type", JsonValue::str("piecewise_steps")),
                (
                    "steps",
                    JsonValue::arr(
                        steps
                            .iter()
                            .map(|s| {
                                Ok(JsonValue::obj(vec![
                                    ("start", JsonValue::int(s.start)),
                                    ("budget", json::num_or_inf_checked("budget", s.budget)?),
                                ]))
                            })
                            .collect::<Result<Vec<_>, JsonError>>()?,
                    ),
                ),
            ]),
            BudgetProfile::Trace(budgets) => JsonValue::obj(vec![
                ("type", JsonValue::str("trace")),
                (
                    "budgets",
                    JsonValue::arr(
                        budgets
                            .iter()
                            .map(|&b| json::num_or_inf_checked("budget", b))
                            .collect::<Result<Vec<_>, _>>()?,
                    ),
                ),
            ]),
        })
    }

    /// Decodes a profile from its scenario-file form, enforcing every
    /// [`BudgetProfile::validate`] condition as an error instead of a
    /// panic — including the empty-`Trace` case, whose pinned behavior is
    /// rejection at spec-validation time (a trace with no entries has no
    /// slot-0 budget to evaluate).
    ///
    /// # Errors
    ///
    /// Errors (with the offending position) on unknown `"type"` tags,
    /// unknown or missing keys, wrong types, negative/NaN budgets,
    /// `amplitude > mean`, zero periods, unsorted or slot-0-less step
    /// schedules, and empty traces.
    pub fn from_json(v: &JsonValue) -> Result<BudgetProfile, JsonError> {
        let budget_value = |node: &JsonValue| {
            let b = node.as_f64_or_inf()?;
            if b < 0.0 {
                return Err(JsonError::at(node.pos, format!("bad budget {b}")));
            }
            Ok(b)
        };
        let mut obj = v.as_obj()?;
        let tag = obj.req("type")?;
        let profile = match tag.as_str()? {
            "constant" => BudgetProfile::Constant(budget_value(obj.req("budget")?)?),
            "diurnal" => {
                let mean_node = obj.req("mean")?;
                let mean = mean_node.as_f64()?;
                if mean < 0.0 {
                    return Err(JsonError::at(
                        mean_node.pos,
                        format!("bad diurnal mean {mean}"),
                    ));
                }
                let amplitude_node = obj.req("amplitude")?;
                let amplitude = amplitude_node.as_f64()?;
                if !(0.0..=mean).contains(&amplitude) {
                    return Err(JsonError::at(
                        amplitude_node.pos,
                        format!("diurnal amplitude must be in [0, mean], got {amplitude}"),
                    ));
                }
                let period_node = obj.req("period")?;
                let period = period_node.as_u64()?;
                if period == 0 {
                    return Err(JsonError::at(
                        period_node.pos,
                        "diurnal period must be positive",
                    ));
                }
                let phase = obj.req("phase")?.as_f64()?;
                BudgetProfile::Diurnal {
                    mean,
                    amplitude,
                    period,
                    phase,
                }
            }
            "piecewise_steps" => {
                let steps_node = obj.req("steps")?;
                let items = steps_node.as_array()?;
                if items.is_empty() {
                    return Err(JsonError::at(
                        steps_node.pos,
                        "need at least one budget step",
                    ));
                }
                let mut steps: Vec<BudgetStep> = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    let mut step = item.as_obj()?;
                    let start_node = step.req("start")?;
                    let start = start_node.as_u64()?;
                    if i == 0 && start != 0 {
                        return Err(JsonError::at(
                            start_node.pos,
                            "first budget step must start at slot 0",
                        ));
                    }
                    if i > 0 && start <= steps[i - 1].start {
                        return Err(JsonError::at(
                            start_node.pos,
                            "budget steps must have strictly ascending starts",
                        ));
                    }
                    let budget = budget_value(step.req("budget")?)?;
                    step.finish()?;
                    steps.push(BudgetStep { start, budget });
                }
                BudgetProfile::PiecewiseSteps(steps)
            }
            "trace" => {
                let budgets_node = obj.req("budgets")?;
                let items = budgets_node.as_array()?;
                if items.is_empty() {
                    return Err(JsonError::at(
                        budgets_node.pos,
                        "need at least one traced budget",
                    ));
                }
                BudgetProfile::Trace(
                    items
                        .iter()
                        .map(budget_value)
                        .collect::<Result<Vec<_>, _>>()?,
                )
            }
            other => {
                return Err(JsonError::at(
                    tag.pos,
                    format!(
                        "unknown budget profile type \"{other}\" \
                         (expected constant, diurnal, piecewise_steps, or trace)"
                    ),
                ))
            }
        };
        obj.finish()?;
        Ok(profile)
    }

    /// Validates the profile's parameters.
    ///
    /// # Panics
    ///
    /// Panics when any budget value is NaN or negative, a `Diurnal` swing
    /// can go negative (`amplitude > mean`) or its `period` is zero, a
    /// `PiecewiseSteps` schedule is empty / unsorted / does not start at
    /// slot 0, or a `Trace` is empty.
    pub fn validate(&self) {
        let check = |b: f64| assert!(!b.is_nan() && b >= 0.0, "bad budget {b}");
        match self {
            BudgetProfile::Constant(b) => check(*b),
            BudgetProfile::Diurnal {
                mean,
                amplitude,
                period,
                phase,
            } => {
                assert!(mean.is_finite() && *mean >= 0.0, "bad diurnal mean {mean}");
                assert!(
                    amplitude.is_finite() && *amplitude >= 0.0 && amplitude <= mean,
                    "diurnal amplitude must be in [0, mean], got {amplitude}"
                );
                assert!(*period > 0, "diurnal period must be positive");
                assert!(phase.is_finite(), "bad diurnal phase {phase}");
            }
            BudgetProfile::PiecewiseSteps(steps) => {
                assert!(!steps.is_empty(), "need at least one budget step");
                assert_eq!(steps[0].start, 0, "first budget step must start at slot 0");
                assert!(
                    steps.windows(2).all(|w| w[0].start < w[1].start),
                    "budget steps must have strictly ascending starts"
                );
                steps.iter().for_each(|s| check(s.budget));
            }
            BudgetProfile::Trace(budgets) => {
                assert!(!budgets.is_empty(), "need at least one traced budget");
                budgets.iter().copied().for_each(check);
            }
        }
    }
}

/// Caller-owned scratch for the allocation hot path (sorted-sum buffer,
/// priority order, per-session keys).
#[derive(Debug, Default)]
struct AllocScratch {
    sums: Vec<f64>,
    order: Vec<usize>,
    keys: Vec<f64>,
}

/// How a shared uplink divides its per-slot budget among contending
/// sessions.
///
/// Every policy grants each session at most its demand, grants at most the
/// budget in total, and — whenever aggregate demand fits the budget —
/// grants every demand in full (work conservation). They differ only in
/// how scarcity is split.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum UplinkPolicy {
    /// No admission control: every demand is granted verbatim, the budget
    /// is ignored. Bit-identical to running the batch uncoupled.
    Unconstrained,
    /// Scarcity is split pro rata to demand: `g_i = d_i · B / Σd` while
    /// `Σd > B`. Backlog-blind — an idle tenant's reserved share is
    /// wasted while a loaded tenant diverges.
    ProportionalShare,
    /// The Lyapunov-natural policy: budget water-fills sessions in
    /// descending backlog order (largest queues first), equal-backlog
    /// groups sharing pro rata to demand. This is max-weight scheduling
    /// with weight `Q_i(τ)`, the drift-minimizing choice.
    MaxWeightBacklog,
    /// Max-weight with per-tenant priorities: sessions are served in
    /// descending `w_i · Q_i(τ)` order, equal-priority groups sharing pro
    /// rata to demand (the same tie-group construction as
    /// [`UplinkPolicy::MaxWeightBacklog`], so order-invariance survives).
    /// A gold tenant with `w = 4` tolerates a 4× smaller backlog than a
    /// `w = 1` tenant before outranking it. Uniform weights reproduce
    /// `MaxWeightBacklog` bit-for-bit.
    WeightedMaxWeight {
        /// Per-session priority weights, batch order (must be finite and
        /// positive, one per session).
        weights: Vec<f64>,
    },
    /// The demand-weighted α-fair family: maximizes
    /// `Σ_i d_i · x_i^(1-α) / (1-α)` subject to `Σ x_i ≤ B`,
    /// `0 ≤ x_i ≤ d_i`, whose KKT solution is
    /// `x_i = min(d_i, θ · d_i^(1/α))` with the water level `θ` chosen to
    /// spend the budget. `α = 1` allocates pro rata to demand
    /// (proportional fairness ≡ [`UplinkPolicy::ProportionalShare`]);
    /// `α = ∞` allocates max-min fair (equal levels, capped at demand).
    /// Backlog-blind like `ProportionalShare`, but tunably less biased
    /// toward heavy demanders as `α` grows.
    AlphaFair {
        /// Fairness exponent, `α ≥ 1` (`f64::INFINITY` = max-min).
        alpha: f64,
    },
}

impl UplinkPolicy {
    /// Machine-readable policy name (CSV column value).
    pub fn name(&self) -> &'static str {
        match self {
            UplinkPolicy::Unconstrained => "unconstrained",
            UplinkPolicy::ProportionalShare => "proportional_share",
            UplinkPolicy::MaxWeightBacklog => "max_weight_backlog",
            UplinkPolicy::WeightedMaxWeight { .. } => "weighted_max_weight",
            UplinkPolicy::AlphaFair { .. } => "alpha_fair",
        }
    }

    /// Encodes the policy for a scenario file (see [`crate::json`]): a
    /// `"type"`-tagged object whose tag matches [`UplinkPolicy::name`];
    /// the max-min `α = ∞` encodes as the string `"inf"`.
    ///
    /// # Errors
    ///
    /// Errors on non-finite weights or a NaN/`-∞` alpha (values
    /// [`UplinkPolicy::validate`] rejects too, so nothing non-finite
    /// besides the max-min α has a file form).
    pub fn to_json(&self) -> Result<JsonValue, JsonError> {
        Ok(match self {
            UplinkPolicy::Unconstrained
            | UplinkPolicy::ProportionalShare
            | UplinkPolicy::MaxWeightBacklog => {
                JsonValue::obj(vec![("type", JsonValue::str(self.name()))])
            }
            UplinkPolicy::WeightedMaxWeight { weights } => JsonValue::obj(vec![
                ("type", JsonValue::str(self.name())),
                (
                    "weights",
                    JsonValue::arr(
                        weights
                            .iter()
                            .map(|&w| json::finite_num("weight", w))
                            .collect::<Result<Vec<_>, _>>()?,
                    ),
                ),
            ]),
            UplinkPolicy::AlphaFair { alpha } => JsonValue::obj(vec![
                ("type", JsonValue::str(self.name())),
                ("alpha", json::num_or_inf_checked("alpha", *alpha)?),
            ]),
        })
    }

    /// Decodes a policy from its scenario-file form, enforcing every
    /// [`UplinkPolicy::validate`] condition as an error instead of a
    /// panic (positive finite weights, `α ≥ 1`). The weight-count ↔
    /// session-count match is checked at the scenario level, where both
    /// are known.
    ///
    /// # Errors
    ///
    /// Errors (with the offending position) on unknown `"type"` tags,
    /// unknown or missing keys, wrong types, empty/non-positive/non-finite
    /// weight vectors, and `α < 1`.
    pub fn from_json(v: &JsonValue) -> Result<UplinkPolicy, JsonError> {
        let mut obj = v.as_obj()?;
        let tag = obj.req("type")?;
        let policy = match tag.as_str()? {
            "unconstrained" => UplinkPolicy::Unconstrained,
            "proportional_share" => UplinkPolicy::ProportionalShare,
            "max_weight_backlog" => UplinkPolicy::MaxWeightBacklog,
            "weighted_max_weight" => {
                let weights_node = obj.req("weights")?;
                let items = weights_node.as_array()?;
                if items.is_empty() {
                    return Err(JsonError::at(weights_node.pos, "need at least one weight"));
                }
                let mut weights = Vec::with_capacity(items.len());
                for item in items {
                    let w = item.as_f64()?;
                    if w <= 0.0 {
                        return Err(JsonError::at(
                            item.pos,
                            format!("bad max-weight weight {w} (must be finite and positive)"),
                        ));
                    }
                    weights.push(w);
                }
                UplinkPolicy::WeightedMaxWeight { weights }
            }
            "alpha_fair" => {
                let alpha_node = obj.req("alpha")?;
                let alpha = alpha_node.as_f64_or_inf()?;
                if alpha < 1.0 {
                    return Err(JsonError::at(
                        alpha_node.pos,
                        format!("alpha must be >= 1 (inf = max-min), got {alpha}"),
                    ));
                }
                UplinkPolicy::AlphaFair { alpha }
            }
            other => {
                return Err(JsonError::at(
                    tag.pos,
                    format!(
                        "unknown uplink policy type \"{other}\" (expected unconstrained, \
                         proportional_share, max_weight_backlog, weighted_max_weight, \
                         or alpha_fair)"
                    ),
                ))
            }
        };
        obj.finish()?;
        Ok(policy)
    }

    /// Validates the policy's own parameters (session-count-independent
    /// checks; weight-length mismatches surface in
    /// [`UplinkPolicy::allocate`]).
    ///
    /// # Panics
    ///
    /// Panics when a `WeightedMaxWeight` weight is non-finite or
    /// non-positive, or an `AlphaFair` exponent is NaN or below 1.
    pub fn validate(&self) {
        match self {
            UplinkPolicy::WeightedMaxWeight { weights } => {
                assert!(!weights.is_empty(), "need at least one weight");
                for &w in weights {
                    assert!(w.is_finite() && w > 0.0, "bad max-weight weight {w}");
                }
            }
            UplinkPolicy::AlphaFair { alpha } => {
                assert!(
                    !alpha.is_nan() && *alpha >= 1.0,
                    "alpha must be >= 1 (inf = max-min), got {alpha}"
                );
            }
            _ => {}
        }
    }

    /// Computes per-session grants for one slot into `grants` (resized to
    /// match), given every session's live backlog and polled demand.
    ///
    /// Deterministic and order-invariant: permuting the sessions (together
    /// with any per-session policy weights) permutes the grants
    /// bit-for-bit. Each grant is in `[0, demand_i]`; the granted total
    /// never exceeds `budget` beyond f64 rounding (each scarce slot
    /// performs one global scale, one scale per priority group, or one
    /// water-level multiply per session, so the accumulated error is a few
    /// ulps). A zero budget yields exactly `+0.0` grants.
    ///
    /// # Contract
    ///
    /// Backlogs and demands must be finite and non-negative — checked with
    /// debug assertions only, so the release hot path stays branch-light.
    /// A NaN backlog would otherwise sort above every finite queue in the
    /// max-weight order and capture the whole budget, and one infinite
    /// demand would zero `ProportionalShare`'s scale and produce
    /// `inf · 0 = NaN` grants; both are programming errors upstream, not
    /// allocator states.
    ///
    /// # Panics
    ///
    /// Panics when `backlogs` and `demands` disagree in length, when
    /// `budget` is NaN or negative (`f64::INFINITY` is allowed and never
    /// binds), when a `WeightedMaxWeight` weight vector does not match the
    /// session count, or when [`UplinkPolicy::validate`] rejects the
    /// policy parameters. With debug assertions on, also panics on
    /// non-finite or negative backlogs/demands.
    pub fn allocate(&self, budget: f64, backlogs: &[f64], demands: &[f64], grants: &mut Vec<f64>) {
        self.validate();
        let mut scratch = AllocScratch::default();
        let total = invariant_sum(demands.iter().copied(), &mut scratch.sums);
        self.allocate_with(budget, backlogs, demands, total, grants, &mut scratch);
    }

    /// [`UplinkPolicy::allocate`] with caller-owned scratch buffers and
    /// the (permutation-invariant) aggregate demand `total` already
    /// computed — the allocation-free per-slot path of [`SharedUplink`].
    fn allocate_with(
        &self,
        budget: f64,
        backlogs: &[f64],
        demands: &[f64],
        total: f64,
        grants: &mut Vec<f64>,
        scratch: &mut AllocScratch,
    ) {
        assert_eq!(
            backlogs.len(),
            demands.len(),
            "backlogs and demands must be parallel arrays"
        );
        assert!(!budget.is_nan() && budget >= 0.0, "bad budget {budget}");
        debug_assert!(
            backlogs.iter().all(|q| q.is_finite() && *q >= 0.0),
            "backlogs must be finite and non-negative: {backlogs:?}"
        );
        debug_assert!(
            demands.iter().all(|d| d.is_finite() && *d >= 0.0),
            "demands must be finite and non-negative: {demands:?}"
        );
        grants.clear();
        grants.extend_from_slice(demands);
        if matches!(self, UplinkPolicy::Unconstrained) {
            return;
        }
        if let UplinkPolicy::WeightedMaxWeight { weights } = self {
            assert_eq!(
                weights.len(),
                demands.len(),
                "need one max-weight weight per session"
            );
        }
        if total <= budget {
            return; // slack: every demand granted in full, bit-for-bit
        }
        let AllocScratch { sums, order, keys } = scratch;
        match self {
            UplinkPolicy::Unconstrained => unreachable!(),
            UplinkPolicy::ProportionalShare => {
                // total > budget ≥ 0 ⟹ total > 0: the scale is finite.
                let scale = budget / total;
                for g in grants.iter_mut() {
                    *g *= scale;
                }
            }
            UplinkPolicy::MaxWeightBacklog => {
                // Priority = the raw backlog (max-weight with w ≡ 1).
                max_weight_fill(backlogs, demands, budget, grants, sums, order);
            }
            UplinkPolicy::WeightedMaxWeight { weights } => {
                // Priority = w_i · Q_i; uniform w = 1 gives bit-identical
                // keys (1.0 · Q == Q), hence bit-identical grants.
                keys.clear();
                keys.extend(backlogs.iter().zip(weights).map(|(&q, &w)| w * q));
                max_weight_fill(keys, demands, budget, grants, sums, order);
            }
            UplinkPolicy::AlphaFair { alpha } => {
                alpha_fair_fill(*alpha, demands, budget, grants, sums, order, keys);
            }
        }
    }
}

/// Water-fills `budget` over sessions in descending `priority` order:
/// whole equal-priority groups are served at full demand while the budget
/// lasts, the group where it runs dry shares the remainder pro rata to
/// demand, and all lower-priority groups get zero. Order-invariant: groups
/// are formed by priority *value*, their demand totals by value-sorted
/// sums, and the in-group scale is one multiply per session.
fn max_weight_fill(
    priorities: &[f64],
    demands: &[f64],
    budget: f64,
    grants: &mut [f64],
    sums: &mut Vec<f64>,
    order: &mut Vec<usize>,
) {
    order.clear();
    order.extend(0..priorities.len());
    order.sort_unstable_by(|&i, &j| priorities[j].total_cmp(&priorities[i]));
    let mut remaining = budget;
    let mut at = 0;
    while at < order.len() {
        let group_priority = priorities[order[at]];
        let mut end = at;
        while end < order.len() && priorities[order[end]].total_cmp(&group_priority).is_eq() {
            end += 1;
        }
        let group = &order[at..end];
        let group_total = invariant_sum(group.iter().map(|&i| demands[i]), sums);
        if group_total <= remaining {
            // Whole group served at full demand (grants already hold the
            // demands).
            remaining -= group_total;
        } else {
            // The budget runs dry inside this group: split what is left
            // pro rata to demand, and starve every strictly-lower
            // priority group. group_total > remaining ≥ 0 ⟹
            // group_total > 0.
            let scale = remaining / group_total;
            for &i in group {
                grants[i] *= scale;
            }
            for &i in &order[end..] {
                grants[i] = 0.0;
            }
            return;
        }
        at = end;
    }
}

/// The α-fair allocation `x_i = min(d_i, θ · d_i^(1/α))` by deterministic
/// water-filling: repeatedly compute the tentative water level `θ` from
/// the remaining budget and the active sessions' share weights, cap every
/// session whose fair share meets its demand, and stop when no new caps
/// appear. Each round's `θ` comes from permutation-invariant sums and the
/// capping test is pointwise, so the result is order-invariant bitwise.
/// Converges in at most `n` rounds (every round caps a session or stops).
fn alpha_fair_fill(
    alpha: f64,
    demands: &[f64],
    budget: f64,
    grants: &mut [f64],
    sums: &mut Vec<f64>,
    active: &mut Vec<usize>,
    shares: &mut Vec<f64>,
) {
    let inv_alpha = if alpha.is_finite() { 1.0 / alpha } else { 0.0 };
    // Share weights s_i = d_i^(1/α), special-cased so α = 1 is exactly
    // pro-rata (s = d, no powf rounding) and α = ∞ exactly max-min
    // (s = 1). Zero-demand sessions keep their grant of 0 and never join
    // the active set.
    shares.clear();
    shares.extend(demands.iter().map(|&d| {
        if d <= 0.0 {
            0.0
        } else if inv_alpha == 1.0 {
            d
        } else if inv_alpha == 0.0 {
            1.0
        } else {
            d.powf(inv_alpha)
        }
    }));
    active.clear();
    active.extend((0..demands.len()).filter(|&i| demands[i] > 0.0));
    let mut remaining = budget;
    while !active.is_empty() {
        let share_total = invariant_sum(active.iter().map(|&i| shares[i]), sums);
        // Active sessions have d > 0 hence s > 0, so share_total > 0.
        let level = remaining / share_total;
        let capped = |i: usize| level * shares[i] >= demands[i];
        if !active.iter().any(|&i| capped(i)) {
            for &i in active.iter() {
                grants[i] = level * shares[i];
            }
            return;
        }
        // Capped sessions keep their full demand (grants already hold the
        // demands); charge them against the budget order-invariantly and
        // re-level the rest.
        let freed = invariant_sum(
            active
                .iter()
                .copied()
                .filter(|&i| capped(i))
                .map(|i| demands[i]),
            sums,
        );
        remaining = (remaining - freed).max(0.0);
        active.retain(|&i| !capped(i));
    }
}

/// Declarative description of a shared uplink: a per-slot backhaul budget
/// profile (service units per slot, the same units as
/// [`crate::experiment::ServiceSpec`] rates) and the policy dividing it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UplinkSpec {
    /// Per-slot aggregate service the backhaul can carry.
    pub budget: BudgetProfile,
    /// How scarcity is divided.
    pub policy: UplinkPolicy,
}

impl UplinkSpec {
    /// A shared uplink with a constant per-slot budget — the common case,
    /// shorthand for [`UplinkSpec::with_profile`] +
    /// [`BudgetProfile::Constant`].
    ///
    /// # Panics
    ///
    /// Panics when `budget` is NaN or negative (`f64::INFINITY` is a
    /// valid never-binding budget), or the policy parameters are invalid.
    pub fn new(budget: f64, policy: UplinkPolicy) -> UplinkSpec {
        UplinkSpec::with_profile(BudgetProfile::Constant(budget), policy)
    }

    /// A shared uplink with a time-varying budget profile.
    ///
    /// # Panics
    ///
    /// Panics when [`BudgetProfile::validate`] or
    /// [`UplinkPolicy::validate`] rejects the parameters.
    pub fn with_profile(budget: BudgetProfile, policy: UplinkPolicy) -> UplinkSpec {
        budget.validate();
        policy.validate();
        UplinkSpec { budget, policy }
    }

    /// The no-op uplink: infinite budget, [`UplinkPolicy::Unconstrained`].
    pub fn unconstrained() -> UplinkSpec {
        UplinkSpec {
            budget: BudgetProfile::Constant(f64::INFINITY),
            policy: UplinkPolicy::Unconstrained,
        }
    }

    /// Encodes the spec for a scenario file: `{"budget": …, "policy": …}`.
    ///
    /// # Errors
    ///
    /// Propagates the budget/policy encode errors (non-finite values with
    /// no file form).
    pub fn to_json(&self) -> Result<JsonValue, JsonError> {
        Ok(JsonValue::obj(vec![
            ("budget", self.budget.to_json()?),
            ("policy", self.policy.to_json()?),
        ]))
    }

    /// Decodes a spec from its scenario-file form.
    ///
    /// # Errors
    ///
    /// Propagates [`BudgetProfile::from_json`] / [`UplinkPolicy::from_json`]
    /// errors and rejects unknown keys.
    pub fn from_json(v: &JsonValue) -> Result<UplinkSpec, JsonError> {
        let mut obj = v.as_obj()?;
        let budget = BudgetProfile::from_json(obj.req("budget")?)?;
        let policy = UplinkPolicy::from_json(obj.req("policy")?)?;
        obj.finish()?;
        Ok(UplinkSpec { budget, policy })
    }
}

/// Per-session uplink-aware `V` adaptation (see
/// [`arvis_lyapunov::adaptive::GrantRatioV`]): the session observes its
/// grant/demand ratio each contended slot and scales its Lyapunov `V`
/// with a bounded multiplicative update and a hysteresis band, shedding
/// quality instead of backlog when the link saturates.
///
/// Attach to a session via `SessionSpec::uplink_v_adapt`
/// ([`crate::scenario::SessionSpec`]); only sessions running
/// [`crate::scenario::ControllerSpec::Proposed`] can adapt (the knob
/// scales that controller's `V`). The adaptation acts only through
/// [`SessionBatch::step_slot_granted`] — uncoupled runs are untouched.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UplinkVAdaptSpec {
    /// Hysteresis band floor on the smoothed grant ratio: below it `V`
    /// shrinks.
    pub low: f64,
    /// Hysteresis band ceiling: above it `V` grows back (never past its
    /// configured starting point).
    pub high: f64,
    /// Per-slot multiplicative step in `(0, 1)`.
    pub step: f64,
    /// Floor on the adapted `V`, as a fraction of the starting `V`.
    pub min_v_scale: f64,
}

impl Default for UplinkVAdaptSpec {
    /// Shrink `V` 5%/slot once the smoothed grant ratio falls below 0.85,
    /// recover once it exceeds 0.95, never below `1% ×` the starting `V`.
    ///
    /// The floor matters: it bounds how far quality falls during an
    /// outage *and* how long recovery takes once the link comes back
    /// (multiplicative growth from a `1e-2` floor needs ~90 slack slots
    /// at 5%/slot; a `1e-4` floor would need twice that and can starve
    /// quality forever under short recovery windows like diurnal peaks).
    fn default() -> UplinkVAdaptSpec {
        UplinkVAdaptSpec {
            low: 0.85,
            high: 0.95,
            step: 0.05,
            min_v_scale: 1e-2,
        }
    }
}

impl UplinkVAdaptSpec {
    /// Encodes the adaptation knob for a scenario file:
    /// `{"low": …, "high": …, "step": …, "min_v_scale": …}`.
    ///
    /// # Errors
    ///
    /// Errors when a field is non-finite (the [`UplinkVAdaptSpec::build`]
    /// invariants reject those values too).
    pub fn to_json(&self) -> Result<JsonValue, JsonError> {
        Ok(JsonValue::obj(vec![
            ("low", json::finite_num("low", self.low)?),
            ("high", json::finite_num("high", self.high)?),
            ("step", json::finite_num("step", self.step)?),
            (
                "min_v_scale",
                json::finite_num("min_v_scale", self.min_v_scale)?,
            ),
        ]))
    }

    /// Decodes the knob from its scenario-file form, enforcing the
    /// [`UplinkVAdaptSpec::build`] / `GrantRatioV` constructor invariants
    /// (`0 < low ≤ high ≤ 1`, `step ∈ (0, 1)`, `min_v_scale ∈ (0, 1]`) as
    /// errors instead of panics.
    ///
    /// # Errors
    ///
    /// Errors (with the offending position) on unknown or missing keys,
    /// wrong types, and out-of-range parameters.
    pub fn from_json(v: &JsonValue) -> Result<UplinkVAdaptSpec, JsonError> {
        let mut obj = v.as_obj()?;
        let low_node = obj.req("low")?;
        let low = low_node.as_f64()?;
        let high_node = obj.req("high")?;
        let high = high_node.as_f64()?;
        if !(low > 0.0 && low <= high && high <= 1.0) {
            return Err(JsonError::at(
                low_node.pos,
                format!("need 0 < low <= high <= 1, got [{low}, {high}]"),
            ));
        }
        let step_node = obj.req("step")?;
        let step = step_node.as_f64()?;
        if !(step > 0.0 && step < 1.0) {
            return Err(JsonError::at(
                step_node.pos,
                format!("step must be in (0, 1), got {step}"),
            ));
        }
        let scale_node = obj.req("min_v_scale")?;
        let min_v_scale = scale_node.as_f64()?;
        if !(min_v_scale > 0.0 && min_v_scale <= 1.0) {
            return Err(JsonError::at(
                scale_node.pos,
                format!("min_v_scale must be in (0, 1], got {min_v_scale}"),
            ));
        }
        obj.finish()?;
        Ok(UplinkVAdaptSpec {
            low,
            high,
            step,
            min_v_scale,
        })
    }

    /// Builds the runnable adapter state around a controller's starting
    /// `V`.
    ///
    /// # Panics
    ///
    /// Propagates the [`GrantRatioV`] constructor panics (bad band, step
    /// outside `(0, 1)`, non-positive scales).
    pub fn build(&self, base_v: f64) -> GrantRatioV {
        assert!(
            self.min_v_scale > 0.0 && self.min_v_scale <= 1.0,
            "min_v_scale must be in (0, 1], got {}",
            self.min_v_scale
        );
        GrantRatioV::new(base_v, self.low, self.high, self.step)
            .with_bounds(base_v * self.min_v_scale, base_v)
    }
}

/// One slot's aggregate uplink observations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UplinkSlotStats {
    /// The simulated slot.
    pub slot: u64,
    /// The slot's budget ([`BudgetProfile::budget_at`]).
    pub budget: f64,
    /// Aggregate demand `Σ d_i(τ)` polled from the sessions.
    pub demand: f64,
    /// Aggregate service granted by the policy.
    pub granted: f64,
    /// Aggregate backlog `Σ Q_i(τ)` observed at the start of the slot.
    pub backlog: f64,
    /// `true` when the budget bound (aggregate demand exceeded it).
    ///
    /// Judged on the *offered* demand — what the sessions polled before
    /// the degradation guard shed anything — so the signal reflects real
    /// pressure, not the guard's own relief.
    pub contended: bool,
    /// Sessions whose demand the degradation guard shed this slot
    /// (0 without a guard — see [`crate::fault`]).
    pub shed_sessions: u64,
    /// Granted capacity destroyed by grant-loss faults this slot.
    pub lost: f64,
    /// Sessions down or dead after this slot.
    pub down_sessions: u64,
}

/// Streaming aggregate summary of a contended run (O(1) memory).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UplinkSummary {
    /// Slots driven through the uplink.
    pub slots: u64,
    /// Time-average per-slot budget (infinite when any slot's budget was
    /// infinite).
    pub mean_budget: f64,
    /// Slots whose aggregate demand exceeded the budget.
    pub contended_slots: u64,
    /// Time-average aggregate demand.
    pub mean_demand: f64,
    /// Time-average aggregate granted service.
    pub mean_granted: f64,
    /// Time-average aggregate backlog.
    pub mean_backlog: f64,
    /// Largest aggregate backlog observed.
    pub peak_backlog: f64,
    /// Slots on which the degradation guard shed at least one session
    /// (0 on fault-free runs — see [`crate::fault`]).
    pub shed_slots: u64,
    /// Total session-slots the guard deferred or clamped.
    pub deferred_session_slots: u64,
    /// Total granted capacity destroyed by grant-loss faults.
    pub lost_total: f64,
    /// Slots covered by at least one outage window.
    pub outage_slots: u64,
    /// Total session-slots spent down or dead.
    pub down_session_slots: u64,
}

impl UplinkSummary {
    /// Fraction of slots whose demand exceeded the budget.
    pub fn contended_fraction(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.contended_slots as f64 / self.slots as f64
        }
    }

    /// Mean granted service as a fraction of the *mean* budget, so the
    /// figure stays meaningful under time-varying [`BudgetProfile`]s.
    /// Documented 0 for a zero-slot run, a zero mean budget, or whenever
    /// any slot's budget was infinite (the mean is then infinite and
    /// "utilization of an unbounded link" is not a meaningful ratio).
    pub fn utilization(&self) -> f64 {
        if self.mean_budget.is_finite() && self.mean_budget > 0.0 {
            self.mean_granted / self.mean_budget
        } else {
            0.0
        }
    }
}

/// The contention-plane driver: owns the uplink spec, the per-slot scratch
/// vectors and the streaming aggregate accumulators, and steps a
/// [`SessionBatch`] slot by slot through poll → admit → complete.
///
/// The driver is deliberately separate from the batch: the same
/// `SharedUplink` can drive batches with any [`TelemetrySink`], and a
/// batch driven with [`UplinkSpec::unconstrained`] is bit-identical to
/// [`SessionBatch::run`].
#[derive(Debug)]
pub struct SharedUplink {
    spec: UplinkSpec,
    backlogs: Vec<f64>,
    demands: Vec<f64>,
    grants: Vec<f64>,
    scratch: AllocScratch,
    /// The fault plane, when the scenario declares a (non-empty) fault
    /// plan. `None` is *the* fault-free path — not a plane of no-op
    /// events — so fault-free runs execute exactly the pre-fault code.
    fault: Option<crate::fault::FaultPlane>,
    slots: u64,
    contended_slots: u64,
    budget_sum: f64,
    demand_sum: f64,
    granted_sum: f64,
    backlog_sum: f64,
    peak_backlog: f64,
    down_session_slot_sum: u64,
}

impl SharedUplink {
    /// A driver for the given uplink spec.
    ///
    /// # Panics
    ///
    /// Panics when the spec's budget profile or policy parameters are
    /// invalid (see [`UplinkSpec::with_profile`]).
    pub fn new(spec: UplinkSpec) -> SharedUplink {
        spec.budget.validate();
        spec.policy.validate();
        SharedUplink {
            spec,
            backlogs: Vec::new(),
            demands: Vec::new(),
            grants: Vec::new(),
            scratch: AllocScratch::default(),
            fault: None,
            slots: 0,
            contended_slots: 0,
            budget_sum: 0.0,
            demand_sum: 0.0,
            granted_sum: 0.0,
            backlog_sum: 0.0,
            peak_backlog: 0.0,
            down_session_slot_sum: 0,
        }
    }

    /// A driver with a fault plane for a fleet of `sessions` sessions
    /// (see [`crate::fault`]). An empty plan attaches nothing at all, so
    /// it is bit-identical to [`SharedUplink::new`] by construction.
    ///
    /// # Panics
    ///
    /// Panics when the spec is invalid (see [`SharedUplink::new`]) or the
    /// plan fails [`crate::fault::FaultPlan::validate`] for this fleet.
    pub fn with_fault(
        spec: UplinkSpec,
        plan: &crate::fault::FaultPlan,
        sessions: usize,
    ) -> SharedUplink {
        let mut uplink = SharedUplink::new(spec);
        if !plan.is_empty() {
            uplink.fault = Some(crate::fault::FaultPlane::new(plan, sessions));
        }
        uplink
    }

    /// The uplink spec this driver enforces.
    pub fn spec(&self) -> &UplinkSpec {
        &self.spec
    }

    /// The grants of the most recent slot (stable-id order; empty before
    /// the first step).
    pub fn last_grants(&self) -> &[f64] {
        &self.grants
    }

    /// Registers a mid-run session join (the churn plane calls this once
    /// per [`SessionBatch::spawn_at`]): a weighted policy appends the
    /// joiner's weight so its weight vector tracks the logical session
    /// count — and with it the degradation guard's weight groups.
    ///
    /// # Panics
    ///
    /// Panics when the policy is [`UplinkPolicy::WeightedMaxWeight`] and
    /// no weight is supplied, or the weight is not finite and positive
    /// (scenario validation enforces the pairing up front).
    pub fn register_join(&mut self, weight: Option<f64>) {
        if let UplinkPolicy::WeightedMaxWeight { weights } = &mut self.spec.policy {
            let w = weight.expect("a weighted uplink requires a weight for every joiner");
            assert!(
                w.is_finite() && w > 0.0,
                "joiner weight must be finite and positive, got {w}"
            );
            weights.push(w);
        }
    }

    /// Advances the batch one slot through the contention plane and
    /// returns the slot's aggregate stats.
    ///
    /// All aggregates are permutation-invariant sums, so the returned
    /// stats — like the per-session results — are bit-identical under
    /// session reordering.
    pub fn step_slot<S: TelemetrySink + Send>(
        &mut self,
        batch: &mut SessionBatch<S>,
    ) -> UplinkSlotStats {
        let slot = batch.slot();
        let mut budget = self.spec.budget.budget_at(slot);
        if let Some(fault) = self.fault.as_mut() {
            budget = fault.effective_budget(slot, budget);
            fault.apply_crashes(slot, batch);
        }
        batch.fill_backlogs(&mut self.backlogs);
        batch.fill_demands(&mut self.demands);
        let backlog = invariant_sum(self.backlogs.iter().copied(), &mut self.scratch.sums);
        // The offered demand — what the sessions polled, before the
        // degradation guard sheds anything. Contention is judged on it.
        let offered = invariant_sum(self.demands.iter().copied(), &mut self.scratch.sums);
        let mut demand = offered;
        let mut shed_sessions = 0;
        if let Some(fault) = self.fault.as_mut() {
            let weights = match &self.spec.policy {
                UplinkPolicy::WeightedMaxWeight { weights } => Some(weights.as_slice()),
                _ => None,
            };
            shed_sessions = fault.shed(backlog, &mut self.demands, weights);
            if shed_sessions > 0 {
                demand = invariant_sum(self.demands.iter().copied(), &mut self.scratch.sums);
            }
        }
        self.spec.policy.allocate_with(
            budget,
            &self.backlogs,
            &self.demands,
            demand,
            &mut self.grants,
            &mut self.scratch,
        );
        let mut lost = 0.0;
        if let Some(fault) = self.fault.as_mut() {
            lost = fault.apply_loss(&mut self.grants);
        }
        batch.step_slot_granted(&self.grants);

        let granted = invariant_sum(self.grants.iter().copied(), &mut self.scratch.sums);
        let contended = offered > budget;
        if let Some(fault) = self.fault.as_mut() {
            fault.observe_contention(contended);
        }
        // Unconditional: churned runs count departed sessions with no
        // fault plane attached; fault-free fixed-N fleets report 0, so
        // pre-churn aggregates are bitwise unchanged.
        let down_sessions = batch.down_sessions();
        self.slots += 1;
        self.contended_slots += u64::from(contended);
        self.budget_sum += budget;
        self.demand_sum += offered;
        self.granted_sum += granted;
        self.backlog_sum += backlog;
        self.peak_backlog = self.peak_backlog.max(backlog);
        self.down_session_slot_sum += down_sessions;
        UplinkSlotStats {
            slot,
            budget,
            demand: offered,
            granted,
            backlog,
            contended,
            shed_sessions,
            lost,
            down_sessions,
        }
    }

    /// Drives the batch to its horizon.
    pub fn run<S: TelemetrySink + Send>(&mut self, batch: &mut SessionBatch<S>) {
        while !batch.is_done() {
            self.step_slot(batch);
        }
    }

    /// Finalizes the streaming aggregates.
    pub fn summary(&self) -> UplinkSummary {
        let mean = |sum: f64| {
            if self.slots == 0 {
                0.0
            } else {
                sum / self.slots as f64
            }
        };
        UplinkSummary {
            slots: self.slots,
            mean_budget: mean(self.budget_sum),
            contended_slots: self.contended_slots,
            mean_demand: mean(self.demand_sum),
            mean_granted: mean(self.granted_sum),
            mean_backlog: mean(self.backlog_sum),
            peak_backlog: self.peak_backlog,
            shed_slots: self.fault.as_ref().map_or(0, |f| f.shed_slots()),
            deferred_session_slots: self
                .fault
                .as_ref()
                .map_or(0, |f| f.deferred_session_slots()),
            lost_total: self.fault.as_ref().map_or(0.0, |f| f.lost_total()),
            outage_slots: self.fault.as_ref().map_or(0, |f| f.outage_slots()),
            down_session_slots: self.down_session_slot_sum,
        }
    }
}

/// A finished contended run: per-session summaries plus the uplink
/// aggregates.
///
/// Under churn, "per-session" means *per stable id* (scenario order, then
/// join order): a joiner's summary covers its residual horizon and a
/// departed session's summary is frozen at its departure — partial-horizon
/// means and percentiles, documented on
/// [`crate::telemetry::SessionSummary`]. The vectors are identical whether
/// or not the run compacted departed sessions.
#[derive(Debug, Clone)]
pub struct ContendedRun {
    /// The policy that ran.
    pub policy: UplinkPolicy,
    /// Per-session streaming summaries (stable-id order).
    pub summaries: Vec<SessionSummary>,
    /// The uplink's aggregate summary.
    pub uplink: UplinkSummary,
    /// Per-session slots missed while down or dead (stable-id order; all
    /// zero on fault-free, churn-free runs).
    pub downtime: Vec<u64>,
}

impl ContendedRun {
    /// Header matching [`ContendedRun::to_csv`]: the per-session summary
    /// columns, the session's downtime, then the run's aggregate uplink
    /// and fault columns (repeated per row so each row is
    /// self-describing).
    pub fn csv_header() -> String {
        format!(
            "{},downtime_slots,policy,uplink_mean_budget,uplink_contended_frac,\
             uplink_utilization,uplink_mean_backlog,uplink_peak_backlog,\
             uplink_shed_slots,uplink_deferred_session_slots,uplink_lost_total,\
             uplink_outage_slots,uplink_down_session_slots",
            SessionSummary::csv_header()
        )
    }

    /// One row per session: the session summary, the session's downtime,
    /// then the aggregate uplink and fault columns.
    pub fn to_csv(&self) -> String {
        let mut out = ContendedRun::csv_header();
        out.push('\n');
        // The aggregate columns are run-level constants.
        let aggregate = CsvRow::new()
            .field(self.policy.name())
            .fixed(self.uplink.mean_budget, 1)
            .fixed(self.uplink.contended_fraction(), 4)
            .fixed(self.uplink.utilization(), 4)
            .fixed(self.uplink.mean_backlog, 1)
            .fixed(self.uplink.peak_backlog, 1)
            .field(self.uplink.shed_slots)
            .field(self.uplink.deferred_session_slots)
            .fixed(self.uplink.lost_total, 1)
            .field(self.uplink.outage_slots)
            .field(self.uplink.down_session_slots)
            .finish();
        for (i, s) in self.summaries.iter().enumerate() {
            out.push_str(&s.csv_row(i));
            out.push(',');
            out.push_str(&CsvRow::new().field(self.downtime[i]).finish());
            out.push(',');
            out.push_str(&aggregate);
            out.push('\n');
        }
        out
    }
}

/// Runs a scenario through the contention plane with summary-only sinks:
/// the scenario's own [`Scenario::uplink`] spec, or
/// [`UplinkSpec::unconstrained`] when it declares none. The scenario's
/// fault plan and churn spec, when present, ride along (see
/// [`crate::fault`] and [`crate::churn`]) — an absent or empty churn spec
/// takes exactly the pre-churn code path.
pub fn run_contended(scenario: &Scenario) -> ContendedRun {
    let spec = scenario
        .uplink
        .clone()
        .unwrap_or_else(UplinkSpec::unconstrained);
    let policy = spec.policy.clone();
    let mut batch = SessionBatch::summary_only(scenario);
    let mut uplink = match &scenario.fault {
        Some(plan) => SharedUplink::with_fault(spec, plan, scenario.sessions.len()),
        None => SharedUplink::new(spec),
    };
    match scenario.churn.as_ref().filter(|c| !c.is_empty()) {
        Some(churn) => {
            let mut plane = crate::churn::ChurnPlane::new(churn, scenario);
            while !batch.is_done() {
                plane.step_summary(&mut batch, &mut uplink);
                uplink.step_slot(&mut batch);
            }
        }
        None => uplink.run(&mut batch),
    }
    let downtime = batch.downtime();
    ContendedRun {
        policy,
        summaries: batch.into_summaries(),
        uplink: uplink.summary(),
        downtime,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;
    use crate::scenario::ControllerSpec;
    use arvis_quality::DepthProfile;

    fn profile() -> DepthProfile {
        DepthProfile::from_parts(
            5,
            vec![100.0, 400.0, 1600.0, 6400.0, 25600.0, 102400.0],
            vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
        )
    }

    #[test]
    fn slack_budget_grants_every_demand_verbatim() {
        for policy in [
            UplinkPolicy::Unconstrained,
            UplinkPolicy::ProportionalShare,
            UplinkPolicy::MaxWeightBacklog,
            UplinkPolicy::WeightedMaxWeight {
                weights: vec![1.0, 2.0, 3.0, 4.0],
            },
            UplinkPolicy::AlphaFair { alpha: 2.0 },
        ] {
            let demands = [100.0, 250.0, 0.0, 3.5];
            let backlogs = [10.0, 0.0, 99.0, 10.0];
            let mut grants = Vec::new();
            policy.allocate(1_000.0, &backlogs, &demands, &mut grants);
            assert_eq!(grants, demands.to_vec(), "{}", policy.name());
        }
    }

    #[test]
    fn proportional_share_scales_pro_rata() {
        let demands = [300.0, 100.0];
        let mut grants = Vec::new();
        UplinkPolicy::ProportionalShare.allocate(200.0, &[0.0, 0.0], &demands, &mut grants);
        assert!((grants[0] - 150.0).abs() < 1e-9);
        assert!((grants[1] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn max_weight_serves_largest_queues_first() {
        let demands = [100.0, 100.0, 100.0];
        let backlogs = [5.0, 500.0, 50.0];
        let mut grants = Vec::new();
        UplinkPolicy::MaxWeightBacklog.allocate(150.0, &backlogs, &demands, &mut grants);
        // Deepest queue (index 1) gets its full demand, the next (index 2)
        // the remainder, the shallowest nothing.
        assert_eq!(grants[1], 100.0);
        assert!((grants[2] - 50.0).abs() < 1e-9);
        assert_eq!(grants[0], 0.0);
    }

    #[test]
    fn max_weight_splits_ties_pro_rata() {
        let demands = [60.0, 180.0];
        let backlogs = [70.0, 70.0];
        let mut grants = Vec::new();
        UplinkPolicy::MaxWeightBacklog.allocate(120.0, &backlogs, &demands, &mut grants);
        // One group of equal backlogs: 120 split 1:3.
        assert!((grants[0] - 30.0).abs() < 1e-9);
        assert!((grants[1] - 90.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_max_weight_reorders_by_priority() {
        // Session 0 has the deeper queue, but session 1's 4x weight
        // outranks it: 300·4 > 1000·1.
        let demands = [100.0, 100.0];
        let backlogs = [1_000.0, 300.0];
        let weights = vec![1.0, 4.0];
        let mut grants = Vec::new();
        UplinkPolicy::WeightedMaxWeight { weights }.allocate(
            100.0,
            &backlogs,
            &demands,
            &mut grants,
        );
        assert_eq!(grants[1], 100.0, "gold tenant served first");
        assert_eq!(grants[0], 0.0);
    }

    #[test]
    fn weighted_max_weight_uniform_weights_match_unweighted_bitwise() {
        let demands = [130.0, 70.0, 240.0, 0.0, 55.5];
        let backlogs = [400.0, 400.0, 90.0, 10.0, 1_200.0];
        for budget in [0.0, 120.0, 333.3, 495.5, 1e4] {
            let mut plain = Vec::new();
            let mut weighted = Vec::new();
            UplinkPolicy::MaxWeightBacklog.allocate(budget, &backlogs, &demands, &mut plain);
            UplinkPolicy::WeightedMaxWeight {
                weights: vec![1.0; demands.len()],
            }
            .allocate(budget, &backlogs, &demands, &mut weighted);
            for (p, w) in plain.iter().zip(&weighted) {
                assert_eq!(p.to_bits(), w.to_bits(), "budget {budget}");
            }
        }
    }

    #[test]
    fn alpha_fair_one_matches_proportional_share_bitwise() {
        let demands = [300.0, 100.0, 0.0, 751.25, 40.0];
        let backlogs = [1.0, 2.0, 3.0, 4.0, 5.0]; // ignored by both
        for budget in [0.0, 150.0, 800.0, 1_191.24] {
            let mut ps = Vec::new();
            let mut af = Vec::new();
            UplinkPolicy::ProportionalShare.allocate(budget, &backlogs, &demands, &mut ps);
            UplinkPolicy::AlphaFair { alpha: 1.0 }.allocate(budget, &backlogs, &demands, &mut af);
            for (p, a) in ps.iter().zip(&af) {
                assert_eq!(p.to_bits(), a.to_bits(), "budget {budget}");
            }
        }
    }

    #[test]
    fn alpha_fair_infinity_is_max_min() {
        // Max-min: everyone gets the common level 40, except the 10-demand
        // session which is capped and frees budget for the rest.
        let demands = [100.0, 10.0, 100.0];
        let mut grants = Vec::new();
        UplinkPolicy::AlphaFair {
            alpha: f64::INFINITY,
        }
        .allocate(90.0, &[0.0; 3], &demands, &mut grants);
        assert_eq!(grants[1], 10.0, "small demand served in full");
        assert!((grants[0] - 40.0).abs() < 1e-9);
        assert!((grants[2] - 40.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_fair_interpolates_between_pro_rata_and_max_min() {
        let demands = [900.0, 100.0];
        let budget = 300.0;
        let grant0 = |alpha: f64| {
            let mut g = Vec::new();
            UplinkPolicy::AlphaFair { alpha }.allocate(budget, &[0.0, 0.0], &demands, &mut g);
            g[0]
        };
        let pf = grant0(1.0); // pro rata 9:1 → 270
        let mid = grant0(2.0); // shares √900:√100 = 3:1 → 225
        let mm = grant0(f64::INFINITY); // equal level 150 caps d=100 → 200
        assert!((pf - 270.0).abs() < 1e-9);
        assert!((mid - 225.0).abs() < 1e-9);
        assert!((mm - 200.0).abs() < 1e-9);
        assert!(mid < pf && mid > mm, "α=2 between PF {pf} and max-min {mm}");
    }

    #[test]
    fn zero_demand_under_zero_budget_is_fine() {
        let mut grants = Vec::new();
        for policy in [
            UplinkPolicy::ProportionalShare,
            UplinkPolicy::MaxWeightBacklog,
            UplinkPolicy::WeightedMaxWeight {
                weights: vec![1.0, 2.0],
            },
            UplinkPolicy::AlphaFair { alpha: 1.0 },
        ] {
            policy.allocate(0.0, &[1.0, 2.0], &[0.0, 0.0], &mut grants);
            assert_eq!(grants, vec![0.0, 0.0]);
            policy.allocate(0.0, &[1.0, 2.0], &[5.0, 0.0], &mut grants);
            assert_eq!(grants, vec![0.0, 0.0], "{}", policy.name());
        }
    }

    #[test]
    fn zero_budget_grants_are_exactly_positive_zero() {
        // The zero-budget slot path: grants must be +0.0 bit-for-bit (not
        // -0.0, not NaN) for every policy, including inside tie groups.
        let demands = [500.0, 0.0, 3.25, 1e9];
        let backlogs = [70.0, 70.0, 0.0, 1e12];
        for policy in [
            UplinkPolicy::ProportionalShare,
            UplinkPolicy::MaxWeightBacklog,
            UplinkPolicy::WeightedMaxWeight {
                weights: vec![2.0, 1.0, 1.0, 0.5],
            },
            UplinkPolicy::AlphaFair { alpha: 1.0 },
            UplinkPolicy::AlphaFair { alpha: 2.0 },
            UplinkPolicy::AlphaFair {
                alpha: f64::INFINITY,
            },
        ] {
            let mut grants = Vec::new();
            policy.allocate(0.0, &backlogs, &demands, &mut grants);
            for (i, g) in grants.iter().enumerate() {
                assert_eq!(
                    g.to_bits(),
                    0.0f64.to_bits(),
                    "{} grant {i} is {g:?}, want +0.0",
                    policy.name()
                );
            }
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "demands must be finite")]
    fn infinite_demand_rejected_in_debug() {
        let mut grants = Vec::new();
        UplinkPolicy::ProportionalShare.allocate(
            100.0,
            &[0.0, 0.0],
            &[f64::INFINITY, 5.0],
            &mut grants,
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "demands must be finite")]
    fn nan_demand_rejected_in_debug() {
        let mut grants = Vec::new();
        UplinkPolicy::MaxWeightBacklog.allocate(100.0, &[0.0, 0.0], &[f64::NAN, 5.0], &mut grants);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "backlogs must be finite")]
    fn nan_backlog_rejected_in_debug() {
        let mut grants = Vec::new();
        UplinkPolicy::MaxWeightBacklog.allocate(100.0, &[f64::NAN, 0.0], &[5.0, 5.0], &mut grants);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "demands must be finite")]
    fn negative_demand_rejected_in_debug() {
        let mut grants = Vec::new();
        UplinkPolicy::ProportionalShare.allocate(100.0, &[0.0], &[-1.0], &mut grants);
    }

    #[test]
    #[should_panic(expected = "one max-weight weight per session")]
    fn weighted_max_weight_rejects_length_mismatch() {
        let mut grants = Vec::new();
        UplinkPolicy::WeightedMaxWeight { weights: vec![1.0] }.allocate(
            1.0,
            &[1.0, 2.0],
            &[5.0, 5.0],
            &mut grants,
        );
    }

    #[test]
    #[should_panic(expected = "bad max-weight weight")]
    fn weighted_max_weight_rejects_zero_weight() {
        let _ = UplinkSpec::new(
            10.0,
            UplinkPolicy::WeightedMaxWeight {
                weights: vec![1.0, 0.0],
            },
        );
    }

    #[test]
    #[should_panic(expected = "alpha must be >= 1")]
    fn alpha_fair_rejects_sub_one_alpha() {
        let _ = UplinkSpec::new(10.0, UplinkPolicy::AlphaFair { alpha: 0.5 });
    }

    #[test]
    fn budget_profiles_evaluate_per_slot() {
        assert_eq!(BudgetProfile::Constant(5.0).budget_at(123), 5.0);

        let diurnal = BudgetProfile::Diurnal {
            mean: 100.0,
            amplitude: 50.0,
            period: 40,
            phase: 0.0,
        };
        diurnal.validate();
        assert!((diurnal.budget_at(0) - 100.0).abs() < 1e-9);
        assert!((diurnal.budget_at(10) - 150.0).abs() < 1e-9, "quarter peak");
        assert!((diurnal.budget_at(30) - 50.0).abs() < 1e-9, "trough");
        // One full period averages back to the mean.
        let mean: f64 = (0..40).map(|s| diurnal.budget_at(s)).sum::<f64>() / 40.0;
        assert!((mean - 100.0).abs() < 1e-6);

        let steps = BudgetProfile::PiecewiseSteps(vec![
            BudgetStep {
                start: 0,
                budget: 10.0,
            },
            BudgetStep {
                start: 5,
                budget: 2.0,
            },
            BudgetStep {
                start: 9,
                budget: 7.0,
            },
        ]);
        steps.validate();
        assert_eq!(steps.budget_at(0), 10.0);
        assert_eq!(steps.budget_at(4), 10.0);
        assert_eq!(steps.budget_at(5), 2.0);
        assert_eq!(steps.budget_at(8), 2.0);
        assert_eq!(steps.budget_at(9), 7.0);
        assert_eq!(steps.budget_at(1_000), 7.0);

        let trace = BudgetProfile::Trace(vec![3.0, 1.0, 4.0]);
        trace.validate();
        assert_eq!(trace.budget_at(0), 3.0);
        assert_eq!(trace.budget_at(2), 4.0);
        assert_eq!(trace.budget_at(99), 4.0, "past the end holds the last");
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn diurnal_rejects_negative_trough() {
        BudgetProfile::Diurnal {
            mean: 10.0,
            amplitude: 11.0,
            period: 5,
            phase: 0.0,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "need at least one traced budget")]
    fn empty_trace_rejected_at_spec_validation() {
        // Pinned behavior: an empty trace has no slot-0 budget to
        // evaluate, so it must be rejected when the spec is validated
        // (every construction path — UplinkSpec::with_profile,
        // SharedUplink::new, the scenario-file codec — runs validate()).
        let _ = UplinkSpec::with_profile(
            BudgetProfile::Trace(Vec::new()),
            UplinkPolicy::ProportionalShare,
        );
    }

    #[test]
    #[should_panic(expected = "start at slot 0")]
    fn piecewise_steps_must_cover_slot_zero() {
        BudgetProfile::PiecewiseSteps(vec![BudgetStep {
            start: 3,
            budget: 1.0,
        }])
        .validate();
    }

    #[test]
    fn driver_reports_contention_and_conserves_budget() {
        let cfg = ExperimentConfig::new(profile(), 3_000.0, 50);
        let scenario = Scenario::replicated(&cfg, ControllerSpec::OnlyMax, 4)
            .with_uplink(UplinkSpec::new(5_000.0, UplinkPolicy::ProportionalShare));
        let mut batch = crate::session::SessionBatch::summary_only(&scenario);
        let mut uplink = SharedUplink::new(scenario.uplink.clone().unwrap());
        let mut saw_contended = false;
        while !batch.is_done() {
            let stats = uplink.step_slot(&mut batch);
            // Demand is 4 × 3000 = 12000 > 5000 every slot.
            assert!(stats.granted <= 5_000.0 * (1.0 + 1e-12));
            assert_eq!(stats.budget, 5_000.0);
            saw_contended |= stats.contended;
        }
        assert!(saw_contended);
        let summary = uplink.summary();
        assert_eq!(summary.slots, 50);
        assert_eq!(summary.contended_slots, 50);
        assert_eq!(summary.mean_budget, 5_000.0);
        assert!(summary.utilization() > 0.999 && summary.utilization() < 1.001);
        assert!((summary.mean_demand - 12_000.0).abs() < 1e-6);
    }

    #[test]
    fn utilization_normalizes_by_the_mean_budget() {
        // Alternating 8000/2000 budget against a constant 12000 demand:
        // every slot is contended and fully spent, so utilization must be
        // 1 — dividing by either constant would misreport it.
        let cfg = ExperimentConfig::new(profile(), 3_000.0, 40);
        let scenario = Scenario::replicated(&cfg, ControllerSpec::OnlyMax, 4).with_uplink(
            UplinkSpec::with_profile(
                BudgetProfile::Trace((0..40).map(|s| [8_000.0, 2_000.0][s % 2]).collect()),
                UplinkPolicy::ProportionalShare,
            ),
        );
        let run = run_contended(&scenario);
        assert_eq!(run.uplink.contended_slots, 40);
        assert!((run.uplink.mean_budget - 5_000.0).abs() < 1e-9);
        assert!(
            (run.uplink.utilization() - 1.0).abs() < 1e-9,
            "got {}",
            run.uplink.utilization()
        );
    }

    #[test]
    fn utilization_is_zero_when_any_slot_budget_is_infinite() {
        let cfg = ExperimentConfig::new(profile(), 2_000.0, 10);
        let scenario = Scenario::replicated(&cfg, ControllerSpec::OnlyMax, 2).with_uplink(
            UplinkSpec::with_profile(
                BudgetProfile::Trace(vec![1_000.0, f64::INFINITY, 1_000.0]),
                UplinkPolicy::ProportionalShare,
            ),
        );
        let run = run_contended(&scenario);
        assert!(run.uplink.mean_budget.is_infinite());
        assert_eq!(run.uplink.utilization(), 0.0, "documented degradation");
    }

    #[test]
    fn run_contended_without_uplink_is_unconstrained() {
        let cfg = ExperimentConfig::new(profile(), 2_000.0, 80);
        let scenario = Scenario::replicated(&cfg, ControllerSpec::Proposed { v: 1e7 }, 3);
        let run = run_contended(&scenario);
        assert_eq!(run.policy, UplinkPolicy::Unconstrained);
        assert_eq!(run.summaries.len(), 3);
        assert_eq!(run.uplink.slots, 80);
        assert_eq!(run.uplink.contended_slots, 0);
        assert_eq!(run.uplink.utilization(), 0.0, "infinite budget");
        let csv = run.to_csv();
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.lines().nth(1).unwrap().contains("unconstrained"));
        assert_eq!(
            csv.lines().next().unwrap().split(',').count(),
            csv.lines().nth(1).unwrap().split(',').count()
        );
    }

    #[test]
    #[should_panic(expected = "bad budget")]
    fn spec_rejects_negative_budget() {
        let _ = UplinkSpec::new(-1.0, UplinkPolicy::ProportionalShare);
    }
}
