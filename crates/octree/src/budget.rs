//! Budgeted LoD extraction: render the best cloud that fits a point budget.
//!
//! The paper's controller picks a *depth*; a renderer-side refinement is to
//! pick a depth **plus a partial refinement of the next level**, spending an
//! exact point budget instead of quantizing to whole levels. Voxels are
//! refined in decreasing order of contained points, so the budget goes to
//! the densest (most detail-bearing) regions first — the greedy rate
//! allocation used by progressive point-cloud streaming systems.

use arvis_pointcloud::aabb::Aabb;
use arvis_pointcloud::cloud::PointCloud;
use arvis_pointcloud::point::Point;

use crate::lod::{LodCloud, LodMode};
use crate::tree::{NodeId, Octree};

/// Result of a budgeted extraction.
#[derive(Debug, Clone)]
pub struct BudgetedLod {
    /// The extracted cloud (`len() ≤ budget`).
    pub cloud: PointCloud,
    /// The base depth fully included.
    pub base_depth: u8,
    /// How many base-depth voxels were refined into their children.
    pub refined_voxels: usize,
}

impl Octree {
    /// The deepest depth whose full LoD fits `budget` points
    /// (`None` when even the root exceeds the budget, i.e. `budget == 0`).
    pub fn max_depth_within_budget(&self, budget: usize) -> Option<u8> {
        (0..=self.max_depth())
            .rev()
            .find(|&d| self.occupied_at_depth(d) <= budget)
    }

    /// Extracts the best cloud of at most `budget` points: the deepest
    /// fully-affordable depth, plus greedy refinement of its densest voxels
    /// into depth+1 children with the remaining budget.
    ///
    /// Returns `None` when `budget == 0`.
    pub fn extract_budgeted(&self, budget: usize, mode: LodMode) -> Option<BudgetedLod> {
        let base_depth = self.max_depth_within_budget(budget)?;
        if base_depth == self.max_depth() {
            // Everything fits: plain full-resolution LoD.
            let LodCloud { cloud, depth, .. } = self.extract_lod(base_depth, mode);
            return Some(BudgetedLod {
                cloud,
                base_depth: depth,
                refined_voxels: 0,
            });
        }

        // Candidate refinements: every base-depth node, weighted by count.
        // Refining a node replaces 1 point with `children` points, costing
        // `children − 1` extra budget.
        let mut nodes: Vec<(NodeId, Aabb)> = Vec::with_capacity(self.occupied_at_depth(base_depth));
        let mut stack: Vec<(NodeId, Aabb, u8)> = vec![(NodeId::ROOT, *self.cube(), 0)];
        while let Some((id, cube, d)) = stack.pop() {
            if d == base_depth {
                nodes.push((id, cube));
                continue;
            }
            let octants = cube.octants();
            let view = self.node(id);
            for o in 0..8 {
                if let Some(child) = view.child(o) {
                    stack.push((child.id(), octants[o], d + 1));
                }
            }
        }
        // Densest first.
        nodes.sort_by_key(|(id, _)| std::cmp::Reverse(self.node(*id).count()));

        let mut remaining = budget - nodes.len();
        let mut cloud = PointCloud::with_capacity(budget);
        let mut refined_voxels = 0usize;
        for (id, cube) in &nodes {
            let view = self.node(*id);
            let child_count = view.children().count();
            let extra = child_count.saturating_sub(1);
            if child_count > 0 && extra <= remaining && view.depth() < self.max_depth() {
                remaining -= extra;
                refined_voxels += 1;
                let octants = cube.octants();
                for o in 0..8 {
                    if let Some(child) = view.child(o) {
                        let position = match mode {
                            LodMode::VoxelCenters => octants[o].center(),
                            LodMode::MeanPositions => child.mean_position(),
                        };
                        cloud.push(Point::new(position, child.mean_color()));
                    }
                }
            } else {
                let position = match mode {
                    LodMode::VoxelCenters => cube.center(),
                    LodMode::MeanPositions => view.mean_position(),
                };
                cloud.push(Point::new(position, view.mean_color()));
            }
        }
        Some(BudgetedLod {
            cloud,
            base_depth,
            refined_voxels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::OctreeConfig;
    use arvis_pointcloud::synth::{SubjectProfile, SynthBodyConfig};
    use arvis_quality::psnr::geometry_distortion;

    fn setup() -> (PointCloud, Octree) {
        let cloud = SynthBodyConfig::new(SubjectProfile::Longdress)
            .with_target_points(15_000)
            .with_seed(21)
            .generate();
        let tree = Octree::build(&cloud, &OctreeConfig::with_max_depth(7)).unwrap();
        (cloud, tree)
    }

    #[test]
    fn max_depth_within_budget_brackets() {
        let (_, tree) = setup();
        for d in 0..=7u8 {
            let n = tree.occupied_at_depth(d);
            assert_eq!(tree.max_depth_within_budget(n), Some(d));
            if d < 7 {
                // One less than the next level's size still lands on d.
                let next = tree.occupied_at_depth(d + 1);
                assert_eq!(tree.max_depth_within_budget(next - 1), Some(d));
            }
        }
        assert_eq!(tree.max_depth_within_budget(0), None);
        assert_eq!(tree.max_depth_within_budget(usize::MAX), Some(7));
    }

    #[test]
    fn budget_is_respected_exactly() {
        let (_, tree) = setup();
        for budget in [1usize, 10, 100, 1_000, 5_000, 50_000] {
            let lod = tree
                .extract_budgeted(budget, LodMode::VoxelCenters)
                .unwrap();
            assert!(
                lod.cloud.len() <= budget,
                "budget {budget} exceeded: {}",
                lod.cloud.len()
            );
        }
        assert!(tree.extract_budgeted(0, LodMode::VoxelCenters).is_none());
    }

    #[test]
    fn budget_between_levels_beats_plain_lod() {
        // With a budget halfway between two levels, the refined cloud must
        // have strictly more points (and no worse PSNR) than the plain
        // lower-level LoD.
        let (cloud, tree) = setup();
        let base = 4u8;
        let lo = tree.occupied_at_depth(base);
        let hi = tree.occupied_at_depth(base + 1);
        let budget = (lo + hi) / 2;
        let refined = tree
            .extract_budgeted(budget, LodMode::VoxelCenters)
            .unwrap();
        assert_eq!(refined.base_depth, base);
        assert!(refined.refined_voxels > 0);
        assert!(refined.cloud.len() > lo);

        let plain = tree.extract_lod(base, LodMode::VoxelCenters);
        let psnr_refined = geometry_distortion(&cloud, &refined.cloud)
            .unwrap()
            .psnr_db();
        let psnr_plain = geometry_distortion(&cloud, &plain.cloud).unwrap().psnr_db();
        assert!(
            psnr_refined >= psnr_plain,
            "refinement must not hurt: {psnr_refined} vs {psnr_plain}"
        );
    }

    #[test]
    fn exact_level_budget_matches_plain_lod_size() {
        let (_, tree) = setup();
        let d = 5u8;
        let n = tree.occupied_at_depth(d);
        let lod = tree.extract_budgeted(n, LodMode::VoxelCenters).unwrap();
        assert_eq!(lod.base_depth, d);
        // Greedy refinement may substitute some voxels, but the size can
        // never shrink below the plain level.
        assert!(lod.cloud.len() >= n || lod.refined_voxels == 0);
        assert!(lod.cloud.len() <= n);
    }

    #[test]
    fn huge_budget_returns_full_resolution() {
        let (_, tree) = setup();
        let lod = tree
            .extract_budgeted(10_000_000, LodMode::VoxelCenters)
            .unwrap();
        assert_eq!(lod.base_depth, 7);
        assert_eq!(lod.refined_voxels, 0);
        assert_eq!(lod.cloud.len(), tree.occupied_at_depth(7));
    }

    #[test]
    fn monotone_quality_in_budget() {
        let (cloud, tree) = setup();
        let mut last_psnr = f64::NEG_INFINITY;
        for budget in [50usize, 500, 5_000, 20_000] {
            let lod = tree
                .extract_budgeted(budget, LodMode::VoxelCenters)
                .unwrap();
            let psnr = geometry_distortion(&cloud, &lod.cloud).unwrap().psnr_db();
            assert!(
                psnr >= last_psnr - 0.5,
                "quality should grow with budget: {psnr} after {last_psnr}"
            );
            last_psnr = psnr;
        }
    }
}
