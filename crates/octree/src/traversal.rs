//! Breadth-first and depth-first traversal iterators.

use std::collections::VecDeque;

use arvis_pointcloud::aabb::Aabb;

use crate::tree::{NodeId, NodeView, Octree};

/// A node visited during traversal, with its derived cube.
#[derive(Debug, Clone, Copy)]
pub struct Visit<'a> {
    /// The node.
    pub node: NodeView<'a>,
    /// The cube the node covers.
    pub cube: Aabb,
}

/// Breadth-first iterator over all nodes.
pub struct Bfs<'a> {
    tree: &'a Octree,
    queue: VecDeque<(NodeId, Aabb)>,
}

impl<'a> Iterator for Bfs<'a> {
    type Item = Visit<'a>;

    fn next(&mut self) -> Option<Visit<'a>> {
        let (id, cube) = self.queue.pop_front()?;
        let node = self.tree.node(id);
        let octants = cube.octants();
        for o in 0..8 {
            if let Some(child) = node.child(o) {
                self.queue.push_back((child.id(), octants[o]));
            }
        }
        Some(Visit { node, cube })
    }
}

/// Depth-first (pre-order) iterator over all nodes.
pub struct Dfs<'a> {
    tree: &'a Octree,
    stack: Vec<(NodeId, Aabb)>,
}

impl<'a> Iterator for Dfs<'a> {
    type Item = Visit<'a>;

    fn next(&mut self) -> Option<Visit<'a>> {
        let (id, cube) = self.stack.pop()?;
        let node = self.tree.node(id);
        let octants = cube.octants();
        // Push in reverse so octant 0 is visited first.
        for o in (0..8).rev() {
            if let Some(child) = node.child(o) {
                self.stack.push((child.id(), octants[o]));
            }
        }
        Some(Visit { node, cube })
    }
}

impl Octree {
    /// Iterates over all nodes breadth-first (level by level), yielding each
    /// node with its cube.
    pub fn bfs(&self) -> Bfs<'_> {
        let mut queue = VecDeque::new();
        queue.push_back((NodeId::ROOT, *self.cube()));
        Bfs { tree: self, queue }
    }

    /// Iterates over all nodes depth-first pre-order.
    pub fn dfs(&self) -> Dfs<'_> {
        Dfs {
            tree: self,
            stack: vec![(NodeId::ROOT, *self.cube())],
        }
    }

    /// Iterates over the max-depth leaves with their cubes
    /// (depth-first order).
    pub fn leaves(&self) -> impl Iterator<Item = Visit<'_>> {
        let max = self.max_depth();
        self.dfs().filter(move |v| v.node.depth() == max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::OctreeConfig;
    use arvis_pointcloud::cloud::PointCloud;
    use arvis_pointcloud::math::Vec3;
    use arvis_pointcloud::point::Point;

    fn tree() -> Octree {
        let mut c = PointCloud::new();
        for i in 0..8u32 {
            c.push(Point::from_position(Vec3::new(
                if i & 1 == 0 { 0.01 } else { 0.99 },
                if i & 2 == 0 { 0.01 } else { 0.99 },
                if i & 4 == 0 { 0.01 } else { 0.99 },
            )));
        }
        Octree::build(&c, &OctreeConfig::with_max_depth(3)).unwrap()
    }

    #[test]
    fn bfs_visits_every_node_once() {
        let t = tree();
        let visited: Vec<NodeId> = t.bfs().map(|v| v.node.id()).collect();
        assert_eq!(visited.len(), t.node_count());
        let mut unique = visited.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), visited.len());
    }

    #[test]
    fn bfs_is_level_ordered() {
        let t = tree();
        let depths: Vec<u8> = t.bfs().map(|v| v.node.depth()).collect();
        for w in depths.windows(2) {
            assert!(w[0] <= w[1], "BFS must be non-decreasing in depth");
        }
    }

    #[test]
    fn dfs_visits_every_node_once() {
        let t = tree();
        let visited: Vec<NodeId> = t.dfs().map(|v| v.node.id()).collect();
        assert_eq!(visited.len(), t.node_count());
    }

    #[test]
    fn dfs_parent_before_children() {
        let t = tree();
        let order: Vec<NodeId> = t.dfs().map(|v| v.node.id()).collect();
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        for v in t.dfs() {
            for child in v.node.children() {
                assert!(pos(v.node.id()) < pos(child.id()));
            }
        }
    }

    #[test]
    fn cubes_nest_correctly() {
        let t = tree();
        for v in t.bfs() {
            // Every visited point mass lies inside its cube (inflate for fp).
            let inflated = v.cube.inflated(1e-9);
            assert!(inflated.contains(v.node.mean_position()));
        }
    }

    #[test]
    fn leaves_are_at_max_depth() {
        let t = tree();
        let leaves: Vec<_> = t.leaves().collect();
        assert_eq!(leaves.len(), t.occupied_at_depth(3));
        for l in &leaves {
            assert_eq!(l.node.depth(), 3);
            assert!(l.node.is_leaf());
        }
    }
}
