//! Octree substrate for the `arvis` workspace.
//!
//! The paper controls AR visualization quality through the *Octree depth* used
//! to voxelize each point-cloud frame (its Fig. 1). This crate provides the
//! octree the pipeline needs, replacing Open3D's octree functionality:
//!
//! - [`Octree`]: construction from a [`arvis_pointcloud::PointCloud`] over its
//!   bounding cube, up to a configurable maximum depth;
//! - [`lod`]: depth-limited level-of-detail extraction — the clouds a renderer
//!   would draw at each candidate depth `d ∈ R`, and the occupied-voxel counts
//!   `a(d)` that drive the scheduler's queue arrivals;
//! - [`occupancy`]: breadth-first occupancy-byte serialization (the octree
//!   byte-stream format used by point-cloud codecs such as MPEG G-PCC);
//! - [`traversal`]: breadth- and depth-first iterators;
//! - [`query`]: point location, box queries and nearest-voxel lookups;
//! - [`stats`]: per-level node counts and branching statistics.
//!
//! # Example
//!
//! ```
//! use arvis_pointcloud::synth::{SubjectProfile, SynthBodyConfig};
//! use arvis_octree::{Octree, OctreeConfig};
//!
//! let cloud = SynthBodyConfig::new(SubjectProfile::Loot)
//!     .with_target_points(20_000)
//!     .generate();
//! let tree = Octree::build(&cloud, &OctreeConfig::with_max_depth(8)).unwrap();
//! // Occupancy grows with depth until it saturates at the point count.
//! assert!(tree.occupied_at_depth(4) < tree.occupied_at_depth(8));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
// The recurring `for o in 0..8 { ... child(o) / octants[o] }` walk needs
// the octant index for two parallel lookups; an iterator zip would
// obscure the child-numbering invariant shared with `Aabb::octants`.
#![allow(clippy::needless_range_loop)]

pub mod attr;
pub mod budget;
pub mod diff;
pub mod lod;
pub mod occupancy;
pub mod query;
pub mod stats;
pub mod traversal;
mod tree;

pub use lod::{LodCloud, LodMode};
pub use tree::{
    NodeId, NodeView, Octree, OctreeBuilder, OctreeConfig, OctreeError, MAX_SUPPORTED_DEPTH,
};
