//! Depth-limited level-of-detail (LoD) extraction.
//!
//! Rendering a frame "at octree depth `d`" means drawing one point per
//! occupied depth-`d` voxel (paper Fig. 1). [`Octree::extract_lod`] produces
//! that cloud, and [`Octree::occupancy_profile`] produces the per-depth
//! counts `a(d)` the scheduler feeds on.

use arvis_pointcloud::aabb::Aabb;
use arvis_pointcloud::cloud::PointCloud;
use arvis_pointcloud::point::Point;

use crate::tree::{NodeId, Octree};

/// Where the representative point of each voxel is placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LodMode {
    /// At the voxel center (what a voxel renderer draws; Open3D's octree
    /// visualization). Default.
    #[default]
    VoxelCenters,
    /// At the mean of the contained points (lower geometric error; what
    /// `voxel_down_sample` produces).
    MeanPositions,
}

/// A level-of-detail cloud extracted at a fixed depth.
#[derive(Debug, Clone)]
pub struct LodCloud {
    /// The extracted points (one per occupied voxel).
    pub cloud: PointCloud,
    /// The depth it was extracted at.
    pub depth: u8,
    /// Edge length of the voxels at that depth.
    pub voxel_size: f64,
}

impl Octree {
    /// Extracts the LoD cloud at `depth` (one point per occupied voxel, with
    /// the voxel's mean color).
    ///
    /// # Panics
    ///
    /// Panics when `depth > max_depth`.
    pub fn extract_lod(&self, depth: u8, mode: LodMode) -> LodCloud {
        assert!(
            depth <= self.max_depth(),
            "depth {depth} exceeds max depth {}",
            self.max_depth()
        );
        let mut cloud = PointCloud::with_capacity(self.occupied_at_depth(depth));
        // Walk the tree down to `depth`, tracking each node's cube.
        let mut stack: Vec<(NodeId, Aabb, u8)> = vec![(NodeId::ROOT, *self.cube(), 0)];
        while let Some((id, cube, d)) = stack.pop() {
            let view = self.node(id);
            if d == depth {
                let position = match mode {
                    LodMode::VoxelCenters => cube.center(),
                    LodMode::MeanPositions => view.mean_position(),
                };
                cloud.push(Point::new(position, view.mean_color()));
                continue;
            }
            let octants = cube.octants();
            for o in 0..8 {
                if let Some(child) = view.child(o) {
                    stack.push((child.id(), octants[o], d + 1));
                }
            }
        }
        LodCloud {
            cloud,
            depth,
            voxel_size: self.voxel_size_at_depth(depth),
        }
    }

    /// The occupied-voxel count at every depth `0..=max_depth`.
    ///
    /// Element `d` is `a(d)` in the paper's notation: the workload injected
    /// into the visualization queue when depth `d` is selected.
    pub fn occupancy_profile(&self) -> Vec<usize> {
        (0..=self.max_depth())
            .map(|d| self.occupied_at_depth(d))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::OctreeConfig;
    use arvis_pointcloud::synth::{SubjectProfile, SynthBodyConfig};

    fn body_tree(depth: u8) -> Octree {
        let cloud = SynthBodyConfig::new(SubjectProfile::RedAndBlack)
            .with_target_points(8_000)
            .with_seed(3)
            .generate();
        Octree::build(&cloud, &OctreeConfig::with_max_depth(depth)).unwrap()
    }

    #[test]
    fn lod_size_equals_occupancy() {
        let tree = body_tree(7);
        for d in [0u8, 2, 4, 6, 7] {
            let lod = tree.extract_lod(d, LodMode::VoxelCenters);
            assert_eq!(lod.cloud.len(), tree.occupied_at_depth(d), "depth {d}");
            assert_eq!(lod.depth, d);
        }
    }

    #[test]
    fn voxel_centers_lie_inside_cube() {
        let tree = body_tree(5);
        let lod = tree.extract_lod(5, LodMode::VoxelCenters);
        for p in lod.cloud.iter() {
            assert!(tree.cube().contains(p.position));
        }
    }

    #[test]
    fn mean_positions_lie_inside_cube() {
        let tree = body_tree(5);
        let lod = tree.extract_lod(4, LodMode::MeanPositions);
        for p in lod.cloud.iter() {
            assert!(tree.cube().contains(p.position));
        }
    }

    #[test]
    fn lod_at_depth_zero_is_single_point() {
        let tree = body_tree(4);
        let lod = tree.extract_lod(0, LodMode::VoxelCenters);
        assert_eq!(lod.cloud.len(), 1);
        assert!(
            lod.cloud.points()[0]
                .position
                .distance(tree.cube().center())
                < 1e-12
        );
    }

    #[test]
    fn voxel_size_matches_depth() {
        let tree = body_tree(6);
        let lod = tree.extract_lod(3, LodMode::VoxelCenters);
        assert!((lod.voxel_size - tree.cube().max_extent() / 8.0).abs() < 1e-12);
    }

    #[test]
    fn mean_mode_has_lower_error_than_centers() {
        // Geometric intuition check: the mean position is closer to the
        // original points than the voxel center, on average.
        let cloud = SynthBodyConfig::new(SubjectProfile::Loot)
            .with_target_points(5_000)
            .generate();
        let tree = Octree::build(&cloud, &OctreeConfig::with_max_depth(4)).unwrap();
        let centers = tree.extract_lod(4, LodMode::VoxelCenters);
        let means = tree.extract_lod(4, LodMode::MeanPositions);
        let tree_c = arvis_pointcloud::kdtree::KdTree::build(centers.cloud.positions());
        let tree_m = arvis_pointcloud::kdtree::KdTree::build(means.cloud.positions());
        let err = |t: &arvis_pointcloud::kdtree::KdTree| -> f64 {
            cloud
                .positions()
                .map(|p| t.nearest_distance_squared(p).unwrap())
                .sum::<f64>()
        };
        assert!(err(&tree_m) <= err(&tree_c));
    }

    #[test]
    fn occupancy_profile_shape() {
        let tree = body_tree(8);
        let profile = tree.occupancy_profile();
        assert_eq!(profile.len(), 9);
        assert_eq!(profile[0], 1);
        for w in profile.windows(2) {
            assert!(w[0] <= w[1], "profile must be non-decreasing: {profile:?}");
        }
        // Growth factor per level is at most 8.
        for w in profile.windows(2) {
            assert!(w[1] <= w[0] * 8);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds max depth")]
    fn extract_beyond_max_depth_panics() {
        let tree = body_tree(3);
        let _ = tree.extract_lod(4, LodMode::VoxelCenters);
    }

    #[test]
    fn fig1_style_depths_increase_resolution() {
        // Paper Fig. 1 shows depths 5, 6, 7 with visibly increasing detail.
        let cloud = SynthBodyConfig::new(SubjectProfile::Longdress)
            .with_target_points(60_000)
            .generate();
        let tree = Octree::build(&cloud, &OctreeConfig::with_max_depth(7)).unwrap();
        let n5 = tree.extract_lod(5, LodMode::VoxelCenters).cloud.len();
        let n6 = tree.extract_lod(6, LodMode::VoxelCenters).cloud.len();
        let n7 = tree.extract_lod(7, LodMode::VoxelCenters).cloud.len();
        assert!(n5 < n6 && n6 < n7, "{n5} < {n6} < {n7} violated");
        // Depth 6 should have meaningfully more voxels than depth 5 for a
        // surface-like object (~4x per level until saturation).
        assert!(n6 as f64 / n5 as f64 > 2.0);
    }
}
