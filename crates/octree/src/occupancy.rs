//! Breadth-first occupancy-byte serialization.
//!
//! An octree's *structure* (which voxels are occupied at each level) can be
//! encoded as one byte per internal node, in breadth-first order — the format
//! used by point-cloud geometry codecs (e.g. MPEG G-PCC) and a natural unit
//! for "AR stream bytes ready to be visualized" in the paper's queue model.

use arvis_pointcloud::aabb::Aabb;
use arvis_pointcloud::cloud::PointCloud;
use arvis_pointcloud::point::Point;
use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::tree::{NodeId, Octree};

/// Errors from decoding an occupancy stream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The stream ended before all announced levels were decoded.
    Truncated,
    /// A node byte was zero, which would encode an occupied node with no
    /// occupied children — invalid in a tree built from points.
    EmptyNodeByte {
        /// Byte offset of the offending byte.
        offset: usize,
    },
    /// The header is malformed.
    BadHeader,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "occupancy stream truncated"),
            DecodeError::EmptyNodeByte { offset } => {
                write!(f, "zero occupancy byte at offset {offset}")
            }
            DecodeError::BadHeader => write!(f, "malformed occupancy header"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serializes the tree structure down to `depth` as an occupancy byte
/// stream.
///
/// Layout: `[depth: u8][root byte][level-1 bytes...]...[level-(depth-1) bytes]`
/// where each level's bytes appear in the same order as the parent bits of
/// the previous level. A tree serialized to `depth` reconstructs the voxel
/// set of every level `0..=depth`.
///
/// # Panics
///
/// Panics when `depth` is 0 or exceeds the tree's max depth.
pub fn encode_occupancy(tree: &Octree, depth: u8) -> Bytes {
    assert!(depth >= 1, "occupancy encoding needs depth >= 1");
    assert!(depth <= tree.max_depth(), "depth exceeds max depth");
    let mut out = BytesMut::with_capacity(1 + tree.node_count());
    out.put_u8(depth);
    // Breadth-first over internal nodes of depth < `depth`.
    let mut frontier: Vec<NodeId> = vec![NodeId::ROOT];
    for _level in 0..depth {
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for id in &frontier {
            let view = tree.node(*id);
            out.put_u8(view.occupancy_byte());
            for child in view.children() {
                next.push(child.id());
            }
        }
        frontier = next;
    }
    out.freeze()
}

/// Decodes an occupancy stream into the voxel-center cloud of its deepest
/// level, over the given bounding cube.
///
/// The colors of the result are black (occupancy streams carry geometry
/// only).
pub fn decode_occupancy(mut stream: Bytes, cube: &Aabb) -> Result<PointCloud, DecodeError> {
    if stream.remaining() < 1 {
        return Err(DecodeError::BadHeader);
    }
    let depth = stream.get_u8();
    if depth == 0 {
        return Err(DecodeError::BadHeader);
    }
    let mut offset = 1usize;
    // Frontier of cubes whose occupancy byte is next in the stream.
    let mut frontier: Vec<Aabb> = vec![cube.bounding_cube()];
    for _level in 0..depth {
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for cell in &frontier {
            if stream.remaining() < 1 {
                return Err(DecodeError::Truncated);
            }
            let byte = stream.get_u8();
            if byte == 0 {
                return Err(DecodeError::EmptyNodeByte { offset });
            }
            offset += 1;
            let octants = cell.octants();
            for (o, octant_cube) in octants.iter().enumerate() {
                if byte & (1 << o) != 0 {
                    next.push(*octant_cube);
                }
            }
        }
        frontier = next;
    }
    Ok(frontier
        .into_iter()
        .map(|c| Point::from_position(c.center()))
        .collect())
}

/// The encoded size in bytes of the tree structure down to `depth`
/// (header included), without materializing the stream.
pub fn encoded_size(tree: &Octree, depth: u8) -> usize {
    assert!(depth >= 1 && depth <= tree.max_depth());
    // One byte per node at depths 0..depth.
    let internal: usize = (0..depth).map(|d| tree.occupied_at_depth(d)).sum();
    1 + internal
}

/// Incremental occupancy decoding: consume the stream as bytes arrive and
/// surface a coarse-to-fine preview after every completed level.
///
/// An AR client behind a slow link does not wait for the whole frame — the
/// breadth-first layout means each completed level is already a renderable
/// LoD. Feed arbitrary chunks with [`ProgressiveDecoder::push`]; whenever a
/// level completes, [`ProgressiveDecoder::preview`] returns the current
/// voxel-center cloud.
#[derive(Debug, Clone)]
pub struct ProgressiveDecoder {
    /// Cubes whose occupancy bytes are expected next (current level).
    frontier: Vec<Aabb>,
    /// Cubes decoded for the next level so far.
    next: Vec<Aabb>,
    /// Index into `frontier` of the next byte's parent.
    cursor: usize,
    declared_depth: Option<u8>,
    completed_levels: u8,
    offset: usize,
}

impl ProgressiveDecoder {
    /// Starts a decoder over the frame's bounding cube.
    pub fn new(cube: &Aabb) -> ProgressiveDecoder {
        ProgressiveDecoder {
            frontier: vec![cube.bounding_cube()],
            next: Vec::new(),
            cursor: 0,
            declared_depth: None,
            completed_levels: 0,
            offset: 0,
        }
    }

    /// Number of fully decoded levels so far.
    pub fn completed_levels(&self) -> u8 {
        self.completed_levels
    }

    /// `true` when the declared depth has been fully decoded.
    pub fn is_complete(&self) -> bool {
        self.declared_depth
            .is_some_and(|d| self.completed_levels >= d)
    }

    /// Consumes a chunk of stream bytes. Returns how many levels *completed*
    /// during this push.
    ///
    /// # Errors
    ///
    /// Rejects zero occupancy bytes, a zero declared depth, and bytes past
    /// the declared end of the stream.
    pub fn push(&mut self, chunk: &[u8]) -> Result<u8, DecodeError> {
        let mut completed = 0u8;
        for &byte in chunk {
            if self.declared_depth.is_none() {
                if byte == 0 {
                    return Err(DecodeError::BadHeader);
                }
                self.declared_depth = Some(byte);
                self.offset = 1;
                continue;
            }
            if self.is_complete() {
                // Trailing garbage after the declared depth.
                return Err(DecodeError::Truncated);
            }
            if byte == 0 {
                return Err(DecodeError::EmptyNodeByte {
                    offset: self.offset,
                });
            }
            let cell = self.frontier[self.cursor];
            let octants = cell.octants();
            for (o, octant_cube) in octants.iter().enumerate() {
                if byte & (1 << o) != 0 {
                    self.next.push(*octant_cube);
                }
            }
            self.cursor += 1;
            self.offset += 1;
            if self.cursor == self.frontier.len() {
                self.frontier = std::mem::take(&mut self.next);
                self.cursor = 0;
                self.completed_levels += 1;
                completed += 1;
            }
        }
        Ok(completed)
    }

    /// The current coarse preview: one voxel-center point per cell of the
    /// deepest *completed* level.
    pub fn preview(&self) -> PointCloud {
        if self.cursor == 0 {
            // Frontier is exactly the last completed level.
            self.frontier
                .iter()
                .map(|c| Point::from_position(c.center()))
                .collect()
        } else {
            // Mid-level: the completed part of this level lives in `next`,
            // the rest still at the previous level's granularity.
            self.next
                .iter()
                .chain(&self.frontier[self.cursor..])
                .map(|c| Point::from_position(c.center()))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lod::LodMode;
    use crate::tree::OctreeConfig;
    use arvis_pointcloud::math::Vec3;
    use arvis_pointcloud::synth::{SubjectProfile, SynthBodyConfig};

    fn body_tree(depth: u8) -> Octree {
        let cloud = SynthBodyConfig::new(SubjectProfile::Loot)
            .with_target_points(5_000)
            .with_seed(11)
            .generate();
        Octree::build(&cloud, &OctreeConfig::with_max_depth(depth)).unwrap()
    }

    #[test]
    fn roundtrip_reconstructs_voxel_centers() {
        let tree = body_tree(5);
        let stream = encode_occupancy(&tree, 5);
        let decoded = decode_occupancy(stream, tree.cube()).unwrap();
        let expected = tree.extract_lod(5, LodMode::VoxelCenters);
        assert_eq!(decoded.len(), expected.cloud.len());
        // Same voxel centers as sets (order may differ).
        let mut a: Vec<(i64, i64, i64)> = decoded
            .positions()
            .map(|p| ((p.x * 1e6) as i64, (p.y * 1e6) as i64, (p.z * 1e6) as i64))
            .collect();
        let mut b: Vec<(i64, i64, i64)> = expected
            .cloud
            .positions()
            .map(|p| ((p.x * 1e6) as i64, (p.y * 1e6) as i64, (p.z * 1e6) as i64))
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn encoded_size_matches_stream_length() {
        let tree = body_tree(6);
        for d in 1..=6u8 {
            let stream = encode_occupancy(&tree, d);
            assert_eq!(stream.len(), encoded_size(&tree, d), "depth {d}");
        }
    }

    #[test]
    fn deeper_encodings_are_larger() {
        let tree = body_tree(6);
        let mut prev = 0usize;
        for d in 1..=6u8 {
            let size = encoded_size(&tree, d);
            assert!(size > prev, "size must grow with depth");
            prev = size;
        }
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let tree = body_tree(4);
        let stream = encode_occupancy(&tree, 4);
        let cut = stream.slice(0..stream.len() - 1);
        assert_eq!(
            decode_occupancy(cut, tree.cube()).unwrap_err(),
            DecodeError::Truncated
        );
    }

    #[test]
    fn empty_stream_is_rejected() {
        assert_eq!(
            decode_occupancy(Bytes::new(), &Aabb::cube(Vec3::ZERO, 1.0)).unwrap_err(),
            DecodeError::BadHeader
        );
    }

    #[test]
    fn zero_depth_header_is_rejected() {
        let stream = Bytes::from_static(&[0u8]);
        assert_eq!(
            decode_occupancy(stream, &Aabb::cube(Vec3::ZERO, 1.0)).unwrap_err(),
            DecodeError::BadHeader
        );
    }

    #[test]
    fn zero_byte_is_rejected() {
        // depth 1, root byte 0 -> invalid.
        let stream = Bytes::from_static(&[1u8, 0u8]);
        assert!(matches!(
            decode_occupancy(stream, &Aabb::cube(Vec3::ZERO, 1.0)).unwrap_err(),
            DecodeError::EmptyNodeByte { offset: 1 }
        ));
    }

    #[test]
    #[should_panic(expected = "depth >= 1")]
    fn encode_depth_zero_panics() {
        let tree = body_tree(3);
        let _ = encode_occupancy(&tree, 0);
    }

    #[test]
    fn progressive_matches_batch_decode() {
        let tree = body_tree(5);
        let stream = encode_occupancy(&tree, 5);
        let mut dec = ProgressiveDecoder::new(tree.cube());
        // Feed in awkward 7-byte chunks.
        for chunk in stream.chunks(7) {
            dec.push(chunk).unwrap();
        }
        assert!(dec.is_complete());
        assert_eq!(dec.completed_levels(), 5);
        let progressive = dec.preview();
        let batch = decode_occupancy(stream, tree.cube()).unwrap();
        assert_eq!(progressive.len(), batch.len());
    }

    #[test]
    fn progressive_previews_refine_monotonically() {
        let tree = body_tree(5);
        let stream = encode_occupancy(&tree, 5);
        let mut dec = ProgressiveDecoder::new(tree.cube());
        let mut sizes = vec![dec.preview().len()];
        for chunk in stream.chunks(16) {
            dec.push(chunk).unwrap();
            sizes.push(dec.preview().len());
        }
        // Preview size is non-decreasing as bytes arrive (each byte expands
        // one cell into >= 1 children).
        for w in sizes.windows(2) {
            assert!(w[1] >= w[0], "preview shrank: {sizes:?}");
        }
        // The level-complete counts match the tree occupancies.
        assert_eq!(*sizes.last().unwrap(), tree.occupied_at_depth(5));
    }

    #[test]
    fn progressive_mid_level_preview_counts() {
        let tree = body_tree(3);
        let stream = encode_occupancy(&tree, 3);
        let mut dec = ProgressiveDecoder::new(tree.cube());
        // Header + root byte: level 1 complete.
        dec.push(&stream[..2]).unwrap();
        assert_eq!(dec.completed_levels(), 1);
        assert_eq!(dec.preview().len(), tree.occupied_at_depth(1));
        assert!(!dec.is_complete());
        // Rest of the stream.
        dec.push(&stream[2..]).unwrap();
        assert!(dec.is_complete());
    }

    #[test]
    fn progressive_rejects_bad_streams() {
        let tree = body_tree(3);
        // Zero depth header.
        let mut dec = ProgressiveDecoder::new(tree.cube());
        assert_eq!(dec.push(&[0u8]).unwrap_err(), DecodeError::BadHeader);
        // Zero occupancy byte.
        let mut dec = ProgressiveDecoder::new(tree.cube());
        assert!(matches!(
            dec.push(&[3u8, 0u8]).unwrap_err(),
            DecodeError::EmptyNodeByte { offset: 1 }
        ));
        // Trailing bytes after completion.
        let stream = encode_occupancy(&tree, 3);
        let mut dec = ProgressiveDecoder::new(tree.cube());
        dec.push(&stream).unwrap();
        assert_eq!(dec.push(&[0xff]).unwrap_err(), DecodeError::Truncated);
    }
}
