//! Attribute (color) coding: together with [`crate::occupancy`], a complete
//! byte-stream codec for an LoD frame — the "AR streams that are ready to be
//! visualized" of the paper's queue, measured in actual bytes.
//!
//! Layout: `[depth: u8][r g b]*` with one RGB triple per occupied depth-`d`
//! voxel, in the same breadth-first (Morton) order the occupancy stream
//! enumerates voxels, so `(occupancy, attributes)` reconstructs the exact
//! LoD cloud.

use arvis_pointcloud::cloud::PointCloud;
use arvis_pointcloud::color::Color;
use arvis_pointcloud::point::Point;
use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::occupancy::{decode_occupancy, DecodeError};
use crate::tree::Octree;

/// Serializes the mean colors of all depth-`depth` voxels, breadth-first.
///
/// # Panics
///
/// Panics when `depth` exceeds the tree's max depth.
pub fn encode_attributes(tree: &Octree, depth: u8) -> Bytes {
    assert!(depth <= tree.max_depth(), "depth exceeds max depth");
    let mut out = BytesMut::with_capacity(1 + 3 * tree.occupied_at_depth(depth));
    out.put_u8(depth);
    // nodes_at_depth iterates the arena level, which is breadth-first and
    // Morton-ordered within each parent — the same order occupancy decode
    // expands children (octant 0..8).
    for id in tree.nodes_at_depth(depth) {
        let c = tree.node(id).mean_color();
        out.put_u8(c.r);
        out.put_u8(c.g);
        out.put_u8(c.b);
    }
    out.freeze()
}

/// Decodes an attribute stream into colors.
///
/// # Errors
///
/// [`DecodeError::BadHeader`] for an empty stream,
/// [`DecodeError::Truncated`] when the byte count is not a multiple of 3.
pub fn decode_attributes(mut stream: Bytes) -> Result<(u8, Vec<Color>), DecodeError> {
    if stream.remaining() < 1 {
        return Err(DecodeError::BadHeader);
    }
    let depth = stream.get_u8();
    if !stream.remaining().is_multiple_of(3) {
        return Err(DecodeError::Truncated);
    }
    let mut colors = Vec::with_capacity(stream.remaining() / 3);
    while stream.remaining() >= 3 {
        colors.push(Color::new(
            stream.get_u8(),
            stream.get_u8(),
            stream.get_u8(),
        ));
    }
    Ok((depth, colors))
}

/// A complete encoded LoD frame: geometry (occupancy) plus attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedFrame {
    /// Breadth-first occupancy stream (see [`crate::occupancy`]).
    pub occupancy: Bytes,
    /// Per-voxel colors in the matching order.
    pub attributes: Bytes,
    /// LoD depth.
    pub depth: u8,
}

impl EncodedFrame {
    /// Encodes the depth-`depth` LoD of a tree.
    ///
    /// # Panics
    ///
    /// Panics when `depth` is 0 or exceeds the tree's max depth.
    pub fn encode(tree: &Octree, depth: u8) -> EncodedFrame {
        EncodedFrame {
            occupancy: crate::occupancy::encode_occupancy(tree, depth),
            attributes: encode_attributes(tree, depth),
            depth,
        }
    }

    /// Total size in bytes — a physically meaningful work unit for the
    /// scheduler's queue (instead of points).
    pub fn byte_size(&self) -> usize {
        self.occupancy.len() + self.attributes.len()
    }

    /// Reconstructs the LoD cloud (voxel centers + colors) over the tree's
    /// original cube.
    ///
    /// # Errors
    ///
    /// Propagates occupancy/attribute decode failures;
    /// [`DecodeError::Truncated`] when the two streams disagree on the voxel
    /// count or depth.
    pub fn decode(&self, cube: &arvis_pointcloud::Aabb) -> Result<PointCloud, DecodeError> {
        let geometry = decode_occupancy(self.occupancy.clone(), cube)?;
        let (depth, colors) = decode_attributes(self.attributes.clone())?;
        if depth != self.depth || colors.len() != geometry.len() {
            return Err(DecodeError::Truncated);
        }
        Ok(geometry
            .positions()
            .zip(colors)
            .map(|(p, c)| Point::new(p, c))
            .collect())
    }
}

impl Octree {
    /// Convenience: encoded byte size of the depth-`depth` LoD frame —
    /// `a(d)` in bytes rather than points.
    ///
    /// # Panics
    ///
    /// Panics when `depth` is 0 or exceeds the max depth.
    pub fn encoded_frame_size(&self, depth: u8) -> usize {
        crate::occupancy::encoded_size(self, depth) + 1 + 3 * self.occupied_at_depth(depth)
    }
}

/// Sanity helper for tests: the decoded frame must equal the LoD extraction
/// as a set of (position, color) pairs.
#[doc(hidden)]
pub fn frames_equivalent(a: &PointCloud, b: &PointCloud) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let quantize = |c: &PointCloud| -> Vec<(i64, i64, i64, Color)> {
        let mut v: Vec<(i64, i64, i64, Color)> = c
            .iter()
            .map(|p| {
                (
                    (p.position.x * 1e6).round() as i64,
                    (p.position.y * 1e6).round() as i64,
                    (p.position.z * 1e6).round() as i64,
                    p.color,
                )
            })
            .collect();
        v.sort_unstable();
        v
    };
    quantize(a) == quantize(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lod::LodMode;
    use crate::tree::OctreeConfig;
    use arvis_pointcloud::synth::{SubjectProfile, SynthBodyConfig};

    fn tree(depth: u8) -> Octree {
        let cloud = SynthBodyConfig::new(SubjectProfile::Longdress)
            .with_target_points(6_000)
            .with_seed(13)
            .generate();
        Octree::build(&cloud, &OctreeConfig::with_max_depth(depth)).unwrap()
    }

    #[test]
    fn attributes_roundtrip() {
        let t = tree(5);
        let stream = encode_attributes(&t, 4);
        let (depth, colors) = decode_attributes(stream).unwrap();
        assert_eq!(depth, 4);
        assert_eq!(colors.len(), t.occupied_at_depth(4));
    }

    #[test]
    fn full_frame_roundtrip_reconstructs_lod() {
        let t = tree(5);
        for d in [2u8, 4, 5] {
            let frame = EncodedFrame::encode(&t, d);
            let decoded = frame.decode(t.cube()).unwrap();
            let lod = t.extract_lod(d, LodMode::VoxelCenters);
            assert!(
                frames_equivalent(&decoded, &lod.cloud),
                "decoded frame differs from LoD at depth {d}"
            );
        }
    }

    #[test]
    fn byte_size_matches_streams_and_helper() {
        let t = tree(6);
        for d in [1u8, 3, 6] {
            let frame = EncodedFrame::encode(&t, d);
            assert_eq!(
                frame.byte_size(),
                frame.occupancy.len() + frame.attributes.len()
            );
            assert_eq!(frame.byte_size(), t.encoded_frame_size(d));
        }
    }

    #[test]
    fn frame_sizes_grow_with_depth() {
        let t = tree(6);
        let mut last = 0usize;
        for d in 1..=6u8 {
            let size = t.encoded_frame_size(d);
            assert!(size > last, "frame size must grow with depth");
            last = size;
        }
    }

    #[test]
    fn mismatched_streams_rejected() {
        let t = tree(4);
        let mut frame = EncodedFrame::encode(&t, 4);
        // Attributes from a different depth.
        frame.attributes = encode_attributes(&t, 3);
        assert!(frame.decode(t.cube()).is_err());
    }

    #[test]
    fn truncated_attribute_stream_rejected() {
        let t = tree(4);
        let stream = encode_attributes(&t, 3);
        let cut = stream.slice(0..stream.len() - 1);
        assert!(matches!(
            decode_attributes(cut),
            Err(DecodeError::Truncated)
        ));
        assert!(matches!(
            decode_attributes(Bytes::new()),
            Err(DecodeError::BadHeader)
        ));
    }
}
