//! Core octree structure and construction.

use arvis_pointcloud::aabb::Aabb;
use arvis_pointcloud::cloud::PointCloud;
use arvis_pointcloud::color::Color;
use arvis_pointcloud::math::Vec3;
use arvis_pointcloud::point::Point;

/// Maximum supported octree depth. Ten matches the 1024³ grid of the 8i
/// scans; 21 is the Morton-code limit of the voxel substrate.
pub const MAX_SUPPORTED_DEPTH: u8 = 21;

/// Errors from octree construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OctreeError {
    /// Cannot build an octree over an empty cloud.
    EmptyCloud,
    /// Requested depth exceeds [`MAX_SUPPORTED_DEPTH`].
    DepthTooLarge {
        /// The depth that was requested.
        requested: u8,
    },
    /// The supplied bounding cube does not contain every input point.
    PointOutsideCube {
        /// Index of the first offending point.
        index: usize,
    },
}

impl std::fmt::Display for OctreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OctreeError::EmptyCloud => write!(f, "cannot build an octree over an empty cloud"),
            OctreeError::DepthTooLarge { requested } => write!(
                f,
                "requested depth {requested} exceeds the supported maximum {MAX_SUPPORTED_DEPTH}"
            ),
            OctreeError::PointOutsideCube { index } => {
                write!(f, "point {index} lies outside the supplied bounding cube")
            }
        }
    }
}

impl std::error::Error for OctreeError {}

/// Construction parameters for [`Octree::build`].
#[derive(Debug, Clone, PartialEq)]
pub struct OctreeConfig {
    /// Maximum subdivision depth; leaves live at exactly this depth.
    pub max_depth: u8,
    /// Bounding cube to build over. `None` (the default) uses the cloud's
    /// own bounding cube, matching Open3D's behaviour. Supplying a fixed cube
    /// keeps voxel boundaries stable across the frames of a sequence.
    pub cube: Option<Aabb>,
}

impl OctreeConfig {
    /// Config with the given maximum depth over the cloud's own cube.
    pub fn with_max_depth(max_depth: u8) -> Self {
        OctreeConfig {
            max_depth,
            cube: None,
        }
    }

    /// Sets a fixed bounding cube.
    #[must_use]
    pub fn in_cube(mut self, cube: Aabb) -> Self {
        self.cube = Some(cube);
        self
    }
}

impl Default for OctreeConfig {
    fn default() -> Self {
        OctreeConfig::with_max_depth(10)
    }
}

/// Identifier of a node within its [`Octree`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The root node's id.
    pub const ROOT: NodeId = NodeId(0);

    /// The arena index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

pub(crate) const NO_CHILD: u32 = u32::MAX;

#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub children: [u32; 8],
    pub count: u64,
    pub position_sum: Vec3,
    pub color_sum: [u64; 3],
}

impl Node {
    fn empty() -> Node {
        Node {
            children: [NO_CHILD; 8],
            count: 0,
            position_sum: Vec3::ZERO,
            color_sum: [0; 3],
        }
    }

    pub(crate) fn child(&self, octant: usize) -> Option<u32> {
        let c = self.children[octant];
        (c != NO_CHILD).then_some(c)
    }

    pub(crate) fn occupancy_byte(&self) -> u8 {
        let mut byte = 0u8;
        for (i, &c) in self.children.iter().enumerate() {
            if c != NO_CHILD {
                byte |= 1 << i;
            }
        }
        byte
    }
}

/// A sparse octree over a point cloud.
///
/// Every internal node aggregates the number of contained points, their
/// position sum and color sums, so any depth can be rendered without
/// revisiting the input points. Nodes are stored in an arena; levels are
/// contiguous (the arena is in breadth-first order).
#[derive(Debug, Clone)]
pub struct Octree {
    pub(crate) nodes: Vec<Node>,
    /// First arena index of each level: `level_starts[d] .. level_starts[d+1]`
    /// are the depth-`d` nodes. Has `max_depth + 2` entries.
    pub(crate) level_starts: Vec<u32>,
    cube: Aabb,
    max_depth: u8,
    point_count: u64,
}

impl Octree {
    /// Builds an octree from a cloud.
    ///
    /// # Errors
    ///
    /// - [`OctreeError::EmptyCloud`] for an empty input;
    /// - [`OctreeError::DepthTooLarge`] when `config.max_depth` exceeds
    ///   [`MAX_SUPPORTED_DEPTH`];
    /// - [`OctreeError::PointOutsideCube`] when a fixed cube was supplied and
    ///   a point lies outside it.
    pub fn build(cloud: &PointCloud, config: &OctreeConfig) -> Result<Octree, OctreeError> {
        if cloud.is_empty() {
            return Err(OctreeError::EmptyCloud);
        }
        if config.max_depth > MAX_SUPPORTED_DEPTH {
            return Err(OctreeError::DepthTooLarge {
                requested: config.max_depth,
            });
        }
        let cube = match config.cube {
            Some(c) => {
                // Cube-ify non-cubic boxes; keep already-cubic boxes
                // bit-exact so voxel boundaries match external quantizers
                // (e.g. `VoxelGrid` over the same cube).
                let s = c.size();
                let c = if s.x == s.y && s.y == s.z {
                    c
                } else {
                    c.bounding_cube()
                };
                if let Some(bad) = cloud.positions().position(|p| !c.contains(p)) {
                    return Err(OctreeError::PointOutsideCube { index: bad });
                }
                c
            }
            None => cloud
                .aabb()
                .expect("non-empty cloud has an aabb")
                .bounding_cube(),
        };
        let max_depth = config.max_depth;

        // Pass 1: morton code of every point at max depth.
        let n = 1u64 << max_depth; // cells per axis
        let extent = cube.max_extent();
        let min = cube.min();
        let code_of = |p: Vec3| -> u64 {
            let q = |v: f64, lo: f64| -> u64 {
                if extent <= 0.0 {
                    return 0;
                }
                let idx = ((v - lo) / extent * n as f64).floor();
                (idx.max(0.0) as u64).min(n - 1)
            };
            morton3(q(p.x, min.x), q(p.y, min.y), q(p.z, min.z), max_depth)
        };
        let mut coded: Vec<(u64, &Point)> =
            cloud.iter().map(|p| (code_of(p.position), p)).collect();
        coded.sort_unstable_by_key(|(c, _)| *c);

        // Pass 2: allocate nodes level by level. At each level, the distinct
        // `3*(d)`-bit prefixes of the sorted codes are the occupied nodes.
        let mut nodes = vec![Node::empty()];
        let mut level_starts = vec![0u32, 1];
        {
            let root = &mut nodes[0];
            for (_, p) in &coded {
                root.count += 1;
                root.position_sum += p.position;
                root.color_sum[0] += u64::from(p.color.r);
                root.color_sum[1] += u64::from(p.color.g);
                root.color_sum[2] += u64::from(p.color.b);
            }
        }

        // `current` maps a node arena index to its code-range in `coded`.
        let mut current: Vec<(u32, usize, usize)> = vec![(0, 0, coded.len())];
        for depth in 1..=max_depth {
            let shift = 3 * u64::from(max_depth - depth);
            let mut next: Vec<(u32, usize, usize)> = Vec::with_capacity(current.len() * 2);
            for &(node_idx, lo, hi) in &current {
                let mut i = lo;
                while i < hi {
                    let prefix = coded[i].0 >> shift;
                    let octant = (prefix & 7) as usize;
                    let mut j = i + 1;
                    while j < hi && (coded[j].0 >> shift) == prefix {
                        j += 1;
                    }
                    let child_idx = nodes.len() as u32;
                    let mut child = Node::empty();
                    for (_, p) in &coded[i..j] {
                        child.count += 1;
                        child.position_sum += p.position;
                        child.color_sum[0] += u64::from(p.color.r);
                        child.color_sum[1] += u64::from(p.color.g);
                        child.color_sum[2] += u64::from(p.color.b);
                    }
                    nodes.push(child);
                    nodes[node_idx as usize].children[octant] = child_idx;
                    next.push((child_idx, i, j));
                    i = j;
                }
            }
            level_starts.push(nodes.len() as u32);
            current = next;
        }

        Ok(Octree {
            nodes,
            level_starts,
            cube,
            max_depth,
            point_count: coded.len() as u64,
        })
    }

    /// The bounding cube the tree subdivides.
    pub fn cube(&self) -> &Aabb {
        &self.cube
    }

    /// The maximum (leaf) depth.
    pub fn max_depth(&self) -> u8 {
        self.max_depth
    }

    /// Number of input points.
    pub fn point_count(&self) -> u64 {
        self.point_count
    }

    /// Total number of nodes in the tree (all levels).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of occupied voxels (nodes) at `depth`.
    ///
    /// This is the arrival size `a(d)` of the paper: the number of points the
    /// renderer must draw when the frame is visualized at octree depth `d`.
    ///
    /// # Panics
    ///
    /// Panics when `depth > max_depth`.
    pub fn occupied_at_depth(&self, depth: u8) -> usize {
        assert!(
            depth <= self.max_depth,
            "depth {depth} exceeds max depth {}",
            self.max_depth
        );
        let d = depth as usize;
        (self.level_starts[d + 1] - self.level_starts[d]) as usize
    }

    /// A view of one node.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    pub fn node(&self, id: NodeId) -> NodeView<'_> {
        assert!(id.index() < self.nodes.len(), "node id out of range");
        NodeView {
            tree: self,
            id,
            depth: self.depth_of(id),
        }
    }

    pub(crate) fn depth_of(&self, id: NodeId) -> u8 {
        let idx = id.0;
        // level_starts is sorted; find the level containing idx.
        match self.level_starts.binary_search(&idx) {
            Ok(level) => {
                // idx is the first node of `level`... but trailing empty
                // levels share the same start; pick the first matching level.
                let mut l = level;
                while l > 0 && self.level_starts[l - 1] == idx {
                    l -= 1;
                }
                l as u8
            }
            Err(insertion) => (insertion - 1) as u8,
        }
    }

    /// Ids of all nodes at `depth`, in Morton (breadth-first) order.
    pub fn nodes_at_depth(&self, depth: u8) -> impl Iterator<Item = NodeId> + '_ {
        assert!(depth <= self.max_depth, "depth out of range");
        let d = depth as usize;
        (self.level_starts[d]..self.level_starts[d + 1]).map(NodeId)
    }

    /// Edge length of a voxel at `depth`.
    pub fn voxel_size_at_depth(&self, depth: u8) -> f64 {
        self.cube.max_extent() / (1u64 << depth) as f64
    }
}

/// A borrowed view of one octree node with its derived geometry.
#[derive(Debug, Clone, Copy)]
pub struct NodeView<'a> {
    tree: &'a Octree,
    id: NodeId,
    depth: u8,
}

impl<'a> NodeView<'a> {
    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Depth of the node (root = 0).
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Number of input points inside this node's voxel.
    pub fn count(&self) -> u64 {
        self.node().count
    }

    /// Mean position of the contained points.
    pub fn mean_position(&self) -> Vec3 {
        self.node().position_sum / self.node().count as f64
    }

    /// Mean color of the contained points.
    pub fn mean_color(&self) -> Color {
        let n = self.node().count as f64;
        let c = &self.node().color_sum;
        Color::new(
            (c[0] as f64 / n).round() as u8,
            (c[1] as f64 / n).round() as u8,
            (c[2] as f64 / n).round() as u8,
        )
    }

    /// The child in `octant` (0..8, bit layout of
    /// [`arvis_pointcloud::Aabb::octants`]), if occupied.
    pub fn child(&self, octant: usize) -> Option<NodeView<'a>> {
        assert!(octant < 8, "octant must be in 0..8");
        self.node().child(octant).map(|c| NodeView {
            tree: self.tree,
            id: NodeId(c),
            depth: self.depth + 1,
        })
    }

    /// Iterates over the occupied children.
    pub fn children(&self) -> impl Iterator<Item = NodeView<'a>> + '_ {
        (0..8).filter_map(move |o| self.child(o))
    }

    /// `true` when the node has no children (it is a max-depth leaf).
    pub fn is_leaf(&self) -> bool {
        self.node().children.iter().all(|&c| c == NO_CHILD)
    }

    /// The bitmask of occupied children (bit `i` = octant `i`).
    pub fn occupancy_byte(&self) -> u8 {
        self.node().occupancy_byte()
    }

    fn node(&self) -> &'a Node {
        &self.tree.nodes[self.id.index()]
    }
}

#[inline]
fn morton3(x: u64, y: u64, z: u64, bits: u8) -> u64 {
    let mut code = 0u64;
    for k in 0..u64::from(bits) {
        code |= ((x >> k) & 1) << (3 * k);
        code |= ((y >> k) & 1) << (3 * k + 1);
        code |= ((z >> k) & 1) << (3 * k + 2);
    }
    code
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvis_pointcloud::point::Point;

    fn unit_cloud() -> PointCloud {
        // Points at the eight corners (inset) of the unit cube, plus center.
        let mut c = PointCloud::new();
        for i in 0..8u32 {
            let p = Vec3::new(
                if i & 1 == 0 { 0.01 } else { 0.99 },
                if i & 2 == 0 { 0.01 } else { 0.99 },
                if i & 4 == 0 { 0.01 } else { 0.99 },
            );
            c.push(Point::xyz_rgb(p.x, p.y, p.z, (i * 30) as u8, 0, 0));
        }
        c.push(Point::xyz_rgb(0.5, 0.5, 0.5, 255, 255, 255));
        c
    }

    #[test]
    fn build_rejects_empty_cloud() {
        assert_eq!(
            Octree::build(&PointCloud::new(), &OctreeConfig::default()).unwrap_err(),
            OctreeError::EmptyCloud
        );
    }

    #[test]
    fn build_rejects_excessive_depth() {
        assert!(matches!(
            Octree::build(&unit_cloud(), &OctreeConfig::with_max_depth(22)),
            Err(OctreeError::DepthTooLarge { requested: 22 })
        ));
    }

    #[test]
    fn build_rejects_points_outside_fixed_cube() {
        let cube = Aabb::new(Vec3::ZERO, Vec3::splat(0.5));
        let err = Octree::build(
            &unit_cloud(),
            &OctreeConfig::with_max_depth(3).in_cube(cube),
        )
        .unwrap_err();
        assert!(matches!(err, OctreeError::PointOutsideCube { .. }));
    }

    #[test]
    fn root_aggregates_everything() {
        let cloud = unit_cloud();
        let tree = Octree::build(&cloud, &OctreeConfig::with_max_depth(4)).unwrap();
        let root = tree.node(NodeId::ROOT);
        assert_eq!(root.count(), cloud.len() as u64);
        assert_eq!(root.depth(), 0);
        assert_eq!(tree.occupied_at_depth(0), 1);
        assert_eq!(tree.point_count(), 9);
    }

    #[test]
    fn corner_points_occupy_eight_level1_voxels() {
        let tree = Octree::build(&unit_cloud(), &OctreeConfig::with_max_depth(3)).unwrap();
        assert_eq!(tree.occupied_at_depth(1), 8);
    }

    #[test]
    fn occupancy_is_monotone_in_depth() {
        let cloud = arvis_pointcloud::synth::SynthBodyConfig::new(
            arvis_pointcloud::synth::SubjectProfile::Soldier,
        )
        .with_target_points(10_000)
        .generate();
        let tree = Octree::build(&cloud, &OctreeConfig::with_max_depth(8)).unwrap();
        for d in 0..8 {
            assert!(
                tree.occupied_at_depth(d) <= tree.occupied_at_depth(d + 1),
                "occupancy decreased from depth {d}"
            );
        }
        // ...and bounded by the point count.
        assert!(tree.occupied_at_depth(8) as u64 <= tree.point_count());
    }

    #[test]
    fn counts_sum_to_parent_at_every_level() {
        let cloud = unit_cloud();
        let tree = Octree::build(&cloud, &OctreeConfig::with_max_depth(4)).unwrap();
        for d in 0..4u8 {
            for id in tree.nodes_at_depth(d).collect::<Vec<_>>() {
                let v = tree.node(id);
                if !v.is_leaf() {
                    let child_sum: u64 = v.children().map(|c| c.count()).sum();
                    assert_eq!(child_sum, v.count(), "count mismatch at node {id:?}");
                }
            }
        }
    }

    #[test]
    fn depth_of_is_consistent() {
        let tree = Octree::build(&unit_cloud(), &OctreeConfig::with_max_depth(4)).unwrap();
        for d in 0..=4u8 {
            for id in tree.nodes_at_depth(d).collect::<Vec<_>>() {
                assert_eq!(tree.depth_of(id), d);
            }
        }
    }

    #[test]
    fn occupancy_byte_reflects_children() {
        let tree = Octree::build(&unit_cloud(), &OctreeConfig::with_max_depth(2)).unwrap();
        let root = tree.node(NodeId::ROOT);
        assert_eq!(root.occupancy_byte(), 0xff, "all 8 octants occupied");
        assert_eq!(root.children().count(), 8);
    }

    #[test]
    fn single_point_chain() {
        let mut c = PointCloud::new();
        c.push(Point::xyz_rgb(0.1, 0.1, 0.1, 5, 6, 7));
        // Octree over a degenerate (single-point) cube: still works, every
        // level has exactly one node.
        let tree = Octree::build(
            &c,
            &OctreeConfig::with_max_depth(5).in_cube(Aabb::cube(Vec3::splat(0.1), 1.0)),
        )
        .unwrap();
        for d in 0..=5 {
            assert_eq!(tree.occupied_at_depth(d), 1, "depth {d}");
        }
        let leaf_id = tree.nodes_at_depth(5).next().unwrap();
        let leaf = tree.node(leaf_id);
        assert!(leaf.is_leaf());
        assert_eq!(leaf.mean_color(), Color::new(5, 6, 7));
        assert!(leaf.mean_position().distance(Vec3::splat(0.1)) < 1e-12);
    }

    #[test]
    fn depth_zero_tree() {
        let tree = Octree::build(&unit_cloud(), &OctreeConfig::with_max_depth(0)).unwrap();
        assert_eq!(tree.node_count(), 1);
        assert!(tree.node(NodeId::ROOT).is_leaf());
        assert_eq!(tree.occupied_at_depth(0), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds max depth")]
    fn occupied_beyond_max_depth_panics() {
        let tree = Octree::build(&unit_cloud(), &OctreeConfig::with_max_depth(2)).unwrap();
        let _ = tree.occupied_at_depth(3);
    }

    #[test]
    fn voxel_size_halves_per_level() {
        let tree = Octree::build(&unit_cloud(), &OctreeConfig::with_max_depth(4)).unwrap();
        let s0 = tree.voxel_size_at_depth(0);
        for d in 1..=4u8 {
            let expected = s0 / (1u64 << d) as f64;
            assert!((tree.voxel_size_at_depth(d) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn mean_color_of_root() {
        let mut c = PointCloud::new();
        c.push(Point::xyz_rgb(0.1, 0.1, 0.1, 0, 0, 0));
        c.push(Point::xyz_rgb(0.9, 0.9, 0.9, 200, 100, 50));
        let tree = Octree::build(&c, &OctreeConfig::with_max_depth(1)).unwrap();
        assert_eq!(
            tree.node(NodeId::ROOT).mean_color(),
            Color::new(100, 50, 25)
        );
    }

    #[test]
    fn fixed_cube_keeps_voxels_stable_across_frames() {
        // The same point must land in the same level-1 octant regardless of
        // other points, when a fixed cube is used.
        let cube = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let mut f1 = PointCloud::new();
        f1.push(Point::from_position(Vec3::splat(0.9)));
        let mut f2 = PointCloud::new();
        f2.push(Point::from_position(Vec3::splat(0.9)));
        f2.push(Point::from_position(Vec3::splat(0.05)));
        let cfg = OctreeConfig::with_max_depth(1).in_cube(cube);
        let t1 = Octree::build(&f1, &cfg).unwrap();
        let t2 = Octree::build(&f2, &cfg).unwrap();
        let byte1 = t1.node(NodeId::ROOT).occupancy_byte();
        let byte2 = t2.node(NodeId::ROOT).occupancy_byte();
        assert_eq!(byte1 & 0b1000_0000, byte2 & 0b1000_0000);
    }
}
