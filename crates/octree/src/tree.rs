//! Core octree structure and construction.
//!
//! Construction is a flat Morton pipeline (see [`OctreeBuilder`]): points
//! are Morton-coded into flat scratch buffers (a packed `code | index`
//! word per point — no `(u64, &Point)` pointer tuples), radix-sorted by
//! code, and the whole level hierarchy is then derived from prefix
//! boundaries of the sorted codes — one O(n) aggregation pass over the
//! points for the leaf level and one O(nodes) pass per internal level,
//! instead of re-scanning the point range of every node at every depth.
//!
//! Node storage splits hot from cold ([`NodeArena`]): the mostly-empty
//! child-link table is a structure-of-arrays `Vec<u32>` the allocator hands
//! out as untouched zero pages (sentinel 0 = unoccupied), while the numeric
//! payload (count, position sum, color sums) is one 56-byte row per node —
//! a single cache line — written exactly once during the bottom-up
//! aggregation. [`NodeView`] presents the classic node interface over both,
//! so LoD extraction, occupancy/attribute coding, diffing, queries and
//! traversal are unaffected by the layout.

use arvis_par as par;
use arvis_pointcloud::aabb::Aabb;
use arvis_pointcloud::cloud::PointCloud;
use arvis_pointcloud::color::Color;
use arvis_pointcloud::math::Vec3;
use arvis_pointcloud::morton;
use arvis_pointcloud::point::Point;

/// Maximum supported octree depth. Ten matches the 1024³ grid of the 8i
/// scans; 21 is the Morton-code limit of the voxel substrate.
pub const MAX_SUPPORTED_DEPTH: u8 = 21;

/// Errors from octree construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OctreeError {
    /// Cannot build an octree over an empty cloud.
    EmptyCloud,
    /// Requested depth exceeds [`MAX_SUPPORTED_DEPTH`].
    DepthTooLarge {
        /// The depth that was requested.
        requested: u8,
    },
    /// The supplied bounding cube does not contain every input point.
    PointOutsideCube {
        /// Index of the first offending point.
        index: usize,
    },
}

impl std::fmt::Display for OctreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OctreeError::EmptyCloud => write!(f, "cannot build an octree over an empty cloud"),
            OctreeError::DepthTooLarge { requested } => write!(
                f,
                "requested depth {requested} exceeds the supported maximum {MAX_SUPPORTED_DEPTH}"
            ),
            OctreeError::PointOutsideCube { index } => {
                write!(f, "point {index} lies outside the supplied bounding cube")
            }
        }
    }
}

impl std::error::Error for OctreeError {}

/// Construction parameters for [`Octree::build`].
#[derive(Debug, Clone, PartialEq)]
pub struct OctreeConfig {
    /// Maximum subdivision depth; leaves live at exactly this depth.
    pub max_depth: u8,
    /// Bounding cube to build over. `None` (the default) uses the cloud's
    /// own bounding cube, matching Open3D's behaviour. Supplying a fixed cube
    /// keeps voxel boundaries stable across the frames of a sequence.
    pub cube: Option<Aabb>,
}

impl OctreeConfig {
    /// Config with the given maximum depth over the cloud's own cube.
    pub fn with_max_depth(max_depth: u8) -> Self {
        OctreeConfig {
            max_depth,
            cube: None,
        }
    }

    /// Sets a fixed bounding cube.
    #[must_use]
    pub fn in_cube(mut self, cube: Aabb) -> Self {
        self.cube = Some(cube);
        self
    }
}

impl Default for OctreeConfig {
    fn default() -> Self {
        OctreeConfig::with_max_depth(10)
    }
}

/// Identifier of a node within its [`Octree`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The root node's id.
    pub const ROOT: NodeId = NodeId(0);

    /// The arena index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The per-node numeric aggregates: one 56-byte row (a single cache line)
/// written exactly once during the bottom-up aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) struct NodePayload {
    count: u64,
    pos_sum: Vec3,
    color_sum: [u64; 3],
}

/// Hybrid node storage.
///
/// The child-link table is kept apart from the numeric payload: links are
/// mostly empty (stored as `arena_index + 1`, `0` = octant unoccupied), so
/// their vector comes straight from the allocator's zero pages and only the
/// occupied octants are ever written; the payload rows pack each node's
/// aggregates into one cache line for the bottom-up sweeps.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct NodeArena {
    /// `children[8*i + octant]` = child arena index **plus one**; 0 = none.
    children: Vec<u32>,
    payload: Vec<NodePayload>,
}

impl NodeArena {
    fn with_len(total: usize) -> NodeArena {
        NodeArena {
            children: vec![0; total * 8],
            payload: vec![NodePayload::default(); total],
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.payload.len()
    }

    pub(crate) fn child(&self, node: usize, octant: usize) -> Option<u32> {
        let c = self.children[node * 8 + octant];
        (c != 0).then(|| c - 1)
    }

    pub(crate) fn occupancy_byte(&self, node: usize) -> u8 {
        let mut byte = 0u8;
        for (o, &c) in self.children[node * 8..node * 8 + 8].iter().enumerate() {
            if c != 0 {
                byte |= 1 << o;
            }
        }
        byte
    }

    pub(crate) fn count(&self, node: usize) -> u64 {
        self.payload[node].count
    }

    pub(crate) fn position_sum(&self, node: usize) -> Vec3 {
        self.payload[node].pos_sum
    }

    pub(crate) fn color_sum(&self, node: usize) -> [u64; 3] {
        self.payload[node].color_sum
    }
}

/// A sparse octree over a point cloud.
///
/// Every internal node aggregates the number of contained points, their
/// position sum and color sums, so any depth can be rendered without
/// revisiting the input points. Nodes live in a hybrid arena
/// (`NodeArena`, private) in breadth-first order: levels are contiguous,
/// nodes within a level are in Morton order.
#[derive(Debug, Clone, PartialEq)]
pub struct Octree {
    pub(crate) arena: NodeArena,
    /// First arena index of each level: `level_starts[d] .. level_starts[d+1]`
    /// are the depth-`d` nodes. Has `max_depth + 2` entries.
    pub(crate) level_starts: Vec<u32>,
    cube: Aabb,
    max_depth: u8,
    point_count: u64,
}

impl Octree {
    /// Builds an octree from a cloud.
    ///
    /// # Errors
    ///
    /// - [`OctreeError::EmptyCloud`] for an empty input;
    /// - [`OctreeError::DepthTooLarge`] when `config.max_depth` exceeds
    ///   [`MAX_SUPPORTED_DEPTH`];
    /// - [`OctreeError::PointOutsideCube`] when a fixed cube was supplied and
    ///   a point lies outside it.
    ///
    /// # Panics
    ///
    /// Panics when the cloud holds more than `u32::MAX` points (the arena
    /// addresses points and nodes with 32-bit indices).
    pub fn build(cloud: &PointCloud, config: &OctreeConfig) -> Result<Octree, OctreeError> {
        OctreeBuilder::new().build(cloud, config)
    }

    /// The bounding cube the tree subdivides.
    pub fn cube(&self) -> &Aabb {
        &self.cube
    }

    /// The maximum (leaf) depth.
    pub fn max_depth(&self) -> u8 {
        self.max_depth
    }

    /// Number of input points.
    pub fn point_count(&self) -> u64 {
        self.point_count
    }

    /// Total number of nodes in the tree (all levels).
    pub fn node_count(&self) -> usize {
        self.arena.len()
    }

    /// Number of occupied voxels (nodes) at `depth`.
    ///
    /// This is the arrival size `a(d)` of the paper: the number of points the
    /// renderer must draw when the frame is visualized at octree depth `d`.
    ///
    /// # Panics
    ///
    /// Panics when `depth > max_depth`.
    pub fn occupied_at_depth(&self, depth: u8) -> usize {
        assert!(
            depth <= self.max_depth,
            "depth {depth} exceeds max depth {}",
            self.max_depth
        );
        let d = depth as usize;
        (self.level_starts[d + 1] - self.level_starts[d]) as usize
    }

    /// A view of one node.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    pub fn node(&self, id: NodeId) -> NodeView<'_> {
        assert!(id.index() < self.arena.len(), "node id out of range");
        NodeView {
            tree: self,
            id,
            depth: self.depth_of(id),
        }
    }

    pub(crate) fn depth_of(&self, id: NodeId) -> u8 {
        let idx = id.0;
        // level_starts is sorted; find the level containing idx.
        match self.level_starts.binary_search(&idx) {
            Ok(level) => {
                // idx is the first node of `level`... but trailing empty
                // levels share the same start; pick the first matching level.
                let mut l = level;
                while l > 0 && self.level_starts[l - 1] == idx {
                    l -= 1;
                }
                l as u8
            }
            Err(insertion) => (insertion - 1) as u8,
        }
    }

    /// Ids of all nodes at `depth`, in Morton (breadth-first) order.
    pub fn nodes_at_depth(&self, depth: u8) -> impl Iterator<Item = NodeId> + '_ {
        assert!(depth <= self.max_depth, "depth out of range");
        let d = depth as usize;
        (self.level_starts[d]..self.level_starts[d + 1]).map(NodeId)
    }

    /// Edge length of a voxel at `depth`.
    pub fn voxel_size_at_depth(&self, depth: u8) -> f64 {
        self.cube.max_extent() / (1u64 << depth) as f64
    }
}

/// Chunk size for the point- and node-parallel phases, and the node
/// threshold under which the split-recursive linking phase stops forking.
/// Fixed constants (never derived from the worker count) so every phase
/// observes an identical work decomposition — and therefore produces
/// bit-identical floating-point sums — in serial and parallel builds.
const POINT_CHUNK: usize = 1 << 13;
const NODE_CHUNK: usize = 1 << 9;
const NODE_SPLIT_THRESHOLD: usize = 1 << 11;

/// One sorted-pipeline element: a Morton code bundled with the index of the
/// point it came from. Two representations exist so the common shallow
/// trees (`3·depth ≤ 30` bits, i.e. the paper's whole `R = 5..=10` range)
/// ride in one packed word — half the sort and scan traffic — while deep
/// trees fall back to a two-word pair.
trait CodeIdx: morton::SortItem + PartialEq {
    /// Bit offset of the code within [`morton::SortItem::key`].
    const CODE_SHIFT: u32;

    fn pack(code: u64, idx: u32) -> Self;
    fn code(self) -> u64;
    fn idx(self) -> u32;
}

/// Packed `code << 32 | index` (codes up to 30 bits).
impl CodeIdx for u64 {
    const CODE_SHIFT: u32 = 32;

    #[inline]
    fn pack(code: u64, idx: u32) -> u64 {
        (code << 32) | u64::from(idx)
    }

    #[inline]
    fn code(self) -> u64 {
        self >> 32
    }

    #[inline]
    fn idx(self) -> u32 {
        self as u32
    }
}

/// Wide `(code, index)` pair (codes up to 63 bits).
impl CodeIdx for (u64, u32) {
    const CODE_SHIFT: u32 = 0;

    #[inline]
    fn pack(code: u64, idx: u32) -> (u64, u32) {
        (code, idx)
    }

    #[inline]
    fn code(self) -> u64 {
        self.0
    }

    #[inline]
    fn idx(self) -> u32 {
        self.1
    }
}

/// Reusable octree construction pipeline.
///
/// Holds the flat scratch buffers (packed/wide code-index words, radix
/// ping-pong buffers, per-level boundary and octant lists) so a streaming
/// pipeline that builds one octree per frame pays the allocations once, not
/// per slot. [`Octree::build`] is a convenience wrapper creating a fresh
/// builder per call.
///
/// # Pipeline
///
/// 1. **Morton coding** (parallel): each point's voxel index at `max_depth`
///    is interleaved and packed with its input index.
/// 2. **Radix sort by code** (parallel histograms, stable scatter): after
///    this, every node of every level is a contiguous range of points, and
///    the nodes of level `d` are exactly the distinct `3d`-bit prefixes.
/// 3. **Boundary derivation**: leaf-range starts are the positions where
///    the sorted code changes; each shallower level's starts are the subset
///    where the shorter prefix changes — O(total nodes) overall. Each
///    node's octant bits are extracted here, so linking never revisits the
///    code array.
/// 4. **Aggregation** (parallel over nodes): each leaf sums its point
///    range, reading every input point exactly once through its sorted
///    code-index word; every internal node then sums its children's rows —
///    prefix-sum reuse that replaces the seed algorithm's O(n·depth)
///    re-scan with O(n + total nodes) work, writing each arena row exactly
///    once.
#[derive(Debug, Default)]
pub struct OctreeBuilder {
    packed: Vec<u64>,
    packed_scratch: Vec<u64>,
    wide: Vec<(u64, u32)>,
    wide_scratch: Vec<(u64, u32)>,
    /// `level_bounds[d]` = start index (into the sorted order) of every
    /// depth-`d` node, ascending. Entry 0 is always 0.
    level_bounds: Vec<Vec<u32>>,
    /// `level_octants[d][i]` = octant of node `i` within its parent.
    level_octants: Vec<Vec<u8>>,
    first_child: Vec<u32>,
}

impl OctreeBuilder {
    /// A builder with empty scratch buffers.
    pub fn new() -> OctreeBuilder {
        OctreeBuilder::default()
    }

    /// Builds an octree, reusing this builder's scratch allocations.
    ///
    /// # Errors
    ///
    /// Same contract as [`Octree::build`].
    ///
    /// # Panics
    ///
    /// Panics when the cloud holds more than `u32::MAX` points (the arena
    /// addresses points and nodes with 32-bit indices).
    pub fn build(
        &mut self,
        cloud: &PointCloud,
        config: &OctreeConfig,
    ) -> Result<Octree, OctreeError> {
        if cloud.is_empty() {
            return Err(OctreeError::EmptyCloud);
        }
        if config.max_depth > MAX_SUPPORTED_DEPTH {
            return Err(OctreeError::DepthTooLarge {
                requested: config.max_depth,
            });
        }
        let points = cloud.points();
        assert!(
            points.len() <= u32::MAX as usize,
            "octree build supports at most 2^32 points per frame"
        );
        let cube = match config.cube {
            Some(c) => {
                // Cube-ify non-cubic boxes; keep already-cubic boxes
                // bit-exact so voxel boundaries match external quantizers
                // (e.g. `VoxelGrid` over the same cube).
                let s = c.size();
                let c = if s.x == s.y && s.y == s.z {
                    c
                } else {
                    c.bounding_cube()
                };
                // Parallel containment check; the reported index is the
                // global minimum, matching the serial scan.
                let bad = par::map_chunks(points, POINT_CHUNK, |ci, chunk| {
                    chunk
                        .iter()
                        .position(|p| !c.contains(p.position))
                        .map(|j| ci * POINT_CHUNK + j)
                })
                .into_iter()
                .flatten()
                .next();
                if let Some(index) = bad {
                    return Err(OctreeError::PointOutsideCube { index });
                }
                c
            }
            None => cloud
                .aabb()
                .expect("non-empty cloud has an aabb")
                .bounding_cube(),
        };
        let max_depth = config.max_depth;

        // Shared quantizer with `VoxelGrid::key_of`, so octree voxel
        // assignment is bit-identical to the brute-force voxelizer over the
        // same cube.
        let cells = 1u64 << max_depth; // cells per axis
        let min = cube.min();
        let scale = morton::grid_scale(cube.max_extent(), cells);
        let code_of = move |p: Vec3| -> u64 {
            morton::encode(
                morton::grid_cell(p.x, min.x, scale, cells),
                morton::grid_cell(p.y, min.y, scale, cells),
                morton::grid_cell(p.z, min.z, scale, cells),
            )
        };

        let (arena, level_starts) = if 3 * u32::from(max_depth) <= 30 {
            build_pipeline::<u64, _>(
                &mut self.packed,
                &mut self.packed_scratch,
                &mut self.level_bounds,
                &mut self.level_octants,
                &mut self.first_child,
                points,
                code_of,
                max_depth,
            )
        } else {
            build_pipeline::<(u64, u32), _>(
                &mut self.wide,
                &mut self.wide_scratch,
                &mut self.level_bounds,
                &mut self.level_octants,
                &mut self.first_child,
                points,
                code_of,
                max_depth,
            )
        };

        Ok(Octree {
            arena,
            level_starts,
            cube,
            max_depth,
            point_count: points.len() as u64,
        })
    }
}

/// Phases 1–4 of the build (see [`OctreeBuilder`]), generic over the
/// code-index representation.
#[allow(clippy::too_many_arguments)]
fn build_pipeline<E: CodeIdx, F: Fn(Vec3) -> u64 + Sync>(
    items: &mut Vec<E>,
    sort_scratch: &mut Vec<E>,
    level_bounds: &mut Vec<Vec<u32>>,
    level_octants: &mut Vec<Vec<u8>>,
    first_child: &mut Vec<u32>,
    points: &[Point],
    code_of: F,
    max_depth: u8,
) -> (NodeArena, Vec<u32>) {
    let n = points.len();

    // Phase 1: Morton-code every point at max depth (parallel).
    items.clear();
    items.resize(n, E::default());
    par::for_each_chunk_mut(items, POINT_CHUNK, |ci, out| {
        let base = ci * POINT_CHUNK;
        for (j, slot) in out.iter_mut().enumerate() {
            let i = base + j;
            *slot = E::pack(code_of(points[i].position), i as u32);
        }
    });

    // Phase 2: stable radix sort by code.
    morton::radix_sort(items, sort_scratch, E::CODE_SHIFT, 3 * u32::from(max_depth));
    let items = &items[..];

    // Phase 3: node boundaries and octants per level, deepest first. A
    // depth-d node starts wherever the 3d-bit prefix of the sorted codes
    // changes, so level d's starts are a subset of level d+1's.
    let d_max = usize::from(max_depth);
    level_bounds.resize_with(d_max + 1, Vec::new);
    level_octants.resize_with(d_max + 1, Vec::new);
    for b in level_bounds.iter_mut() {
        b.clear();
    }
    for o in level_octants.iter_mut() {
        o.clear();
    }
    {
        let leaf_parts: Vec<(Vec<u32>, Vec<u8>)> =
            par::map_chunks(items, POINT_CHUNK, |ci, chunk| {
                let base = ci * POINT_CHUNK;
                let mut starts = Vec::new();
                let mut octs = Vec::new();
                for (j, item) in chunk.iter().enumerate() {
                    let i = base + j;
                    let code = item.code();
                    if i == 0 || items[i - 1].code() != code {
                        starts.push(i as u32);
                        octs.push((code & 7) as u8);
                    }
                }
                (starts, octs)
            });
        let leaf = &mut level_bounds[d_max];
        let leaf_octs = &mut level_octants[d_max];
        for (mut s, mut o) in leaf_parts {
            leaf.append(&mut s);
            leaf_octs.append(&mut o);
        }
    }
    for d in (0..d_max).rev() {
        let shift = 3 * (d_max - d) as u32;
        let (shallow, deep) = level_bounds.split_at_mut(d + 1);
        let (dst, src) = (&mut shallow[d], &deep[0]);
        let dst_octs = &mut level_octants[d];
        let mut prev_prefix = u64::MAX;
        for &start in src.iter() {
            let prefix = items[start as usize].code() >> shift;
            if prefix != prev_prefix {
                dst.push(start);
                dst_octs.push((prefix & 7) as u8);
                prev_prefix = prefix;
            }
        }
    }

    // Phase 4: allocate the arena (children come from zero pages; payload
    // rows are written exactly once below) and aggregate bottom-up.
    let mut level_starts = Vec::with_capacity(d_max + 2);
    let mut total = 0usize;
    for b in level_bounds.iter() {
        // The arena addresses nodes with u32 links (stored +1), so the
        // node total must fit u32 even though the count accumulates in
        // usize.
        level_starts.push(u32::try_from(total).expect("node count exceeds u32 arena limit"));
        total += b.len();
    }
    level_starts.push(u32::try_from(total).expect("node count exceeds u32 arena limit"));
    let mut arena = NodeArena::with_len(total);

    // Leaf level: one pass over the sorted order, reading each input point
    // exactly once through its code-index word (parallel over fixed node
    // chunks; each node's range is summed serially, so sums do not depend
    // on the decomposition).
    {
        let bounds = &level_bounds[d_max];
        let leaf_base = level_starts[d_max] as usize;
        par::for_each_chunk_mut(&mut arena.payload[leaf_base..], NODE_CHUNK, |ci, chunk| {
            let base = ci * NODE_CHUNK;
            for (k, row) in chunk.iter_mut().enumerate() {
                let ni = base + k;
                let lo = bounds[ni] as usize;
                let hi = bounds.get(ni + 1).map_or(n, |&b| b as usize);
                let mut agg = NodePayload {
                    count: (hi - lo) as u64,
                    ..NodePayload::default()
                };
                for item in &items[lo..hi] {
                    let p = &points[item.idx() as usize];
                    agg.pos_sum += p.position;
                    agg.color_sum[0] += u64::from(p.color.r);
                    agg.color_sum[1] += u64::from(p.color.g);
                    agg.color_sum[2] += u64::from(p.color.b);
                }
                *row = agg;
            }
        });
    }

    // Internal levels: sums are reused from the level below (each parent
    // adds its children's rows), and child links come from the octants
    // recorded during boundary derivation.
    for d in (0..d_max).rev() {
        let parent_bounds = &level_bounds[d];
        let child_bounds = &level_bounds[d + 1];
        // first_child[i] = index (into child_bounds) of parent i's first
        // child. Parents' starts are a subset of children's, so one merged
        // scan suffices.
        first_child.clear();
        first_child.reserve(parent_bounds.len() + 1);
        let mut j = 0u32;
        for &pstart in parent_bounds {
            while child_bounds[j as usize] != pstart {
                j += 1;
            }
            first_child.push(j);
            j += 1;
        }
        first_child.push(child_bounds.len() as u32);

        let parent_base = level_starts[d] as usize;
        let child_base = level_starts[d + 1] as usize;
        let child_count = child_bounds.len();
        // Split the arena at the child level boundary: parents mutate
        // their rows and links, children's rows are read-only.
        let (parent_payload, child_payload) = arena.payload.split_at_mut(child_base);
        let (parent_links, _) = arena.children.split_at_mut(child_base * 8);
        link_level_split(
            &mut parent_payload[parent_base..],
            &mut parent_links[parent_base * 8..child_base * 8],
            0,
            &child_payload[..child_count],
            &level_octants[d + 1],
            first_child,
            child_base as u32,
            par::workers(),
        );
    }

    (arena, level_starts)
}

/// Aggregates one internal level: every parent sums its children's payload
/// rows and records their links. Split-recursive so the payload and link
/// tables advance in lockstep without interior mutability; the midpoint
/// decomposition is data-sized, so results are identical for any worker
/// count. `forks` bounds the live-thread fan-out at ~`workers()` (halved
/// per split) without affecting the decomposition.
#[allow(clippy::too_many_arguments)]
fn link_level_split(
    payload: &mut [NodePayload],
    links: &mut [u32],
    node_base: usize,
    child_payload: &[NodePayload],
    child_octants: &[u8],
    first_child: &[u32],
    child_arena_base: u32,
    forks: usize,
) {
    let len = payload.len();
    if len > NODE_SPLIT_THRESHOLD && forks > 1 {
        let mid = len / 2;
        let (p_l, p_r) = payload.split_at_mut(mid);
        let (l_l, l_r) = links.split_at_mut(mid * 8);
        par::join(
            || {
                link_level_split(
                    p_l,
                    l_l,
                    node_base,
                    child_payload,
                    child_octants,
                    first_child,
                    child_arena_base,
                    forks / 2,
                )
            },
            || {
                link_level_split(
                    p_r,
                    l_r,
                    node_base + mid,
                    child_payload,
                    child_octants,
                    first_child,
                    child_arena_base,
                    forks - forks / 2,
                )
            },
        );
        return;
    }
    for k in 0..len {
        let pi = node_base + k;
        let mut agg = NodePayload::default();
        for c in first_child[pi]..first_child[pi + 1] {
            let ci = c as usize;
            let child = &child_payload[ci];
            // Stored as arena index + 1 (0 = unoccupied).
            links[k * 8 + usize::from(child_octants[ci])] = child_arena_base + c + 1;
            agg.count += child.count;
            agg.pos_sum += child.pos_sum;
            agg.color_sum[0] += child.color_sum[0];
            agg.color_sum[1] += child.color_sum[1];
            agg.color_sum[2] += child.color_sum[2];
        }
        payload[k] = agg;
    }
}

/// A borrowed view of one octree node with its derived geometry.
#[derive(Debug, Clone, Copy)]
pub struct NodeView<'a> {
    tree: &'a Octree,
    id: NodeId,
    depth: u8,
}

impl<'a> NodeView<'a> {
    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Depth of the node (root = 0).
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Number of input points inside this node's voxel.
    pub fn count(&self) -> u64 {
        self.tree.arena.count(self.id.index())
    }

    /// Mean position of the contained points.
    pub fn mean_position(&self) -> Vec3 {
        self.tree.arena.position_sum(self.id.index()) / self.count() as f64
    }

    /// Mean color of the contained points.
    pub fn mean_color(&self) -> Color {
        let n = self.count() as f64;
        let c = self.tree.arena.color_sum(self.id.index());
        Color::new(
            (c[0] as f64 / n).round() as u8,
            (c[1] as f64 / n).round() as u8,
            (c[2] as f64 / n).round() as u8,
        )
    }

    /// The child in `octant` (0..8, bit layout of
    /// [`arvis_pointcloud::Aabb::octants`]), if occupied.
    pub fn child(&self, octant: usize) -> Option<NodeView<'a>> {
        assert!(octant < 8, "octant must be in 0..8");
        self.tree
            .arena
            .child(self.id.index(), octant)
            .map(|c| NodeView {
                tree: self.tree,
                id: NodeId(c),
                depth: self.depth + 1,
            })
    }

    /// Iterates over the occupied children.
    pub fn children(&self) -> impl Iterator<Item = NodeView<'a>> + '_ {
        (0..8).filter_map(move |o| self.child(o))
    }

    /// `true` when the node has no children (it is a max-depth leaf).
    pub fn is_leaf(&self) -> bool {
        self.tree.arena.occupancy_byte(self.id.index()) == 0
    }

    /// The bitmask of occupied children (bit `i` = octant `i`).
    pub fn occupancy_byte(&self) -> u8 {
        self.tree.arena.occupancy_byte(self.id.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvis_pointcloud::point::Point;

    fn unit_cloud() -> PointCloud {
        // Points at the eight corners (inset) of the unit cube, plus center.
        let mut c = PointCloud::new();
        for i in 0..8u32 {
            let p = Vec3::new(
                if i & 1 == 0 { 0.01 } else { 0.99 },
                if i & 2 == 0 { 0.01 } else { 0.99 },
                if i & 4 == 0 { 0.01 } else { 0.99 },
            );
            c.push(Point::xyz_rgb(p.x, p.y, p.z, (i * 30) as u8, 0, 0));
        }
        c.push(Point::xyz_rgb(0.5, 0.5, 0.5, 255, 255, 255));
        c
    }

    #[test]
    fn build_rejects_empty_cloud() {
        assert_eq!(
            Octree::build(&PointCloud::new(), &OctreeConfig::default()).unwrap_err(),
            OctreeError::EmptyCloud
        );
    }

    #[test]
    fn build_rejects_excessive_depth() {
        assert!(matches!(
            Octree::build(&unit_cloud(), &OctreeConfig::with_max_depth(22)),
            Err(OctreeError::DepthTooLarge { requested: 22 })
        ));
    }

    #[test]
    fn build_rejects_points_outside_fixed_cube() {
        let cube = Aabb::new(Vec3::ZERO, Vec3::splat(0.5));
        let err = Octree::build(
            &unit_cloud(),
            &OctreeConfig::with_max_depth(3).in_cube(cube),
        )
        .unwrap_err();
        assert!(matches!(err, OctreeError::PointOutsideCube { .. }));
    }

    #[test]
    fn root_aggregates_everything() {
        let cloud = unit_cloud();
        let tree = Octree::build(&cloud, &OctreeConfig::with_max_depth(4)).unwrap();
        let root = tree.node(NodeId::ROOT);
        assert_eq!(root.count(), cloud.len() as u64);
        assert_eq!(root.depth(), 0);
        assert_eq!(tree.occupied_at_depth(0), 1);
        assert_eq!(tree.point_count(), 9);
    }

    #[test]
    fn corner_points_occupy_eight_level1_voxels() {
        let tree = Octree::build(&unit_cloud(), &OctreeConfig::with_max_depth(3)).unwrap();
        assert_eq!(tree.occupied_at_depth(1), 8);
    }

    #[test]
    fn occupancy_is_monotone_in_depth() {
        let cloud = arvis_pointcloud::synth::SynthBodyConfig::new(
            arvis_pointcloud::synth::SubjectProfile::Soldier,
        )
        .with_target_points(10_000)
        .generate();
        let tree = Octree::build(&cloud, &OctreeConfig::with_max_depth(8)).unwrap();
        for d in 0..8 {
            assert!(
                tree.occupied_at_depth(d) <= tree.occupied_at_depth(d + 1),
                "occupancy decreased from depth {d}"
            );
        }
        // ...and bounded by the point count.
        assert!(tree.occupied_at_depth(8) as u64 <= tree.point_count());
    }

    #[test]
    fn counts_sum_to_parent_at_every_level() {
        let cloud = unit_cloud();
        let tree = Octree::build(&cloud, &OctreeConfig::with_max_depth(4)).unwrap();
        for d in 0..4u8 {
            for id in tree.nodes_at_depth(d).collect::<Vec<_>>() {
                let v = tree.node(id);
                if !v.is_leaf() {
                    let child_sum: u64 = v.children().map(|c| c.count()).sum();
                    assert_eq!(child_sum, v.count(), "count mismatch at node {id:?}");
                }
            }
        }
    }

    #[test]
    fn depth_of_is_consistent() {
        let tree = Octree::build(&unit_cloud(), &OctreeConfig::with_max_depth(4)).unwrap();
        for d in 0..=4u8 {
            for id in tree.nodes_at_depth(d).collect::<Vec<_>>() {
                assert_eq!(tree.depth_of(id), d);
            }
        }
    }

    #[test]
    fn occupancy_byte_reflects_children() {
        let tree = Octree::build(&unit_cloud(), &OctreeConfig::with_max_depth(2)).unwrap();
        let root = tree.node(NodeId::ROOT);
        assert_eq!(root.occupancy_byte(), 0xff, "all 8 octants occupied");
        assert_eq!(root.children().count(), 8);
    }

    #[test]
    fn single_point_chain() {
        let mut c = PointCloud::new();
        c.push(Point::xyz_rgb(0.1, 0.1, 0.1, 5, 6, 7));
        // Octree over a degenerate (single-point) cube: still works, every
        // level has exactly one node.
        let tree = Octree::build(
            &c,
            &OctreeConfig::with_max_depth(5).in_cube(Aabb::cube(Vec3::splat(0.1), 1.0)),
        )
        .unwrap();
        for d in 0..=5 {
            assert_eq!(tree.occupied_at_depth(d), 1, "depth {d}");
        }
        let leaf_id = tree.nodes_at_depth(5).next().unwrap();
        let leaf = tree.node(leaf_id);
        assert!(leaf.is_leaf());
        assert_eq!(leaf.mean_color(), Color::new(5, 6, 7));
        assert!(leaf.mean_position().distance(Vec3::splat(0.1)) < 1e-12);
    }

    #[test]
    fn depth_zero_tree() {
        let tree = Octree::build(&unit_cloud(), &OctreeConfig::with_max_depth(0)).unwrap();
        assert_eq!(tree.node_count(), 1);
        assert!(tree.node(NodeId::ROOT).is_leaf());
        assert_eq!(tree.occupied_at_depth(0), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds max depth")]
    fn occupied_beyond_max_depth_panics() {
        let tree = Octree::build(&unit_cloud(), &OctreeConfig::with_max_depth(2)).unwrap();
        let _ = tree.occupied_at_depth(3);
    }

    #[test]
    fn voxel_size_halves_per_level() {
        let tree = Octree::build(&unit_cloud(), &OctreeConfig::with_max_depth(4)).unwrap();
        let s0 = tree.voxel_size_at_depth(0);
        for d in 1..=4u8 {
            let expected = s0 / (1u64 << d) as f64;
            assert!((tree.voxel_size_at_depth(d) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn mean_color_of_root() {
        let mut c = PointCloud::new();
        c.push(Point::xyz_rgb(0.1, 0.1, 0.1, 0, 0, 0));
        c.push(Point::xyz_rgb(0.9, 0.9, 0.9, 200, 100, 50));
        let tree = Octree::build(&c, &OctreeConfig::with_max_depth(1)).unwrap();
        assert_eq!(
            tree.node(NodeId::ROOT).mean_color(),
            Color::new(100, 50, 25)
        );
    }

    #[test]
    fn fixed_cube_keeps_voxels_stable_across_frames() {
        // The same point must land in the same level-1 octant regardless of
        // other points, when a fixed cube is used.
        let cube = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let mut f1 = PointCloud::new();
        f1.push(Point::from_position(Vec3::splat(0.9)));
        let mut f2 = PointCloud::new();
        f2.push(Point::from_position(Vec3::splat(0.9)));
        f2.push(Point::from_position(Vec3::splat(0.05)));
        let cfg = OctreeConfig::with_max_depth(1).in_cube(cube);
        let t1 = Octree::build(&f1, &cfg).unwrap();
        let t2 = Octree::build(&f2, &cfg).unwrap();
        let byte1 = t1.node(NodeId::ROOT).occupancy_byte();
        let byte2 = t2.node(NodeId::ROOT).occupancy_byte();
        assert_eq!(byte1 & 0b1000_0000, byte2 & 0b1000_0000);
    }

    #[test]
    fn builder_reuse_matches_fresh_builds() {
        let mut builder = OctreeBuilder::new();
        let clouds = [unit_cloud(), {
            let mut c = unit_cloud();
            c.push(Point::xyz_rgb(0.25, 0.75, 0.5, 1, 2, 3));
            c
        }];
        for cloud in &clouds {
            for depth in [0u8, 1, 3, 6] {
                let cfg = OctreeConfig::with_max_depth(depth);
                let reused = builder.build(cloud, &cfg).unwrap();
                let fresh = Octree::build(cloud, &cfg).unwrap();
                assert_eq!(reused, fresh, "depth {depth}");
            }
        }
    }

    #[test]
    fn serial_and_parallel_builds_are_bit_identical() {
        let cloud = arvis_pointcloud::synth::SynthBodyConfig::new(
            arvis_pointcloud::synth::SubjectProfile::Longdress,
        )
        .with_target_points(30_000)
        .with_seed(5)
        .generate();
        let cfg = OctreeConfig::with_max_depth(9);
        let parallel = Octree::build(&cloud, &cfg).unwrap();
        let serial = par::serial_scope(|| Octree::build(&cloud, &cfg).unwrap());
        assert_eq!(parallel, serial);
    }
}
