//! Per-level statistics of an octree.

use crate::tree::Octree;

/// Summary statistics of an octree, per level and overall.
#[derive(Debug, Clone, PartialEq)]
pub struct OctreeStats {
    /// Occupied node count at each depth `0..=max_depth`.
    pub nodes_per_level: Vec<usize>,
    /// Mean number of occupied children per internal node, per depth
    /// `0..max_depth` (empty for a depth-0 tree).
    pub mean_branching: Vec<f64>,
    /// Total nodes across all levels.
    pub total_nodes: usize,
    /// Number of input points.
    pub point_count: u64,
    /// Fraction of depth-`max` voxels containing more than one point —
    /// how saturated the finest level is (0 = every leaf holds one point).
    pub leaf_multi_occupancy: f64,
}

impl OctreeStats {
    /// Computes statistics for a tree.
    pub fn compute(tree: &Octree) -> OctreeStats {
        let nodes_per_level = tree.occupancy_profile();
        let mean_branching = nodes_per_level
            .windows(2)
            .map(|w| w[1] as f64 / w[0] as f64)
            .collect();
        let max = tree.max_depth();
        let leaves: Vec<u64> = tree
            .nodes_at_depth(max)
            .map(|id| tree.node(id).count())
            .collect();
        let multi = leaves.iter().filter(|&&c| c > 1).count();
        OctreeStats {
            total_nodes: tree.node_count(),
            point_count: tree.point_count(),
            leaf_multi_occupancy: if leaves.is_empty() {
                0.0
            } else {
                multi as f64 / leaves.len() as f64
            },
            nodes_per_level,
            mean_branching,
        }
    }

    /// Approximate in-memory footprint of the tree in bytes
    /// (arena rows only).
    pub fn memory_estimate(&self) -> usize {
        // Per node: 8×u32 child links (SoA table) + a 56-byte payload row
        // (u64 count + 3×f64 position sum + 3×u64 color sum) ≈ 88 bytes.
        self.total_nodes * 88
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::OctreeConfig;
    use arvis_pointcloud::synth::{SubjectProfile, SynthBodyConfig};

    fn stats(points: usize, depth: u8) -> OctreeStats {
        let cloud = SynthBodyConfig::new(SubjectProfile::Longdress)
            .with_target_points(points)
            .generate();
        let tree = Octree::build(&cloud, &OctreeConfig::with_max_depth(depth)).unwrap();
        OctreeStats::compute(&tree)
    }

    #[test]
    fn totals_are_consistent() {
        let s = stats(5_000, 6);
        assert_eq!(s.nodes_per_level.iter().sum::<usize>(), s.total_nodes);
        assert_eq!(s.nodes_per_level.len(), 7);
        assert_eq!(s.mean_branching.len(), 6);
    }

    #[test]
    fn branching_is_between_1_and_8() {
        let s = stats(10_000, 7);
        for (d, &b) in s.mean_branching.iter().enumerate() {
            assert!((1.0..=8.0).contains(&b), "branching {b} at depth {d}");
        }
    }

    #[test]
    fn surface_branching_is_about_four() {
        // A 2-manifold surface quadruples its occupied voxels per level in
        // the pre-saturation regime.
        let s = stats(200_000, 7);
        let mid = s.mean_branching[4]; // depth 4 -> 5, well below saturation
        assert!(mid > 2.5 && mid < 6.0, "mid-level branching {mid}");
    }

    #[test]
    fn multi_occupancy_decreases_with_depth() {
        let shallow = stats(20_000, 4).leaf_multi_occupancy;
        let deep = stats(20_000, 8).leaf_multi_occupancy;
        assert!(
            deep < shallow,
            "finer leaves should be less multi-occupied: {deep} vs {shallow}"
        );
    }

    #[test]
    fn memory_estimate_positive() {
        let s = stats(1_000, 4);
        assert!(s.memory_estimate() >= s.total_nodes * 80);
    }
}
