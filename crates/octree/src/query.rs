//! Spatial queries: point location, box queries, nearest occupied voxel.

use arvis_pointcloud::aabb::Aabb;
use arvis_pointcloud::math::Vec3;

use crate::traversal::Visit;
use crate::tree::{NodeId, NodeView, Octree};

impl Octree {
    /// Locates the occupied node containing `p` at `depth`, descending from
    /// the root. Returns `None` when `p` is outside the cube or its voxel is
    /// unoccupied.
    ///
    /// # Panics
    ///
    /// Panics when `depth > max_depth`.
    pub fn locate(&self, p: Vec3, depth: u8) -> Option<NodeView<'_>> {
        assert!(depth <= self.max_depth(), "depth out of range");
        if !self.cube().contains(p) {
            return None;
        }
        // Quantize with the exact formula the builder used, then read the
        // octant bits per level. Descending by geometric octant tests would
        // disagree with the builder near cell boundaries (and for
        // degenerate, zero-extent cubes).
        let max_depth = self.max_depth();
        let n = 1u64 << max_depth;
        let extent = self.cube().max_extent();
        let min = self.cube().min();
        let q = |v: f64, lo: f64| -> u64 {
            if extent <= 0.0 {
                return 0;
            }
            let idx = ((v - lo) / extent * n as f64).floor();
            (idx.max(0.0) as u64).min(n - 1)
        };
        let (cx, cy, cz) = (q(p.x, min.x), q(p.y, min.y), q(p.z, min.z));
        let mut view = self.node(NodeId::ROOT);
        for level in 1..=depth {
            let shift = max_depth - level;
            let o = (((cx >> shift) & 1) | (((cy >> shift) & 1) << 1) | (((cz >> shift) & 1) << 2))
                as usize;
            view = view.child(o)?;
        }
        Some(view)
    }

    /// Collects all depth-`depth` nodes whose voxels intersect `query`.
    pub fn voxels_in_box(&self, query: &Aabb, depth: u8) -> Vec<Visit<'_>> {
        assert!(depth <= self.max_depth(), "depth out of range");
        let mut out = Vec::new();
        let mut stack: Vec<(NodeId, Aabb, u8)> = vec![(NodeId::ROOT, *self.cube(), 0)];
        while let Some((id, cube, d)) = stack.pop() {
            if !cube.intersects(query) {
                continue;
            }
            let node = self.node(id);
            if d == depth {
                out.push(Visit { node, cube });
                continue;
            }
            let octants = cube.octants();
            for o in 0..8 {
                if let Some(child) = node.child(o) {
                    stack.push((child.id(), octants[o], d + 1));
                }
            }
        }
        out
    }

    /// Finds the occupied depth-`depth` voxel whose cube is closest to `p`
    /// (by point-to-box distance), using best-first search. Returns the node
    /// and the squared distance (zero when `p` is inside an occupied voxel).
    pub fn nearest_voxel(&self, p: Vec3, depth: u8) -> Option<(NodeView<'_>, f64)> {
        assert!(depth <= self.max_depth(), "depth out of range");
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        #[derive(PartialEq)]
        struct Entry(f64, u32, Aabb, u8);
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0
                    .partial_cmp(&other.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
            }
        }

        let mut heap: BinaryHeap<Reverse<Entry>> = BinaryHeap::new();
        heap.push(Reverse(Entry(
            self.cube().distance_squared(p),
            NodeId::ROOT.0,
            *self.cube(),
            0,
        )));
        while let Some(Reverse(Entry(d2, idx, cube, d))) = heap.pop() {
            let view = self.node(NodeId(idx));
            if d == depth {
                return Some((view, d2));
            }
            let octants = cube.octants();
            for o in 0..8 {
                if let Some(child) = view.child(o) {
                    heap.push(Reverse(Entry(
                        octants[o].distance_squared(p),
                        child.id().0,
                        octants[o],
                        d + 1,
                    )));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::OctreeConfig;
    use arvis_pointcloud::cloud::PointCloud;
    use arvis_pointcloud::point::Point;
    use arvis_pointcloud::synth::{SubjectProfile, SynthBodyConfig};

    fn body_tree() -> (PointCloud, Octree) {
        let cloud = SynthBodyConfig::new(SubjectProfile::Soldier)
            .with_target_points(4_000)
            .with_seed(5)
            .generate();
        let tree = Octree::build(&cloud, &OctreeConfig::with_max_depth(6)).unwrap();
        (cloud, tree)
    }

    #[test]
    fn locate_finds_every_input_point() {
        let (cloud, tree) = body_tree();
        for p in cloud.positions().take(500) {
            let v = tree.locate(p, 6).expect("input point must be locatable");
            assert!(v.count() >= 1);
        }
    }

    #[test]
    fn locate_misses_empty_space() {
        let (_, tree) = body_tree();
        // A corner of the cube far from the body should be unoccupied at
        // fine depth.
        let corner = tree.cube().min() + Vec3::splat(1e-6);
        // At depth 0 everything occupied; at depth 6 the corner should miss
        // (the body is centered, not in the cube corner).
        assert!(tree.locate(corner, 0).is_some());
        assert!(tree.locate(corner, 6).is_none());
    }

    #[test]
    fn locate_outside_cube_is_none() {
        let (_, tree) = body_tree();
        let outside = tree.cube().max() + Vec3::ONE;
        assert!(tree.locate(outside, 3).is_none());
    }

    #[test]
    fn box_query_matches_linear_scan() {
        let (_, tree) = body_tree();
        let query = Aabb::cube(tree.cube().center(), tree.cube().max_extent() * 0.3);
        let got = tree.voxels_in_box(&query, 5);
        // Compare against scanning all depth-5 voxels via BFS.
        let expected = tree
            .bfs()
            .filter(|v| v.node.depth() == 5 && v.cube.intersects(&query))
            .count();
        assert_eq!(got.len(), expected);
        assert!(!got.is_empty());
        for v in &got {
            assert!(v.cube.intersects(&query));
        }
    }

    #[test]
    fn nearest_voxel_agrees_with_exhaustive_search() {
        let (_, tree) = body_tree();
        let probes = [
            tree.cube().min(),
            tree.cube().max(),
            tree.cube().center(),
            tree.cube().center() + Vec3::new(0.3, -0.2, 0.1),
        ];
        for p in probes {
            let (_, d2) = tree.nearest_voxel(p, 5).unwrap();
            let best = tree
                .bfs()
                .filter(|v| v.node.depth() == 5)
                .map(|v| v.cube.distance_squared(p))
                .fold(f64::INFINITY, f64::min);
            assert!((d2 - best).abs() < 1e-12, "probe {p}: {d2} vs {best}");
        }
    }

    #[test]
    fn nearest_voxel_inside_occupied_is_zero() {
        let (cloud, tree) = body_tree();
        let p = cloud.points()[0].position;
        let (_, d2) = tree.nearest_voxel(p, 6).unwrap();
        assert_eq!(d2, 0.0);
    }

    #[test]
    fn single_point_tree_queries() {
        let mut c = PointCloud::new();
        c.push(Point::from_position(Vec3::splat(0.25)));
        let tree = Octree::build(
            &c,
            &OctreeConfig::with_max_depth(2).in_cube(Aabb::new(Vec3::ZERO, Vec3::ONE)),
        )
        .unwrap();
        // Nearest voxel from far away still resolves.
        let (v, d2) = tree.nearest_voxel(Vec3::splat(10.0), 2).unwrap();
        assert!(v.count() == 1);
        assert!(d2 > 0.0);
    }
}
