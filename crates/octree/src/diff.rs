//! Structural diff between two octrees at a depth — the frame-to-frame
//! voxel delta of a dynamic sequence.
//!
//! Delta statistics matter for the scheduler's workload model: a renderer
//! with frame-coherence optimizations only pays for *changed* voxels, so the
//! effective arrival per slot is `|added| + |removed|`, not `a(d)`. The
//! `ratesweep`-style experiments can plug these numbers in directly.

use std::collections::HashSet;

use crate::tree::{NodeId, Octree};

/// The voxel-set difference between two trees at one depth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OctreeDiff {
    /// Depth the diff was taken at.
    pub depth: u8,
    /// Voxels occupied in `b` but not `a` (Morton codes at `depth`).
    pub added: Vec<u64>,
    /// Voxels occupied in `a` but not `b`.
    pub removed: Vec<u64>,
    /// Voxels occupied in both.
    pub unchanged: usize,
}

impl OctreeDiff {
    /// Total changed voxels — the frame-coherent workload delta.
    pub fn changed(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Jaccard similarity of the two voxel sets (1 = identical, 0 =
    /// disjoint; 1 for two empty sets).
    pub fn jaccard(&self) -> f64 {
        let union = self.unchanged + self.changed();
        if union == 0 {
            1.0
        } else {
            self.unchanged as f64 / union as f64
        }
    }
}

/// Morton code of every occupied voxel at `depth`, by walking parent links
/// through the level arena.
fn voxel_codes(tree: &Octree, depth: u8) -> Vec<u64> {
    // Recover codes by DFS, accumulating octant bits.
    fn walk(tree: &Octree, id: NodeId, d: u8, target: u8, prefix: u64, out: &mut Vec<u64>) {
        if d == target {
            out.push(prefix);
            return;
        }
        let view = tree.node(id);
        for o in 0..8usize {
            if let Some(child) = view.child(o) {
                walk(
                    tree,
                    child.id(),
                    d + 1,
                    target,
                    (prefix << 3) | o as u64,
                    out,
                );
            }
        }
    }
    let mut out = Vec::with_capacity(tree.occupied_at_depth(depth));
    walk(tree, NodeId::ROOT, 0, depth, 0, &mut out);
    out
}

/// Computes the voxel diff `a → b` at `depth`.
///
/// Both trees must cover the *same cube* for codes to be comparable; this
/// is the caller's contract (build both with a fixed
/// [`crate::OctreeConfig::in_cube`]).
///
/// # Panics
///
/// Panics when `depth` exceeds either tree's max depth.
pub fn diff_at_depth(a: &Octree, b: &Octree, depth: u8) -> OctreeDiff {
    assert!(
        depth <= a.max_depth() && depth <= b.max_depth(),
        "depth exceeds a tree's max depth"
    );
    let set_a: HashSet<u64> = voxel_codes(a, depth).into_iter().collect();
    let set_b: HashSet<u64> = voxel_codes(b, depth).into_iter().collect();
    let mut added: Vec<u64> = set_b.difference(&set_a).copied().collect();
    let mut removed: Vec<u64> = set_a.difference(&set_b).copied().collect();
    added.sort_unstable();
    removed.sort_unstable();
    let unchanged = set_a.intersection(&set_b).count();
    OctreeDiff {
        depth,
        added,
        removed,
        unchanged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::OctreeConfig;
    use arvis_pointcloud::aabb::Aabb;
    use arvis_pointcloud::math::Vec3;
    use arvis_pointcloud::synth::skeleton::Pose;
    use arvis_pointcloud::synth::{SubjectProfile, SynthBodyConfig};

    fn shared_cube() -> Aabb {
        Aabb::cube(Vec3::new(0.0, 1.0, 0.0), 3.0)
    }

    fn tree_for_pose(pose: Pose, seed: u64) -> Octree {
        let cloud = SynthBodyConfig::new(SubjectProfile::Loot)
            .with_target_points(5_000)
            .with_seed(seed)
            .with_pose(pose)
            .generate();
        Octree::build(
            &cloud,
            &OctreeConfig::with_max_depth(6).in_cube(shared_cube()),
        )
        .unwrap()
    }

    #[test]
    fn identical_trees_have_empty_diff() {
        let t = tree_for_pose(Pose::NEUTRAL, 1);
        let d = diff_at_depth(&t, &t, 5);
        assert!(d.added.is_empty() && d.removed.is_empty());
        assert_eq!(d.unchanged, t.occupied_at_depth(5));
        assert_eq!(d.jaccard(), 1.0);
        assert_eq!(d.changed(), 0);
    }

    #[test]
    fn same_pose_different_sampling_is_similar() {
        let a = tree_for_pose(Pose::NEUTRAL, 1);
        let b = tree_for_pose(Pose::NEUTRAL, 2);
        let d = diff_at_depth(&a, &b, 4);
        assert!(
            d.jaccard() > 0.6,
            "same pose must be voxel-similar, jaccard {}",
            d.jaccard()
        );
    }

    #[test]
    fn different_poses_differ_more_than_resampling() {
        let neutral_a = tree_for_pose(Pose::NEUTRAL, 1);
        let neutral_b = tree_for_pose(Pose::NEUTRAL, 2);
        let walking = tree_for_pose(Pose::walking(1.5), 1);
        let resample = diff_at_depth(&neutral_a, &neutral_b, 5);
        let motion = diff_at_depth(&neutral_a, &walking, 5);
        assert!(
            motion.jaccard() < resample.jaccard(),
            "motion ({}) must change more voxels than resampling ({})",
            motion.jaccard(),
            resample.jaccard()
        );
    }

    #[test]
    fn diff_is_antisymmetric() {
        let a = tree_for_pose(Pose::NEUTRAL, 1);
        let b = tree_for_pose(Pose::walking(0.7), 1);
        let ab = diff_at_depth(&a, &b, 5);
        let ba = diff_at_depth(&b, &a, 5);
        assert_eq!(ab.added, ba.removed);
        assert_eq!(ab.removed, ba.added);
        assert_eq!(ab.unchanged, ba.unchanged);
    }

    #[test]
    fn counts_are_conserved() {
        let a = tree_for_pose(Pose::NEUTRAL, 1);
        let b = tree_for_pose(Pose::walking(2.0), 3);
        let d = diff_at_depth(&a, &b, 5);
        assert_eq!(d.removed.len() + d.unchanged, a.occupied_at_depth(5));
        assert_eq!(d.added.len() + d.unchanged, b.occupied_at_depth(5));
    }

    #[test]
    fn coarse_depth_is_more_stable_than_fine() {
        let a = tree_for_pose(Pose::NEUTRAL, 1);
        let b = tree_for_pose(Pose::walking(0.5), 1);
        let coarse = diff_at_depth(&a, &b, 3).jaccard();
        let fine = diff_at_depth(&a, &b, 6).jaccard();
        assert!(
            coarse >= fine,
            "coarser voxels absorb motion: coarse {coarse} vs fine {fine}"
        );
    }
}
