//! Structural diff between two octrees at a depth — the frame-to-frame
//! voxel delta of a dynamic sequence.
//!
//! Delta statistics matter for the scheduler's workload model: a renderer
//! with frame-coherence optimizations only pays for *changed* voxels, so the
//! effective arrival per slot is `|added| + |removed|`, not `a(d)`. The
//! `ratesweep`-style experiments can plug these numbers in directly.

use crate::tree::{NodeId, Octree};

/// The voxel-set difference between two trees at one depth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OctreeDiff {
    /// Depth the diff was taken at.
    pub depth: u8,
    /// Voxels occupied in `b` but not `a` (Morton codes at `depth`).
    pub added: Vec<u64>,
    /// Voxels occupied in `a` but not `b`.
    pub removed: Vec<u64>,
    /// Voxels occupied in both.
    pub unchanged: usize,
}

impl OctreeDiff {
    /// Total changed voxels — the frame-coherent workload delta.
    pub fn changed(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Jaccard similarity of the two voxel sets (1 = identical, 0 =
    /// disjoint; 1 for two empty sets).
    pub fn jaccard(&self) -> f64 {
        let union = self.unchanged + self.changed();
        if union == 0 {
            1.0
        } else {
            self.unchanged as f64 / union as f64
        }
    }
}

/// Morton code of every occupied voxel at `depth`, by walking parent links
/// through the level arena.
fn voxel_codes(tree: &Octree, depth: u8) -> Vec<u64> {
    // Recover codes by DFS, accumulating octant bits.
    fn walk(tree: &Octree, id: NodeId, d: u8, target: u8, prefix: u64, out: &mut Vec<u64>) {
        if d == target {
            out.push(prefix);
            return;
        }
        let view = tree.node(id);
        for o in 0..8usize {
            if let Some(child) = view.child(o) {
                walk(
                    tree,
                    child.id(),
                    d + 1,
                    target,
                    (prefix << 3) | o as u64,
                    out,
                );
            }
        }
    }
    let mut out = Vec::with_capacity(tree.occupied_at_depth(depth));
    walk(tree, NodeId::ROOT, 0, depth, 0, &mut out);
    // The DFS visits octants 0..8 in order, so codes come out strictly
    // ascending — the invariant the merge in `diff_at_depth` rides on.
    debug_assert!(out.windows(2).all(|w| w[0] < w[1]), "DFS codes ascend");
    out
}

/// Computes the voxel diff `a → b` at `depth`.
///
/// Both trees must cover the *same cube* for codes to be comparable; this
/// is the caller's contract (build both with a fixed
/// [`crate::OctreeConfig::in_cube`]).
///
/// # Panics
///
/// Panics when `depth` exceeds either tree's max depth.
pub fn diff_at_depth(a: &Octree, b: &Octree, depth: u8) -> OctreeDiff {
    assert!(
        depth <= a.max_depth() && depth <= b.max_depth(),
        "depth exceeds a tree's max depth"
    );
    // Both code lists are strictly ascending (DFS order), so the set
    // difference/intersection is a single linear merge — no hash sets, no
    // post-sort, and the output order is deterministic by construction.
    let codes_a = voxel_codes(a, depth);
    let codes_b = voxel_codes(b, depth);
    let mut added = Vec::new();
    let mut removed = Vec::new();
    let mut unchanged = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < codes_a.len() && j < codes_b.len() {
        match codes_a[i].cmp(&codes_b[j]) {
            std::cmp::Ordering::Less => {
                removed.push(codes_a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                added.push(codes_b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                unchanged += 1;
                i += 1;
                j += 1;
            }
        }
    }
    removed.extend_from_slice(&codes_a[i..]);
    added.extend_from_slice(&codes_b[j..]);
    OctreeDiff {
        depth,
        added,
        removed,
        unchanged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::OctreeConfig;
    use arvis_pointcloud::aabb::Aabb;
    use arvis_pointcloud::math::Vec3;
    use arvis_pointcloud::synth::skeleton::Pose;
    use arvis_pointcloud::synth::{SubjectProfile, SynthBodyConfig};

    fn shared_cube() -> Aabb {
        Aabb::cube(Vec3::new(0.0, 1.0, 0.0), 3.0)
    }

    fn tree_for_pose(pose: Pose, seed: u64) -> Octree {
        let cloud = SynthBodyConfig::new(SubjectProfile::Loot)
            .with_target_points(5_000)
            .with_seed(seed)
            .with_pose(pose)
            .generate();
        Octree::build(
            &cloud,
            &OctreeConfig::with_max_depth(6).in_cube(shared_cube()),
        )
        .unwrap()
    }

    #[test]
    fn identical_trees_have_empty_diff() {
        let t = tree_for_pose(Pose::NEUTRAL, 1);
        let d = diff_at_depth(&t, &t, 5);
        assert!(d.added.is_empty() && d.removed.is_empty());
        assert_eq!(d.unchanged, t.occupied_at_depth(5));
        assert_eq!(d.jaccard(), 1.0);
        assert_eq!(d.changed(), 0);
    }

    #[test]
    fn same_pose_different_sampling_is_similar() {
        let a = tree_for_pose(Pose::NEUTRAL, 1);
        let b = tree_for_pose(Pose::NEUTRAL, 2);
        let d = diff_at_depth(&a, &b, 4);
        assert!(
            d.jaccard() > 0.6,
            "same pose must be voxel-similar, jaccard {}",
            d.jaccard()
        );
    }

    #[test]
    fn different_poses_differ_more_than_resampling() {
        let neutral_a = tree_for_pose(Pose::NEUTRAL, 1);
        let neutral_b = tree_for_pose(Pose::NEUTRAL, 2);
        let walking = tree_for_pose(Pose::walking(1.5), 1);
        let resample = diff_at_depth(&neutral_a, &neutral_b, 5);
        let motion = diff_at_depth(&neutral_a, &walking, 5);
        assert!(
            motion.jaccard() < resample.jaccard(),
            "motion ({}) must change more voxels than resampling ({})",
            motion.jaccard(),
            resample.jaccard()
        );
    }

    #[test]
    fn diff_is_antisymmetric() {
        let a = tree_for_pose(Pose::NEUTRAL, 1);
        let b = tree_for_pose(Pose::walking(0.7), 1);
        let ab = diff_at_depth(&a, &b, 5);
        let ba = diff_at_depth(&b, &a, 5);
        assert_eq!(ab.added, ba.removed);
        assert_eq!(ab.removed, ba.added);
        assert_eq!(ab.unchanged, ba.unchanged);
    }

    #[test]
    fn counts_are_conserved() {
        let a = tree_for_pose(Pose::NEUTRAL, 1);
        let b = tree_for_pose(Pose::walking(2.0), 3);
        let d = diff_at_depth(&a, &b, 5);
        assert_eq!(d.removed.len() + d.unchanged, a.occupied_at_depth(5));
        assert_eq!(d.added.len() + d.unchanged, b.occupied_at_depth(5));
    }

    #[test]
    fn diff_is_input_order_independent() {
        // The same point sets in different input orders must produce the
        // exact same diff — added/removed code lists bitwise identical.
        // (This used to hold only because HashSet results were sorted
        // after the fact; the merge now guarantees it by construction.)
        let cloud_a = SynthBodyConfig::new(SubjectProfile::Loot)
            .with_target_points(4_000)
            .with_seed(11)
            .generate();
        let cloud_b = SynthBodyConfig::new(SubjectProfile::Loot)
            .with_target_points(4_000)
            .with_seed(12)
            .with_pose(Pose::walking(1.0))
            .generate();
        let cfg = OctreeConfig::with_max_depth(6).in_cube(shared_cube());
        let build = |c: &arvis_pointcloud::cloud::PointCloud| Octree::build(c, &cfg).unwrap();

        let reversed = |c: &arvis_pointcloud::cloud::PointCloud| c.iter().rev().cloned().collect();
        let a_rev: arvis_pointcloud::cloud::PointCloud = reversed(&cloud_a);
        let b_rev: arvis_pointcloud::cloud::PointCloud = reversed(&cloud_b);

        let base = diff_at_depth(&build(&cloud_a), &build(&cloud_b), 5);
        let perm = diff_at_depth(&build(&a_rev), &build(&b_rev), 5);
        assert_eq!(base, perm, "diff must not depend on point input order");
        assert!(
            base.added.windows(2).all(|w| w[0] < w[1]),
            "added codes strictly ascending"
        );
        assert!(
            base.removed.windows(2).all(|w| w[0] < w[1]),
            "removed codes strictly ascending"
        );
    }

    #[test]
    fn coarse_depth_is_more_stable_than_fine() {
        let a = tree_for_pose(Pose::NEUTRAL, 1);
        let b = tree_for_pose(Pose::walking(0.5), 1);
        let coarse = diff_at_depth(&a, &b, 3).jaccard();
        let fine = diff_at_depth(&a, &b, 6).jaccard();
        assert!(
            coarse >= fine,
            "coarser voxels absorb motion: coarse {coarse} vs fine {fine}"
        );
    }
}
