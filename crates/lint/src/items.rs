//! Stage 1 of the analyzer: an item parser on top of the lexer.
//!
//! Turns one file's token stream into the items the workspace passes need:
//! `fn` items (with spans, body token ranges, enclosing module path and
//! impl type), `struct`/`enum` declarations (with field names), `use`
//! trees (alias → full path), and `cfg` scopes. Together with the file's
//! root-relative path this yields a workspace-wide item graph — the input
//! of the call-graph/taint stage ([`crate::callgraph`], [`crate::taint`])
//! and the codec-coverage stage ([`crate::coverage`]).
//!
//! Like the lexer, this is deliberately *not* a full parser: it recognizes
//! item heads and brace-matches their bodies. Items nested inside function
//! bodies are attributed to the enclosing function (their calls count as
//! the outer function's calls), and `macro_rules!` bodies are skipped as
//! opaque groups.

use crate::lexer::{self, Comment, Tok, TokKind};

/// Three-valued truth for `cfg` predicates evaluated under a **non-test**
/// build: `test` is [`CfgTruth::False`], every other predicate (features,
/// target properties) is [`CfgTruth::Unknown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CfgTruth {
    /// Definitely compiled in a non-test build.
    True,
    /// Definitely *not* compiled in a non-test build — a test-only region.
    False,
    /// Depends on flags the linter does not model.
    Unknown,
}

impl CfgTruth {
    fn not(self) -> CfgTruth {
        match self {
            CfgTruth::True => CfgTruth::False,
            CfgTruth::False => CfgTruth::True,
            CfgTruth::Unknown => CfgTruth::Unknown,
        }
    }
}

/// Evaluates the `cfg` expression in `toks` (the tokens *between* the
/// outer parentheses of `#[cfg(…)]`) under a non-test build.
///
/// Grammar handled: `test`, `not(expr)`, `all(expr, …)`, `any(expr, …)`,
/// and arbitrary other predicates (`feature = "x"`, `unix`, …) which
/// evaluate to [`CfgTruth::Unknown`]. A region is test-only exactly when
/// the whole expression evaluates to [`CfgTruth::False`] — e.g.
/// `all(test, feature = "slow")` is test-only, `any(test, feature = "x")`
/// is not (it may be compiled without `cfg(test)`), and
/// `not(any(test, foo))` is not (it guards *non*-test code).
pub fn eval_cfg(toks: &[Tok]) -> CfgTruth {
    let (truth, _) = eval_cfg_at(toks, 0);
    truth
}

fn eval_cfg_at(toks: &[Tok], mut i: usize) -> (CfgTruth, usize) {
    let Some(head) = toks.get(i) else {
        return (CfgTruth::Unknown, i);
    };
    if head.kind != TokKind::Ident {
        return (CfgTruth::Unknown, i + 1);
    }
    let combinator = matches!(head.text.as_str(), "not" | "all" | "any")
        && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
    if !combinator {
        // A leaf predicate: `test` is false off the test profile; anything
        // else (including `feature = "…"` — skip its value) is unknown.
        let truth = if head.is_ident("test") {
            CfgTruth::False
        } else {
            CfgTruth::Unknown
        };
        i += 1;
        if toks.get(i).is_some_and(|t| t.is_punct('=')) {
            i += 2; // `= "value"`
        }
        return (truth, i);
    }
    let op = head.text.clone();
    i += 2; // name + `(`
    let mut args = Vec::new();
    loop {
        match toks.get(i) {
            None => break,
            Some(t) if t.is_punct(')') => {
                i += 1;
                break;
            }
            Some(t) if t.is_punct(',') => {
                i += 1;
            }
            Some(_) => {
                let (truth, next) = eval_cfg_at(toks, i);
                // Defensive: always make progress on malformed input.
                i = next.max(i + 1);
                args.push(truth);
            }
        }
    }
    let truth = match op.as_str() {
        "not" => args.first().copied().unwrap_or(CfgTruth::Unknown).not(),
        "all" => {
            if args.contains(&CfgTruth::False) {
                CfgTruth::False
            } else if args.iter().all(|&a| a == CfgTruth::True) {
                CfgTruth::True
            } else {
                CfgTruth::Unknown
            }
        }
        // `any`
        _ => {
            if args.contains(&CfgTruth::True) {
                CfgTruth::True
            } else if args.iter().all(|&a| a == CfgTruth::False) {
                CfgTruth::False
            } else {
                CfgTruth::Unknown
            }
        }
    };
    (truth, i)
}

/// One `fn` item.
#[derive(Debug)]
pub struct FnItem {
    /// Enclosing module path segments (derived from the file path plus
    /// inline `mod` blocks), e.g. `["arvis_core", "scenario"]`.
    pub module: Vec<String>,
    /// The impl (or trait) type the fn is a member of, when any.
    pub impl_type: Option<String>,
    /// Function name.
    pub name: String,
    /// 1-based line/column of the name token.
    pub line: u32,
    /// Column of the name token.
    pub col: u32,
    /// First line of the item, attributes included — the anchor line for
    /// function-scoped pragmas (a pragma directly above this line covers
    /// the whole item).
    pub header_line: u32,
    /// Inclusive line span of the whole item (attributes through the
    /// closing brace).
    pub span: (u32, u32),
    /// Token index range (exclusive end) of the body, braces included.
    pub body: (usize, usize),
    /// Token index range of the signature (after `fn`, before the body).
    pub sig: (usize, usize),
    /// True when the parameter list declares `self` (an inherent/trait
    /// method rather than a free function).
    pub has_self: bool,
    /// True when the item is only compiled under `cfg(test)` (its own
    /// attributes or any enclosing scope), or carries `#[test]`.
    pub in_test: bool,
}

impl FnItem {
    /// The display path used in taint chains: module segments, the impl
    /// type when any, then the name — `arvis_core::session::SessionBatch::run`.
    pub fn display(&self) -> String {
        let mut parts: Vec<&str> = self.module.iter().map(String::as_str).collect();
        if let Some(ty) = &self.impl_type {
            parts.push(ty);
        }
        parts.push(&self.name);
        parts.join("::")
    }

    /// The full qualified path segments (module + impl type + name), for
    /// suffix matching.
    pub fn path_segments(&self) -> Vec<String> {
        let mut parts = self.module.clone();
        if let Some(ty) = &self.impl_type {
            parts.push(ty.clone());
        }
        parts.push(self.name.clone());
        parts
    }
}

/// One `struct` or `enum` declaration with its named fields (for enums:
/// the union of every variant's named fields — the file-format surface a
/// codec must cover).
#[derive(Debug)]
pub struct TypeItem {
    /// Type name.
    pub name: String,
    /// Declared named fields, in declaration order, deduplicated.
    pub fields: Vec<String>,
    /// True for `enum` declarations.
    pub is_enum: bool,
    /// 1-based line of the name token.
    pub line: u32,
}

/// The parse of one file: its token stream plus the extracted items.
#[derive(Debug)]
pub struct FileItems {
    /// Root-relative path with `/` separators.
    pub rel: String,
    /// The file's code tokens (rules index into this).
    pub toks: Vec<Tok>,
    /// The file's comments (pragma parsing).
    pub comments: Vec<Comment>,
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
    /// Every `struct`/`enum` declaration, in source order.
    pub types: Vec<TypeItem>,
    /// `use` aliases: local name → full path segments
    /// (`Instant` → `["std", "time", "Instant"]`).
    pub uses: Vec<(String, Vec<String>)>,
    /// Inclusive line spans of test-only regions (`#[cfg(test)]` mods and
    /// impls, `#[test]`/test-only fns).
    pub test_regions: Vec<(u32, u32)>,
}

impl FileItems {
    /// Lexes and parses one file.
    pub fn parse(rel: &str, src: &str) -> FileItems {
        let lexed = lexer::lex(src);
        let mut out = FileItems {
            rel: rel.to_string(),
            toks: lexed.toks,
            comments: lexed.comments,
            fns: Vec::new(),
            types: Vec::new(),
            uses: Vec::new(),
            test_regions: Vec::new(),
        };
        let mut module = module_path_of(rel);
        let end = out.toks.len();
        let toks = std::mem::take(&mut out.toks);
        let mut p = Parser {
            toks: &toks,
            out: &mut out,
        };
        p.parse_items(0, end, &mut module, None, false);
        out.toks = toks;
        out.test_regions.sort_unstable();
        out
    }

    /// True when `line` falls in a test-only region.
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| line >= a && line <= b)
    }

    /// The fn item whose body span contains `line`, if any (innermost is
    /// meaningless here — fn items do not nest in this model).
    pub fn fn_at_line(&self, line: u32) -> Option<usize> {
        self.fns
            .iter()
            .position(|f| line >= f.span.0 && line <= f.span.1)
    }

    /// Expands a leading path segment through the file's `use` aliases:
    /// `Instant` → `std::time::Instant` when the file imports it.
    pub fn expand_use(&self, name: &str) -> Option<&[String]> {
        self.uses
            .iter()
            .find(|(alias, _)| alias == name)
            .map(|(_, path)| path.as_slice())
    }
}

/// Derives a module path from a root-relative file path. Crate layouts
/// (`crates/<name>/src/<mod>.rs`) map to `arvis_<name>::<mod>`; the root
/// crate's `src/lib.rs` maps to `arvis`; everything else (tests, examples,
/// benches, bins) uses its path components, which is all suffix matching
/// needs.
fn module_path_of(rel: &str) -> Vec<String> {
    let parts: Vec<&str> = rel.split('/').collect();
    let mut out = Vec::new();
    let strip = |s: &str| s.trim_end_matches(".rs").replace('-', "_");
    if parts.len() >= 3 && parts[0] == "crates" && parts[2] == "src" {
        out.push(format!("arvis_{}", strip(parts[1])));
        for p in &parts[3..] {
            let m = strip(p);
            if m != "lib" && m != "mod" && m != "main" && m != "bin" {
                out.push(m);
            }
        }
    } else if parts.first() == Some(&"src") {
        out.push("arvis".to_string());
        for p in &parts[1..] {
            let m = strip(p);
            if m != "lib" && m != "mod" && m != "main" {
                out.push(m);
            }
        }
    } else {
        for p in &parts {
            let m = strip(p);
            if !m.is_empty() {
                out.push(m);
            }
        }
    }
    out
}

/// Rust item/expression keywords that can never be call names.
pub const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true",
    "type", "unsafe", "use", "where", "while", "yield",
];

/// One pending attribute: its token range and starting line.
struct Attr {
    start: usize,
    end: usize,
    line: u32,
}

struct Parser<'a> {
    toks: &'a [Tok],
    out: &'a mut FileItems,
}

impl<'a> Parser<'a> {
    /// Parses the item sequence in `[i, end)` with the given scope
    /// context; `impl_type` is the enclosing impl/trait type, `in_test`
    /// whether an enclosing scope is test-only.
    fn parse_items(
        &mut self,
        mut i: usize,
        end: usize,
        module: &mut Vec<String>,
        impl_type: Option<&str>,
        in_test: bool,
    ) {
        let mut attrs: Vec<Attr> = Vec::new();
        while i < end {
            let t = &self.toks[i];
            // Attributes: `#[…]` / `#![…]`.
            if t.is_punct('#') {
                let mut j = i + 1;
                if j < end && self.toks[j].is_punct('!') {
                    j += 1;
                }
                if j < end && self.toks[j].is_punct('[') {
                    let close = self.match_group(j, end, '[', ']');
                    attrs.push(Attr {
                        start: i,
                        end: close,
                        line: t.line,
                    });
                    i = close;
                    continue;
                }
                i += 1;
                continue;
            }
            if t.kind != TokKind::Ident || t.raw {
                // Stray punctuation/tokens between items: skip, balancing
                // groups so initializer braces never desync the scan.
                i = self.skip_token(i, end);
                continue;
            }
            match t.text.as_str() {
                "mod" if t.is_kw("mod") => {
                    i = self.parse_mod(i, end, module, impl_type, in_test, &attrs);
                    attrs.clear();
                }
                "impl" if t.is_kw("impl") => {
                    i = self.parse_impl(i, end, module, in_test, &attrs);
                    attrs.clear();
                }
                "trait" if t.is_kw("trait") => {
                    i = self.parse_trait(i, end, module, in_test, &attrs);
                    attrs.clear();
                }
                "fn" if t.is_kw("fn") => {
                    i = self.parse_fn(i, end, module, impl_type, in_test, &attrs);
                    attrs.clear();
                }
                "struct" | "enum" if t.is_kw(&t.text.clone()) => {
                    i = self.parse_type(i, end, t.text == "enum");
                    attrs.clear();
                }
                "use" if t.is_kw("use") => {
                    i = self.parse_use(i, end);
                    attrs.clear();
                }
                "macro_rules" => {
                    // `macro_rules! name { opaque }` — skip the whole body
                    // (its tokens are patterns, not code).
                    let mut j = i + 1;
                    while j < end && !self.toks[j].is_punct('{') && !self.toks[j].is_punct('(') {
                        j += 1;
                    }
                    i = if j < end && self.toks[j].is_punct('{') {
                        self.match_group(j, end, '{', '}')
                    } else if j < end {
                        self.match_group(j, end, '(', ')')
                    } else {
                        end
                    };
                    attrs.clear();
                }
                _ => {
                    i = self.skip_token(i, end);
                }
            }
        }
    }

    /// Skips one token; when it opens a group, skips the balanced group.
    fn skip_token(&self, i: usize, end: usize) -> usize {
        let t = &self.toks[i];
        if t.is_punct('{') {
            self.match_group(i, end, '{', '}')
        } else if t.is_punct('(') {
            self.match_group(i, end, '(', ')')
        } else if t.is_punct('[') {
            self.match_group(i, end, '[', ']')
        } else {
            i + 1
        }
    }

    /// Index one past the matching closer of the group opening at `i`.
    fn match_group(&self, i: usize, end: usize, open: char, close: char) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while j < end {
            if self.toks[j].is_punct(open) {
                depth += 1;
            } else if self.toks[j].is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        end
    }

    /// Whether these attributes make the item test-only: `#[test]`, or a
    /// `#[cfg(…)]` whose expression is false off the test profile.
    fn attrs_mark_test(&self, attrs: &[Attr]) -> bool {
        for a in attrs {
            let toks = &self.toks[a.start..a.end];
            // `#[test]` (also `#[tokio::test]`-style suffixes).
            let inner: Vec<&Tok> = toks
                .iter()
                .filter(|t| !t.is_punct('#') && !t.is_punct('[') && !t.is_punct(']'))
                .collect();
            if inner.len() == 1 && inner[0].is_ident("test") {
                return true;
            }
            // `#[cfg(EXPR)]`.
            if inner.first().is_some_and(|t| t.is_ident("cfg"))
                && inner.get(1).is_some_and(|t| t.is_punct('('))
            {
                let expr: Vec<Tok> = inner[2..inner.len().saturating_sub(1)]
                    .iter()
                    .map(|t| (*t).clone())
                    .collect();
                if eval_cfg(&expr) == CfgTruth::False {
                    return true;
                }
            }
        }
        false
    }

    fn header_line(&self, i: usize, attrs: &[Attr]) -> u32 {
        // The item starts at its first attribute, else at the first
        // leading keyword (`pub`, `const`, …) on the same statement — walk
        // back over contiguous modifier idents.
        let mut line = attrs.first().map_or(self.toks[i].line, |a| a.line);
        let mut j = i;
        while j > 0 {
            let prev = &self.toks[j - 1];
            let modifier = (prev.kind == TokKind::Ident
                && matches!(
                    prev.text.as_str(),
                    "pub" | "const" | "async" | "unsafe" | "extern" | "default"
                ))
                || prev.is_punct(')'); // `pub(crate)` closer
            if !modifier {
                break;
            }
            if prev.is_punct(')') {
                // Walk back over `pub ( crate )`.
                let mut k = j - 1;
                while k > 0 && !self.toks[k].is_punct('(') {
                    k -= 1;
                }
                j = k;
                continue;
            }
            j -= 1;
            line = line.min(self.toks[j].line);
        }
        line.min(self.toks[i].line)
    }

    fn parse_mod(
        &mut self,
        i: usize,
        end: usize,
        module: &mut Vec<String>,
        impl_type: Option<&str>,
        in_test: bool,
        attrs: &[Attr],
    ) -> usize {
        let Some(name) = self.toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            return i + 1;
        };
        let name_text = name.text.clone();
        let mut j = i + 2;
        while j < end && !self.toks[j].is_punct('{') && !self.toks[j].is_punct(';') {
            j += 1;
        }
        if j >= end || self.toks[j].is_punct(';') {
            return j.saturating_add(1).min(end); // `mod name;` — out-of-line
        }
        let close = self.match_group(j, end, '{', '}');
        let test = in_test || self.attrs_mark_test(attrs);
        if test && !in_test {
            let start = self.header_line(i, attrs);
            let end_line = self.toks[close.saturating_sub(1).min(self.toks.len() - 1)].line;
            self.out.test_regions.push((start, end_line));
        }
        module.push(name_text);
        self.parse_items(j + 1, close - 1, module, impl_type, test);
        module.pop();
        close
    }

    fn parse_impl(
        &mut self,
        i: usize,
        end: usize,
        module: &mut Vec<String>,
        in_test: bool,
        attrs: &[Attr],
    ) -> usize {
        // `impl [<…>] [Trait for] Type [<…>] [where …] {`.
        let mut j = i + 1;
        if j < end && self.toks[j].is_punct('<') {
            j = self.match_angles(j, end);
        }
        // Collect the head up to `{`, remembering the last path ident
        // before generics; `Trait for Type` keeps the ident after `for`.
        let mut ty: Option<String> = None;
        let mut k = j;
        while k < end && !self.toks[k].is_punct('{') && !self.toks[k].is_punct(';') {
            let t = &self.toks[k];
            if t.is_kw("for") {
                ty = None;
                k += 1;
                continue;
            }
            if t.is_kw("where") {
                break;
            }
            if t.kind == TokKind::Ident && !t.is_kw("dyn") {
                ty = Some(t.text.clone());
            }
            if t.is_punct('<') {
                k = self.match_angles(k, end);
                continue;
            }
            k += 1;
        }
        while k < end && !self.toks[k].is_punct('{') && !self.toks[k].is_punct(';') {
            k += 1;
        }
        if k >= end || self.toks[k].is_punct(';') {
            return k.saturating_add(1).min(end);
        }
        let close = self.match_group(k, end, '{', '}');
        let test = in_test || self.attrs_mark_test(attrs);
        if test && !in_test {
            let start = self.header_line(i, attrs);
            let end_line = self.toks[close.saturating_sub(1).min(self.toks.len() - 1)].line;
            self.out.test_regions.push((start, end_line));
        }
        let ty = ty.unwrap_or_default();
        self.parse_items(k + 1, close - 1, module, Some(&ty), test);
        close
    }

    fn parse_trait(
        &mut self,
        i: usize,
        end: usize,
        module: &mut Vec<String>,
        in_test: bool,
        attrs: &[Attr],
    ) -> usize {
        let Some(name) = self.toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            return i + 1;
        };
        let name_text = name.text.clone();
        let mut j = i + 2;
        while j < end && !self.toks[j].is_punct('{') && !self.toks[j].is_punct(';') {
            j = self.skip_token(j, end).max(j + 1);
        }
        if j >= end || self.toks[j].is_punct(';') {
            return j.saturating_add(1).min(end);
        }
        let close = self.match_group(j, end, '{', '}');
        let test = in_test || self.attrs_mark_test(attrs);
        self.parse_items(j + 1, close - 1, module, Some(&name_text), test);
        close
    }

    /// Index one past a balanced `<…>` group (single-char `<`/`>` puncts,
    /// so `>>` closes two levels naturally).
    fn match_angles(&self, i: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while j < end {
            if self.toks[j].is_punct('<') {
                depth += 1;
            } else if self.toks[j].is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            } else if self.toks[j].is_punct('{') || self.toks[j].is_punct(';') {
                return j; // defensive: a `<` that was a comparison
            }
            j += 1;
        }
        end
    }

    fn parse_fn(
        &mut self,
        i: usize,
        end: usize,
        module: &[String],
        impl_type: Option<&str>,
        in_test: bool,
        attrs: &[Attr],
    ) -> usize {
        let Some(name) = self.toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            return i + 1; // `fn(` pointer type or malformed
        };
        let (name_text, name_line, name_col) = (name.text.clone(), name.line, name.col);
        // Parameter list.
        let mut j = i + 2;
        if j < end && self.toks[j].is_punct('<') {
            j = self.match_angles(j, end);
        }
        if j >= end || !self.toks[j].is_punct('(') {
            return i + 2;
        }
        let params_close = self.match_group(j, end, '(', ')');
        let has_self = self.toks[j + 1..params_close.saturating_sub(1)]
            .iter()
            .any(|t| t.is_kw("self"));
        // Body `{` or trait-declaration `;`.
        let mut b = params_close;
        while b < end && !self.toks[b].is_punct('{') && !self.toks[b].is_punct(';') {
            b += 1;
        }
        if b >= end || self.toks[b].is_punct(';') {
            return b.saturating_add(1).min(end); // signature only
        }
        let close = self.match_group(b, end, '{', '}');
        let header_line = self.header_line(i, attrs);
        let end_line = self.toks[close.saturating_sub(1).min(self.toks.len() - 1)].line;
        let test = in_test || self.attrs_mark_test(attrs);
        if test && !in_test {
            self.out.test_regions.push((header_line, end_line));
        }
        self.out.fns.push(FnItem {
            module: module.to_vec(),
            impl_type: impl_type.map(String::from),
            name: name_text,
            line: name_line,
            col: name_col,
            header_line,
            span: (header_line, end_line),
            body: (b, close),
            sig: (i + 1, b),
            has_self,
            in_test: test,
        });
        close
    }

    fn parse_type(&mut self, i: usize, end: usize, is_enum: bool) -> usize {
        let Some(name) = self.toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            return i + 1;
        };
        let (name_text, name_line) = (name.text.clone(), name.line);
        let mut j = i + 2;
        if j < end && self.toks[j].is_punct('<') {
            j = self.match_angles(j, end);
        }
        // Unit struct / tuple struct: no named fields.
        while j < end
            && !self.toks[j].is_punct('{')
            && !self.toks[j].is_punct(';')
            && !self.toks[j].is_punct('(')
        {
            j += 1;
        }
        if j >= end || self.toks[j].is_punct(';') {
            self.push_type(name_text, Vec::new(), is_enum, name_line);
            return (j + 1).min(end);
        }
        if self.toks[j].is_punct('(') {
            let close = self.match_group(j, end, '(', ')');
            self.push_type(name_text, Vec::new(), is_enum, name_line);
            // Skip the trailing `;` of a tuple struct.
            return if close < end && self.toks[close].is_punct(';') {
                close + 1
            } else {
                close
            };
        }
        let close = self.match_group(j, end, '{', '}');
        let fields = if is_enum {
            self.enum_fields(j + 1, close - 1)
        } else {
            self.struct_fields(j + 1, close - 1)
        };
        self.push_type(name_text, fields, is_enum, name_line);
        close
    }

    fn push_type(&mut self, name: String, fields: Vec<String>, is_enum: bool, line: u32) {
        self.out.types.push(TypeItem {
            name,
            fields,
            is_enum,
            line,
        });
    }

    /// Field names of a struct body: `name :` pairs at brace depth 0
    /// within the body, skipping attributes and `pub(…)` qualifiers.
    fn struct_fields(&self, start: usize, end: usize) -> Vec<String> {
        let mut out = Vec::new();
        let mut i = start;
        while i < end {
            let t = &self.toks[i];
            if t.is_punct('#') {
                // Field attribute.
                let j = i + 1;
                if j < end && self.toks[j].is_punct('[') {
                    i = self.match_group(j, end, '[', ']');
                    continue;
                }
            }
            if t.kind == TokKind::Ident
                && !t.is_kw("pub")
                && i + 1 < end
                && self.toks[i + 1].is_punct(':')
                && !self.toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            {
                if !out.contains(&t.text) {
                    out.push(t.text.clone());
                }
                // Skip the type expression to the next depth-0 comma.
                let mut depth = 0i32;
                let mut j = i + 2;
                while j < end {
                    let tt = &self.toks[j];
                    if tt.is_punct('<') || tt.is_punct('(') || tt.is_punct('[') {
                        depth += 1;
                    } else if tt.is_punct('>') || tt.is_punct(')') || tt.is_punct(']') {
                        depth -= 1;
                    } else if depth <= 0 && tt.is_punct(',') {
                        break;
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
            i = self.skip_token(i, end);
        }
        out
    }

    /// The union of named fields across an enum body's variants: fields
    /// live inside each variant's `{…}` group.
    fn enum_fields(&self, start: usize, end: usize) -> Vec<String> {
        let mut out = Vec::new();
        let mut i = start;
        while i < end {
            let t = &self.toks[i];
            if t.is_punct('{') {
                let close = self.match_group(i, end, '{', '}');
                for f in self.struct_fields(i + 1, close - 1) {
                    if !out.contains(&f) {
                        out.push(f);
                    }
                }
                i = close;
                continue;
            }
            i = self.skip_token(i, end);
        }
        out
    }

    /// `use a::b::{c, d as e, f::g};` → aliases for every leaf.
    fn parse_use(&mut self, i: usize, end: usize) -> usize {
        // Find the terminating `;`, balancing braces.
        let mut close = i + 1;
        let mut depth = 0i32;
        while close < end {
            let t = &self.toks[close];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
            } else if depth == 0 && t.is_punct(';') {
                break;
            }
            close += 1;
        }
        let mut prefix = Vec::new();
        self.parse_use_tree(i + 1, close, &mut prefix);
        (close + 1).min(end)
    }

    /// Parses one use-tree level in `[i, end)` with the accumulated
    /// `prefix`; recurses into `{…}` groups.
    fn parse_use_tree(&mut self, i: usize, end: usize, prefix: &mut Vec<String>) {
        let depth0 = prefix.len();
        let mut i = i;
        let mut segs: Vec<String> = Vec::new();
        let flush = |segs: &mut Vec<String>,
                     prefix: &[String],
                     out: &mut FileItems,
                     alias: Option<&str>| {
            if segs.is_empty() {
                return;
            }
            let mut full: Vec<String> = prefix.to_vec();
            full.extend(segs.iter().cloned());
            let name = alias.unwrap_or_else(|| full.last().map(String::as_str).unwrap_or(""));
            if !name.is_empty() && name != "*" {
                out.uses.push((name.to_string(), full));
            }
            segs.clear();
        };
        while i < end {
            let t = &self.toks[i];
            if t.kind == TokKind::Ident && !t.is_kw("as") {
                segs.push(t.text.clone());
                i += 1;
            } else if t.is_punct(':') {
                i += 1;
            } else if t.is_kw("as") {
                // `path as alias`.
                if let Some(alias) = self.toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                    let alias = alias.text.clone();
                    flush(&mut segs, prefix, self.out, Some(&alias));
                    i += 2;
                } else {
                    i += 1;
                }
            } else if t.is_punct('{') {
                let close = self.match_group(i, end, '{', '}');
                prefix.append(&mut segs);
                self.parse_use_tree(i + 1, close - 1, prefix);
                prefix.truncate(depth0);
                i = close;
            } else if t.is_punct(',') {
                flush(&mut segs, prefix, self.out, None);
                i += 1;
            } else if t.is_punct('*') {
                segs.clear();
                i += 1;
            } else {
                i += 1;
            }
        }
        flush(&mut segs, prefix, self.out, None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> FileItems {
        FileItems::parse("crates/core/src/scenario.rs", src)
    }

    #[test]
    fn fns_get_paths_spans_and_self() {
        let f = parse(
            "pub fn free() -> u64 { 1 }\n\
             pub struct S;\n\
             impl S {\n\
                 pub fn method(&self) -> u64 { free() }\n\
             }\n\
             mod inner {\n\
                 fn nested() {}\n\
             }\n",
        );
        let names: Vec<String> = f.fns.iter().map(FnItem::display).collect();
        assert_eq!(
            names,
            vec![
                "arvis_core::scenario::free",
                "arvis_core::scenario::S::method",
                "arvis_core::scenario::inner::nested",
            ]
        );
        assert!(!f.fns[0].has_self);
        assert!(f.fns[1].has_self);
        assert_eq!(f.fns[0].span, (1, 1));
        assert_eq!(f.fns[1].span.0, 4);
    }

    #[test]
    fn trait_impl_for_binds_the_type_not_the_trait() {
        let f = parse("impl fmt::Debug for Widget { fn fmt(&self) -> R { helper() } }");
        assert_eq!(f.fns[0].impl_type.as_deref(), Some("Widget"));
    }

    #[test]
    fn struct_and_enum_fields() {
        let f = parse(
            "pub struct Spec {\n\
                 pub alpha: f64,\n\
                 pub mode: Mode,\n\
                 inner: Vec<(u64, f64)>,\n\
             }\n\
             pub enum Ev {\n\
                 A { start: u64, slots: u64 },\n\
                 B { start: u64, factor: f64 },\n\
                 C,\n\
                 D(u64),\n\
             }\n\
             pub struct Unit;\n\
             pub struct Tuple(u64, f64);\n",
        );
        assert_eq!(f.types[0].fields, vec!["alpha", "mode", "inner"]);
        assert!(f.types[1].is_enum);
        assert_eq!(f.types[1].fields, vec!["start", "slots", "factor"]);
        assert!(f.types[2].fields.is_empty() && f.types[3].fields.is_empty());
    }

    #[test]
    fn use_trees_expand_aliases() {
        let f = parse(
            "use std::time::Instant;\n\
             use std::collections::{HashMap, hash_map::RandomState as RS};\n\
             use crate::uplink::*;\n",
        );
        assert_eq!(
            f.expand_use("Instant").unwrap(),
            &["std", "time", "Instant"]
        );
        assert_eq!(
            f.expand_use("HashMap").unwrap(),
            &["std", "collections", "HashMap"]
        );
        assert_eq!(
            f.expand_use("RS").unwrap(),
            &["std", "collections", "hash_map", "RandomState"]
        );
        assert!(f.expand_use("RandomState").is_none(), "renamed away");
    }

    #[test]
    fn cfg_evaluator_handles_nesting() {
        let toks = |s: &str| lexer::lex(s).toks;
        assert_eq!(eval_cfg(&toks("test")), CfgTruth::False);
        assert_eq!(
            eval_cfg(&toks("all(test, feature = \"x\")")),
            CfgTruth::False
        );
        assert_eq!(
            eval_cfg(&toks("any(test, feature = \"x\")")),
            CfgTruth::Unknown
        );
        assert_eq!(eval_cfg(&toks("not(test)")), CfgTruth::True);
        assert_eq!(eval_cfg(&toks("not(any(test, foo))")), CfgTruth::Unknown);
        assert_eq!(eval_cfg(&toks("all(not(test), unix)")), CfgTruth::Unknown);
        assert_eq!(eval_cfg(&toks("any(all(test, unix))")), CfgTruth::False);
        assert_eq!(eval_cfg(&toks("feature = \"parallel\"")), CfgTruth::Unknown);
    }

    #[test]
    fn test_regions_from_cfg_scopes() {
        let f = parse(
            "fn live() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 #[test]\n\
                 fn t() {}\n\
             }\n\
             #[cfg(all(test, feature = \"slow\"))]\n\
             fn gated() {}\n\
             #[cfg(any(test, feature = \"x\"))]\n\
             fn sometimes_live() {}\n\
             #[cfg(not(test))]\n\
             fn never_test() {}\n",
        );
        assert!(!f.in_test_region(1));
        assert!(f.in_test_region(3) && f.in_test_region(5));
        assert!(f.in_test_region(8), "all(test, …) is test-only");
        assert!(!f.in_test_region(10), "any(test, …) may be compiled live");
        assert!(!f.in_test_region(12));
    }

    #[test]
    fn raw_idents_do_not_open_items() {
        // `r#fn` / `r#mod` are names, not item keywords; `r#type::f` in a
        // path parses as part of the enclosing fn's body.
        let f = parse("fn caller() -> u64 { r#type::f() + r#fn }\npub mod r#type { pub fn f() -> u64 { 0 } }\n");
        let names: Vec<String> = f.fns.iter().map(|x| x.name.clone()).collect();
        assert_eq!(names, vec!["caller", "f"]);
        assert_eq!(f.fns[1].module.last().map(String::as_str), Some("type"));
    }

    #[test]
    fn module_paths_by_layout() {
        assert_eq!(
            module_path_of("crates/core/src/scenario.rs"),
            vec!["arvis_core", "scenario"]
        );
        assert_eq!(module_path_of("crates/core/src/lib.rs"), vec!["arvis_core"]);
        assert_eq!(module_path_of("src/lib.rs"), vec!["arvis"]);
        assert_eq!(
            module_path_of("tests/fault_plane.rs"),
            vec!["tests", "fault_plane"]
        );
        assert_eq!(
            module_path_of("crates/bench/src/bin/experiments.rs"),
            vec!["arvis_bench", "experiments"]
        );
    }
}
