//! Stage 2c: interprocedural determinism taint.
//!
//! The per-file rules catch a function that *contains* an ambient source
//! (`Instant::now`, `thread_rng`, a bare float `.sum`); this pass catches
//! every function that *reaches* one through the call graph. Three rules
//! propagate: `no-ambient-time`, `no-ambient-entropy`, and
//! `float-reduction-order`.
//!
//! # Model
//!
//! A function is a **carrier** when its body holds an unsuppressed source
//! token for the rule. Taint flows backwards over call edges: a caller of
//! a tainted function becomes tainted itself, with a chain one hop longer.
//! Each tainted call site produces a finding carrying the full chain
//! (`a → b → Instant (file:line)`), so the report names the exact ambient
//! source a function transitively depends on.
//!
//! Taint is **contained** — it stops propagating and reporting — at an
//! allow-pragma boundary: a pragma covering the source token keeps the
//! function from being a carrier at all, and a pragma covering a call site
//! (line-scoped, or function-scoped on the caller) absorbs the taint
//! there. That is the "deliberate containment" contract: the pragma's
//! justification documents why the nondeterminism does not escape.
//!
//! Policy exemptions behave differently from pragmas: in an
//! `allow_time` file (bench/profiling code) time findings are not
//! *reported*, but the functions are still carriers — a deterministic-core
//! function that calls into bench timing code is flagged at that boundary.
//!
//! # Conservatism
//!
//! Call sites resolving to [`Targets::Multiple`] count as tainted only
//! when **every** candidate is tainted; [`Targets::External`] never
//! propagates. Test-only functions neither carry nor receive taint (the
//! per-file rules still see their tokens). Chains are canonical: shortest,
//! then lexicographically smallest, so reports are stable across runs.

use crate::callgraph::{CallGraph, Targets};
use crate::items::FileItems;
use crate::lexer::TokKind;
use crate::rules::{self, names, FilePolicy, Finding};

/// The rules that propagate interprocedurally.
const TAINT_RULES: &[&str] = &[
    names::NO_AMBIENT_TIME,
    names::NO_AMBIENT_ENTROPY,
    names::FLOAT_REDUCTION_ORDER,
];

/// Runs the taint pass over the parsed workspace. `policies` and
/// `pragmas` are per-file, parallel to `files`; pragmas consulted for
/// containment are marked used.
pub(crate) fn run(
    files: &[FileItems],
    graph: &CallGraph,
    policies: &[FilePolicy],
    pragmas: &[Vec<rules::Pragma>],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for rule in TAINT_RULES {
        run_rule(rule, files, graph, policies, pragmas, &mut findings);
    }
    findings
}

/// One rule's propagation: seed carriers, fix-point the chains, then emit
/// findings at every uncontained tainted call site.
fn run_rule(
    rule: &'static str,
    files: &[FileItems],
    graph: &CallGraph,
    policies: &[FilePolicy],
    pragmas: &[Vec<rules::Pragma>],
    out: &mut Vec<Finding>,
) {
    let n = graph.fns.len();
    // chains[g] = Some(canonical chain from fn g down to a source token),
    // as display segments ending with the source description.
    let mut chains: Vec<Option<Vec<String>>> = vec![None; n];
    for (gid, &(fi, ii)) in graph.fns.iter().enumerate() {
        let item = &files[fi].fns[ii];
        if item.in_test {
            continue;
        }
        if let Some(src) = source_in(rule, &files[fi], ii, &pragmas[fi]) {
            chains[gid] = Some(vec![item.display(), src]);
        }
    }
    // Fix-point propagation. Every hop lengthens the chain by one, and a
    // node only ever improves to a strictly smaller (length, lexicographic)
    // chain, so this terminates; cycles cannot improve themselves.
    loop {
        let mut changed = false;
        for caller in 0..n {
            let (fi, ii) = graph.fns[caller];
            if files[fi].fns[ii].in_test {
                continue;
            }
            for edge in &graph.edges[caller] {
                let Some(tc) = target_chain(&edge.targets, &chains) else {
                    continue;
                };
                // A pragma covering the call site (or the whole caller fn)
                // contains the taint: no finding, no further propagation.
                if rules::pragma_covers(&pragmas[fi], &files[fi], rule, edge.site.line) {
                    continue;
                }
                let mut cand = Vec::with_capacity(tc.len() + 1);
                cand.push(files[fi].fns[ii].display());
                cand.extend(tc.iter().cloned());
                if better(&cand, chains[caller].as_deref()) {
                    chains[caller] = Some(cand);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Findings: one per uncontained call site whose target(s) are tainted.
    for caller in 0..n {
        let (fi, ii) = graph.fns[caller];
        let item = &files[fi].fns[ii];
        if item.in_test || exempt(rule, &policies[fi]) {
            continue;
        }
        for edge in &graph.edges[caller] {
            let Some(tc) = target_chain(&edge.targets, &chains) else {
                continue;
            };
            if files[fi].in_test_region(edge.site.line) {
                continue;
            }
            if rules::pragma_covers(&pragmas[fi], &files[fi], rule, edge.site.line) {
                continue;
            }
            let mut chain = Vec::with_capacity(tc.len() + 1);
            chain.push(item.display());
            chain.extend(tc.iter().cloned());
            let rendered = chain.join(" → ");
            out.push(Finding {
                file: files[fi].rel.clone(),
                line: edge.site.line,
                col: edge.site.col,
                rule,
                message: format!(
                    "call reaches an ambient source: {rendered}; contain it with a \
                     fn-boundary pragma or make the callee deterministic"
                ),
                chain,
            });
        }
    }
}

/// The canonical chain of a resolved call's target set: unique targets
/// propagate directly; multiple candidates propagate only when all are
/// tainted (taking the best chain); external never.
fn target_chain<'a>(targets: &Targets, chains: &'a [Option<Vec<String>>]) -> Option<&'a [String]> {
    match targets {
        Targets::External => None,
        Targets::Unique(t) => chains[*t].as_deref(),
        Targets::Multiple(ts) => {
            let mut best: Option<&[String]> = None;
            for t in ts {
                let c = chains[*t].as_deref()?; // any untainted candidate → not tainted
                if better(c, best) {
                    best = Some(c);
                }
            }
            best
        }
    }
}

/// Strictly-better ordering for canonical chains: shorter wins, then
/// lexicographically smaller.
fn better(cand: &[String], cur: Option<&[String]>) -> bool {
    match cur {
        None => true,
        Some(c) => cand.len() < c.len() || (cand.len() == c.len() && cand < c),
    }
}

/// Whether the policy suppresses *reporting* this rule in the file
/// (carrier status is unaffected — see module docs).
fn exempt(rule: &str, policy: &FilePolicy) -> bool {
    rule == names::NO_AMBIENT_TIME && policy.allow_time
}

/// The source description (`` `Instant` (file:line) ``) when fn `ii` of
/// `file` contains an unsuppressed source token for `rule`.
fn source_in(
    rule: &'static str,
    file: &FileItems,
    ii: usize,
    pragmas: &[rules::Pragma],
) -> Option<String> {
    let item = &file.fns[ii];
    let (start, end) = item.body;
    let float_sites: Vec<usize> = if rule == names::FLOAT_REDUCTION_ORDER {
        if rules::is_parallel_bearing(&file.toks) {
            rules::float_sum_sites(&file.toks)
        } else {
            Vec::new()
        }
    } else {
        Vec::new()
    };
    for i in start..end.min(file.toks.len()) {
        let t = &file.toks[i];
        let hit = match rule {
            names::NO_AMBIENT_TIME => t.is_ident("Instant") || t.is_ident("SystemTime"),
            names::NO_AMBIENT_ENTROPY => {
                t.is_ident("thread_rng") || t.is_ident("from_entropy") || t.is_ident("RandomState")
            }
            _ => t.kind == TokKind::Ident && float_sites.contains(&i),
        };
        if !hit || file.in_test_region(t.line) {
            continue;
        }
        if rules::pragma_covers(pragmas, file, rule, t.line) {
            continue; // contained at the source
        }
        return Some(format!("`{}` ({}:{})", t.text, file.rel, t.line));
    }
    None
}
