//! A lightweight Rust lexer for static analysis.
//!
//! This is *not* a parser: it turns source text into a flat stream of
//! tokens (identifiers, punctuation, literals, lifetimes) plus a separate
//! list of comments, with 1-based line/column positions. It understands
//! exactly enough of the language that rule matching never fires inside a
//! string literal, a comment, or a char literal:
//!
//! - line comments (`//`, `///`, `//!`) and *nested* block comments;
//! - string literals with escapes, raw strings `r"…"`/`r#"…"#` (any hash
//!   count), byte strings `b"…"`/`br#"…"#`, and C strings `c"…"`;
//! - char literals vs. lifetimes (`'a'` vs. `'a`);
//! - raw identifiers (`r#gen`), including in paths (`r#type::f`); a raw
//!   identifier carries [`Tok::raw`] so `r#fn`/`r#unsafe` never match as
//!   *keywords* ([`Tok::is_kw`]) while still matching by *name*
//!   ([`Tok::is_ident`] — `r#gen` and `gen` are the same identifier);
//! - a UTF-8 BOM and a shebang line (`#!/usr/bin/env …`) before the first
//!   item, skipped without disturbing line/column accounting.
//!
//! Known limitations (shared with every token-level linter, and documented
//! on the crate root): no macro expansion, no type inference, no name
//! resolution. Rules built on this lexer match *tokens*, so they see what
//! the source says, not what the compiler resolves.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `unsafe`, `for`, …).
    Ident,
    /// A lifetime such as `'a` (the text excludes the quote).
    Lifetime,
    /// Numeric literal (possibly split around `.` or sign characters;
    /// rules only care that it is not an identifier).
    Num,
    /// String literal of any flavor; `text` holds the *body* (between the
    /// quotes, escapes left as written).
    Str,
    /// Char or byte literal; `text` holds the body.
    Char,
    /// A single punctuation character (`.`, `:`, `<`, `!`, …).
    Punct,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what is stored per kind; raw
    /// identifiers store the name *without* the `r#` prefix, because
    /// `r#gen` and `gen` name the same identifier).
    pub text: String,
    /// True when this identifier was written raw (`r#type`). A raw
    /// identifier is never a keyword, whatever its text says.
    pub raw: bool,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column (in characters) of the first character.
    pub col: u32,
}

impl Tok {
    /// True when this is an identifier with exactly this text (raw or
    /// not: `r#gen` and `gen` are the same identifier).
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this is the *keyword* `s`: an identifier with that text
    /// that was not written raw (`r#fn` is an ordinary identifier named
    /// `fn`, never the keyword).
    pub fn is_kw(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && !self.raw && self.text == s
    }

    /// True when this is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// One comment (line or block) with position and placement metadata.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including the delimiters (`// …` or `/* … */`).
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// True when no token precedes the comment on its starting line — the
    /// comment "owns" the line (pragma placement distinguishes trailing
    /// comments from standalone ones).
    pub own_line: bool,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct LexFile {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes one source file. Never fails: unterminated literals simply consume
/// the rest of the file (the compiler is the authority on well-formedness;
/// the linter only needs positions to stay honest on valid code).
pub fn lex(src: &str) -> LexFile {
    // A UTF-8 BOM is not part of the source text: strip it so the first
    // real token still starts at column 1.
    let src = src.strip_prefix('\u{feff}').unwrap_or(src);
    let mut cur = Cursor::new(src);
    // A shebang line (`#!…`, but not the inner attribute `#![…]`) is
    // consumed whole; tokens start on line 2 as the compiler sees it.
    if src.starts_with("#!") && !src.starts_with("#![") {
        while let Some(c) = cur.peek() {
            if c == '\n' {
                break;
            }
            cur.bump();
        }
    }
    let mut out = LexFile::default();
    // Line number of the most recent token, to classify comments as
    // trailing (same line as code) or standalone.
    let mut last_tok_line = 0u32;

    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' => {
                cur.bump();
                match cur.peek() {
                    Some('/') => {
                        let mut text = String::from("/");
                        while let Some(c2) = cur.peek() {
                            if c2 == '\n' {
                                break;
                            }
                            text.push(c2);
                            cur.bump();
                        }
                        out.comments.push(Comment {
                            text,
                            line,
                            own_line: last_tok_line != line,
                        });
                    }
                    Some('*') => {
                        cur.bump();
                        let mut text = String::from("/*");
                        let mut depth = 1u32;
                        let mut prev = '\0';
                        while depth > 0 {
                            let Some(c2) = cur.bump() else { break };
                            text.push(c2);
                            if prev == '/' && c2 == '*' {
                                depth += 1;
                                prev = '\0';
                            } else if prev == '*' && c2 == '/' {
                                depth -= 1;
                                prev = '\0';
                            } else {
                                prev = c2;
                            }
                        }
                        out.comments.push(Comment {
                            text,
                            line,
                            own_line: last_tok_line != line,
                        });
                    }
                    _ => {
                        out.toks.push(Tok {
                            kind: TokKind::Punct,
                            text: "/".into(),
                            raw: false,
                            line,
                            col,
                        });
                        last_tok_line = line;
                    }
                }
            }
            '"' => {
                cur.bump();
                let body = lex_string_body(&mut cur);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: body,
                    raw: false,
                    line,
                    col,
                });
                last_tok_line = line;
            }
            '\'' => {
                cur.bump();
                // Lifetime when followed by an identifier char that is not
                // immediately closed by another quote (`'a'` is a char).
                let mut clone = cur.chars.clone();
                let first = clone.next();
                let second = clone.next();
                let is_lifetime =
                    matches!(first, Some(f) if is_ident_start(f)) && !matches!(second, Some('\''));
                if is_lifetime {
                    let mut text = String::new();
                    while let Some(c2) = cur.peek() {
                        if is_ident_continue(c2) {
                            text.push(c2);
                            cur.bump();
                        } else {
                            break;
                        }
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text,
                        raw: false,
                        line,
                        col,
                    });
                } else {
                    let mut text = String::new();
                    let mut escaped = false;
                    while let Some(c2) = cur.bump() {
                        if escaped {
                            text.push(c2);
                            escaped = false;
                        } else if c2 == '\\' {
                            text.push(c2);
                            escaped = true;
                        } else if c2 == '\'' {
                            break;
                        } else {
                            text.push(c2);
                        }
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Char,
                        text,
                        raw: false,
                        line,
                        col,
                    });
                }
                last_tok_line = line;
            }
            c if is_ident_start(c) => {
                // Raw strings / byte strings / C strings / raw identifiers
                // start with an identifier character; disambiguate by
                // looking ahead before committing to an identifier.
                if let Some(tok) = try_lex_prefixed_literal(&mut cur, line, col) {
                    out.toks.push(tok);
                    last_tok_line = line;
                    continue;
                }
                let mut text = String::new();
                while let Some(c2) = cur.peek() {
                    if is_ident_continue(c2) {
                        text.push(c2);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    raw: false,
                    line,
                    col,
                });
                last_tok_line = line;
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(c2) = cur.peek() {
                    if is_ident_continue(c2) {
                        text.push(c2);
                        cur.bump();
                    } else if c2 == '.' {
                        // Consume the dot only for `1.5`, not for `0..8`.
                        let mut clone = cur.chars.clone();
                        clone.next();
                        if matches!(clone.next(), Some(d) if d.is_ascii_digit()) {
                            text.push('.');
                            cur.bump();
                        } else {
                            break;
                        }
                    } else {
                        break;
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Num,
                    text,
                    raw: false,
                    line,
                    col,
                });
                last_tok_line = line;
            }
            c => {
                cur.bump();
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    raw: false,
                    line,
                    col,
                });
                last_tok_line = line;
            }
        }
    }
    out
}

/// Consumes a normal string body after the opening quote.
fn lex_string_body(cur: &mut Cursor<'_>) -> String {
    let mut body = String::new();
    let mut escaped = false;
    while let Some(c) = cur.bump() {
        if escaped {
            body.push(c);
            escaped = false;
        } else if c == '\\' {
            body.push(c);
            escaped = true;
        } else if c == '"' {
            break;
        } else {
            body.push(c);
        }
    }
    body
}

/// Recognizes `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"`, `cr"…"` and raw
/// identifiers `r#ident` at the cursor. Returns `None` when the upcoming
/// characters are a plain identifier.
fn try_lex_prefixed_literal(cur: &mut Cursor<'_>, line: u32, col: u32) -> Option<Tok> {
    let mut clone = cur.chars.clone();
    let first = clone.next()?;
    if !matches!(first, 'r' | 'b' | 'c') {
        return None;
    }
    // Collect up to two prefix letters (`br`, `cr`), then hashes/quote.
    let mut prefix_len = 1usize;
    let mut next = clone.next();
    if matches!(first, 'b' | 'c') && next == Some('r') {
        prefix_len = 2;
        next = clone.next();
    }
    let raw = prefix_len == 2 || first == 'r';
    match next {
        Some('"') => {
            // String start. Consume prefix + quote.
            for _ in 0..prefix_len + 1 {
                cur.bump();
            }
            let body = if raw {
                lex_raw_string_body(cur, 0)
            } else {
                lex_string_body(cur)
            };
            Some(Tok {
                kind: TokKind::Str,
                text: body,
                raw: false,
                line,
                col,
            })
        }
        Some('#') if raw => {
            // Count hashes; must end in a quote to be a raw string,
            // otherwise `r#ident`.
            let mut hashes = 1usize;
            loop {
                match clone.next() {
                    Some('#') => hashes += 1,
                    Some('"') => {
                        for _ in 0..prefix_len + hashes + 1 {
                            cur.bump();
                        }
                        let body = lex_raw_string_body(cur, hashes);
                        return Some(Tok {
                            kind: TokKind::Str,
                            text: body,
                            raw: false,
                            line,
                            col,
                        });
                    }
                    Some(c) if prefix_len == 1 && first == 'r' && is_ident_start(c) => {
                        // Raw identifier `r#ident`: same name as `ident`,
                        // but marked raw so it never matches as a keyword.
                        cur.bump(); // r
                        cur.bump(); // #
                        let mut text = String::new();
                        while let Some(c2) = cur.peek() {
                            if is_ident_continue(c2) {
                                text.push(c2);
                                cur.bump();
                            } else {
                                break;
                            }
                        }
                        return Some(Tok {
                            kind: TokKind::Ident,
                            text,
                            raw: true,
                            line,
                            col,
                        });
                    }
                    _ => return None,
                }
            }
        }
        _ => None,
    }
}

/// Consumes a raw string body after `r#*"`, looking for `"` followed by
/// `hashes` hash characters.
fn lex_raw_string_body(cur: &mut Cursor<'_>, hashes: usize) -> String {
    let mut body = String::new();
    'outer: while let Some(c) = cur.bump() {
        if c == '"' {
            // Check for the closing hash run without consuming a partial
            // run incorrectly: peek `hashes` characters.
            let mut clone = cur.chars.clone();
            for _ in 0..hashes {
                if clone.next() != Some('#') {
                    body.push('"');
                    continue 'outer;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            return body;
        }
        body.push(c);
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r##"
            // Instant::now() in a comment
            /* HashMap in /* a nested */ block */
            let s = "Instant::now()";
            let r = r#"unsafe { HashMap }"#;
            let b = b"thread_rng";
            let real = Instant::now();
        "##;
        let ids = idents(src);
        assert_eq!(
            ids.iter().filter(|s| s.as_str() == "Instant").count(),
            1,
            "only the real Instant token survives: {ids:?}"
        );
        assert!(!ids.iter().any(|s| s == "HashMap"));
        assert!(!ids.iter().any(|s| s == "unsafe"));
        assert!(!ids.iter().any(|s| s == "thread_rng"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lf = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = lf
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = lf.toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "x");
    }

    #[test]
    fn escaped_quote_chars() {
        let lf = lex(r#"let q = '\''; let s = "a\"b"; done"#);
        assert!(lf.toks.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn positions_are_one_based() {
        let lf = lex("a\n  bb");
        assert_eq!((lf.toks[0].line, lf.toks[0].col), (1, 1));
        assert_eq!((lf.toks[1].line, lf.toks[1].col), (2, 3));
    }

    #[test]
    fn raw_identifiers() {
        let ids = idents("let x = r#gen(r#type);");
        assert!(ids.contains(&"gen".to_string()));
        assert!(ids.contains(&"type".to_string()));
    }

    #[test]
    fn raw_identifiers_in_paths_are_not_keywords() {
        let lf = lex("let v = r#type::f(r#unsafe::g());");
        let ty = lf.toks.iter().find(|t| t.is_ident("type")).expect("type");
        assert!(ty.raw && !ty.is_kw("type"));
        let un = lf
            .toks
            .iter()
            .find(|t| t.is_ident("unsafe"))
            .expect("unsafe");
        assert!(
            un.raw && !un.is_kw("unsafe"),
            "r#unsafe is a name, not the keyword"
        );
        // The path's `::` survives around the raw identifier.
        assert_eq!(lf.toks.iter().filter(|t| t.is_punct(':')).count(), 4);
        // Plain keywords still match.
        assert!(lf.toks[0].is_kw("let"));
    }

    #[test]
    fn bom_is_stripped_before_column_accounting() {
        let lf = lex("\u{feff}use x;");
        assert_eq!((lf.toks[0].line, lf.toks[0].col), (1, 1));
        assert!(lf.toks[0].is_kw("use"));
    }

    #[test]
    fn shebang_line_is_skipped_whole() {
        let lf = lex("#!/usr/bin/env run-cargo-script\nfn main() {}\n");
        assert!(
            lf.toks[0].is_kw("fn"),
            "shebang must not leak tokens: {:?}",
            lf.toks[0]
        );
        assert_eq!((lf.toks[0].line, lf.toks[0].col), (2, 1));
        // An inner attribute `#![…]` is NOT a shebang.
        let attr = lex("#![forbid(unsafe_code)]\nfn main() {}\n");
        assert!(attr.toks[0].is_punct('#'));
    }

    #[test]
    fn comment_own_line_flag() {
        let lf = lex("let x = 1; // trailing\n// standalone\nlet y = 2;");
        assert_eq!(lf.comments.len(), 2);
        assert!(!lf.comments[0].own_line);
        assert!(lf.comments[1].own_line);
    }

    #[test]
    fn number_dots_do_not_eat_ranges() {
        let lf = lex("for i in 0..8 { let x = 1.5; }");
        assert!(lf
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "1.5"));
        assert_eq!(
            lf.toks.iter().filter(|t| t.is_punct('.')).count(),
            2,
            "the `..` survives as two dots"
        );
    }
}
