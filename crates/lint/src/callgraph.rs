//! Stage 2b: call-site extraction and the workspace call graph.
//!
//! For every parsed function ([`crate::items::FnItem`]) this module
//! extracts its call sites from the token stream and resolves each one
//! against the workspace's function set by **suffix-qualified path
//! matching**: the segments written at the call site (`use`-expanded, with
//! `crate`/`self`/`super`/`Self` normalized) must be a suffix of a
//! function's qualified path (`[crate, modules…, ImplType?, name]`).
//!
//! Resolution is deliberately conservative, in both directions:
//!
//! * a call that matches **no** workspace function (std, vendored shims,
//!   closures) is [`Targets::External`] — taint never propagates through
//!   it;
//! * a call that matches **several** functions is [`Targets::Multiple`] —
//!   the taint pass treats it as tainted only when *every* candidate is
//!   tainted, so an ambiguous name cannot manufacture a false chain;
//! * bare unqualified calls (`helper()`) resolve only within the caller's
//!   own module (plus its `use` imports), matching real scoping rules
//!   closely enough that a same-named function in another crate is never
//!   dragged in.

use std::collections::BTreeMap;

use crate::items::{FileItems, KEYWORDS};
use crate::lexer::{Tok, TokKind};

/// One syntactic call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Index of the callee-name token in the file's token stream.
    pub tok: usize,
    /// 1-based line of the callee-name token.
    pub line: u32,
    /// 1-based column of the callee-name token.
    pub col: u32,
    /// Path segments as written (`octree::build` → `["octree","build"]`);
    /// method calls carry just the method name.
    pub segments: Vec<String>,
    /// `.name(…)` method-call form.
    pub is_method: bool,
    /// The receiver is literally `self` (`self.name(…)`), which pins
    /// method resolution to the caller's own impl type.
    pub recv_self: bool,
}

/// Resolution of one call site against the workspace function set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Targets {
    /// No workspace function matches (std, vendored, closure, macro).
    External,
    /// Exactly one function matches (global fn index).
    Unique(usize),
    /// Several functions match; propagation requires all of them tainted.
    Multiple(Vec<usize>),
}

/// A resolved call edge out of a function.
#[derive(Debug, Clone)]
pub struct Edge {
    /// The syntactic site.
    pub site: CallSite,
    /// What it resolves to.
    pub targets: Targets,
}

/// The workspace call graph over a parsed file set.
#[derive(Debug)]
pub struct CallGraph {
    /// Flat function table: global fn index → (file index, item index).
    pub fns: Vec<(usize, usize)>,
    /// Outgoing resolved edges per global fn index.
    pub edges: Vec<Vec<Edge>>,
    /// Incoming edges: callee fn index → `(caller fn index, edge index)`.
    pub callers: Vec<Vec<(usize, usize)>>,
}

impl CallGraph {
    /// Builds the graph over `files` (same order as the lint walk, so the
    /// graph — and everything derived from it — is deterministic).
    pub fn build(files: &[FileItems]) -> CallGraph {
        let mut fns = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            for ii in 0..f.fns.len() {
                fns.push((fi, ii));
            }
        }
        // Name index for candidate lookup.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (gid, &(fi, ii)) in fns.iter().enumerate() {
            by_name
                .entry(files[fi].fns[ii].name.as_str())
                .or_default()
                .push(gid);
        }
        let mut edges = Vec::with_capacity(fns.len());
        for &(fi, ii) in &fns {
            let file = &files[fi];
            let item = &file.fns[ii];
            let sites = extract_calls(&file.toks, item.body);
            let resolved: Vec<Edge> = sites
                .into_iter()
                .map(|site| {
                    let targets = resolve(&site, fi, ii, files, &fns, &by_name);
                    Edge { site, targets }
                })
                .collect();
            edges.push(resolved);
        }
        let mut callers = vec![Vec::new(); fns.len()];
        for (caller, out) in edges.iter().enumerate() {
            for (ei, e) in out.iter().enumerate() {
                match &e.targets {
                    Targets::Unique(t) => callers[*t].push((caller, ei)),
                    Targets::Multiple(ts) => {
                        for t in ts {
                            callers[*t].push((caller, ei));
                        }
                    }
                    Targets::External => {}
                }
            }
        }
        CallGraph {
            fns,
            edges,
            callers,
        }
    }
}

/// Extracts the call sites in the token range `body` (a function body,
/// braces included).
pub fn extract_calls(toks: &[Tok], body: (usize, usize)) -> Vec<CallSite> {
    let mut out = Vec::new();
    let (start, end) = body;
    for i in start..end.min(toks.len()) {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // Keywords are never call names (`if (…)`, `while (…)`, `return (…)`)
        // — but raw identifiers (`r#type`) are fine.
        if !t.raw && KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        // Declarations are not calls: `fn name(…)`.
        if i > 0 && toks[i - 1].is_kw("fn") {
            continue;
        }
        // After the name: optional turbofish `::<…>`, then `(` — else not
        // a call. A following `!` is a macro invocation.
        let mut j = i + 1;
        if j + 2 < toks.len()
            && toks[j].is_punct(':')
            && toks[j + 1].is_punct(':')
            && toks[j + 2].is_punct('<')
        {
            j = skip_angles(toks, j + 2);
        }
        if j >= end || !toks[j].is_punct('(') {
            continue;
        }
        if toks[i + 1].is_punct('!') {
            continue; // `name!(…)` macro
        }
        if i > 0 && toks[i - 1].is_punct('.') {
            let recv_self =
                i >= 2 && toks[i - 2].is_kw("self") && !(i >= 3 && toks[i - 3].is_punct('.'));
            out.push(CallSite {
                tok: i,
                line: t.line,
                col: t.col,
                segments: vec![t.text.clone()],
                is_method: true,
                recv_self,
            });
            continue;
        }
        // Walk back over `seg ::` prefixes to collect the written path.
        let mut segments = vec![t.text.clone()];
        let mut k = i;
        while k >= 3
            && toks[k - 1].is_punct(':')
            && toks[k - 2].is_punct(':')
            && toks[k - 3].kind == TokKind::Ident
        {
            segments.insert(0, toks[k - 3].text.clone());
            k -= 3;
        }
        out.push(CallSite {
            tok: i,
            line: t.line,
            col: t.col,
            segments,
            is_method: false,
            recv_self: false,
        });
    }
    out
}

/// Index one past a balanced `<…>` group starting at `i` (which holds `<`).
fn skip_angles(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        if toks[j].is_punct('<') {
            depth += 1;
        } else if toks[j].is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        } else if toks[j].is_punct('{') || toks[j].is_punct(';') {
            return j;
        }
        j += 1;
    }
    j
}

/// Resolves one call site from the function `(fi, ii)`.
fn resolve(
    site: &CallSite,
    fi: usize,
    ii: usize,
    files: &[FileItems],
    fns: &[(usize, usize)],
    by_name: &BTreeMap<&str, Vec<usize>>,
) -> Targets {
    let file = &files[fi];
    let caller = &file.fns[ii];
    let name = site.segments.last().map(String::as_str).unwrap_or("");
    let Some(candidates) = by_name.get(name) else {
        return Targets::External;
    };
    if site.is_method {
        // Only functions that take `self` can be method-called.
        let mut cands: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&gid| {
                let (cf, ci) = fns[gid];
                files[cf].fns[ci].has_self
            })
            .collect();
        // `self.name(…)` pins resolution to the caller's own type (same
        // impl type name within the same crate).
        if site.recv_self {
            if let Some(ty) = &caller.impl_type {
                let own: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&gid| {
                        let (cf, ci) = fns[gid];
                        let cand = &files[cf].fns[ci];
                        cand.impl_type.as_deref() == Some(ty)
                            && cand.module.first() == caller.module.first()
                    })
                    .collect();
                if !own.is_empty() {
                    cands = own;
                }
            }
        }
        return finish(cands);
    }
    // Path call: expand `use` aliases on the leading segment, normalize
    // path keywords (`use crate::…` stores the keyword too), then
    // suffix-match against qualified fn paths.
    let mut segs: Vec<String> = site.segments.clone();
    if !matches!(segs[0].as_str(), "crate" | "self" | "super" | "Self") {
        if let Some(path) = file.expand_use(&segs[0]) {
            let rest = segs.split_off(1);
            segs = path.to_vec();
            segs.extend(rest);
        }
    }
    match segs[0].as_str() {
        "crate" => {
            segs.remove(0);
            if let Some(root) = caller.module.first() {
                segs.insert(0, root.clone());
            }
        }
        "self" => {
            segs.remove(0);
            for m in caller.module.iter().rev() {
                segs.insert(0, m.clone());
            }
        }
        "super" => {
            segs.remove(0);
            let parent = &caller.module[..caller.module.len().saturating_sub(1)];
            for m in parent.iter().rev() {
                segs.insert(0, m.clone());
            }
        }
        "Self" => {
            if let Some(ty) = &caller.impl_type {
                segs[0] = ty.clone();
                for m in caller.module.iter().rev() {
                    segs.insert(0, m.clone());
                }
            }
        }
        _ => {}
    }
    if segs.len() == 1 {
        // Bare call: visible items are the caller's own module (imports
        // were already expanded above). Anything else is prelude/std.
        let cands: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&gid| {
                let (cf, ci) = fns[gid];
                let cand = &files[cf].fns[ci];
                cand.impl_type.is_none() && cand.module == caller.module
            })
            .collect();
        return finish(cands);
    }
    let cands: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&gid| {
            let (cf, ci) = fns[gid];
            let path = files[cf].fns[ci].path_segments();
            path.len() >= segs.len() && path[path.len() - segs.len()..] == segs[..]
        })
        .collect();
    finish(cands)
}

fn finish(mut cands: Vec<usize>) -> Targets {
    cands.sort_unstable();
    cands.dedup();
    match cands.len() {
        0 => Targets::External,
        1 => Targets::Unique(cands[0]),
        _ => Targets::Multiple(cands),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::FileItems;

    fn graph(files: &[(&str, &str)]) -> (Vec<FileItems>, CallGraph) {
        let parsed: Vec<FileItems> = files
            .iter()
            .map(|(rel, src)| FileItems::parse(rel, src))
            .collect();
        let g = CallGraph::build(&parsed);
        (parsed, g)
    }

    fn fn_named(files: &[FileItems], g: &CallGraph, name: &str) -> usize {
        g.fns
            .iter()
            .position(|&(fi, ii)| files[fi].fns[ii].name == name)
            .unwrap()
    }

    #[test]
    fn extracts_paths_methods_and_skips_macros() {
        let f = FileItems::parse(
            "crates/core/src/a.rs",
            "fn caller(x: &W) {\n\
                 helper();\n\
                 octree::build(x);\n\
                 x.probe::<u64>();\n\
                 println!(\"not a call\");\n\
                 if (x.ready()) {}\n\
             }\n",
        );
        let sites = extract_calls(&f.toks, f.fns[0].body);
        let names: Vec<(String, bool)> = sites
            .iter()
            .map(|s| (s.segments.join("::"), s.is_method))
            .collect();
        assert_eq!(
            names,
            vec![
                ("helper".to_string(), false),
                ("octree::build".to_string(), false),
                ("probe".to_string(), true),
                ("ready".to_string(), true),
            ]
        );
    }

    #[test]
    fn bare_calls_resolve_same_module_only() {
        let (files, g) = graph(&[
            (
                "crates/core/src/a.rs",
                "fn helper() {}\nfn caller() { helper(); }\n",
            ),
            ("crates/octree/src/b.rs", "fn helper() {}\n"),
        ]);
        let caller = fn_named(&files, &g, "caller");
        let target = fn_named(&files, &g, "helper");
        assert_eq!(g.edges[caller][0].targets, Targets::Unique(target));
        // The same-module candidate wins; the octree one is not included.
        let (fi, _) = g.fns[target];
        assert_eq!(files[fi].rel, "crates/core/src/a.rs");
    }

    #[test]
    fn qualified_calls_suffix_match_across_crates() {
        let (files, g) = graph(&[
            (
                "crates/core/src/session.rs",
                "fn run() { octree::build(); crate::scenario::load(); }\n",
            ),
            ("crates/octree/src/octree.rs", "pub fn build() {}\n"),
            ("crates/core/src/scenario.rs", "pub fn load() {}\n"),
        ]);
        let run = fn_named(&files, &g, "run");
        let build = fn_named(&files, &g, "build");
        let load = fn_named(&files, &g, "load");
        assert_eq!(g.edges[run][0].targets, Targets::Unique(build));
        assert_eq!(g.edges[run][1].targets, Targets::Unique(load));
    }

    #[test]
    fn use_imports_qualify_bare_calls() {
        let (files, g) = graph(&[
            (
                "crates/core/src/a.rs",
                "use crate::scenario::load;\nfn caller() { load(); }\n",
            ),
            ("crates/core/src/scenario.rs", "pub fn load() {}\n"),
            ("crates/bench/src/other.rs", "pub fn load() {}\n"),
        ]);
        let caller = fn_named(&files, &g, "caller");
        match &g.edges[caller][0].targets {
            Targets::Unique(t) => {
                let (fi, _) = g.fns[*t];
                assert_eq!(files[fi].rel, "crates/core/src/scenario.rs");
            }
            other => panic!("expected unique resolution, got {other:?}"),
        }
    }

    #[test]
    fn self_method_calls_pin_to_own_impl() {
        let (files, g) = graph(&[
            (
                "crates/core/src/a.rs",
                "pub struct A;\nimpl A { fn step(&self) {}\nfn run(&self) { self.step(); } }\n",
            ),
            (
                "crates/octree/src/b.rs",
                "pub struct B;\nimpl B { fn step(&self) {} }\n",
            ),
        ]);
        let run = fn_named(&files, &g, "run");
        match &g.edges[run][0].targets {
            Targets::Unique(t) => {
                let (fi, ii) = g.fns[*t];
                assert_eq!(files[fi].fns[ii].impl_type.as_deref(), Some("A"));
            }
            other => panic!("expected unique resolution, got {other:?}"),
        }
    }

    #[test]
    fn ambiguous_methods_resolve_to_multiple() {
        let (files, g) = graph(&[
            (
                "crates/core/src/a.rs",
                "pub struct A;\nimpl A { pub fn step(&self) {} }\nfn drive(x: &A) { x.step(); }\n",
            ),
            (
                "crates/octree/src/b.rs",
                "pub struct B;\nimpl B { pub fn step(&self) {} }\n",
            ),
        ]);
        let drive = fn_named(&files, &g, "drive");
        match &g.edges[drive][0].targets {
            Targets::Multiple(ts) => assert_eq!(ts.len(), 2),
            other => panic!("expected multiple candidates, got {other:?}"),
        }
    }

    #[test]
    fn std_calls_stay_external() {
        let (files, g) = graph(&[(
            "crates/core/src/a.rs",
            "fn caller() { std::mem::take(&mut 0); Vec::new(); format(1); }\n",
        )]);
        let caller = fn_named(&files, &g, "caller");
        for e in &g.edges[caller] {
            assert_eq!(e.targets, Targets::External, "{:?}", e.site.segments);
        }
    }
}
