//! The determinism-contract rules and the per-file engine that runs them.
//!
//! Every rule is a pure function over the token stream of one file (plus a
//! little per-file context the engine precomputes: `#[cfg(test)]` regions,
//! hash-container bindings, parallel-module markers). Findings carry the
//! 1-based line/column of the offending token.

use crate::lexer::{self, Comment, Tok, TokKind};

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path of the file, relative to the lint root (with `/` separators).
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// Rule name (`no-ambient-time`, …).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// The canonical single-line rendering: `file:line:col rule message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{} {} {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Rule names, as used in findings, pragmas, and the config allowlists.
pub mod names {
    /// Ambient clocks (`Instant`, `SystemTime`).
    pub const NO_AMBIENT_TIME: &str = "no-ambient-time";
    /// Ambient randomness (`thread_rng`, `from_entropy`, `RandomState`).
    pub const NO_AMBIENT_ENTROPY: &str = "no-ambient-entropy";
    /// Iteration over hash-ordered containers.
    pub const HASH_ORDER_ITERATION: &str = "hash-order-iteration";
    /// Panics in codec files that promise positioned errors.
    pub const PANIC_FREE_CODECS: &str = "panic-free-codecs";
    /// `unsafe` outside the allowlist.
    pub const NO_UNSAFE: &str = "no-unsafe";
    /// Bare float reductions in parallel-bearing modules.
    pub const FLOAT_REDUCTION_ORDER: &str = "float-reduction-order";
    /// Malformed or useless `arvis-lint` pragmas.
    pub const LINT_PRAGMA: &str = "lint-pragma";
}

/// Name + one-line description of every rule, for `--list-rules` and docs.
pub const RULES: &[(&str, &str)] = &[
    (
        names::NO_AMBIENT_TIME,
        "std::time::Instant/SystemTime forbidden in deterministic library code",
    ),
    (
        names::NO_AMBIENT_ENTROPY,
        "thread_rng/from_entropy/RandomState forbidden; all randomness is seeded",
    ),
    (
        names::HASH_ORDER_ITERATION,
        "iterating a HashMap/HashSet needs a pragma citing the downstream sort, or a deterministic container",
    ),
    (
        names::PANIC_FREE_CODECS,
        "unwrap/expect/panic!/unreachable! forbidden in codec files; return positioned errors",
    ),
    (
        names::NO_UNSAFE,
        "unsafe code forbidden outside the explicit allowlist",
    ),
    (
        names::FLOAT_REDUCTION_ORDER,
        "bare .sum::<f32|f64>() in a parallel-bearing module needs the deterministic chunked reducers or a pragma",
    ),
    (
        names::LINT_PRAGMA,
        "arvis-lint pragmas must name a known rule, carry a justification, and suppress something",
    ),
];

/// True when `name` is a known rule.
pub fn is_rule(name: &str) -> bool {
    RULES.iter().any(|(n, _)| *n == name)
}

/// Per-file rule applicability, derived from the workspace config by the
/// walker (rules themselves stay path-agnostic).
#[derive(Debug, Clone, Default)]
pub struct FilePolicy {
    /// Ambient clocks allowed (bench/profiling code).
    pub allow_time: bool,
    /// `unsafe` allowed (explicit allowlist).
    pub allow_unsafe: bool,
    /// File is a codec (panic-free) file.
    pub is_codec: bool,
}

/// A parsed `// arvis-lint: allow(rule, "justification")` pragma.
#[derive(Debug)]
struct Pragma {
    rule: String,
    line: u32,
    own_line: bool,
    used: std::cell::Cell<bool>,
}

/// Lints one file's source text. `rel` is the root-relative path used in
/// findings.
pub fn lint_source(rel: &str, src: &str, policy: &FilePolicy) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    let toks = &lexed.toks[..];
    let test_regions = find_test_regions(toks);
    let (pragmas, mut findings) = parse_pragmas(rel, &lexed.comments);

    let in_tests = |line: u32| test_regions.iter().any(|&(a, b)| line >= a && line <= b);

    if !policy.allow_time {
        rule_ambient_time(rel, toks, &mut findings);
    }
    rule_ambient_entropy(rel, toks, &mut findings);
    rule_hash_order(rel, toks, &mut findings);
    if policy.is_codec {
        rule_panic_free(rel, toks, &in_tests, &mut findings);
    }
    if !policy.allow_unsafe {
        rule_no_unsafe(rel, toks, &mut findings);
    }
    rule_float_reduction(rel, toks, &in_tests, &mut findings);

    // Pragma suppression: a pragma covers findings of its rule on its own
    // line (trailing comment) or — for a standalone comment line — on the
    // next line that carries any token.
    let next_tok_line =
        |after: u32| -> Option<u32> { toks.iter().map(|t| t.line).filter(|&l| l > after).min() };
    findings.retain(|f| {
        for p in &pragmas {
            if p.rule != f.rule {
                continue;
            }
            let covers = f.line == p.line || (p.own_line && Some(f.line) == next_tok_line(p.line));
            if covers {
                p.used.set(true);
                return false;
            }
        }
        true
    });
    for p in &pragmas {
        if !p.used.get() {
            findings.push(Finding {
                file: rel.to_string(),
                line: p.line,
                col: 1,
                rule: names::LINT_PRAGMA,
                message: format!(
                    "pragma allow({}) suppresses nothing on this or the next line; remove it",
                    p.rule
                ),
            });
        }
    }

    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    findings
}

/// Parses pragmas out of the comment list. Malformed pragmas become
/// `lint-pragma` findings immediately.
fn parse_pragmas(rel: &str, comments: &[Comment]) -> (Vec<Pragma>, Vec<Finding>) {
    let mut pragmas = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        let body = c
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_end_matches('/')
            .trim_end_matches('*')
            .trim();
        let Some(rest) = body.strip_prefix("arvis-lint:") else {
            continue;
        };
        let bad = |msg: String| Finding {
            file: rel.to_string(),
            line: c.line,
            col: 1,
            rule: names::LINT_PRAGMA,
            message: msg,
        };
        let rest = rest.trim();
        let Some(inner) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.trim_end().strip_suffix(')'))
        else {
            findings.push(bad(format!(
                "malformed pragma {body:?}: expected `arvis-lint: allow(<rule>, \"<justification>\")`"
            )));
            continue;
        };
        let Some((rule, justification)) = inner.split_once(',') else {
            findings.push(bad(format!(
                "pragma allow({inner}) is missing the justification string"
            )));
            continue;
        };
        let rule = rule.trim();
        let justification = justification.trim();
        if !is_rule(rule) {
            findings.push(bad(format!("pragma names unknown rule {rule:?}")));
            continue;
        }
        let quoted = justification.len() >= 2
            && justification.starts_with('"')
            && justification.ends_with('"');
        if !quoted || justification.len() == 2 {
            findings.push(bad(format!(
                "pragma allow({rule}) needs a non-empty quoted justification"
            )));
            continue;
        }
        pragmas.push(Pragma {
            rule: rule.to_string(),
            line: c.line,
            own_line: c.own_line,
            used: std::cell::Cell::new(false),
        });
    }
    (pragmas, findings)
}

/// Line spans (inclusive) of `#[cfg(test)] mod …` and `#[test] fn …` items,
/// by brace matching over the token stream.
fn find_test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        // Find the attribute's closing bracket and check it mentions
        // `test` (covers `#[cfg(test)]`, `#[cfg(all(test, …))]`, `#[test]`).
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut mentions_test = false;
        while j < toks.len() {
            if toks[j].is_punct('[') {
                depth += 1;
            } else if toks[j].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if toks[j].is_ident("test") {
                // `#[cfg(not(test))]` guards *non*-test code.
                let negated = j >= 2 && toks[j - 1].is_punct('(') && toks[j - 2].is_ident("not");
                if !negated {
                    mentions_test = true;
                }
            }
            j += 1;
        }
        if !mentions_test || j >= toks.len() {
            i = j.max(i + 1);
            continue;
        }
        // Skip any further attributes, then expect `mod`/`fn` and a braced
        // body.
        let mut k = j + 1;
        while k + 1 < toks.len() && toks[k].is_punct('#') && toks[k + 1].is_punct('[') {
            let mut d = 0i32;
            while k < toks.len() {
                if toks[k].is_punct('[') {
                    d += 1;
                } else if toks[k].is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                k += 1;
            }
            k += 1;
        }
        let is_item = k < toks.len() && (toks[k].is_ident("mod") || toks[k].is_ident("fn"));
        if !is_item {
            i = j + 1;
            continue;
        }
        // Find the opening brace of the body, then its match.
        let mut b = k;
        while b < toks.len() && !toks[b].is_punct('{') && !toks[b].is_punct(';') {
            b += 1;
        }
        if b >= toks.len() || toks[b].is_punct(';') {
            i = j + 1;
            continue;
        }
        let start_line = toks[i].line;
        let mut d = 0i32;
        let mut e = b;
        while e < toks.len() {
            if toks[e].is_punct('{') {
                d += 1;
            } else if toks[e].is_punct('}') {
                d -= 1;
                if d == 0 {
                    break;
                }
            }
            e += 1;
        }
        let end_line = toks.get(e).map_or(u32::MAX, |t| t.line);
        regions.push((start_line, end_line));
        i = b + 1;
    }
    regions
}

fn push(findings: &mut Vec<Finding>, rel: &str, tok: &Tok, rule: &'static str, message: String) {
    findings.push(Finding {
        file: rel.to_string(),
        line: tok.line,
        col: tok.col,
        rule,
        message,
    });
}

/// no-ambient-time: any `Instant` / `SystemTime` identifier.
fn rule_ambient_time(rel: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for t in toks {
        if t.is_ident("Instant") || t.is_ident("SystemTime") {
            push(
                out,
                rel,
                t,
                names::NO_AMBIENT_TIME,
                format!(
                    "ambient clock `{}` in deterministic code; slot counters are the only time source here",
                    t.text
                ),
            );
        }
    }
}

/// no-ambient-entropy: any `thread_rng` / `from_entropy` / `RandomState`.
fn rule_ambient_entropy(rel: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for t in toks {
        if t.is_ident("thread_rng") || t.is_ident("from_entropy") || t.is_ident("RandomState") {
            push(
                out,
                rel,
                t,
                names::NO_AMBIENT_ENTROPY,
                format!(
                    "ambient entropy source `{}`; every RNG in this workspace is explicitly seeded",
                    t.text
                ),
            );
        }
    }
}

const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "difference",
    "intersection",
    "union",
    "symmetric_difference",
];

fn is_hash_ty(t: &Tok) -> bool {
    t.is_ident("HashMap") || t.is_ident("HashSet")
}

/// hash-order-iteration: iteration methods whose receiver is a binding,
/// field, or accessor the file declares as `HashMap`/`HashSet`.
///
/// This is a token-level heuristic (see crate docs): it tracks
/// `name: HashMap<…>` / `name: HashSet<…>` annotations (fields, lets,
/// params), `let name = HashMap::new()`-style initializers, and
/// `fn name(…) -> …HashMap…` accessors, then flags `recv.iter()` /
/// `recv.keys()` / set-algebra calls and `for … in recv {` loops on those
/// names.
fn rule_hash_order(rel: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    use std::collections::BTreeSet;
    let mut hash_idents: BTreeSet<&str> = BTreeSet::new();
    let mut hash_fns: BTreeSet<&str> = BTreeSet::new();

    // Pass 1a: `name : …HashMap/HashSet…` type annotations. The type span
    // runs to the first depth-0 `,` `;` `=` `)` `{` `}`.
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || i + 2 >= toks.len() || !toks[i + 1].is_punct(':') {
            continue;
        }
        // `::` paths are not annotations.
        if toks[i + 2].is_punct(':') || (i > 0 && toks[i - 1].is_punct(':')) {
            continue;
        }
        let mut depth = 0i32;
        for t in toks.iter().skip(i + 2).take(64) {
            if depth == 0
                && (t.is_punct(',')
                    || t.is_punct(';')
                    || t.is_punct('=')
                    || t.is_punct(')')
                    || t.is_punct('{')
                    || t.is_punct('}'))
            {
                break;
            }
            if t.is_punct('<') || t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct('>') || t.is_punct(')') || t.is_punct(']') {
                depth = (depth - 1).max(0);
            } else if is_hash_ty(t) {
                hash_idents.insert(toks[i].text.as_str());
                break;
            }
        }
    }

    // Pass 1b: `let [mut] name = [path::]HashMap::…` initializers.
    for i in 0..toks.len() {
        if !toks[i].is_ident("let") {
            continue;
        }
        let mut j = i + 1;
        if j < toks.len() && toks[j].is_ident("mut") {
            j += 1;
        }
        if j >= toks.len() || toks[j].kind != TokKind::Ident {
            continue;
        }
        let name = toks[j].text.as_str();
        let mut k = j + 1;
        if k >= toks.len() || !toks[k].is_punct('=') {
            continue;
        }
        k += 1;
        // Initializer head: a path of idents/`::`/turbofish generics.
        let mut found = false;
        for t in toks.iter().skip(k).take(24) {
            if t.kind == TokKind::Ident {
                if is_hash_ty(t) {
                    found = true;
                    break;
                }
            } else if !(t.is_punct(':') || t.is_punct('<') || t.is_punct('>') || t.is_punct(',')) {
                break;
            }
        }
        if found {
            hash_idents.insert(name);
        }
    }

    // Pass 1c: `fn name(…) -> …HashMap/HashSet…` accessors.
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") || i + 1 >= toks.len() || toks[i + 1].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i + 1].text.as_str();
        // Find the parameter list's closing paren.
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct('(') {
            j += 1;
        }
        let mut depth = 0i32;
        while j < toks.len() {
            if toks[j].is_punct('(') {
                depth += 1;
            } else if toks[j].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        // Return type present?
        if !(j + 2 < toks.len() && toks[j + 1].is_punct('-') && toks[j + 2].is_punct('>')) {
            continue;
        }
        for t in toks.iter().skip(j + 3).take(32) {
            if t.is_punct('{') || t.is_punct(';') || t.is_ident("where") {
                break;
            }
            if is_hash_ty(t) {
                hash_fns.insert(name);
                break;
            }
        }
    }

    let flag = |out: &mut Vec<Finding>, tok: &Tok, recv: &str| {
        push(
            out,
            rel,
            tok,
            names::HASH_ORDER_ITERATION,
            format!(
                "`{recv}.{}` iterates in hash order; sort the result, use a deterministic \
                 container, or pragma-cite the downstream sort",
                tok.text
            ),
        );
    };

    // Pass 2a: `recv.method(` where method is order-sensitive.
    for i in 2..toks.len() {
        let t = &toks[i];
        let is_iter_call = t.kind == TokKind::Ident
            && HASH_ITER_METHODS.contains(&t.text.as_str())
            && toks[i - 1].is_punct('.')
            && i + 1 < toks.len()
            && toks[i + 1].is_punct('(');
        if !is_iter_call {
            continue;
        }
        let recv = &toks[i - 2];
        if recv.kind == TokKind::Ident && hash_idents.contains(recv.text.as_str()) {
            flag(out, t, &recv.text);
            continue;
        }
        // `….accessor().method(` — receiver is a call; match back to the
        // opening paren and look at the callee name.
        if recv.is_punct(')') {
            let mut depth = 0i32;
            let mut j = i - 2;
            loop {
                if toks[j].is_punct(')') {
                    depth += 1;
                } else if toks[j].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    break;
                }
                j -= 1;
            }
            if j > 0 {
                let callee = &toks[j - 1];
                if callee.kind == TokKind::Ident && hash_fns.contains(callee.text.as_str()) {
                    flag(out, t, &format!("{}()", callee.text));
                }
            }
        }
    }

    // Pass 2b: `for … in [&][mut] recv {`.
    for i in 0..toks.len() {
        if !toks[i].is_ident("in") {
            continue;
        }
        let mut j = i + 1;
        while j < toks.len() && (toks[j].is_punct('&') || toks[j].is_ident("mut")) {
            j += 1;
        }
        if j + 1 < toks.len()
            && toks[j].kind == TokKind::Ident
            && hash_idents.contains(toks[j].text.as_str())
            && toks[j + 1].is_punct('{')
        {
            push(
                out,
                rel,
                &toks[j],
                names::HASH_ORDER_ITERATION,
                format!(
                    "`for … in {}` iterates in hash order; sort the keys first or use a \
                     deterministic container",
                    toks[j].text
                ),
            );
        }
    }
}

/// panic-free-codecs: `.unwrap()` / `.expect(` / `panic!` / `unreachable!`
/// / `todo!` / `unimplemented!` outside `#[cfg(test)]` regions of codec
/// files.
fn rule_panic_free(
    rel: &str,
    toks: &[Tok],
    in_tests: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || in_tests(t.line) {
            continue;
        }
        let method_call = |name: &str| {
            t.is_ident(name)
                && i > 0
                && toks[i - 1].is_punct('.')
                && i + 1 < toks.len()
                && toks[i + 1].is_punct('(')
        };
        let bang_macro =
            |name: &str| t.is_ident(name) && i + 1 < toks.len() && toks[i + 1].is_punct('!');
        if method_call("unwrap") || method_call("expect") {
            push(
                out,
                rel,
                t,
                names::PANIC_FREE_CODECS,
                format!(
                    "`.{}()` in a codec path; codecs return positioned errors, never panic",
                    t.text
                ),
            );
        } else if bang_macro("panic")
            || bang_macro("unreachable")
            || bang_macro("todo")
            || bang_macro("unimplemented")
        {
            push(
                out,
                rel,
                t,
                names::PANIC_FREE_CODECS,
                format!(
                    "`{}!` in a codec path; codecs return positioned errors, never panic",
                    t.text
                ),
            );
        }
    }
}

/// no-unsafe: the `unsafe` keyword anywhere outside the allowlist.
fn rule_no_unsafe(rel: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for t in toks {
        if t.is_ident("unsafe") {
            push(
                out,
                rel,
                t,
                names::NO_UNSAFE,
                "`unsafe` outside the allowlist; the workspace kernels are forbid(unsafe_code)"
                    .to_string(),
            );
        }
    }
}

/// float-reduction-order: `.sum::<f32>()` / `.sum::<f64>()` in a module
/// that bears `#[cfg(feature = "parallel")]` or calls the `arvis_par`
/// chunked fan-out primitives, outside test regions.
fn rule_float_reduction(
    rel: &str,
    toks: &[Tok],
    in_tests: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    let has_cfg_parallel = toks.iter().any(|t| t.is_ident("cfg"))
        && toks.iter().any(|t| t.is_ident("feature"))
        && toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == "parallel");
    let par_primitives = [
        "map_chunks",
        "for_each_chunk",
        "for_each_chunk_mut",
        "for_each_task",
    ];
    let uses_par = toks
        .iter()
        .any(|t| t.kind == TokKind::Ident && par_primitives.contains(&t.text.as_str()));
    if !has_cfg_parallel && !uses_par {
        return;
    }
    for i in 1..toks.len() {
        let t = &toks[i];
        if !t.is_ident("sum") || !toks[i - 1].is_punct('.') || in_tests(t.line) {
            continue;
        }
        // Match `.sum ::< f32|f64 > (`.
        let rest = &toks[i + 1..];
        let is_turbofish_float = rest.len() >= 5
            && rest[0].is_punct(':')
            && rest[1].is_punct(':')
            && rest[2].is_punct('<')
            && (rest[3].is_ident("f32") || rest[3].is_ident("f64"))
            && rest[4].is_punct('>');
        if is_turbofish_float {
            push(
                out,
                rel,
                t,
                names::FLOAT_REDUCTION_ORDER,
                format!(
                    "bare `.sum::<{}>()` in a parallel-bearing module; float addition is not \
                     associative — route through the arvis_par chunked reducers or pragma-cite \
                     the fixed reduction order",
                    rest[3].text
                ),
            );
        }
    }
}
