//! The determinism-contract rules and the per-file engine that runs them.
//!
//! Every rule is a pure function over the token stream of one file (plus a
//! little per-file context the engine precomputes: `#[cfg(test)]` regions,
//! hash-container bindings, parallel-module markers). Findings carry the
//! 1-based line/column of the offending token.

use crate::items::FileItems;
use crate::lexer::{Comment, Tok, TokKind};

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path of the file, relative to the lint root (with `/` separators).
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// Rule name (`no-ambient-time`, …).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// For interprocedural findings: the taint chain from the flagged
    /// call site down to the ambient source (function display paths, then
    /// the source description). Empty for per-file findings.
    pub chain: Vec<String>,
}

impl Finding {
    /// The canonical single-line rendering: `file:line:col rule message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{} {} {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Rule names, as used in findings, pragmas, and the config allowlists.
pub mod names {
    /// Ambient clocks (`Instant`, `SystemTime`).
    pub const NO_AMBIENT_TIME: &str = "no-ambient-time";
    /// Ambient randomness (`thread_rng`, `from_entropy`, `RandomState`).
    pub const NO_AMBIENT_ENTROPY: &str = "no-ambient-entropy";
    /// Iteration over hash-ordered containers.
    pub const HASH_ORDER_ITERATION: &str = "hash-order-iteration";
    /// Panics in codec files that promise positioned errors.
    pub const PANIC_FREE_CODECS: &str = "panic-free-codecs";
    /// `unsafe` outside the allowlist.
    pub const NO_UNSAFE: &str = "no-unsafe";
    /// Bare float reductions in parallel-bearing modules.
    pub const FLOAT_REDUCTION_ORDER: &str = "float-reduction-order";
    /// Malformed or useless `arvis-lint` pragmas.
    pub const LINT_PRAGMA: &str = "lint-pragma";
    /// Codec emit/parse key sets must cover the declared fields.
    pub const CODEC_COVERAGE: &str = "codec-coverage";
}

/// Name + one-line description of every rule, for `--list-rules` and docs.
pub const RULES: &[(&str, &str)] = &[
    (
        names::NO_AMBIENT_TIME,
        "std::time::Instant/SystemTime forbidden in deterministic library code",
    ),
    (
        names::NO_AMBIENT_ENTROPY,
        "thread_rng/from_entropy/RandomState forbidden; all randomness is seeded",
    ),
    (
        names::HASH_ORDER_ITERATION,
        "iterating a HashMap/HashSet needs a pragma citing the downstream sort, or a deterministic container",
    ),
    (
        names::PANIC_FREE_CODECS,
        "unwrap/expect/panic!/unreachable! forbidden in codec files; return positioned errors",
    ),
    (
        names::NO_UNSAFE,
        "unsafe code forbidden outside the explicit allowlist",
    ),
    (
        names::FLOAT_REDUCTION_ORDER,
        "bare .sum::<f32|f64>() in a parallel-bearing module needs the deterministic chunked reducers or a pragma",
    ),
    (
        names::LINT_PRAGMA,
        "arvis-lint pragmas must name a known rule, carry a justification, and suppress something",
    ),
    (
        names::CODEC_COVERAGE,
        "hand-written to_json/from_json pairs must emit and parse every declared field",
    ),
];

/// True when `name` is a known rule.
pub fn is_rule(name: &str) -> bool {
    RULES.iter().any(|(n, _)| *n == name)
}

/// The long-form explanation behind `--explain <rule>`: what the rule
/// protects, how the interprocedural pass extends it, and how to contain
/// a deliberate exception.
pub fn explain(rule: &str) -> Option<&'static str> {
    let text = match rule {
        "no-ambient-time" => {
            "Wall-clock reads (`std::time::Instant`, `SystemTime`) make output depend on the \
             machine and the moment, which breaks the bit-determinism contract the regression \
             ledger relies on. Library time is the slot counter. This rule is interprocedural: \
             a function that merely *calls* one that reads the clock is flagged too, with the \
             full taint chain (`a → b → Instant (file:line)`). Measurement code under \
             `crates/bench` is policy-exempt from reporting, but its functions still carry \
             taint, so deterministic code calling into bench timing is caught at that boundary. \
             Contain a deliberate use with `// arvis-lint: allow(no-ambient-time, \"…\")` on \
             the offending line or on the line above the `fn` to cover the whole item."
        }
        "no-ambient-entropy" => {
            "Ambient randomness (`thread_rng`, `from_entropy`, `RandomState`) seeds state from \
             the OS, so two runs of the same scenario diverge. Every RNG in this workspace is \
             explicitly seeded (splitmix-derived per-session streams), and hash containers use \
             fixed-seed hashers. Interprocedural: callers of entropy-tainted functions are \
             flagged with the full chain. There is no policy exemption; a justified exception \
             needs a pragma at the containment boundary."
        }
        "hash-order-iteration" => {
            "Iterating a `HashMap`/`HashSet` observes memory-layout order, which is not part of \
             the deterministic contract even with fixed-seed hashers across versions. Sort the \
             result, use a Vec/BTreeMap, or pragma-cite the downstream sort. This rule is \
             per-file (the binding heuristics do not cross function boundaries)."
        }
        "panic-free-codecs" => {
            "Codec files promise positioned errors (`line/col` in `JsonError`), never panics: a \
             panicking decoder turns a corrupt ledger line into a process abort instead of a \
             diagnosable error. `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!` are forbidden \
             outside `#[cfg(test)]` regions of codec files."
        }
        "no-unsafe" => {
            "The workspace is `forbid(unsafe_code)` outside the explicit allowlist \
             (`crates/par` owns the scoped-thread internals). `unsafe` anywhere else voids the \
             determinism argument the safe APIs encode."
        }
        "float-reduction-order" => {
            "Float addition is not associative: `.sum::<f32|f64>()` over a parallel-chunked \
             iterator reduces in whatever order the chunks land, so serial and parallel runs \
             diverge in the last ulp — which the bit-identity suites treat as failure. Route \
             reductions through the `arvis_par` chunked reducers (fixed tree order) or \
             pragma-cite the fixed order. Interprocedural: callers of a function containing an \
             unsuppressed bare float reduction are flagged with the chain."
        }
        "lint-pragma" => {
            "`// arvis-lint: allow(<rule>, \"<justification>\")` must name a known rule, carry \
             a non-empty quoted justification, and actually suppress a finding. A pragma on its \
             own line covers the next code line; directly above an `fn` item it covers the \
             whole item (function-scoped containment). Unused pragmas are themselves findings, \
             so stale allowances cannot linger."
        }
        "codec-coverage" => {
            "Every struct/enum with a hand-written `to_json`/`from_json` pair must emit and \
             parse exactly its declared fields: a dropped field round-trips \"cleanly\" while \
             silently forking the scenario-hash semantics the ledger keys on. The pass \
             cross-checks declared fields against the key strings the emit side writes \
             (`(\"key\", …)` tuples) and the parse side reads (`.req(\"key\")`/`.opt(\"key\")`). \
             Keys present on both sides but not declared (schema envelopes, `type` tags) are \
             fine; one-sided keys and uncovered fields are findings."
        }
        _ => return None,
    };
    Some(text)
}

/// Per-file rule applicability, derived from the workspace config by the
/// walker (rules themselves stay path-agnostic).
#[derive(Debug, Clone, Default)]
pub struct FilePolicy {
    /// Ambient clocks allowed (bench/profiling code).
    pub allow_time: bool,
    /// `unsafe` allowed (explicit allowlist).
    pub allow_unsafe: bool,
    /// File is a codec (panic-free) file.
    pub is_codec: bool,
    /// File's codec pairs are subject to the field-coverage pass.
    pub is_coverage: bool,
}

/// A parsed `// arvis-lint: allow(rule, "justification")` pragma.
#[derive(Debug)]
pub(crate) struct Pragma {
    pub(crate) rule: String,
    pub(crate) line: u32,
    pub(crate) own_line: bool,
    pub(crate) used: std::cell::Cell<bool>,
}

/// Whether some pragma suppresses a finding of `rule` at `line`, marking
/// the pragma used. Three scopes, in order:
///
/// * **trailing** — the pragma shares the finding's line;
/// * **line** — a standalone pragma covers the next line carrying a token;
/// * **function** — a standalone pragma directly above an `fn` item's
///   first line (attributes included) covers the item's whole span, so
///   taint can be contained at the function boundary.
pub(crate) fn pragma_covers(pragmas: &[Pragma], items: &FileItems, rule: &str, line: u32) -> bool {
    let next_tok_line = |after: u32| -> Option<u32> {
        items
            .toks
            .iter()
            .map(|t| t.line)
            .filter(|&l| l > after)
            .min()
    };
    for p in pragmas {
        if p.rule != rule {
            continue;
        }
        if p.line == line {
            p.used.set(true);
            return true;
        }
        if !p.own_line {
            continue;
        }
        let Some(next) = next_tok_line(p.line) else {
            continue;
        };
        if next == line {
            p.used.set(true);
            return true;
        }
        let fn_scoped = items
            .fns
            .iter()
            .any(|f| f.header_line == next && line >= f.span.0 && line <= f.span.1);
        if fn_scoped {
            p.used.set(true);
            return true;
        }
    }
    false
}

/// Drops every finding a pragma covers (marking those pragmas used).
pub(crate) fn suppress(pragmas: &[Pragma], items: &FileItems, findings: &mut Vec<Finding>) {
    findings.retain(|f| !pragma_covers(pragmas, items, f.rule, f.line));
}

/// Appends a `lint-pragma` finding for every pragma that never suppressed
/// anything.
pub(crate) fn flag_unused_pragmas(rel: &str, pragmas: &[Pragma], findings: &mut Vec<Finding>) {
    for p in pragmas {
        if !p.used.get() {
            findings.push(Finding {
                file: rel.to_string(),
                line: p.line,
                col: 1,
                rule: names::LINT_PRAGMA,
                message: format!(
                    "pragma allow({}) suppresses nothing in its scope; remove it",
                    p.rule
                ),
                chain: Vec::new(),
            });
        }
    }
}

/// Runs the per-file rules over a parsed file, appending findings.
/// Test-only regions come from the item parser's `cfg` evaluator, so
/// `cfg(all(test, …))` nesting is handled exactly.
pub(crate) fn run_rules(items: &FileItems, policy: &FilePolicy, findings: &mut Vec<Finding>) {
    let rel = items.rel.as_str();
    let toks = &items.toks[..];
    let in_tests = |line: u32| items.in_test_region(line);
    if !policy.allow_time {
        rule_ambient_time(rel, toks, findings);
    }
    rule_ambient_entropy(rel, toks, findings);
    rule_hash_order(rel, toks, findings);
    if policy.is_codec {
        rule_panic_free(rel, toks, &in_tests, findings);
    }
    if !policy.allow_unsafe {
        rule_no_unsafe(rel, toks, findings);
    }
    rule_float_reduction(rel, toks, &in_tests, findings);
}

/// Lints one file's source text in isolation (per-file rules plus pragma
/// resolution; the interprocedural passes need the whole workspace and
/// run from [`crate::lint_workspace`]). `rel` is the root-relative path
/// used in findings.
pub fn lint_source(rel: &str, src: &str, policy: &FilePolicy) -> Vec<Finding> {
    let items = FileItems::parse(rel, src);
    let (pragmas, mut findings) = parse_pragmas(rel, &items.comments);
    run_rules(&items, policy, &mut findings);
    suppress(&pragmas, &items, &mut findings);
    flag_unused_pragmas(rel, &pragmas, &mut findings);
    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    findings
}

/// Parses pragmas out of the comment list. Malformed pragmas become
/// `lint-pragma` findings immediately.
pub(crate) fn parse_pragmas(rel: &str, comments: &[Comment]) -> (Vec<Pragma>, Vec<Finding>) {
    let mut pragmas = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        let body = c
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_end_matches('/')
            .trim_end_matches('*')
            .trim();
        let Some(rest) = body.strip_prefix("arvis-lint:") else {
            continue;
        };
        let bad = |msg: String| Finding {
            file: rel.to_string(),
            line: c.line,
            col: 1,
            rule: names::LINT_PRAGMA,
            message: msg,
            chain: Vec::new(),
        };
        let rest = rest.trim();
        let Some(inner) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.trim_end().strip_suffix(')'))
        else {
            findings.push(bad(format!(
                "malformed pragma {body:?}: expected `arvis-lint: allow(<rule>, \"<justification>\")`"
            )));
            continue;
        };
        let Some((rule, justification)) = inner.split_once(',') else {
            findings.push(bad(format!(
                "pragma allow({inner}) is missing the justification string"
            )));
            continue;
        };
        let rule = rule.trim();
        let justification = justification.trim();
        if !is_rule(rule) {
            findings.push(bad(format!("pragma names unknown rule {rule:?}")));
            continue;
        }
        let quoted = justification.len() >= 2
            && justification.starts_with('"')
            && justification.ends_with('"');
        if !quoted || justification.len() == 2 {
            findings.push(bad(format!(
                "pragma allow({rule}) needs a non-empty quoted justification"
            )));
            continue;
        }
        pragmas.push(Pragma {
            rule: rule.to_string(),
            line: c.line,
            own_line: c.own_line,
            used: std::cell::Cell::new(false),
        });
    }
    (pragmas, findings)
}

fn push(findings: &mut Vec<Finding>, rel: &str, tok: &Tok, rule: &'static str, message: String) {
    findings.push(Finding {
        file: rel.to_string(),
        line: tok.line,
        col: tok.col,
        rule,
        message,
        chain: Vec::new(),
    });
}

/// no-ambient-time: any `Instant` / `SystemTime` identifier.
fn rule_ambient_time(rel: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for t in toks {
        if t.is_ident("Instant") || t.is_ident("SystemTime") {
            push(
                out,
                rel,
                t,
                names::NO_AMBIENT_TIME,
                format!(
                    "ambient clock `{}` in deterministic code; slot counters are the only time source here",
                    t.text
                ),
            );
        }
    }
}

/// no-ambient-entropy: any `thread_rng` / `from_entropy` / `RandomState`.
fn rule_ambient_entropy(rel: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for t in toks {
        if t.is_ident("thread_rng") || t.is_ident("from_entropy") || t.is_ident("RandomState") {
            push(
                out,
                rel,
                t,
                names::NO_AMBIENT_ENTROPY,
                format!(
                    "ambient entropy source `{}`; every RNG in this workspace is explicitly seeded",
                    t.text
                ),
            );
        }
    }
}

const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "difference",
    "intersection",
    "union",
    "symmetric_difference",
];

fn is_hash_ty(t: &Tok) -> bool {
    t.is_ident("HashMap") || t.is_ident("HashSet")
}

/// hash-order-iteration: iteration methods whose receiver is a binding,
/// field, or accessor the file declares as `HashMap`/`HashSet`.
///
/// This is a token-level heuristic (see crate docs): it tracks
/// `name: HashMap<…>` / `name: HashSet<…>` annotations (fields, lets,
/// params), `let name = HashMap::new()`-style initializers, and
/// `fn name(…) -> …HashMap…` accessors, then flags `recv.iter()` /
/// `recv.keys()` / set-algebra calls and `for … in recv {` loops on those
/// names.
fn rule_hash_order(rel: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    use std::collections::BTreeSet;
    let mut hash_idents: BTreeSet<&str> = BTreeSet::new();
    let mut hash_fns: BTreeSet<&str> = BTreeSet::new();

    // Pass 1a: `name : …HashMap/HashSet…` type annotations. The type span
    // runs to the first depth-0 `,` `;` `=` `)` `{` `}`.
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || i + 2 >= toks.len() || !toks[i + 1].is_punct(':') {
            continue;
        }
        // `::` paths are not annotations.
        if toks[i + 2].is_punct(':') || (i > 0 && toks[i - 1].is_punct(':')) {
            continue;
        }
        let mut depth = 0i32;
        for t in toks.iter().skip(i + 2).take(64) {
            if depth == 0
                && (t.is_punct(',')
                    || t.is_punct(';')
                    || t.is_punct('=')
                    || t.is_punct(')')
                    || t.is_punct('{')
                    || t.is_punct('}'))
            {
                break;
            }
            if t.is_punct('<') || t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct('>') || t.is_punct(')') || t.is_punct(']') {
                depth = (depth - 1).max(0);
            } else if is_hash_ty(t) {
                hash_idents.insert(toks[i].text.as_str());
                break;
            }
        }
    }

    // Pass 1b: `let [mut] name = [path::]HashMap::…` initializers.
    for i in 0..toks.len() {
        if !toks[i].is_ident("let") {
            continue;
        }
        let mut j = i + 1;
        if j < toks.len() && toks[j].is_ident("mut") {
            j += 1;
        }
        if j >= toks.len() || toks[j].kind != TokKind::Ident {
            continue;
        }
        let name = toks[j].text.as_str();
        let mut k = j + 1;
        if k >= toks.len() || !toks[k].is_punct('=') {
            continue;
        }
        k += 1;
        // Initializer head: a path of idents/`::`/turbofish generics.
        let mut found = false;
        for t in toks.iter().skip(k).take(24) {
            if t.kind == TokKind::Ident {
                if is_hash_ty(t) {
                    found = true;
                    break;
                }
            } else if !(t.is_punct(':') || t.is_punct('<') || t.is_punct('>') || t.is_punct(',')) {
                break;
            }
        }
        if found {
            hash_idents.insert(name);
        }
    }

    // Pass 1c: `fn name(…) -> …HashMap/HashSet…` accessors.
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") || i + 1 >= toks.len() || toks[i + 1].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i + 1].text.as_str();
        // Find the parameter list's closing paren.
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct('(') {
            j += 1;
        }
        let mut depth = 0i32;
        while j < toks.len() {
            if toks[j].is_punct('(') {
                depth += 1;
            } else if toks[j].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        // Return type present?
        if !(j + 2 < toks.len() && toks[j + 1].is_punct('-') && toks[j + 2].is_punct('>')) {
            continue;
        }
        for t in toks.iter().skip(j + 3).take(32) {
            if t.is_punct('{') || t.is_punct(';') || t.is_ident("where") {
                break;
            }
            if is_hash_ty(t) {
                hash_fns.insert(name);
                break;
            }
        }
    }

    let flag = |out: &mut Vec<Finding>, tok: &Tok, recv: &str| {
        push(
            out,
            rel,
            tok,
            names::HASH_ORDER_ITERATION,
            format!(
                "`{recv}.{}` iterates in hash order; sort the result, use a deterministic \
                 container, or pragma-cite the downstream sort",
                tok.text
            ),
        );
    };

    // Pass 2a: `recv.method(` where method is order-sensitive.
    for i in 2..toks.len() {
        let t = &toks[i];
        let is_iter_call = t.kind == TokKind::Ident
            && HASH_ITER_METHODS.contains(&t.text.as_str())
            && toks[i - 1].is_punct('.')
            && i + 1 < toks.len()
            && toks[i + 1].is_punct('(');
        if !is_iter_call {
            continue;
        }
        let recv = &toks[i - 2];
        if recv.kind == TokKind::Ident && hash_idents.contains(recv.text.as_str()) {
            flag(out, t, &recv.text);
            continue;
        }
        // `….accessor().method(` — receiver is a call; match back to the
        // opening paren and look at the callee name.
        if recv.is_punct(')') {
            let mut depth = 0i32;
            let mut j = i - 2;
            loop {
                if toks[j].is_punct(')') {
                    depth += 1;
                } else if toks[j].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    break;
                }
                j -= 1;
            }
            if j > 0 {
                let callee = &toks[j - 1];
                if callee.kind == TokKind::Ident && hash_fns.contains(callee.text.as_str()) {
                    flag(out, t, &format!("{}()", callee.text));
                }
            }
        }
    }

    // Pass 2b: `for … in [&][mut] recv {`.
    for i in 0..toks.len() {
        if !toks[i].is_ident("in") {
            continue;
        }
        let mut j = i + 1;
        while j < toks.len() && (toks[j].is_punct('&') || toks[j].is_ident("mut")) {
            j += 1;
        }
        if j + 1 < toks.len()
            && toks[j].kind == TokKind::Ident
            && hash_idents.contains(toks[j].text.as_str())
            && toks[j + 1].is_punct('{')
        {
            push(
                out,
                rel,
                &toks[j],
                names::HASH_ORDER_ITERATION,
                format!(
                    "`for … in {}` iterates in hash order; sort the keys first or use a \
                     deterministic container",
                    toks[j].text
                ),
            );
        }
    }
}

/// panic-free-codecs: `.unwrap()` / `.expect(` / `panic!` / `unreachable!`
/// / `todo!` / `unimplemented!` outside `#[cfg(test)]` regions of codec
/// files.
fn rule_panic_free(
    rel: &str,
    toks: &[Tok],
    in_tests: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || in_tests(t.line) {
            continue;
        }
        let method_call = |name: &str| {
            t.is_ident(name)
                && i > 0
                && toks[i - 1].is_punct('.')
                && i + 1 < toks.len()
                && toks[i + 1].is_punct('(')
        };
        let bang_macro =
            |name: &str| t.is_ident(name) && i + 1 < toks.len() && toks[i + 1].is_punct('!');
        if method_call("unwrap") || method_call("expect") {
            push(
                out,
                rel,
                t,
                names::PANIC_FREE_CODECS,
                format!(
                    "`.{}()` in a codec path; codecs return positioned errors, never panic",
                    t.text
                ),
            );
        } else if bang_macro("panic")
            || bang_macro("unreachable")
            || bang_macro("todo")
            || bang_macro("unimplemented")
        {
            push(
                out,
                rel,
                t,
                names::PANIC_FREE_CODECS,
                format!(
                    "`{}!` in a codec path; codecs return positioned errors, never panic",
                    t.text
                ),
            );
        }
    }
}

/// no-unsafe: the `unsafe` keyword anywhere outside the allowlist.
fn rule_no_unsafe(rel: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for t in toks {
        if t.is_kw("unsafe") {
            push(
                out,
                rel,
                t,
                names::NO_UNSAFE,
                "`unsafe` outside the allowlist; the workspace kernels are forbid(unsafe_code)"
                    .to_string(),
            );
        }
    }
}

/// Whether the file is parallel-bearing: it mentions
/// `cfg(feature = "parallel")` or calls the `arvis_par` chunked fan-out
/// primitives. Shared with the taint pass's float-source detection.
pub(crate) fn is_parallel_bearing(toks: &[Tok]) -> bool {
    let has_cfg_parallel = toks.iter().any(|t| t.is_ident("cfg"))
        && toks.iter().any(|t| t.is_ident("feature"))
        && toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == "parallel");
    let par_primitives = [
        "map_chunks",
        "for_each_chunk",
        "for_each_chunk_mut",
        "for_each_task",
    ];
    let uses_par = toks
        .iter()
        .any(|t| t.kind == TokKind::Ident && par_primitives.contains(&t.text.as_str()));
    has_cfg_parallel || uses_par
}

/// Token indices of every bare `.sum::<f32|f64>` reduction head (the
/// `sum` identifier of `.sum ::< f32|f64 > (`).
pub(crate) fn float_sum_sites(toks: &[Tok]) -> Vec<usize> {
    let mut out = Vec::new();
    for i in 1..toks.len() {
        let t = &toks[i];
        if !t.is_ident("sum") || !toks[i - 1].is_punct('.') {
            continue;
        }
        let rest = &toks[i + 1..];
        let is_turbofish_float = rest.len() >= 5
            && rest[0].is_punct(':')
            && rest[1].is_punct(':')
            && rest[2].is_punct('<')
            && (rest[3].is_ident("f32") || rest[3].is_ident("f64"))
            && rest[4].is_punct('>');
        if is_turbofish_float {
            out.push(i);
        }
    }
    out
}

/// float-reduction-order: `.sum::<f32>()` / `.sum::<f64>()` in a module
/// that bears `#[cfg(feature = "parallel")]` or calls the `arvis_par`
/// chunked fan-out primitives, outside test regions.
fn rule_float_reduction(
    rel: &str,
    toks: &[Tok],
    in_tests: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    if !is_parallel_bearing(toks) {
        return;
    }
    for i in float_sum_sites(toks) {
        let t = &toks[i];
        if in_tests(t.line) {
            continue;
        }
        let elem = &toks[i + 4].text;
        push(
            out,
            rel,
            t,
            names::FLOAT_REDUCTION_ORDER,
            format!(
                "bare `.sum::<{elem}>()` in a parallel-bearing module; float addition is not \
                 associative — route through the arvis_par chunked reducers or pragma-cite \
                 the fixed reduction order"
            ),
        );
    }
}
