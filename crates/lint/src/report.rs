//! Finding aggregation and output: `file:line:col rule message` text and a
//! canonical JSON report via `arvis_core::json` (the same deterministic
//! printer the scenario codec uses, so reports are byte-stable inputs for
//! tooling and CI diffs).

use arvis_core::json::JsonValue;

use crate::rules::{Finding, RULES};

/// The result of linting a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, col, rule).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the lint should fail (any finding).
    pub fn has_findings(&self) -> bool {
        !self.findings.is_empty()
    }

    /// Findings for one rule.
    pub fn by_rule(&self, rule: &str) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.rule == rule).collect()
    }

    /// The human-readable rendering: one `file:line:col rule message` line
    /// per finding plus a trailing summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "arvis-lint: {} finding{} in {} file{} scanned\n",
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            self.files_scanned,
            if self.files_scanned == 1 { "" } else { "s" },
        ));
        out
    }

    /// The canonical JSON report. Keys are emitted in a fixed order and the
    /// printer is deterministic, so two runs over the same tree produce
    /// byte-identical reports. Schema 2 adds the machine-readable taint
    /// chain (`"chain"`) to every finding — empty for per-file findings,
    /// the function path down to the ambient source for interprocedural
    /// ones.
    pub fn to_json(&self) -> JsonValue {
        let findings = self
            .findings
            .iter()
            .map(|f| {
                let chain = f
                    .chain
                    .iter()
                    .map(|hop| JsonValue::str(hop.clone()))
                    .collect();
                JsonValue::obj(vec![
                    ("file", JsonValue::str(f.file.clone())),
                    ("line", JsonValue::int(i128::from(f.line))),
                    ("col", JsonValue::int(i128::from(f.col))),
                    ("rule", JsonValue::str(f.rule)),
                    ("message", JsonValue::str(f.message.clone())),
                    ("chain", JsonValue::arr(chain)),
                ])
            })
            .collect();
        let rules = RULES
            .iter()
            .map(|(name, _)| JsonValue::str(*name))
            .collect();
        JsonValue::obj(vec![
            ("schema", JsonValue::int(2)),
            ("tool", JsonValue::str("arvis-lint")),
            ("files_scanned", JsonValue::int(self.files_scanned as i128)),
            ("rules", JsonValue::arr(rules)),
            ("findings", JsonValue::arr(findings)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 9,
            rule: "no-ambient-time",
            message: "ambient clock".into(),
            chain: vec!["a::f".into(), "`Instant` (crates/x/src/lib.rs:3)".into()],
        }
    }

    #[test]
    fn text_rendering_is_grep_friendly() {
        let r = Report {
            findings: vec![finding()],
            files_scanned: 2,
        };
        let text = r.render_text();
        assert!(text.starts_with("crates/x/src/lib.rs:3:9 no-ambient-time ambient clock\n"));
        assert!(text.contains("1 finding in 2 files"));
    }

    #[test]
    fn json_report_is_byte_deterministic_and_parses() {
        let r = Report {
            findings: vec![finding()],
            files_scanned: 2,
        };
        let a = r.to_json().to_pretty();
        let b = r.to_json().to_pretty();
        assert_eq!(a, b);
        let back = arvis_core::json::parse(&a).expect("report parses");
        let mut obj = back.as_obj().expect("object");
        assert_eq!(obj.req("schema").unwrap().as_u64().unwrap(), 2);
        assert_eq!(obj.req("files_scanned").unwrap().as_u64().unwrap(), 2);
        let found = obj.req("findings").unwrap();
        let arr = found.as_array().unwrap();
        assert_eq!(arr.len(), 1);
        let mut f0 = arr[0].as_obj().expect("finding object");
        let chain = f0.req("chain").unwrap().as_array().unwrap();
        assert_eq!(chain.len(), 2, "schema 2 carries the taint chain");
    }
}
