//! The `arvis-lint` binary: walks the workspace, prints findings as
//! `file:line:col rule message`, optionally writes the canonical JSON
//! report, and exits nonzero on any finding.
//!
//! ```text
//! arvis-lint [--root <dir>] [--json <path|->] [--list-rules] [--explain <rule>]
//! ```

use std::process::ExitCode;

use arvis_lint::{lint_workspace, rules, LintConfig, RULES};

fn main() -> ExitCode {
    let mut config = LintConfig::workspace();
    let mut json_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => config.root = dir.into(),
                None => {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--json" => match args.next() {
                Some(path) => json_out = Some(path),
                None => {
                    eprintln!("--json needs a path (or `-` for stdout)");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for (name, desc) in RULES {
                    println!("{name}: {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--explain" => match args.next() {
                Some(rule) => match rules::explain(&rule) {
                    Some(text) => {
                        let desc = RULES
                            .iter()
                            .find(|(n, _)| *n == rule)
                            .map(|(_, d)| *d)
                            .unwrap_or("");
                        println!("{rule}: {desc}\n");
                        println!("{text}");
                        return ExitCode::SUCCESS;
                    }
                    None => {
                        eprintln!("unknown rule {rule:?} (try --list-rules)");
                        return ExitCode::from(2);
                    }
                },
                None => {
                    eprintln!("--explain needs a rule name (try --list-rules)");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "arvis-lint [--root <dir>] [--json <path|->] [--list-rules] [--explain <rule>]"
                );
                println!("Statically audits the workspace's determinism contract.");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let report = match lint_workspace(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("arvis-lint: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.render_text());
    if let Some(path) = json_out {
        let text = report.to_json().to_pretty();
        if path == "-" {
            println!("{text}");
        } else if let Err(e) = std::fs::write(&path, text + "\n") {
            eprintln!("arvis-lint: failed to write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if report.has_findings() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
