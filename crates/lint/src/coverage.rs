//! Stage 3: codec field-coverage for the hand-written JSON codecs.
//!
//! The ledger's whole value rests on `to_json`/`from_json` pairs being
//! exact inverses over the *declared* shape of a type: a codec that
//! silently drops a struct field round-trips "cleanly" while forking the
//! scenario hash semantics. This pass cross-checks, for every struct/enum
//! in a coverage file with a hand-written codec pair, three sets:
//!
//! * **declared** — the type's named fields (for enums: the union of all
//!   variants' named fields);
//! * **emit** — the key strings the `to_json` side writes
//!   (`members.push(("key", …))` / `vec![("key", …)]` tuples);
//! * **parse** — the key strings the `from_json` side reads
//!   (`obj.req("key")` / `obj.opt("key")`).
//!
//! Every declared field must appear in both emit and parse; an emit key
//! with no matching parse (or vice versa) is flagged unless it is present
//! on *both* sides (envelope keys like `"schema"` and `"type"` tags are
//! fine). This catches exactly the dropped-, misspelled-, and emit-only-
//! field bug class.
//!
//! Codec pairs are discovered two ways: `impl T { fn to_json / fn
//! from_json }` pairs the type directly; free `x_to_json`/`x_from_json`
//! functions pair by their `x` stem, with the subject type resolved from
//! the first signature identifier naming a declared type **with fields**
//! (so `&Value` parameters never masquerade as the subject). Types are
//! looked up workspace-wide — a codec may live in a different file than
//! its type's declaration.

use std::collections::BTreeMap;

use crate::items::{FileItems, FnItem};
use crate::lexer::TokKind;
use crate::rules::{names, FilePolicy, Finding};

/// Runs the coverage pass. Only files whose policy marks them as coverage
/// files contribute codec pairs; type declarations are resolved against
/// the whole parsed workspace.
pub fn run(files: &[FileItems], policies: &[FilePolicy]) -> Vec<Finding> {
    // Workspace-wide type table: name → (file idx, type idx). First
    // declaration in walk order wins (names are unique in practice).
    let mut types: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        for (ti, t) in f.types.iter().enumerate() {
            types.entry(t.name.as_str()).or_insert((fi, ti));
        }
    }
    let mut findings = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        if !policies[fi].is_coverage {
            continue;
        }
        for pair in discover_pairs(f, &types, files) {
            check_pair(f, &pair, &types, files, &mut findings);
        }
    }
    findings
}

/// One discovered codec pair within a file.
struct Pair {
    /// Subject type name.
    subject: String,
    /// Index of the `to_json` fn in the file.
    emit_fn: usize,
    /// Index of the `from_json` fn in the file.
    parse_fn: usize,
}

fn discover_pairs(
    file: &FileItems,
    types: &BTreeMap<&str, (usize, usize)>,
    files: &[FileItems],
) -> Vec<Pair> {
    // stem → (emit fn, parse fn); impl-based pairs use the type name as
    // the stem directly.
    let mut halves: BTreeMap<String, (Option<usize>, Option<usize>)> = BTreeMap::new();
    for (i, f) in file.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        match (&f.impl_type, f.name.as_str()) {
            (Some(ty), "to_json") => halves.entry(ty.clone()).or_default().0 = Some(i),
            (Some(ty), "from_json") => halves.entry(ty.clone()).or_default().1 = Some(i),
            (None, name) => {
                if let Some(stem) = name.strip_suffix("_to_json") {
                    halves.entry(stem.to_string()).or_default().0 = Some(i);
                } else if let Some(stem) = name.strip_suffix("_from_json") {
                    halves.entry(stem.to_string()).or_default().1 = Some(i);
                }
            }
            _ => {}
        }
    }
    let mut pairs = Vec::new();
    for (stem, (emit, parse)) in halves {
        let (Some(emit_fn), Some(parse_fn)) = (emit, parse) else {
            continue; // one-sided helpers are not codecs
        };
        // Impl-based stems are the type name; free-fn stems resolve the
        // subject from the signatures.
        let subject = if types.contains_key(stem.as_str()) {
            Some(stem)
        } else {
            subject_of(&file.fns[emit_fn], file, types, files)
                .or_else(|| subject_of(&file.fns[parse_fn], file, types, files))
        };
        if let Some(subject) = subject {
            pairs.push(Pair {
                subject,
                emit_fn,
                parse_fn,
            });
        }
    }
    pairs
}

/// The first identifier in the fn's signature naming a declared type with
/// at least one named field.
fn subject_of(
    f: &FnItem,
    file: &FileItems,
    types: &BTreeMap<&str, (usize, usize)>,
    files: &[FileItems],
) -> Option<String> {
    let (start, end) = f.sig;
    for t in &file.toks[start..end.min(file.toks.len())] {
        if t.kind != TokKind::Ident {
            continue;
        }
        if let Some(&(fi, ti)) = types.get(t.text.as_str()) {
            if !files[fi].types[ti].fields.is_empty() {
                return Some(t.text.clone());
            }
        }
    }
    None
}

fn check_pair(
    file: &FileItems,
    pair: &Pair,
    types: &BTreeMap<&str, (usize, usize)>,
    files: &[FileItems],
    out: &mut Vec<Finding>,
) {
    let Some(&(tfi, tti)) = types.get(pair.subject.as_str()) else {
        return;
    };
    let declared = &files[tfi].types[tti].fields;
    let emit = emit_keys(file, pair.emit_fn);
    let parse = parse_keys(file, pair.parse_fn);
    let emit_item = &file.fns[pair.emit_fn];
    let parse_item = &file.fns[pair.parse_fn];
    let place = |f: &FnItem, msg: String| Finding {
        file: file.rel.clone(),
        line: f.line,
        col: f.col,
        rule: names::CODEC_COVERAGE,
        message: msg,
        chain: Vec::new(),
    };
    for field in declared {
        if !emit.contains(field) {
            out.push(place(
                emit_item,
                format!(
                    "codec for `{}` never emits declared field `{}`; the emitted form \
                     silently drops it",
                    pair.subject, field
                ),
            ));
        }
        if !parse.contains(field) {
            out.push(place(
                parse_item,
                format!(
                    "codec for `{}` never parses declared field `{}`; round-trips lose it",
                    pair.subject, field
                ),
            ));
        }
    }
    for key in &emit {
        if !parse.contains(key) && !declared.contains(key) {
            out.push(place(
                emit_item,
                format!(
                    "codec for `{}` emits key \"{}\" that the parse side never reads \
                     (emit-only key, or a misspelling of a parsed one)",
                    pair.subject, key
                ),
            ));
        }
    }
    for key in &parse {
        if !emit.contains(key) && !declared.contains(key) {
            out.push(place(
                parse_item,
                format!(
                    "codec for `{}` parses key \"{}\" that the emit side never writes \
                     (parse-only key, or a misspelling of an emitted one)",
                    pair.subject, key
                ),
            ));
        }
    }
}

/// True for strings that look like JSON object keys (`snake_case`).
fn is_key_str(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// Key strings the emit side writes: string literals opening a tuple —
/// `("key", …)` — where the tuple itself opens after `(`, `[`, or `,`
/// (`members.push(("key", …))`, `vec![("key", …), ("key2", …)]`). A string
/// directly after a call head (`helper("label", …)`) is an argument label,
/// not a key.
fn emit_keys(file: &FileItems, fn_idx: usize) -> Vec<String> {
    let (start, end) = file.fns[fn_idx].body;
    let toks = &file.toks;
    let mut out = Vec::new();
    for i in start..end.min(toks.len()) {
        let t = &toks[i];
        if t.kind != TokKind::Str || !is_key_str(&t.text) {
            continue;
        }
        let opens_tuple = i >= 2
            && toks[i - 1].is_punct('(')
            && (toks[i - 2].is_punct('(')
                || toks[i - 2].is_punct('[')
                || toks[i - 2].is_punct(','));
        if opens_tuple && !out.contains(&t.text) {
            out.push(t.text.clone());
        }
    }
    out
}

/// Key strings the parse side reads: arguments of `.req("key")` /
/// `.opt("key")`.
fn parse_keys(file: &FileItems, fn_idx: usize) -> Vec<String> {
    let (start, end) = file.fns[fn_idx].body;
    let toks = &file.toks;
    let mut out = Vec::new();
    for i in start..end.min(toks.len()) {
        let t = &toks[i];
        if t.kind != TokKind::Str || !is_key_str(&t.text) {
            continue;
        }
        let req_opt = i >= 2
            && toks[i - 1].is_punct('(')
            && toks[i - 2].kind == TokKind::Ident
            && (toks[i - 2].text == "req" || toks[i - 2].text == "opt");
        if req_opt && !out.contains(&t.text) {
            out.push(t.text.clone());
        }
    }
    out
}
