//! Fixture conformance for `arvis-lint`.
//!
//! Every rule has a violating sample, a clean sample, and (where pragmas
//! make sense) a pragma-suppressed sample under `tests/fixtures/`. The
//! tests here pin each seeded violation to its exact `file:line` — if a
//! rule drifts (misses a pattern, or starts firing on clean code) these
//! fail before the workspace audit does.

use std::path::PathBuf;
use std::process::Command;

use arvis_lint::{lint_file, lint_workspace, FilePolicy, LintConfig};

fn fixtures_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn strict() -> FilePolicy {
    FilePolicy {
        allow_time: false,
        allow_unsafe: false,
        is_codec: false,
        is_coverage: false,
    }
}

/// Lints one fixture and reduces the findings to `(rule, line)` pairs.
fn findings(rel: &str, policy: &FilePolicy) -> Vec<(String, u32)> {
    let path = fixtures_root().join(rel);
    lint_file(&path, rel, policy)
        .unwrap_or_else(|e| panic!("lint {rel}: {e}"))
        .into_iter()
        .map(|f| (f.rule.to_string(), f.line))
        .collect()
}

fn pairs(rule: &str, lines: &[u32]) -> Vec<(String, u32)> {
    lines.iter().map(|&l| (rule.to_string(), l)).collect()
}

#[test]
fn no_ambient_time_exact_lines() {
    assert_eq!(
        findings("no_ambient_time/violating.rs", &strict()),
        pairs("no-ambient-time", &[3, 6, 7])
    );
    assert_eq!(findings("no_ambient_time/clean.rs", &strict()), []);
}

#[test]
fn no_ambient_time_exact_columns() {
    let path = fixtures_root().join("no_ambient_time/violating.rs");
    let found = lint_file(&path, "no_ambient_time/violating.rs", &strict()).unwrap();
    let at = |line: u32| found.iter().find(|f| f.line == line).expect("finding");
    // `use std::time::Instant;` — `Instant` starts at column 16.
    assert_eq!(at(3).col, 16);
    // `    let t0 = Instant::now();` — column 14.
    assert_eq!(at(6).col, 14);
    assert_eq!(
        at(6).render(),
        format!(
            "no_ambient_time/violating.rs:6:14 no-ambient-time {}",
            at(6).message
        )
    );
}

#[test]
fn no_ambient_time_allowlist_exempts() {
    let policy = FilePolicy {
        allow_time: true,
        ..strict()
    };
    assert_eq!(findings("no_ambient_time/violating.rs", &policy), []);
}

#[test]
fn no_ambient_entropy_exact_lines() {
    assert_eq!(
        findings("no_ambient_entropy/violating.rs", &strict()),
        pairs("no-ambient-entropy", &[3, 6, 7, 8])
    );
    assert_eq!(findings("no_ambient_entropy/clean.rs", &strict()), []);
}

#[test]
fn hash_order_iteration_exact_lines() {
    // Line 15: field receiver; 20: set algebra on a param; 25: accessor
    // call receiver; 33: `for … in map`.
    assert_eq!(
        findings("hash_order_iteration/violating.rs", &strict()),
        pairs("hash-order-iteration", &[15, 20, 25, 33])
    );
    assert_eq!(findings("hash_order_iteration/clean.rs", &strict()), []);
}

#[test]
fn hash_order_iteration_pragmas_suppress() {
    // Both placements: the standalone comment line above, and the trailing
    // same-line comment. Both pragmas are used, so no lint-pragma finding.
    assert_eq!(findings("hash_order_iteration/pragma.rs", &strict()), []);
}

#[test]
fn panic_free_codecs_exact_lines() {
    let codec = FilePolicy {
        is_codec: true,
        ..strict()
    };
    assert_eq!(
        findings("panic_free_codecs/violating/json.rs", &codec),
        pairs("panic-free-codecs", &[4, 6, 8, 10])
    );
    // Unwraps inside `#[cfg(test)]` are exempt.
    assert_eq!(findings("panic_free_codecs/clean/json.rs", &codec), []);
    // The rule only applies to codec files at all.
    assert_eq!(
        findings("panic_free_codecs/violating/json.rs", &strict()),
        []
    );
}

#[test]
fn no_unsafe_exact_lines() {
    let found = findings("no_unsafe/violating.rs", &strict());
    assert_eq!(found, pairs("no-unsafe", &[4]));
    assert_eq!(findings("no_unsafe/clean.rs", &strict()), []);
    let par_policy = FilePolicy {
        allow_unsafe: true,
        ..strict()
    };
    assert_eq!(findings("no_unsafe/violating.rs", &par_policy), []);
}

#[test]
fn float_reduction_order_exact_lines() {
    assert_eq!(
        findings("float_reduction_order/violating.rs", &strict()),
        pairs("float-reduction-order", &[7, 11])
    );
    // No parallel marker in the module ⇒ serial float sums are fine.
    assert_eq!(findings("float_reduction_order/clean.rs", &strict()), []);
    assert_eq!(findings("float_reduction_order/pragma.rs", &strict()), []);
}

#[test]
fn bad_pragmas_are_themselves_findings() {
    // Line 3: unknown rule name; line 6: missing justification; line 9:
    // well-formed but suppresses nothing.
    assert_eq!(
        findings("lint_pragma/bad.rs", &strict()),
        pairs("lint-pragma", &[3, 6, 9])
    );
}

/// The directory walk sees every fixture and every rule fires somewhere:
/// 100% of the seeded corpus is detected.
#[test]
fn strict_walk_covers_every_rule() {
    let report = lint_workspace(&LintConfig::strict_at(fixtures_root())).expect("walk fixtures");
    assert_eq!(report.files_scanned, 25, "fixture corpus size drifted");
    assert_eq!(report.findings.len(), 37, "\n{}", report.render_text());
    for (rule, _) in arvis_lint::RULES {
        assert!(
            !report.by_rule(rule).is_empty(),
            "rule {rule} has no live fixture coverage"
        );
    }
}

/// Workspace-lints the fixture corpus and returns findings in one file.
fn walk_findings(file: &str) -> Vec<arvis_lint::Finding> {
    let report = lint_workspace(&LintConfig::strict_at(fixtures_root())).expect("walk fixtures");
    report
        .findings
        .into_iter()
        .filter(|f| f.file == file)
        .collect()
}

/// The seeded cross-file chain: `relay → launch → Probe::sample →
/// read_clock → Instant`. Every hop is pinned to its exact call-site
/// position and its full rendered chain.
#[test]
fn taint_chain_exact_positions_and_chains() {
    let tail = [
        "taint_chain::clock_leaf::read_clock".to_string(),
        "`Instant` (taint_chain/clock_leaf.rs:4)".to_string(),
    ];

    // The leaf itself is a plain per-file finding, chainless.
    let leaf = walk_findings("taint_chain/clock_leaf.rs");
    assert_eq!(leaf.len(), 1);
    assert_eq!(
        (leaf[0].line, leaf[0].col, leaf[0].rule),
        (4, 25, "no-ambient-time")
    );
    assert!(leaf[0].chain.is_empty(), "direct findings carry no chain");

    // One hop: the impl method's call into the leaf.
    let mid = walk_findings("taint_chain/mid.rs");
    assert_eq!(mid.len(), 1, "{mid:?}");
    assert_eq!(
        (mid[0].line, mid[0].col, mid[0].rule),
        (9, 28, "no-ambient-time")
    );
    let mut want = vec!["taint_chain::mid::Probe::sample".to_string()];
    want.extend(tail.iter().cloned());
    assert_eq!(mid[0].chain, want);

    // Two and three hops, the deeper one through the method call.
    let top = walk_findings("taint_chain/top.rs");
    assert_eq!(top.len(), 2, "{top:?}");
    assert_eq!((top[0].line, top[0].col), (7, 7));
    assert_eq!(
        top[0].chain,
        [
            "taint_chain::top::launch".to_string(),
            "taint_chain::mid::Probe::sample".to_string(),
            tail[0].clone(),
            tail[1].clone(),
        ]
    );
    assert_eq!((top[1].line, top[1].col), (11, 5));
    assert_eq!(top[1].chain.len(), 5, "{:?}", top[1].chain);
    assert_eq!(top[1].chain[0], "taint_chain::top::relay");
    assert!(
        top[1].message.contains(
            "taint_chain::top::relay → taint_chain::top::launch → \
             taint_chain::mid::Probe::sample → taint_chain::clock_leaf::read_clock → \
             `Instant` (taint_chain/clock_leaf.rs:4)"
        ),
        "rendered chain drifted: {}",
        top[1].message
    );
}

/// Raw-identifier paths (`r#type::r#fn`, `super::r#unsafe`) resolve like
/// ordinary ones, so the clock taint flows through them — and `r#unsafe`
/// the *name* never trips the `no-unsafe` keyword rule.
#[test]
fn raw_ident_paths_resolve_and_carry_taint() {
    let found = walk_findings("lexer_edge/raw_path.rs");
    let triples: Vec<_> = found.iter().map(|f| (f.line, f.col, f.rule)).collect();
    assert_eq!(
        triples,
        [
            (6, 16, "no-ambient-time"),
            (11, 16, "no-ambient-time"),
            (16, 13, "no-ambient-time"),
        ],
        "{found:?}"
    );
    assert_eq!(
        found[1].chain,
        [
            "lexer_edge::raw_path::type::fn".to_string(),
            "lexer_edge::raw_path::unsafe".to_string(),
            "`Instant` (lexer_edge/raw_path.rs:6)".to_string(),
        ]
    );
    assert_eq!(found[2].chain.len(), 4);
    assert_eq!(found[2].chain[0], "lexer_edge::raw_path::call_raw");
}

/// The codec-coverage pass: a field dropped from both halves is reported
/// on each, and one-sided undeclared keys are reported on their side.
#[test]
fn codec_coverage_exact_positions() {
    let found = walk_findings("codec_coverage/scenario.rs");
    let triples: Vec<_> = found.iter().map(|f| (f.line, f.col, f.rule)).collect();
    assert_eq!(
        triples,
        [
            (12, 12, "codec-coverage"), // to_json: drops `label`
            (12, 12, "codec-coverage"), // to_json: emit-only `legacy_mark`
            (20, 12, "codec-coverage"), // from_json: drops `label`
            (20, 12, "codec-coverage"), // from_json: parse-only `retries`
        ],
        "{found:?}"
    );
    assert!(found[0]
        .message
        .contains("never emits declared field `label`"));
    assert!(found[1].message.contains("emits key \"legacy_mark\""));
    assert!(found[2]
        .message
        .contains("never parses declared field `label`"));
    assert!(found[3].message.contains("parses key \"retries\""));
}

/// Lexer hardening: a shebang line and a UTF-8 BOM shift neither lines
/// nor columns.
#[test]
fn shebang_and_bom_do_not_shift_positions() {
    let sh = walk_findings("lexer_edge/shebang.rs");
    assert_eq!(sh.len(), 1, "{sh:?}");
    assert_eq!(
        (sh[0].line, sh[0].col, sh[0].rule),
        (3, 5, "no-ambient-entropy")
    );

    let bom = walk_findings("lexer_edge/bom.rs");
    assert_eq!(bom.len(), 1, "{bom:?}");
    assert_eq!(
        (bom[0].line, bom[0].col, bom[0].rule),
        (1, 36, "no-ambient-entropy")
    );
}

/// Nested cfg evaluation: `all(test, …)` is a test region (unwrap
/// exempt), `any(test, …)` and `not(any(test, …))` are not.
#[test]
fn nested_cfg_test_regions_are_exact() {
    let found = walk_findings("lexer_edge/cfg_nest/json.rs");
    let triples: Vec<_> = found.iter().map(|f| (f.line, f.col, f.rule)).collect();
    assert_eq!(
        triples,
        [(14, 19, "panic-free-codecs"), (21, 19, "panic-free-codecs")],
        "{found:?}"
    );
}

/// Fn-scoped pragmas: an allow on the line above a `fn` header covers the
/// whole item — the source inside is suppressed AND the taint it would
/// hand to callers is contained; an unused fn-scoped pragma self-flags.
#[test]
fn fn_scoped_pragmas_contain_and_self_flag() {
    let scoped = walk_findings("fn_pragma/scoped.rs");
    assert!(scoped.is_empty(), "taint must be contained: {scoped:?}");

    let unused = walk_findings("fn_pragma/unused.rs");
    assert_eq!(unused.len(), 1, "{unused:?}");
    assert_eq!(
        (unused[0].line, unused[0].col, unused[0].rule),
        (1, 1, "lint-pragma")
    );
    assert!(unused[0]
        .message
        .contains("suppresses nothing in its scope"));
}

/// The CI contract: the binary exits nonzero when findings exist (so a
/// seeded violation demonstrably fails the pipeline) and zero when the
/// tree is clean.
#[test]
fn binary_exit_codes_match_findings() {
    let bin = env!("CARGO_BIN_EXE_arvis-lint");

    let dirty = Command::new(bin)
        .arg("--root")
        .arg(fixtures_root())
        .output()
        .expect("run arvis-lint");
    assert_eq!(dirty.status.code(), Some(1), "fixtures must fail the lint");
    let stdout = String::from_utf8(dirty.stdout).expect("utf-8 report");
    assert!(
        stdout.contains("no_ambient_time/violating.rs:6:14 no-ambient-time"),
        "missing expected finding line in:\n{stdout}"
    );

    let clean = Command::new(bin)
        .arg("--root")
        .arg(fixtures_root().join("panic_free_codecs/clean"))
        .output()
        .expect("run arvis-lint");
    assert_eq!(
        clean.status.code(),
        Some(0),
        "clean tree must pass: {}",
        String::from_utf8_lossy(&clean.stdout)
    );
}
