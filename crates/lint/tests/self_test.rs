//! Fixture conformance for `arvis-lint`.
//!
//! Every rule has a violating sample, a clean sample, and (where pragmas
//! make sense) a pragma-suppressed sample under `tests/fixtures/`. The
//! tests here pin each seeded violation to its exact `file:line` — if a
//! rule drifts (misses a pattern, or starts firing on clean code) these
//! fail before the workspace audit does.

use std::path::PathBuf;
use std::process::Command;

use arvis_lint::{lint_file, lint_workspace, FilePolicy, LintConfig};

fn fixtures_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn strict() -> FilePolicy {
    FilePolicy {
        allow_time: false,
        allow_unsafe: false,
        is_codec: false,
    }
}

/// Lints one fixture and reduces the findings to `(rule, line)` pairs.
fn findings(rel: &str, policy: &FilePolicy) -> Vec<(String, u32)> {
    let path = fixtures_root().join(rel);
    lint_file(&path, rel, policy)
        .unwrap_or_else(|e| panic!("lint {rel}: {e}"))
        .into_iter()
        .map(|f| (f.rule.to_string(), f.line))
        .collect()
}

fn pairs(rule: &str, lines: &[u32]) -> Vec<(String, u32)> {
    lines.iter().map(|&l| (rule.to_string(), l)).collect()
}

#[test]
fn no_ambient_time_exact_lines() {
    assert_eq!(
        findings("no_ambient_time/violating.rs", &strict()),
        pairs("no-ambient-time", &[3, 6, 7])
    );
    assert_eq!(findings("no_ambient_time/clean.rs", &strict()), []);
}

#[test]
fn no_ambient_time_exact_columns() {
    let path = fixtures_root().join("no_ambient_time/violating.rs");
    let found = lint_file(&path, "no_ambient_time/violating.rs", &strict()).unwrap();
    let at = |line: u32| found.iter().find(|f| f.line == line).expect("finding");
    // `use std::time::Instant;` — `Instant` starts at column 16.
    assert_eq!(at(3).col, 16);
    // `    let t0 = Instant::now();` — column 14.
    assert_eq!(at(6).col, 14);
    assert_eq!(
        at(6).render(),
        format!(
            "no_ambient_time/violating.rs:6:14 no-ambient-time {}",
            at(6).message
        )
    );
}

#[test]
fn no_ambient_time_allowlist_exempts() {
    let policy = FilePolicy {
        allow_time: true,
        ..strict()
    };
    assert_eq!(findings("no_ambient_time/violating.rs", &policy), []);
}

#[test]
fn no_ambient_entropy_exact_lines() {
    assert_eq!(
        findings("no_ambient_entropy/violating.rs", &strict()),
        pairs("no-ambient-entropy", &[3, 6, 7, 8])
    );
    assert_eq!(findings("no_ambient_entropy/clean.rs", &strict()), []);
}

#[test]
fn hash_order_iteration_exact_lines() {
    // Line 15: field receiver; 20: set algebra on a param; 25: accessor
    // call receiver; 33: `for … in map`.
    assert_eq!(
        findings("hash_order_iteration/violating.rs", &strict()),
        pairs("hash-order-iteration", &[15, 20, 25, 33])
    );
    assert_eq!(findings("hash_order_iteration/clean.rs", &strict()), []);
}

#[test]
fn hash_order_iteration_pragmas_suppress() {
    // Both placements: the standalone comment line above, and the trailing
    // same-line comment. Both pragmas are used, so no lint-pragma finding.
    assert_eq!(findings("hash_order_iteration/pragma.rs", &strict()), []);
}

#[test]
fn panic_free_codecs_exact_lines() {
    let codec = FilePolicy {
        is_codec: true,
        ..strict()
    };
    assert_eq!(
        findings("panic_free_codecs/violating/json.rs", &codec),
        pairs("panic-free-codecs", &[4, 6, 8, 10])
    );
    // Unwraps inside `#[cfg(test)]` are exempt.
    assert_eq!(findings("panic_free_codecs/clean/json.rs", &codec), []);
    // The rule only applies to codec files at all.
    assert_eq!(
        findings("panic_free_codecs/violating/json.rs", &strict()),
        []
    );
}

#[test]
fn no_unsafe_exact_lines() {
    let found = findings("no_unsafe/violating.rs", &strict());
    assert_eq!(found, pairs("no-unsafe", &[4]));
    assert_eq!(findings("no_unsafe/clean.rs", &strict()), []);
    let par_policy = FilePolicy {
        allow_unsafe: true,
        ..strict()
    };
    assert_eq!(findings("no_unsafe/violating.rs", &par_policy), []);
}

#[test]
fn float_reduction_order_exact_lines() {
    assert_eq!(
        findings("float_reduction_order/violating.rs", &strict()),
        pairs("float-reduction-order", &[7, 11])
    );
    // No parallel marker in the module ⇒ serial float sums are fine.
    assert_eq!(findings("float_reduction_order/clean.rs", &strict()), []);
    assert_eq!(findings("float_reduction_order/pragma.rs", &strict()), []);
}

#[test]
fn bad_pragmas_are_themselves_findings() {
    // Line 3: unknown rule name; line 6: missing justification; line 9:
    // well-formed but suppresses nothing.
    assert_eq!(
        findings("lint_pragma/bad.rs", &strict()),
        pairs("lint-pragma", &[3, 6, 9])
    );
}

/// The directory walk sees every fixture and every rule fires somewhere:
/// 100% of the seeded corpus is detected.
#[test]
fn strict_walk_covers_every_rule() {
    let report = lint_workspace(&LintConfig::strict_at(fixtures_root())).expect("walk fixtures");
    assert_eq!(report.files_scanned, 15, "fixture corpus size drifted");
    assert_eq!(report.findings.len(), 21, "\n{}", report.render_text());
    for (rule, _) in arvis_lint::RULES {
        assert!(
            !report.by_rule(rule).is_empty(),
            "rule {rule} has no live fixture coverage"
        );
    }
}

/// The CI contract: the binary exits nonzero when findings exist (so a
/// seeded violation demonstrably fails the pipeline) and zero when the
/// tree is clean.
#[test]
fn binary_exit_codes_match_findings() {
    let bin = env!("CARGO_BIN_EXE_arvis-lint");

    let dirty = Command::new(bin)
        .arg("--root")
        .arg(fixtures_root())
        .output()
        .expect("run arvis-lint");
    assert_eq!(dirty.status.code(), Some(1), "fixtures must fail the lint");
    let stdout = String::from_utf8(dirty.stdout).expect("utf-8 report");
    assert!(
        stdout.contains("no_ambient_time/violating.rs:6:14 no-ambient-time"),
        "missing expected finding line in:\n{stdout}"
    );

    let clean = Command::new(bin)
        .arg("--root")
        .arg(fixtures_root().join("panic_free_codecs/clean"))
        .output()
        .expect("run arvis-lint");
    assert_eq!(
        clean.status.code(),
        Some(0),
        "clean tree must pass: {}",
        String::from_utf8_lossy(&clean.stdout)
    );
}
