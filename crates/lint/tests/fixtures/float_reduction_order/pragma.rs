//! Fixture: a parallel-bearing module whose float sum is justified.

#[cfg(feature = "parallel")]
pub fn fan_out() {}

pub fn total(xs: &[f64]) -> f64 {
    // arvis-lint: allow(float-reduction-order, "serial within-chunk sum; chunks combine in fixed order")
    xs.iter().sum::<f64>()
}
