//! Fixture: bare float sums in a module that fans work out in parallel.

#[cfg(feature = "parallel")]
pub fn fan_out() {}

pub fn total(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}

pub fn total32(xs: &[f32]) -> f32 {
    xs.iter().map(|x| x * 2.0).sum::<f32>()
}
