//! Fixture: no parallel marker in this module, so a serial float sum is
//! fine; and integer sums are always exact regardless of order.

pub fn total(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}

pub fn count(xs: &[u64]) -> u64 {
    xs.iter().sum::<u64>()
}
