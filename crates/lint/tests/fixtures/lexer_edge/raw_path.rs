//! Raw identifiers: `r#unsafe` is a name, not the keyword, and raw path
//! segments (`r#type::r#fn`) resolve like ordinary ones — the clock
//! taint below flows through both.

pub fn r#unsafe() -> u128 {
    std::time::Instant::now().elapsed().as_nanos()
}

pub mod r#type {
    pub fn r#fn() -> u128 {
        super::r#unsafe()
    }
}

pub fn call_raw() -> u128 {
    r#type::r#fn()
}
