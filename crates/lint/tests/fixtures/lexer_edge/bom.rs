﻿pub fn seed_map() -> u64 { let s = RandomState::new(); 0 }
