#!/usr/bin/env run-cargo-script
pub fn roll_seed() -> u64 {
    thread_rng().next_u64()
}
