//! Nested cfg scopes: `all(test, …)` is test-only, but `any(test, …)`
//! and `not(any(test, …))` can compile into shipping builds.

#[cfg(all(test, feature = "slow"))]
mod gated_tests {
    pub fn decode(v: &str) -> u64 {
        v.parse().unwrap()
    }
}

#[cfg(any(test, feature = "slow"))]
mod maybe_shipping {
    pub fn decode(v: &str) -> u64 {
        v.parse().unwrap()
    }
}

#[cfg(not(any(test, feature = "slow")))]
mod shipping {
    pub fn decode(v: &str) -> u64 {
        v.parse().unwrap()
    }
}
