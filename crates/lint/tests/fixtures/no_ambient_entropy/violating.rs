//! Fixture: ambient entropy sources.

use std::collections::hash_map::RandomState;

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    let other = rand::rngs::SmallRng::from_entropy();
    let _ = (&mut rng, other, RandomState::new());
    4
}
