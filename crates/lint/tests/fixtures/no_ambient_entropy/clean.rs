//! Fixture: explicitly seeded randomness is fine; from_entropy in a comment
//! or string is invisible to the rule.

pub struct Lcg {
    state: u64,
}

impl Lcg {
    pub fn from_seed(seed: u64) -> Self {
        // Never from_entropy(): the seed travels in the scenario file.
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(6364136223846793005).wrapping_add(1);
        self.state
    }
}
