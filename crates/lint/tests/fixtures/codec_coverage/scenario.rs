//! Codec-coverage fixture: the `label` field is dropped by both codec
//! halves, `legacy_mark` is emitted but never parsed, and `retries` is
//! parsed but never emitted.

pub struct WindowSpec {
    pub start: u64,
    pub len: u64,
    pub label: String,
}

impl WindowSpec {
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("start", JsonValue::int(self.start as i128)),
            ("len", JsonValue::int(self.len as i128)),
            ("legacy_mark", JsonValue::bool(true)),
        ])
    }

    pub fn from_json(v: &JsonValue) -> Result<WindowSpec, JsonError> {
        let mut obj = v.as_obj()?;
        let start = obj.req("start")?.as_u64()?;
        let len = obj.req("len")?.as_u64()?;
        let _retries = obj.opt("retries");
        Ok(WindowSpec {
            start,
            len,
            label: String::new(),
        })
    }
}
