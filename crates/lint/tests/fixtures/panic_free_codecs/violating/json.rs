//! Fixture: a codec that panics instead of returning positioned errors.

pub fn decode(text: &str) -> u64 {
    let n: u64 = text.parse().unwrap();
    if n > 100 {
        panic!("too big");
    }
    let m = text.parse::<u64>().expect("a number");
    match m {
        0 => unreachable!(),
        _ => m + n,
    }
}
