//! Fixture: a panic-free codec. Unwraps inside `#[cfg(test)]` are exempt.

pub fn decode(text: &str) -> Result<u64, String> {
    text.parse::<u64>()
        .map_err(|e| format!("line 1: invalid number: {e}"))
}

#[cfg(test)]
mod tests {
    #[test]
    fn roundtrip() {
        assert_eq!(super::decode("7").unwrap(), 7);
    }
}
