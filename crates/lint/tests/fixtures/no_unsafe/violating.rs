//! Fixture: unsafe in kernel code.

pub fn read_first(xs: &[u64]) -> u64 {
    unsafe { *xs.as_ptr() }
}
