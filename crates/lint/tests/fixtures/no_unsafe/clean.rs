//! Fixture: safe code; "unsafe" inside strings and comments is invisible.

pub fn read_first(xs: &[u64]) -> Option<u64> {
    // Bounds-checked, nothing unsafe about it.
    xs.first().copied()
}

pub fn label() -> &'static str {
    "unsafe-free"
}
