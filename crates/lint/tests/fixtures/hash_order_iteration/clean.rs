//! Fixture: deterministic containers and order-insensitive hash-map access.

use std::collections::{BTreeMap, HashMap};

pub struct Cache {
    by_key: BTreeMap<u64, f64>,
    scratch: HashMap<u64, f64>,
}

impl Cache {
    pub fn insert(&mut self, k: u64, v: f64) {
        self.by_key.insert(k, v);
        self.scratch.insert(k, v);
    }

    pub fn dump(&self) -> Vec<u64> {
        // BTreeMap iteration is ordered: no finding.
        self.by_key.keys().copied().collect()
    }

    pub fn lookup(&self, k: u64) -> Option<f64> {
        // Point lookups on a HashMap are order-insensitive: no finding.
        self.scratch.get(&k).copied()
    }

    pub fn occupancy(&self) -> usize {
        self.scratch.len()
    }
}
