//! Fixture: every hash-order heuristic the rule knows about.

use std::collections::{HashMap, HashSet};

pub struct Cache {
    entries: HashMap<u64, f64>,
}

impl Cache {
    pub fn entries(&self) -> &HashMap<u64, f64> {
        &self.entries
    }

    pub fn dump(&self) -> Vec<u64> {
        self.entries.keys().copied().collect()
    }
}

pub fn union_size(a: &HashSet<u64>, b: &HashSet<u64>) -> usize {
    a.union(b).count()
}

pub fn walk(cache: &Cache) -> f64 {
    let mut total = 0.0;
    for v in cache.entries().values() {
        total += v;
    }
    total
}

pub fn consume(map: HashMap<u64, u64>) -> u64 {
    let mut acc = 0;
    for (k, v) in map {
        acc += k + v;
    }
    acc
}
