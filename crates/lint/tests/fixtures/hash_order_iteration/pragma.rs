//! Fixture: pragma-suppressed hash-order iteration, both placements.

use std::collections::HashMap;

pub fn sorted_keys(map: &HashMap<u64, f64>) -> Vec<u64> {
    // arvis-lint: allow(hash-order-iteration, "collected then sorted on the next line")
    let mut keys: Vec<u64> = map.keys().copied().collect();
    keys.sort_unstable();
    keys
}

pub fn population(map: &HashMap<u64, f64>) -> usize {
    map.iter().count() // arvis-lint: allow(hash-order-iteration, "count() is order-insensitive")
}
