// arvis-lint: allow(no-ambient-entropy, "fixture: nothing here rolls entropy")
pub fn quiet() -> u64 {
    42
}
