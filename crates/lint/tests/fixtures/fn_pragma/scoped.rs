//! A fn-scoped pragma: the allow on the line above the header contains
//! every finding inside the function, including the taint it would
//! otherwise leak to its caller.

// arvis-lint: allow(no-ambient-time, "fixture: wall-clock is contained here")
pub fn timed_section() -> u128 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos()
}

pub fn caller() -> u128 {
    timed_section()
}
