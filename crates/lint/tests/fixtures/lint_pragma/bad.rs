//! Fixture: malformed, unknown-rule, and unused pragmas.

// arvis-lint: allow(no-such-rule, "names a rule that does not exist")
pub fn a() {}

// arvis-lint: allow(no-unsafe)
pub fn b() {}

// arvis-lint: allow(no-ambient-time, "suppresses nothing on the next line")
pub fn c() {}
