//! Top of the chain: two more hops above the clock, one through a
//! method call on the middle hop's impl type.

use crate::mid::Probe;

pub fn launch(p: &Probe) -> u128 {
    p.sample()
}

pub fn relay(p: &Probe) -> u128 {
    launch(p)
}
