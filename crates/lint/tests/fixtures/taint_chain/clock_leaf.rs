//! Leaf of the seeded taint chain: reads the ambient clock directly.

pub fn read_clock() -> u128 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos()
}
