//! Middle hop: an impl method that forwards to the clock leaf.

pub struct Probe {
    pub ticks: u64,
}

impl Probe {
    pub fn sample(&self) -> u128 {
        crate::clock_leaf::read_clock()
    }
}
