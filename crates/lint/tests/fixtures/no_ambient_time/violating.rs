//! Fixture: ambient wall-clock reads in library code.

use std::time::Instant;

pub fn measure() -> u64 {
    let t0 = Instant::now();
    let wall = std::time::SystemTime::now();
    let _ = (t0, wall);
    0
}
