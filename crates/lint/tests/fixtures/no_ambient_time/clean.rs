//! Fixture: virtual time only. Mentions of Instant::now() in comments and
//! the string "SystemTime" below must not trip the lexer-backed rule.

pub struct Clock {
    slot: u64,
}

impl Clock {
    pub fn tick(&mut self) -> u64 {
        // A real implementation would never call Instant::now() here.
        self.slot += 1;
        self.slot
    }

    pub fn describe(&self) -> &'static str {
        "virtual slots, not SystemTime::now()"
    }
}
