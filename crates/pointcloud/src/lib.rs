//! Point-cloud substrate for the `arvis` workspace.
//!
//! This crate replaces the subset of [Open3D](https://www.open3d.org/) that the
//! paper *Quality-Aware Real-Time Augmented Reality Visualization under Delay
//! Constraints* (ICDCS 2022) relies on: point-cloud containers, PLY reading and
//! writing, data-format conversion, and voxelization. It additionally provides
//! a synthetic generator for 8i-Voxelized-Full-Bodies-like human point clouds
//! (see [`synth`]) because the original dataset cannot be redistributed.
//!
//! # Quick example
//!
//! ```
//! use arvis_pointcloud::synth::{SubjectProfile, SynthBodyConfig};
//!
//! let cloud = SynthBodyConfig::new(SubjectProfile::Longdress)
//!     .with_target_points(10_000)
//!     .with_seed(7)
//!     .generate();
//! assert!(cloud.len() > 5_000);
//! let aabb = cloud.aabb().unwrap();
//! assert!(aabb.max_extent() > 0.0);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod aabb;
pub mod cloud;
pub mod color;
pub mod error;
pub mod kdtree;
pub mod math;
pub mod morton;
pub mod normals;
pub mod ply;
pub mod point;
pub mod sampling;
pub mod synth;
pub mod transform;
pub mod voxel;

pub use aabb::Aabb;
pub use cloud::PointCloud;
pub use color::Color;
pub use error::{Error, Result};
pub use math::Vec3;
pub use point::Point;
